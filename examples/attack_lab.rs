//! Attack lab: walk through the §3.1 threat model attack by attack and
//! watch each one get caught. A guided tour of *why* every piece of
//! security metadata exists:
//!
//! 1. ciphertext tampering           → caught by the data MAC
//! 2. MAC forgery                    → caught by the keyed MAC
//! 3. counter rollback               → caught by the Bonsai Merkle Tree
//! 4. full-state replay              → caught by the persisted BMT root
//! 5. block relocation (splicing)    → caught by address-bound MACs
//! 6. cross-boot snooping of scratch → defeated by session counters
//!
//! Run with: `cargo run --example attack_lab`

use triad_nvm::core::{PersistScheme, SecureMemoryBuilder, SecureMemoryError};
use triad_nvm::sim::PhysAddr;

fn banner(n: u32, what: &str) {
    println!("\n── attack {n}: {what} ──");
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut mem = SecureMemoryBuilder::new()
        .capacity_bytes(8 << 20)
        .persistent_fraction_eighths(4)
        .scheme(PersistScheme::triad_nvm(2))
        .build()?;
    let layout = mem.memory_map().persistent().clone();
    let p = mem.persistent_region().start();
    let victim = p;
    let other = PhysAddr(p.0 + 8 * 4096);

    mem.write(victim, b"balance: 9000 coins")?;
    mem.persist(victim)?;
    mem.write(other, b"balance: 3 coins")?;
    mem.persist(other)?;
    println!("victim state persisted; machine powers off (attacker has the DIMM)");
    mem.crash();

    banner(1, "flip a ciphertext bit");
    let mut mask = [0u8; 64];
    mask[9] = 0x40;
    mem.nvm_image_mut().tamper(victim.block(), mask);
    mem.recover()?;
    match mem.read(victim) {
        Err(SecureMemoryError::MacMismatch { block }) => {
            println!("caught: MAC mismatch at {block}");
        }
        other => panic!("undetected: {other:?}"),
    }
    // Undo for the next attack.
    mem.nvm_image_mut().tamper(victim.block(), mask);
    assert!(mem.read(victim).is_ok());

    banner(2, "forge the MAC instead");
    let mac_block = layout.mac_block_of(victim.block());
    let mut tag_mask = [0u8; 64];
    tag_mask[layout.mac_slot_of(victim.block()) * 8 + 1] = 0x40;
    mem.crash();
    mem.nvm_image_mut().tamper(mac_block, tag_mask);
    mem.recover()?;
    match mem.read(victim) {
        Err(SecureMemoryError::MacMismatch { .. }) => {
            println!("caught: a forged tag cannot match the keyed MAC");
        }
        other => panic!("undetected: {other:?}"),
    }
    mem.nvm_image_mut().tamper(mac_block, tag_mask);

    banner(3, "roll the counter back");
    let ctr_block = layout.counter_block_of(victim.block());
    mem.crash();
    let mut ctr_mask = [0u8; 64];
    ctr_mask[8 + layout.counter_slot_of(victim.block()) / 8] = 0x03;
    mem.nvm_image_mut().tamper(ctr_block, ctr_mask);
    mem.recover()?;
    match mem.read(victim) {
        Err(SecureMemoryError::IntegrityViolation { kind, .. }) => {
            println!("caught: {kind} failed Bonsai-Merkle-tree verification");
        }
        other => panic!("undetected: {other:?}"),
    }
    mem.nvm_image_mut().tamper(ctr_block, ctr_mask);

    banner(4, "replay the complete old state (data + MAC + counter)");
    // Capture state now, move the world forward, then roll everything
    // back in concert — the §2.2 counter-replay attack.
    let snapshot = (
        mem.nvm_image().read(victim.block()),
        mem.nvm_image().read(mac_block),
        mem.nvm_image().read(ctr_block),
    );
    mem.write(victim, b"balance: 0 coins (spent!)")?;
    mem.persist(victim)?;
    mem.crash();
    mem.nvm_image_mut().rollback_to(victim.block(), snapshot.0);
    mem.nvm_image_mut().rollback_to(mac_block, snapshot.1);
    mem.nvm_image_mut().rollback_to(ctr_block, snapshot.2);
    mem.recover()?;
    match mem.read(victim) {
        Err(SecureMemoryError::IntegrityViolation { .. }) => {
            println!("caught: the on-chip root remembers the newer counter");
        }
        Ok(data) => panic!(
            "rolled back undetected to {:?}!",
            std::str::from_utf8(&data[..19])
        ),
        other => panic!("unexpected: {other:?}"),
    }
    // Repair: put the newest state back.
    mem.crash();
    let fixed = mem.recover()?;
    assert!(!fixed.persistent_recovered || fixed.unverifiable.is_empty());

    banner(5, "splice two ciphertext blocks (relocation)");
    let mut mem = SecureMemoryBuilder::new()
        .capacity_bytes(8 << 20)
        .persistent_fraction_eighths(4)
        .scheme(PersistScheme::triad_nvm(2))
        .build()?;
    let p = mem.persistent_region().start();
    let rich = p;
    let poor = PhysAddr(p.0 + 4096);
    mem.write(rich, b"rich")?;
    mem.persist(rich)?;
    mem.write(poor, b"poor")?;
    mem.persist(poor)?;
    mem.crash();
    let (a, b) = (
        mem.nvm_image().read(rich.block()),
        mem.nvm_image().read(poor.block()),
    );
    mem.nvm_image_mut().rollback_to(rich.block(), b);
    mem.nvm_image_mut().rollback_to(poor.block(), a);
    mem.recover()?;
    match mem.read(poor) {
        Err(SecureMemoryError::MacMismatch { .. }) => {
            println!("caught: MACs bind the block's address, not just its bytes");
        }
        other => panic!("undetected: {other:?}"),
    }

    banner(6, "harvest non-persistent scratch across a reboot");
    let np = mem.non_persistent_region().start();
    mem.write(np, b"session key material")?;
    mem.crash();
    mem.recover()?;
    let after = mem.read(np)?;
    assert_eq!(after, [0u8; 64]);
    println!(
        "defeated: scratch reads as zeros after reboot (session {}), and the \
         stale ciphertext in NVM was produced under a different session pad",
        mem.session()
    );

    println!("\nall six attacks handled — this is what the metadata triad buys");
    Ok(())
}
