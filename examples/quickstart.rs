//! Quickstart: build a secure NVM, write and persist data, crash the
//! machine, recover, and verify both the surviving data and the
//! tamper-detection machinery.
//!
//! Run with: `cargo run --example quickstart`

use triad_nvm::core::{PersistScheme, SecureMemoryBuilder, SecureMemoryError};
use triad_nvm::sim::PhysAddr;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 16 MiB NVM, 1/4 persistent, with counters + BMT level 1
    // strictly persisted (the paper's TriadNVM-2 sweet spot).
    let mut mem = SecureMemoryBuilder::new()
        .capacity_bytes(16 << 20)
        .persistent_fraction_eighths(2)
        .scheme(PersistScheme::triad_nvm(2))
        .build()?;

    println!("memory map:");
    println!(
        "  persistent data area:     {} ({} KiB)",
        mem.persistent_region().start(),
        mem.persistent_region().len_bytes() / 1024
    );
    println!(
        "  non-persistent data area: {} ({} KiB)",
        mem.non_persistent_region().start(),
        mem.non_persistent_region().len_bytes() / 1024
    );

    // Persist a record the PMDK way: store, then clwb+sfence.
    let addr = mem.persistent_region().start();
    mem.write(addr, b"account balance: 1337")?;
    mem.persist(addr)?;
    println!("\npersisted a record at {addr}");

    // Scratch data in the non-persistent region needs no persist.
    let scratch = mem.non_persistent_region().start();
    mem.write(scratch, b"temporary computation state")?;

    // Power loss!
    mem.crash();
    println!("power lost: caches, WPQ bookkeeping and on-chip metadata gone");

    // Recovery verifies the persistent tree against the on-chip root
    // and lazily reinitialises the non-persistent region (§3.3.4).
    let report = mem.recover()?;
    println!(
        "recovered: verified persistent region by reading {} metadata blocks (est. {})",
        report.persistent_blocks_read, report.estimated_duration
    );

    let data = mem.read(addr)?;
    assert_eq!(&data[..21], b"account balance: 1337");
    println!(
        "persistent record intact: {:?}",
        std::str::from_utf8(&data[..21])?
    );

    let gone = mem.read(scratch)?;
    assert_eq!(gone, [0u8; 64]);
    println!("non-persistent scratch discarded (reads as zeros), as it should be");

    // An attacker flips a ciphertext bit between boots…
    mem.crash();
    let block = addr.block();
    let mut mask = [0u8; 64];
    mask[0] = 0x80;
    mem.nvm_image_mut().tamper(block, mask);
    mem.recover()?;
    match mem.read(addr) {
        Err(SecureMemoryError::MacMismatch { block }) => {
            println!("tampering detected: MAC mismatch at {block} — exactly as designed");
        }
        other => panic!("tampering went undetected: {other:?}"),
    }

    // The rest of the region is unaffected.
    let neighbour = PhysAddr(addr.0 + 4096);
    mem.write(neighbour, b"fresh data")?;
    mem.persist(neighbour)?;
    println!("unaffected pages keep working; quickstart done");
    Ok(())
}
