//! Crash-consistency torture demo: run transactional updates against
//! a persistent hashtable, crash at randomised points — including in
//! the middle of the engine's atomic metadata persists (§3.3.5
//! READY_BIT protocol) — and verify after every recovery that the
//! table is in a consistent, fully verified state.
//!
//! Run with: `cargo run --example crash_recovery`

use triad_nvm::core::{PersistScheme, SecureMemoryBuilder};
use triad_nvm::sim::PhysAddr;
use triad_nvm::workloads::heap::PersistentHeap;
use triad_nvm::workloads::structures::PersistentHashtable;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut mem = SecureMemoryBuilder::new()
        .capacity_bytes(8 << 20)
        .persistent_fraction_eighths(4)
        .scheme(PersistScheme::triad_nvm(2))
        .build()?;

    let heap = PersistentHeap::format(&mut mem)?;
    let table = PersistentHashtable::create(&mut mem, heap, 64)?;
    heap.set_root(&mut mem, table.header().0)?;

    // `expected[k]` mirrors what a completed insert guaranteed.
    let mut expected = vec![None::<u64>; 512];
    let mut crashes = 0;
    let mut mid_persist_crashes = 0;

    for round in 0..30u64 {
        // Arm a crash somewhere inside the engine's upcoming atomic
        // persists (varies per round to hit different protocol steps).
        mem.inject_crash_after_wpq_writes(13 + round * 7);
        let mut k = round * 17 % 512;
        loop {
            let key = k % 512;
            let value = round * 1000 + key;
            match table.insert(&mut mem, key, value) {
                Ok(()) => {
                    expected[key as usize] = Some(value);
                    k += 1;
                }
                Err(_) => {
                    // The armed crash fired mid-transaction.
                    crashes += 1;
                    mid_persist_crashes += 1;
                    break;
                }
            }
            if k > round * 17 % 512 + 40 {
                // No crash this round; force a clean one.
                mem.crash();
                crashes += 1;
                break;
            }
        }
        let report = mem.recover()?;
        assert!(
            report.persistent_recovered,
            "round {round}: recovery failed: {report:?}"
        );
        if report.replayed_staged_writes > 0 {
            println!(
                "round {round:2}: crash hit mid-persist; replayed {} staged writes (READY_BIT)",
                report.replayed_staged_writes
            );
        }
        // Reopen and verify every completed insert survived.
        let heap2 = PersistentHeap::open(&mut mem)?;
        let root = heap2.root(&mut mem)?;
        let table2 = PersistentHashtable::open(&mut mem, heap2, PhysAddr(root))?;
        for (key, exp) in expected.iter().enumerate() {
            if let Some(v) = exp {
                let got = table2.get(&mut mem, key as u64)?;
                assert_eq!(got, Some(*v), "round {round}, key {key}");
            }
        }
    }

    println!(
        "\nsurvived {crashes} crashes ({mid_persist_crashes} mid-persist); \
         every completed insert verified after every recovery"
    );
    println!("final session counter: {}", mem.session());
    Ok(())
}
