//! A small crash-safe key-value service built from the public API:
//! persistent hashtable for the store, persistent queue as a durable
//! write-ahead operation journal — the kind of application the paper's
//! introduction motivates (recoverable in seconds, integrity-protected
//! against cold-boot tampering).
//!
//! Run with: `cargo run --example persistent_kv`

use triad_nvm::core::{PersistScheme, SecureMemory, SecureMemoryBuilder};
use triad_nvm::sim::PhysAddr;
use triad_nvm::workloads::heap::PersistentHeap;
use triad_nvm::workloads::structures::{PersistentHashtable, PersistentQueue};

/// A durable KV store: every `put` is journalled, applied, and acked.
struct KvService {
    table: PersistentHashtable,
    journal: PersistentQueue,
}

impl KvService {
    fn create(mem: &mut SecureMemory) -> Result<Self, Box<dyn std::error::Error>> {
        let heap = PersistentHeap::format(mem)?;
        let table = PersistentHashtable::create(mem, heap, 128)?;
        let journal = PersistentQueue::create(mem, heap, 256)?;
        // Root block: [table header, journal header].
        let root = heap.alloc_blocks(mem, 1)?;
        let mut block = [0u8; 64];
        block[..8].copy_from_slice(&table.header().0.to_le_bytes());
        block[8..16].copy_from_slice(&journal.header().0.to_le_bytes());
        mem.write(root, &block)?;
        mem.persist(root)?;
        heap.set_root(mem, root.0)?;
        let _ = heap;
        Ok(KvService { table, journal })
    }

    fn open(mem: &mut SecureMemory) -> Result<Self, Box<dyn std::error::Error>> {
        let heap = PersistentHeap::open(mem)?;
        let root = PhysAddr(heap.root(mem)?);
        let block = mem.read(root)?;
        let table_hdr = PhysAddr(u64::from_le_bytes(block[..8].try_into()?));
        let journal_hdr = PhysAddr(u64::from_le_bytes(block[8..16].try_into()?));
        Ok(KvService {
            table: PersistentHashtable::open(mem, heap, table_hdr)?,
            journal: PersistentQueue::open(mem, heap, journal_hdr)?,
        })
    }

    fn put(
        &self,
        mem: &mut SecureMemory,
        key: u64,
        value: u64,
    ) -> Result<(), Box<dyn std::error::Error>> {
        // Journal first (durable intent), then apply, then retire.
        self.journal.enqueue(mem, key)?;
        self.table.insert(mem, key, value)?;
        self.journal.dequeue(mem)?;
        Ok(())
    }

    fn get(
        &self,
        mem: &mut SecureMemory,
        key: u64,
    ) -> Result<Option<u64>, Box<dyn std::error::Error>> {
        Ok(self.table.get(mem, key)?)
    }

    fn pending_ops(&self, mem: &mut SecureMemory) -> Result<u64, Box<dyn std::error::Error>> {
        Ok(self.journal.len(mem)?)
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut mem = SecureMemoryBuilder::new()
        .capacity_bytes(8 << 20)
        .persistent_fraction_eighths(4)
        .scheme(PersistScheme::triad_nvm(2))
        .build()?;

    let kv = KvService::create(&mut mem)?;
    for i in 0..200u64 {
        kv.put(&mut mem, i, i * i)?;
    }
    println!("stored 200 keys; get(13) = {:?}", kv.get(&mut mem, 13)?);

    // Machine dies mid-flight; a put may have been journalled but not
    // retired.
    mem.crash();
    let report = mem.recover()?;
    assert!(report.persistent_recovered);
    println!(
        "recovered in an estimated {} ({} metadata blocks read)",
        report.estimated_duration, report.persistent_blocks_read
    );

    let kv = KvService::open(&mut mem)?;
    for i in 0..200u64 {
        assert_eq!(kv.get(&mut mem, i)?, Some(i * i), "key {i}");
    }
    println!(
        "all 200 keys intact after reboot; pending journal entries: {}",
        kv.pending_ops(&mut mem)?
    );

    // Show the cost of durability: stats from the engine.
    let stats = mem.stats();
    println!(
        "engine stats: {} persists, {} metadata writes from persistence, {} from evictions",
        stats.persists,
        stats.persist_metadata_writes(),
        stats.evict_metadata_writes()
    );
    Ok(())
}
