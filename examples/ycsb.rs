//! YCSB-style key-value benchmarking over the persistent hashtable —
//! the kind of storage service the paper's introduction motivates —
//! with Zipfian key skew, a crash in the middle of workload A, and a
//! full post-recovery verification.
//!
//! Workloads (YCSB letters): A = 50 % reads / 50 % updates,
//! B = 95/5, C = read-only.
//!
//! Run with: `cargo run --release --example ycsb`

use triad_nvm::core::{PersistScheme, SecureMemory, SecureMemoryBuilder};
use triad_nvm::sim::rng::SplitMix64;
use triad_nvm::sim::PhysAddr;
use triad_nvm::workloads::heap::PersistentHeap;
use triad_nvm::workloads::structures::PersistentHashtable;
use triad_nvm::workloads::zipf::Zipf;

const KEYS: u64 = 2_000;
const OPS: u64 = 10_000;

fn run_workload(
    name: &str,
    read_fraction: f64,
    mem: &mut SecureMemory,
    table: &PersistentHashtable,
    model: &mut [u64],
) -> Result<(), Box<dyn std::error::Error>> {
    let zipf = Zipf::new(KEYS as usize, 0.99);
    let mut rng = SplitMix64::new(7);
    let t0 = mem.now();
    let (mut reads, mut updates) = (0u64, 0u64);
    for i in 0..OPS {
        let key = zipf.sample(&mut rng) as u64;
        if rng.gen_bool(read_fraction) {
            let got = table.get(mem, key)?;
            assert_eq!(got, Some(model[key as usize]), "{name}: key {key}");
            reads += 1;
        } else {
            let value = i + 1_000_000;
            table.insert(mem, key, value)?;
            model[key as usize] = value;
            updates += 1;
        }
    }
    let elapsed = mem.now() - t0;
    println!(
        "{name}: {reads} reads + {updates} updates in {elapsed} simulated \
         ({:.0} kops/s)",
        OPS as f64 / elapsed.as_secs_f64() / 1e3
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut mem = SecureMemoryBuilder::new()
        .capacity_bytes(32 << 20)
        .persistent_fraction_eighths(6)
        .scheme(PersistScheme::triad_nvm(2))
        .build()?;
    let heap = PersistentHeap::format(&mut mem)?;
    let table = PersistentHashtable::create(&mut mem, heap, 1024)?;
    heap.set_root(&mut mem, table.header().0)?;

    // Load phase.
    let mut model = vec![0u64; KEYS as usize];
    for k in 0..KEYS {
        table.insert(&mut mem, k, k)?;
        model[k as usize] = k;
    }
    println!("loaded {KEYS} keys");

    run_workload("YCSB-C (read-only) ", 1.0, &mut mem, &table, &mut model)?;
    run_workload("YCSB-B (95/5)      ", 0.95, &mut mem, &table, &mut model)?;
    run_workload("YCSB-A (50/50)     ", 0.50, &mut mem, &table, &mut model)?;

    // Crash in the middle of another update burst.
    let zipf = Zipf::new(KEYS as usize, 0.99);
    let mut rng = SplitMix64::new(99);
    for i in 0..2_500u64 {
        let key = zipf.sample(&mut rng) as u64;
        let value = i + 9_000_000;
        table.insert(&mut mem, key, value)?;
        model[key as usize] = value;
    }
    mem.crash();
    let report = mem.recover()?;
    assert!(report.persistent_recovered);
    println!(
        "\ncrashed mid-burst and recovered (est. {})",
        report.estimated_duration
    );

    // Reopen and verify every key: each completed insert was a
    // crash-atomic transaction, so the model must match exactly.
    let heap = PersistentHeap::open(&mut mem)?;
    let root = heap.root(&mut mem)?;
    let table = PersistentHashtable::open(&mut mem, heap, PhysAddr(root))?;
    for k in 0..KEYS {
        assert_eq!(
            table.get(&mut mem, k)?,
            Some(model[k as usize]),
            "post-crash key {k}"
        );
    }
    println!("all {KEYS} keys verified after recovery");
    let s = mem.stats();
    println!(
        "totals: {} loads, {} persists, {} page re-encryptions",
        s.loads, s.persists, s.page_reencryptions
    );
    Ok(())
}
