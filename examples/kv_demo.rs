//! The `triad-kv` transactional store end to end: create a store on an
//! integrity-protected NVM, write through the redo WAL, crash the
//! machine at a persist boundary mid-transaction, and recover —
//! engine recovery (counters + Merkle tree) followed by log replay —
//! printing what the replay actually did.
//!
//! Run with: `cargo run --example kv_demo`

use triad_nvm::core::{PersistScheme, SecureMemoryBuilder, SecureMemoryError};
use triad_nvm::kv::heap::PersistentHeap;
use triad_nvm::kv::{recover_store, KvConfig, KvError, KvStore};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut mem = SecureMemoryBuilder::new()
        .capacity_bytes(1 << 22) // 4 MiB simulated NVM
        .persistent_fraction_eighths(2)
        .scheme(PersistScheme::triad_nvm(2))
        .build()?;

    // A store lives on the persistent heap; publishing its superblock
    // as the heap root is what makes it findable after a crash.
    let heap = PersistentHeap::format(&mut mem)?;
    let mut store = KvStore::create(&mut mem, heap, KvConfig::default())?;
    heap.set_root(&mut mem, store.superblock().0)?;

    store.put(&mut mem, 1, b"alpha")?;
    store.put(
        &mut mem,
        2,
        b"a value long enough to spill into overflow blocks",
    )?;
    store.delete(&mut mem, 1)?;
    println!("before crash: {} live keys", store.scan(&mut mem)?.len());

    // Crash *inside* the next transaction. The put logs two WAL
    // records (the new entry block and the patched bucket block), so
    // it crosses these durability points: heap cursor (0), record 1
    // meta/payload (1–2), record 2 meta/payload (3–4), commit marker
    // (5), then the index apply writes (6–7). Arming the crash at
    // boundary 6 leaves the commit marker durable but the apply torn:
    // the transaction must survive via redo replay.
    mem.inject_crash_after_persists(6);
    match store.put(&mut mem, 3, b"written while crashing") {
        Err(KvError::Memory(SecureMemoryError::NeedsRecovery)) => {
            println!("crashed mid-transaction, as injected")
        }
        other => return Err(format!("expected an injected crash, got {other:?}").into()),
    }

    // Recovery: rebuild/verify the engine's security metadata, reopen
    // the store, replay the log idempotently.
    let (mut store, report) = recover_store(&mut mem)?;
    let replay = report.log_replay.ok_or("recovery must report log replay")?;
    println!(
        "recovered: engine ok = {}, log records scanned = {}, txns redone = {}, \
         writes applied = {}, torn tail = {}",
        report.persistent_recovered,
        replay.records_scanned,
        replay.txns_applied,
        replay.writes_applied,
        replay.torn_tail,
    );

    assert_eq!(store.get(&mut mem, 1)?, None, "deleted key stays deleted");
    assert_eq!(
        store.get(&mut mem, 3)?.as_deref(),
        Some(b"written while crashing".as_ref()),
        "the committed transaction must be redone"
    );
    println!("after recovery: {} live keys", store.scan(&mut mem)?.len());
    Ok(())
}
