//! Recovery-time explorer: sweep capacity and persistence scheme
//! through the paper's analytic model (Figure 10) and cross-check the
//! model against the *functional* recovery engine on small memories —
//! the measured block counts must follow the same arity-8 geometric
//! shape.
//!
//! Run with: `cargo run --release --example recovery_explorer`

use triad_nvm::core::{PersistScheme, RecoveryModel, SecureMemoryBuilder};
use triad_nvm::sim::config::SystemConfig;
use triad_nvm::sim::PhysAddr;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = RecoveryModel::isca19();
    const TB: u64 = 1 << 40;

    println!("analytic model (100 ns per block, Figure 10):");
    println!(
        "{:<10} {:>14} {:>14} {:>14} {:>14}",
        "capacity", "no-persist", "TriadNVM-1", "TriadNVM-2", "TriadNVM-3"
    );
    for tb in [1u64, 2, 4, 8, 16, 64] {
        print!("{:<10}", format!("{tb}TB"));
        for scheme in [
            PersistScheme::WriteBack,
            PersistScheme::triad_nvm(1),
            PersistScheme::triad_nvm(2),
            PersistScheme::triad_nvm(3),
        ] {
            print!(
                " {:>13.2}s",
                model.recovery_time(tb * TB, scheme).as_secs_f64()
            );
        }
        println!();
    }

    println!("\nfunctional cross-check (really crashing and rebuilding):");
    println!(
        "{:<10} {:>14} {:>18} {:>18}",
        "memory", "scheme", "blocks measured", "blocks predicted"
    );
    for mb in [16u64, 64] {
        for n in 1..=3u8 {
            let scheme = PersistScheme::triad_nvm(n);
            let mut cfg = SystemConfig::isca19();
            cfg.mem.capacity_bytes = mb << 20;
            let mut mem = SecureMemoryBuilder::new()
                .config(cfg)
                .scheme(scheme)
                .build()?;
            let p = mem.persistent_region().start();
            for i in 0..32u64 {
                let a = PhysAddr(p.0 + i * 4096);
                mem.write(a, &i.to_le_bytes())?;
                mem.persist(a)?;
            }
            mem.crash();
            let report = mem.recover()?;
            assert!(report.persistent_recovered);
            // Predicted: every block of the rebuild's start level is
            // read from NVM (nodes above are recomputed, not read).
            let geom = &mem.memory_map().persistent().geometry;
            let predicted = geom.nodes_at_level(n - 1);
            println!(
                "{:<10} {:>14} {:>18} {:>18}",
                format!("{mb}MiB"),
                scheme.to_string(),
                report.persistent_blocks_read,
                predicted
            );
            assert_eq!(report.persistent_blocks_read, predicted);
        }
    }
    println!("\nmeasured == predicted for every point: the Figure 10 model is faithful");
    Ok(())
}
