//! Regression: a recorded crash-consistency history (originally found
//! by the randomized property suite) where recovery under TriadNVM-2
//! rolled page 4 back below its persist floor.
//!
//! The sequence matters: eviction pressure leaves stale persisted BMT
//! interior nodes behind on NVM, a crash forces a rebuild from those
//! nodes, and the final `Persist { page: 4 }` must still be durable
//! across the closing crash/recover cycle. The same history is replayed
//! under every persistency scheme the simulator supports — the durable
//! floor contract is scheme-independent.

mod common;

use common::{run_history, Op};
use triad_nvm::core::{CounterPersistence, PersistScheme};

/// The shrunk history as recorded by the original failure.
fn recorded_history() -> Vec<Op> {
    vec![
        Op::Write { page: 4 },
        Op::Crash,
        Op::Write { page: 2 },
        Op::Write { page: 14 },
        Op::Crash,
        Op::Write { page: 0 },
        Op::Crash,
        Op::Write { page: 15 },
        Op::Persist { page: 15 },
        Op::Pressure { seed: 101 },
        Op::Crash,
        Op::Write { page: 1 },
        Op::Pressure { seed: 53 },
        Op::Persist { page: 5 },
        Op::Write { page: 6 },
        Op::Write { page: 9 },
        Op::Persist { page: 4 },
    ]
}

fn replay(scheme: PersistScheme, cp: CounterPersistence) {
    if let Err(msg) = run_history(&recorded_history(), scheme, cp) {
        panic!("recorded history failed under {scheme:?} / {cp:?}:\n{msg}");
    }
}

/// The configuration the failure was recorded under.
#[test]
fn recovers_under_triad_nvm_2() {
    replay(PersistScheme::triad_nvm(2), CounterPersistence::Strict);
}

#[test]
fn recovers_under_triad_nvm_1() {
    replay(PersistScheme::triad_nvm(1), CounterPersistence::Strict);
}

#[test]
fn recovers_under_triad_nvm_3() {
    replay(PersistScheme::triad_nvm(3), CounterPersistence::Strict);
}

#[test]
fn recovers_under_strict() {
    replay(PersistScheme::Strict, CounterPersistence::Strict);
}

#[test]
fn recovers_under_osiris_counters() {
    replay(
        PersistScheme::triad_nvm(2),
        CounterPersistence::Osiris { interval: 3 },
    );
}
