//! Systematic attack matrix (threat model of §3.1): for every scheme
//! and every metadata kind, an attacker who modifies the NVM image
//! between boot episodes must be detected — at recovery time or at
//! first access, but always before tampered data is consumed.

use triad_nvm::core::{PersistScheme, SecureMemory, SecureMemoryBuilder, SecureMemoryError};
use triad_nvm::sim::{BlockAddr, PhysAddr};

fn victim(scheme: PersistScheme) -> (SecureMemory, PhysAddr) {
    let mut m = SecureMemoryBuilder::new().scheme(scheme).build().unwrap();
    let p = m.persistent_region().start();
    for i in 0..16u64 {
        let a = PhysAddr(p.0 + i * 4096);
        m.write(a, format!("secret-{i}").as_bytes()).unwrap();
        m.persist(a).unwrap();
    }
    m.crash();
    (m, p)
}

fn tamper(m: &mut SecureMemory, block: BlockAddr, byte: usize) {
    let mut mask = [0u8; 64];
    mask[byte] = 0x5A;
    m.nvm_image_mut().tamper(block, mask);
}

/// Recovers and reads; returns whether the attack was detected
/// anywhere along the way.
fn detected(m: &mut SecureMemory, addr: PhysAddr) -> bool {
    let report = m.recover().unwrap();
    if !report.persistent_recovered {
        return true;
    }
    match m.read(addr) {
        Err(
            SecureMemoryError::MacMismatch { .. }
            | SecureMemoryError::IntegrityViolation { .. }
            | SecureMemoryError::Unverifiable { .. },
        ) => true,
        Err(e) => panic!("unexpected error class: {e}"),
        Ok(data) => {
            // Undetected is acceptable only if the data is untouched.
            &data[..7] == b"secret-"
        }
    }
}

fn schemes() -> [PersistScheme; 4] {
    [
        PersistScheme::triad_nvm(1),
        PersistScheme::triad_nvm(2),
        PersistScheme::triad_nvm(3),
        PersistScheme::Strict,
    ]
}

#[test]
fn data_tampering_detected_under_every_scheme() {
    for scheme in schemes() {
        let (mut m, p) = victim(scheme);
        tamper(&mut m, p.block(), 3);
        let report = m.recover().unwrap();
        assert!(report.persistent_recovered, "{scheme}");
        assert!(
            matches!(m.read(p), Err(SecureMemoryError::MacMismatch { .. })),
            "{scheme}: data tampering must trip the MAC"
        );
    }
}

#[test]
fn mac_tampering_detected_under_every_scheme() {
    for scheme in schemes() {
        let (mut m, p) = victim(scheme);
        let mac = m.memory_map().persistent().mac_block_of(p.block());
        let slot = m.memory_map().persistent().mac_slot_of(p.block());
        tamper(&mut m, mac, slot * 8);
        m.recover().unwrap();
        assert!(
            matches!(m.read(p), Err(SecureMemoryError::MacMismatch { .. })),
            "{scheme}: MAC tampering must be caught"
        );
    }
}

#[test]
fn counter_tampering_detected_under_every_scheme() {
    for scheme in schemes() {
        let (mut m, p) = victim(scheme);
        let ctr = m.memory_map().persistent().counter_block_of(p.block());
        tamper(&mut m, ctr, 9);
        assert!(detected(&mut m, p), "{scheme}: counter tampering");
    }
}

#[test]
fn bmt_node_tampering_detected_under_every_scheme() {
    for scheme in schemes() {
        let (mut m, p) = victim(scheme);
        let node = m.memory_map().persistent().bmt_node_addr(1, 0).unwrap();
        tamper(&mut m, node, 1);
        // Either recovery rebuilds the node honestly (tamper repaired,
        // data intact) or flags it; tampered data must never appear.
        assert!(detected(&mut m, p), "{scheme}: node tampering");
        let _ = p;
    }
}

#[test]
fn full_block_replay_detected_under_every_scheme() {
    for scheme in schemes() {
        let mut m = SecureMemoryBuilder::new().scheme(scheme).build().unwrap();
        let p = m.persistent_region().start();
        let layout = m.memory_map().persistent().clone();
        m.write(p, b"version-A").unwrap();
        m.persist(p).unwrap();
        let old = (
            m.nvm_image().read(p.block()),
            m.nvm_image().read(layout.mac_block_of(p.block())),
            m.nvm_image().read(layout.counter_block_of(p.block())),
        );
        m.write(p, b"version-B").unwrap();
        m.persist(p).unwrap();
        m.crash();
        m.nvm_image_mut().rollback_to(p.block(), old.0);
        m.nvm_image_mut()
            .rollback_to(layout.mac_block_of(p.block()), old.1);
        m.nvm_image_mut()
            .rollback_to(layout.counter_block_of(p.block()), old.2);
        let report = m.recover().unwrap();
        let caught = !report.persistent_recovered
            || matches!(m.read(p), Err(SecureMemoryError::IntegrityViolation { .. }));
        assert!(caught, "{scheme}: replay attack slipped through");
    }
}

#[test]
fn swapping_two_ciphertext_blocks_is_detected() {
    let (mut m, p) = victim(PersistScheme::triad_nvm(2));
    let a = p.block();
    let b = PhysAddr(p.0 + 4096).block();
    let (va, vb) = (m.nvm_image().read(a), m.nvm_image().read(b));
    m.nvm_image_mut().rollback_to(a, vb);
    m.nvm_image_mut().rollback_to(b, va);
    m.recover().unwrap();
    assert!(matches!(
        m.read(p),
        Err(SecureMemoryError::MacMismatch { .. })
    ));
}

#[test]
fn tampering_non_persistent_region_cannot_poison_next_boot() {
    // The np region is discarded at reboot: arbitrary tampering there
    // must be invisible (fresh zeros), never an error, never data.
    let mut m = SecureMemoryBuilder::new()
        .scheme(PersistScheme::triad_nvm(1))
        .build()
        .unwrap();
    let np = m.non_persistent_region().start();
    m.write(np, b"scratch").unwrap();
    m.crash();
    for i in 0..32u64 {
        tamper(&mut m, BlockAddr(np.block().0 + i), (i % 64) as usize);
    }
    m.recover().unwrap();
    for i in 0..32u64 {
        let addr = PhysAddr(np.0 + i * 64);
        assert_eq!(m.read(addr).unwrap(), [0u8; 64], "block {i}");
    }
    // And writes after the attack work normally.
    m.write(np, b"clean").unwrap();
    assert_eq!(&m.read(np).unwrap()[..5], b"clean");
}
