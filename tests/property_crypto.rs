//! Property-based tests of the cryptographic and metadata substrates.

use triad_nvm::crypto::aes::Aes128;
use triad_nvm::crypto::counter::{SplitCounterBlock, MINOR_MAX};
use triad_nvm::crypto::ctr::{decrypt_block, encrypt_block, Iv};
use triad_nvm::crypto::mac::MacEngine;
use triad_nvm::meta::bmt::{self, BmtGeometry, NodeBuf};
use triad_nvm::meta::layout::{RegionKind, RegionLayout};
use triad_nvm::sim::prop::{check, Config};
use triad_nvm::sim::BlockAddr;

macro_rules! ensure {
    ($cond:expr, $($arg:tt)+) => {
        if !$cond {
            return Err(format!($($arg)+));
        }
    };
}

#[test]
fn aes_round_trips_any_block_any_key() {
    check(
        "aes_round_trips_any_block_any_key",
        Config::default(),
        |rng| {
            let mut key = [0u8; 16];
            let mut block = [0u8; 16];
            rng.fill_bytes(&mut key);
            rng.fill_bytes(&mut block);
            let cipher = Aes128::new(&key);
            ensure!(
                cipher.decrypt_block(cipher.encrypt_block(block)) == block,
                "round trip failed for key {key:?}, block {block:?}"
            );
            Ok(())
        },
    );
}

#[test]
fn ctr_mode_is_an_involution() {
    check("ctr_mode_is_an_involution", Config::default(), |rng| {
        let mut key = [0u8; 16];
        let mut data = [0u8; 64];
        rng.fill_bytes(&mut key);
        rng.fill_bytes(&mut data);
        let page = rng.gen_range(0..1 << 40);
        let offset = rng.gen_range(0..64) as u8;
        let major = rng.next_u64();
        let minor = rng.gen_range(0..128) as u8;
        let session = rng.next_u32();
        let cipher = Aes128::new(&key);
        let iv = Iv::new(page, offset, major, minor, session);
        let ct = encrypt_block(&cipher, &iv, &data);
        ensure!(
            decrypt_block(&cipher, &iv, &ct) == data,
            "CTR not an involution for iv {iv:?}"
        );
        Ok(())
    });
}

#[test]
fn split_counter_pack_unpack_round_trips() {
    check(
        "split_counter_pack_unpack_round_trips",
        Config::default(),
        |rng| {
            let n = rng.gen_range(0..300);
            let mut cb = SplitCounterBlock::new();
            for _ in 0..n {
                cb.increment(rng.gen_range(0..64) as usize);
            }
            let bytes = cb.to_bytes();
            ensure!(
                SplitCounterBlock::from_bytes(&bytes) == cb,
                "pack/unpack diverged after {n} increments"
            );
            Ok(())
        },
    );
}

#[test]
fn split_counter_never_reuses_pairs() {
    check(
        "split_counter_never_reuses_pairs",
        Config::default(),
        |rng| {
            let slot = rng.gen_range(0..64) as usize;
            let rounds = rng.gen_range(1..300);
            let mut cb = SplitCounterBlock::new();
            let mut seen = std::collections::HashSet::new();
            seen.insert((cb.major(), cb.minor(slot)));
            for _ in 0..rounds {
                cb.increment(slot);
                ensure!(
                    seen.insert((cb.major(), cb.minor(slot))),
                    "pair reused after increment on slot {slot}"
                );
            }
            Ok(())
        },
    );
}

#[test]
fn minor_counters_stay_in_range() {
    check("minor_counters_stay_in_range", Config::default(), |rng| {
        let n = rng.gen_range(0..500);
        let mut cb = SplitCounterBlock::new();
        for _ in 0..n {
            cb.increment(rng.gen_range(0..64) as usize);
        }
        for s in 0..64 {
            ensure!(cb.minor(s) <= MINOR_MAX, "slot {s} overflowed MINOR_MAX");
        }
        Ok(())
    });
}

#[test]
fn macs_differ_when_any_input_differs() {
    check(
        "macs_differ_when_any_input_differs",
        Config::default(),
        |rng| {
            let mut key = [0u8; 16];
            let mut a = [0u8; 64];
            let mut b = [0u8; 64];
            rng.fill_bytes(&mut key);
            rng.fill_bytes(&mut a);
            rng.fill_bytes(&mut b);
            if a == b {
                // 2^-512 odds; treat as a discarded case.
                return Ok(());
            }
            let engine = MacEngine::new(key);
            let iv = Iv::default();
            ensure!(
                engine.data_mac(0, &a, &iv) != engine.data_mac(0, &b, &iv),
                "distinct inputs collided under key {key:?}"
            );
            Ok(())
        },
    );
}

#[test]
fn geometry_levels_shrink_by_arity() {
    check(
        "geometry_levels_shrink_by_arity",
        Config::default(),
        |rng| {
            let leaves = rng.gen_range(1..1_000_000);
            let arity = 2u64.pow(rng.gen_range(1..4) as u32);
            let g = BmtGeometry::new(leaves, arity);
            ensure!(g.nodes_at_level(0) == leaves, "level 0 width");
            ensure!(g.nodes_at_level(g.root_level()) == 1, "root width");
            for level in 0..g.root_level() {
                let here = g.nodes_at_level(level);
                let above = g.nodes_at_level(level + 1);
                ensure!(
                    above == here.div_ceil(arity).max(1),
                    "level {level}: {above} vs {here}/{arity}"
                );
            }
            Ok(())
        },
    );
}

#[test]
fn every_leaf_has_a_parent_slot() {
    check("every_leaf_has_a_parent_slot", Config::default(), |rng| {
        let leaves = rng.gen_range(1..100_000);
        let index = rng.gen_range(0..leaves);
        let g = BmtGeometry::new(leaves, 8);
        let (pl, pi) = g.parent(0, index);
        ensure!(pl == 1, "parent of a leaf must be on level 1");
        ensure!(pi < g.nodes_at_level(1), "parent index out of range");
        ensure!(g.child_slot(index) < 8, "child slot out of range");
        Ok(())
    });
}

#[test]
fn layout_roles_partition_every_block() {
    check(
        "layout_roles_partition_every_block",
        Config::default(),
        |rng| {
            let region_blocks = rng.gen_range(1000..100_000);
            let layout = RegionLayout::new(RegionKind::Persistent, BlockAddr(0), region_blocks, 8);
            // Data + metadata + slack must tile the region without overlap:
            // walk a sample of blocks and check role ordering.
            let mut last_data = None;
            for b in (0..region_blocks).step_by(97) {
                let role = layout.role_of(BlockAddr(b));
                if b < layout.data_blocks {
                    ensure!(
                        role == triad_nvm::meta::layout::BlockRole::Data,
                        "block {b} below data_blocks is not Data"
                    );
                    last_data = Some(b);
                }
            }
            if let Some(d) = last_data {
                ensure!(d < layout.counter_start.0, "data range overlaps counters");
            }
            Ok(())
        },
    );
}

#[test]
fn rebuild_root_is_level_independent() {
    check(
        "rebuild_root_is_level_independent",
        Config::default(),
        |rng| {
            // Any counter contents: the root computed from level 0 must
            // equal the root computed from level 1 after level 1 was
            // itself rebuilt from level 0.
            let map = triad_nvm::meta::layout::MemoryMap::new(
                &triad_nvm::sim::config::SystemConfig::tiny(),
            );
            let layout = map.persistent();
            let engine = MacEngine::new([9; 16]);
            let mut store = triad_nvm::mem::SparseStore::new();
            let touches = rng.gen_range(0..20);
            for _ in 0..touches {
                let leaf = rng.gen_range(0..224);
                let mut block = [0u8; 64];
                block[9] = rng.next_u32() as u8;
                store.write(layout.counter_start + leaf % layout.counter_blocks, block);
            }
            let full = bmt::rebuild_from_level(&mut store, layout, &engine, 0);
            let partial = bmt::rebuild_from_level(&mut store, layout, &engine, 1);
            ensure!(full.root == partial.root, "roots diverged across levels");
            Ok(())
        },
    );
}

#[test]
fn node_buf_slots_are_independent() {
    check("node_buf_slots_are_independent", Config::default(), |rng| {
        let n = rng.gen_range(0..32);
        let mut node = NodeBuf::zeroed();
        let mut model = [0u64; 8];
        for _ in 0..n {
            let slot = rng.gen_range(0..8) as usize;
            let value = rng.next_u64();
            node.set_slot(slot, triad_nvm::crypto::Mac64(value));
            model[slot] = value;
        }
        for (i, v) in model.iter().enumerate() {
            ensure!(node.slot(i).0 == *v, "slot {i} lost its value");
        }
        Ok(())
    });
}
