//! Property-based tests of the cryptographic and metadata substrates.

use proptest::prelude::*;
use triad_nvm::crypto::aes::Aes128;
use triad_nvm::crypto::counter::{SplitCounterBlock, MINOR_MAX};
use triad_nvm::crypto::ctr::{decrypt_block, encrypt_block, Iv};
use triad_nvm::crypto::mac::MacEngine;
use triad_nvm::meta::bmt::{self, BmtGeometry, NodeBuf};
use triad_nvm::meta::layout::{RegionKind, RegionLayout};
use triad_nvm::sim::BlockAddr;

proptest! {
    #[test]
    fn aes_round_trips_any_block_any_key(key: [u8; 16], block: [u8; 16]) {
        let cipher = Aes128::new(&key);
        prop_assert_eq!(cipher.decrypt_block(cipher.encrypt_block(block)), block);
    }

    #[test]
    fn ctr_mode_is_an_involution(key: [u8; 16], data: [u8; 64],
                                 page in 0u64..1 << 40, offset in 0u8..64,
                                 major: u64, minor in 0u8..128, session: u32) {
        let cipher = Aes128::new(&key);
        let iv = Iv::new(page, offset, major, minor, session);
        let ct = encrypt_block(&cipher, &iv, &data);
        prop_assert_eq!(decrypt_block(&cipher, &iv, &ct), data);
    }

    #[test]
    fn split_counter_pack_unpack_round_trips(increments in prop::collection::vec(0usize..64, 0..300)) {
        let mut cb = SplitCounterBlock::new();
        for i in increments {
            cb.increment(i);
        }
        let bytes = cb.to_bytes();
        prop_assert_eq!(SplitCounterBlock::from_bytes(&bytes), cb);
    }

    #[test]
    fn split_counter_never_reuses_pairs(slot in 0usize..64, rounds in 1usize..300) {
        let mut cb = SplitCounterBlock::new();
        let mut seen = std::collections::HashSet::new();
        seen.insert((cb.major(), cb.minor(slot)));
        for _ in 0..rounds {
            cb.increment(slot);
            prop_assert!(
                seen.insert((cb.major(), cb.minor(slot))),
                "pair reused after increment"
            );
        }
    }

    #[test]
    fn minor_counters_stay_in_range(increments in prop::collection::vec(0usize..64, 0..500)) {
        let mut cb = SplitCounterBlock::new();
        for i in increments {
            cb.increment(i);
        }
        for s in 0..64 {
            prop_assert!(cb.minor(s) <= MINOR_MAX);
        }
    }

    #[test]
    fn macs_differ_when_any_input_differs(key: [u8; 16], a: [u8; 64], b: [u8; 64]) {
        prop_assume!(a != b);
        let engine = MacEngine::new(key);
        let iv = Iv::default();
        prop_assert_ne!(engine.data_mac(0, &a, &iv), engine.data_mac(0, &b, &iv));
    }

    #[test]
    fn geometry_levels_shrink_by_arity(leaves in 1u64..1_000_000, arity_pow in 1u32..4) {
        let arity = 2u64.pow(arity_pow);
        let g = BmtGeometry::new(leaves, arity);
        prop_assert_eq!(g.nodes_at_level(0), leaves);
        prop_assert_eq!(g.nodes_at_level(g.root_level()), 1);
        for level in 0..g.root_level() {
            let here = g.nodes_at_level(level);
            let above = g.nodes_at_level(level + 1);
            prop_assert_eq!(above, here.div_ceil(arity).max(1), "level {}", level);
        }
    }

    #[test]
    fn every_leaf_has_a_parent_slot(leaves in 1u64..100_000, index in 0u64..100_000) {
        let g = BmtGeometry::new(leaves, 8);
        prop_assume!(index < leaves);
        let (pl, pi) = g.parent(0, index);
        prop_assert_eq!(pl, 1);
        prop_assert!(pi < g.nodes_at_level(1));
        prop_assert!(g.child_slot(index) < 8);
    }

    #[test]
    fn layout_roles_partition_every_block(region_blocks in 1000u64..100_000) {
        let layout = RegionLayout::new(RegionKind::Persistent, BlockAddr(0), region_blocks, 8);
        // Data + metadata + slack must tile the region without overlap:
        // walk a sample of blocks and check role ordering.
        let mut last_data = None;
        for b in (0..region_blocks).step_by(97) {
            let role = layout.role_of(BlockAddr(b));
            if b < layout.data_blocks {
                prop_assert_eq!(role, triad_nvm::meta::layout::BlockRole::Data);
                last_data = Some(b);
            }
        }
        if let Some(d) = last_data {
            prop_assert!(d < layout.counter_start.0);
        }
    }

    #[test]
    fn rebuild_root_is_level_independent(touch in prop::collection::vec((0u64..224, any::<u8>()), 0..20)) {
        // Any counter contents: the root computed from level 0 must
        // equal the root computed from level 1 after level 1 was
        // itself rebuilt from level 0.
        let map = triad_nvm::meta::layout::MemoryMap::new(
            &triad_nvm::sim::config::SystemConfig::tiny(),
        );
        let layout = map.persistent();
        let engine = MacEngine::new([9; 16]);
        let mut store = triad_nvm::mem::SparseStore::new();
        for (leaf, byte) in touch {
            let mut block = [0u8; 64];
            block[9] = byte;
            store.write(layout.counter_start + leaf % layout.counter_blocks, block);
        }
        let full = bmt::rebuild_from_level(&mut store, layout, &engine, 0);
        let partial = bmt::rebuild_from_level(&mut store, layout, &engine, 1);
        prop_assert_eq!(full.root, partial.root);
    }

    #[test]
    fn node_buf_slots_are_independent(slots in prop::collection::vec((0usize..8, any::<u64>()), 0..32)) {
        let mut node = NodeBuf::zeroed();
        let mut model = [0u64; 8];
        for (slot, value) in slots {
            node.set_slot(slot, triad_nvm::crypto::Mac64(value));
            model[slot] = value;
        }
        for (i, v) in model.iter().enumerate() {
            prop_assert_eq!(node.slot(i).0, *v);
        }
    }
}
