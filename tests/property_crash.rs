//! Property-based crash-consistency testing: arbitrary interleavings
//! of writes, persists, eviction pressure, crashes (including crashes
//! injected *inside* the atomic metadata-persist protocol) must always
//! recover to a verified state where every block reads a value that is
//!
//! 1. some value that was actually written to it (or zero), and
//! 2. at least as new as the last explicitly persisted value.

mod common;

use std::collections::{BTreeMap, BTreeSet};

use common::{run_history, Op};
use triad_nvm::core::{CounterPersistence, PersistScheme, SecureMemoryError};
use triad_nvm::kv::{DurabilityMode, KvError};
use triad_nvm::sim::prop::{check, check_ops, Config};
use triad_nvm::sim::rng::SplitMix64;
use triad_nvm::workloads::kv::{crash_equivalence_check, KvSpec};
use triad_nvm::workloads::service::{
    generate_requests, service_crash_equivalence_check, KvService, Request, Response, ServiceSpec,
};

/// Mirrors the old proptest weights — 4 Write : 3 Persist : 1 each for
/// Pressure / Crash / ArmCrash / BeginEpoch / EndEpoch.
fn gen_op(rng: &mut SplitMix64) -> Op {
    match rng.gen_range(0..12) {
        0..=3 => Op::Write {
            page: rng.gen_range(0..16) as u8,
        },
        4..=6 => Op::Persist {
            page: rng.gen_range(0..16) as u8,
        },
        7 => Op::Pressure {
            seed: rng.next_u32() as u8,
        },
        8 => Op::Crash,
        9 => Op::ArmCrash {
            n: rng.gen_range(0..24) as u8,
        },
        10 => Op::BeginEpoch,
        _ => Op::EndEpoch,
    }
}

#[test]
fn crash_consistency_holds_for_arbitrary_histories() {
    check_ops(
        "crash_consistency_holds_for_arbitrary_histories",
        Config::cases(24),
        |rng| {
            let len = rng.gen_range(1..120) as usize;
            (0..len).map(|_| gen_op(rng)).collect::<Vec<Op>>()
        },
        |ops, params| {
            let scheme_pick = params.gen_range(0..5) as u8;
            let scheme = match scheme_pick {
                0 => PersistScheme::triad_nvm(1),
                1 | 4 => PersistScheme::triad_nvm(2),
                2 => PersistScheme::triad_nvm(3),
                _ => PersistScheme::Strict,
            };
            // Variant 4 exercises the Osiris counter relaxation on top
            // of TriadNVM-2; it shares the same consistency contract.
            let counter_persistence = if scheme_pick == 4 {
                CounterPersistence::Osiris { interval: 3 }
            } else {
                CounterPersistence::Strict
            };
            run_history(ops, scheme, counter_persistence)
        },
    );
}

/// The triad-kv acceptance property: a seeded multi-shard KV history
/// replayed through crash injection at *every* persist boundary must
/// recover (engine recovery + redo-log replay) to exactly the in-DRAM
/// oracle's state — pre- or post- the interrupted transaction, nothing
/// else — under every recoverable scheme.
///
/// Each case draws one history shape (op count, Zipf or uniform keys)
/// and one seed, then runs the full boundary sweep under all four
/// schemes, so `TRIAD_PROP_CASES=1000` exercises ≥ 1000 histories *per
/// scheme*. The default case count keeps the debug-mode CI run cheap;
/// the release acceptance sweep is recorded in `docs/kv.md`.
/// The serving-layer extension of the sweep: the same property at
/// *group-commit* granularity. A seeded request schedule runs through
/// the sharded [`KvService`] front-end with a crash injected at every
/// persist boundary of one shard; recovery must land on exactly the
/// pre- or post-group durable snapshot (a serial prefix of flushed
/// groups), and re-driving the schedule must converge on the clean
/// run's final state.
#[test]
fn service_crash_equivalence_holds_at_group_boundaries() {
    let schemes = [PersistScheme::triad_nvm(2), PersistScheme::Strict];
    check(
        "service_crash_equivalence_holds_at_group_boundaries",
        Config::cases(2),
        |rng| {
            let batches = rng.gen_range(2..4) as usize;
            let batch_len = rng.gen_range(4..8) as usize;
            let seed = rng.next_u64();
            for scheme in schemes {
                let spec = ServiceSpec {
                    shards: 2,
                    scheme,
                    buckets: 16,
                    ..ServiceSpec::new(2)
                };
                service_crash_equivalence_check(&spec, batches, batch_len, seed)?;
            }
            Ok(())
        },
    );
}

/// The serving-layer determinism contract: threaded and
/// single-threaded execution of the same seeded schedule must be
/// byte-identical — responses, merged store and group-commit stats,
/// merged durable state, simulated makespan and total durability
/// points. This is what makes the threaded fleet a legitimate
/// subject for crash sweeps and report rows.
#[test]
fn service_threaded_and_serial_runs_are_identical() {
    check(
        "service_threaded_and_serial_runs_are_identical",
        Config::cases(3),
        |rng| {
            let spec = ServiceSpec {
                shards: 1 + rng.below(4),
                group_window: 1 + rng.below(8) as usize,
                buckets: 16,
                key_seed: rng.next_u64(),
                ..ServiceSpec::new(1)
            };
            let reqs = generate_requests(rng.next_u64(), 60, 48, (1, 64));
            let mut threaded = KvService::create(&spec).map_err(|e| format!("create: {e}"))?;
            threaded.set_threaded(true);
            let rt = threaded
                .submit(&reqs)
                .map_err(|e| format!("threaded submit: {e}"))?;
            let mut serial = KvService::create(&spec).map_err(|e| format!("create: {e}"))?;
            serial.set_threaded(false);
            let rs = serial
                .submit(&reqs)
                .map_err(|e| format!("serial submit: {e}"))?;
            if rt != rs {
                return Err("responses differ between threaded and serial".into());
            }
            if threaded.merged_kv_stats() != serial.merged_kv_stats() {
                return Err("merged store stats differ".into());
            }
            if threaded.merged_group_stats() != serial.merged_group_stats() {
                return Err("merged group stats differ".into());
            }
            if threaded.total_persists() != serial.total_persists() {
                return Err("total persists differ".into());
            }
            if threaded.max_shard_time() != serial.max_shard_time() {
                return Err("simulated makespan differs".into());
            }
            let dt = threaded.dump().map_err(|e| format!("dump: {e}"))?;
            let ds = serial.dump().map_err(|e| format!("dump: {e}"))?;
            if dt != ds {
                return Err("merged durable state differs".into());
            }
            Ok(())
        },
    );
}

/// How many of a batch's requests are mutations (and so count toward
/// the acknowledged-mutation ledger once the batch's submit returns
/// `Ok`).
fn mutations_in(batch: &[Request]) -> u64 {
    batch
        .iter()
        .filter(|r| matches!(r, Request::Put { .. } | Request::Delete { .. }))
        .count() as u64
}

/// Invariant D3 (bounded loss) + D7 (honest reporting) for the
/// Buffered tier: a seeded single-shard schedule of puts, live-key
/// deletes and gets, served under `Buffered { flush_interval,
/// max_loss }`, replayed once per persist boundary with a crash armed
/// there. After every crash:
///
/// * the reported `mutations_lost` must not exceed `max_loss`,
/// * the recovered durable state must be an admit-order prefix of the
///   mutation sequence whose implied loss **equals** the reported
///   number (so the report is measured, not asserted).
///
/// Put values encode their admit index so prefixes are distinguishable;
/// deletes target live keys so every mutation changes the state. A
/// prefix that state-collides with another (delete returning to an
/// earlier map) is accepted through the any-consistent-prefix rule.
/// Returns the number of boundaries swept.
fn durability_buffered_check(
    max_loss: u64,
    flush_interval: u64,
    muts: usize,
    seed: u64,
) -> Result<u64, String> {
    const TENANT: u64 = 7;
    let spec = ServiceSpec {
        shards: 1,
        buckets: 16,
        log_blocks: 256,
        ..ServiceSpec::new(1)
    };
    let mode = DurabilityMode::Buffered {
        flush_interval,
        max_loss,
    };

    // Seeded schedule: ~1 get per 5 requests, deletes only of keys
    // still live, puts with globally unique values.
    let mut rng = SplitMix64::stream(seed, 0x6275_665f_7377_6570);
    let mut reqs: Vec<Request> = Vec::new();
    let mut live: Vec<u64> = Vec::new();
    let mut admitted = 0usize;
    while admitted < muts {
        if rng.below(5) == 0 {
            reqs.push(Request::Get { key: rng.below(12) });
            continue;
        }
        if !live.is_empty() && rng.below(4) == 0 {
            let key = live.swap_remove(rng.below(live.len() as u64) as usize);
            reqs.push(Request::Delete { key });
        } else {
            let key = rng.below(12);
            if !live.contains(&key) {
                live.push(key);
            }
            let i = admitted as u64;
            reqs.push(Request::Put {
                key,
                value: vec![(i >> 8) as u8, i as u8, key as u8, 0xB7],
            });
        }
        admitted += 1;
    }
    let batches: Vec<&[Request]> = reqs.chunks(3).collect();

    // Admit-order prefix snapshots: snaps[p] is the state after the
    // first p mutations.
    let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    let mut snaps: Vec<BTreeMap<u64, Vec<u8>>> = vec![model.clone()];
    for req in &reqs {
        match req {
            Request::Put { key, value } => {
                model.insert(*key, value.clone());
                snaps.push(model.clone());
            }
            Request::Delete { key } => {
                model.remove(key);
                snaps.push(model.clone());
            }
            _ => {}
        }
    }

    // Clean run: verify read-your-writes through the DRAM backlog and
    // count the victim's persist boundaries.
    let mut svc = KvService::create(&spec).map_err(|e| format!("create: {e}"))?;
    svc.set_threaded(false);
    svc.set_tenant_mode(TENANT, mode);
    let persist_base = svc.shard_mem(0).map(|m| m.stats().persists).unwrap_or(0);
    let mut read_model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    for (b, batch) in batches.iter().enumerate() {
        let resps = svc
            .submit_as(TENANT, batch)
            .map_err(|e| format!("clean run, batch {b}: {e}"))?;
        for (req, resp) in batch.iter().zip(&resps) {
            match (req, resp) {
                (Request::Put { key, value }, Response::Done) => {
                    read_model.insert(*key, value.clone());
                }
                (Request::Delete { key }, Response::Done) => {
                    read_model.remove(key);
                }
                (Request::Get { key }, Response::Value(v)) => {
                    if v.as_ref() != read_model.get(key) {
                        return Err(format!(
                            "clean run, batch {b}: get({key}) does not read its own \
                             tier's writes"
                        ));
                    }
                }
                (rq, rs) => {
                    return Err(format!(
                        "clean run, batch {b}: unexpected response {rs:?} for {rq:?}"
                    ))
                }
            }
        }
    }
    let boundaries = svc.shard_mem(0).map(|m| m.stats().persists).unwrap_or(0) - persist_base;
    if boundaries == 0 {
        return Err("clean run never flushed; the sweep tested nothing".into());
    }

    for k in 0..boundaries {
        let mut svc = KvService::create(&spec).map_err(|e| format!("boundary {k}: create: {e}"))?;
        svc.set_threaded(false);
        svc.set_tenant_mode(TENANT, mode);
        if let Some(m) = svc.shard_mem_mut(0) {
            m.inject_crash_after_persists(k);
        }
        let mut acked = 0u64;
        let mut crashed = false;
        for (b, batch) in batches.iter().enumerate() {
            match svc.submit_as(TENANT, batch) {
                Ok(_) => acked += mutations_in(batch),
                Err(KvError::Memory(SecureMemoryError::NeedsRecovery)) => {
                    crashed = true;
                    let report = svc
                        .recover_shard(0)
                        .map_err(|e| format!("boundary {k}, batch {b}: recovery failed: {e}"))?;
                    if !report.persistent_recovered {
                        return Err(format!(
                            "boundary {k}, batch {b}: persistent region did not recover"
                        ));
                    }
                    let d = report
                        .durability
                        .ok_or(format!("boundary {k}, batch {b}: no durability report"))?;
                    // The report names the weakest tier that *acknowledged*
                    // mutations. A crash before any batch completed leaves
                    // no acknowledged tier, so the report truthfully falls
                    // back to the strict baseline with zero loss.
                    let (want_mode, want_bound) = if acked > 0 {
                        ("buffered", Some(max_loss))
                    } else {
                        ("strict", Some(0))
                    };
                    if d.mode != want_mode || d.loss_bound != want_bound {
                        return Err(format!(
                            "boundary {k}, batch {b}: report names tier {:?} bound {:?}, \
                             expected {want_mode:?} bound {want_bound:?}",
                            d.mode, d.loss_bound
                        ));
                    }
                    if d.mutations_lost > max_loss || !d.within_bound() {
                        return Err(format!(
                            "boundary {k}, batch {b}: lost {} acknowledged mutations, \
                             contract allows {max_loss}",
                            d.mutations_lost
                        ));
                    }
                    let state = svc
                        .dump()
                        .map_err(|e| format!("boundary {k}, batch {b}: dump: {e}"))?;
                    let consistent = snaps.iter().enumerate().any(|(p, s)| {
                        *s == state && acked.saturating_sub(p as u64) == d.mutations_lost
                    });
                    if !consistent {
                        return Err(format!(
                            "boundary {k}, batch {b}: recovered state is not an \
                             admit-order prefix consistent with the reported loss of {}",
                            d.mutations_lost
                        ));
                    }
                    break;
                }
                Err(e) => return Err(format!("boundary {k}, batch {b}: {e}")),
            }
        }
        if !crashed {
            return Err(format!("boundary {k}: armed crash never fired"));
        }
    }
    Ok(boundaries)
}

/// Invariant D5 (barrier floor) + D7 for the InMemory tier: a
/// puts-only schedule runs as barrier-terminated cycles; the only
/// persists are barrier promotions, so every armed crash lands inside
/// one. Recovery must land on the pre- or post-barrier snapshot of the
/// interrupted cycle, with the reported loss equal to the distinct
/// keys the interrupted promotion carried (pre) or zero (post).
/// Returns the number of boundaries swept.
fn durability_inmemory_check(cycles: usize, batch_len: usize, seed: u64) -> Result<u64, String> {
    const TENANT: u64 = 9;
    let spec = ServiceSpec {
        shards: 1,
        buckets: 16,
        log_blocks: 256,
        ..ServiceSpec::new(1)
    };
    let mut rng = SplitMix64::stream(seed, 0x696e_6d65_6d5f_6261);
    let schedule: Vec<Vec<Request>> = (0..cycles)
        .map(|c| {
            (0..batch_len)
                .map(|j| {
                    let i = (c * batch_len + j) as u64;
                    Request::Put {
                        key: rng.below(10),
                        value: vec![(i >> 8) as u8, i as u8, 0xAA],
                    }
                })
                .collect()
        })
        .collect();

    // Barrier-floor snapshots and the distinct keys each promotion
    // carries (duplicates within a cycle coalesce in the overlay).
    let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    let mut floors: Vec<BTreeMap<u64, Vec<u8>>> = vec![model.clone()];
    let mut promoted: Vec<u64> = Vec::new();
    for batch in &schedule {
        let mut touched = BTreeSet::new();
        for req in batch {
            if let Request::Put { key, value } = req {
                model.insert(*key, value.clone());
                touched.insert(*key);
            }
        }
        floors.push(model.clone());
        promoted.push(touched.len() as u64);
    }

    let mut svc = KvService::create(&spec).map_err(|e| format!("create: {e}"))?;
    svc.set_threaded(false);
    svc.set_tenant_mode(TENANT, DurabilityMode::InMemory);
    let persist_base = svc.shard_mem(0).map(|m| m.stats().persists).unwrap_or(0);
    for (c, batch) in schedule.iter().enumerate() {
        svc.submit_as(TENANT, batch)
            .map_err(|e| format!("clean run, cycle {c}: {e}"))?;
        svc.barrier()
            .map_err(|e| format!("clean run, barrier {c}: {e}"))?;
    }
    let final_state = svc.dump().map_err(|e| format!("clean run: dump: {e}"))?;
    if final_state != model {
        return Err("clean run: barriers did not converge on the model".into());
    }
    let boundaries = svc.shard_mem(0).map(|m| m.stats().persists).unwrap_or(0) - persist_base;
    if boundaries == 0 {
        return Err("clean run never persisted; the sweep tested nothing".into());
    }

    for k in 0..boundaries {
        let mut svc = KvService::create(&spec).map_err(|e| format!("boundary {k}: create: {e}"))?;
        svc.set_threaded(false);
        svc.set_tenant_mode(TENANT, DurabilityMode::InMemory);
        if let Some(m) = svc.shard_mem_mut(0) {
            m.inject_crash_after_persists(k);
        }
        let mut crashed = false;
        for (c, batch) in schedule.iter().enumerate() {
            // Volatile staging never persists; the armed crash can only
            // fire inside the cycle's barrier promotion.
            svc.submit_as(TENANT, batch)
                .map_err(|e| format!("boundary {k}, cycle {c}: submit: {e}"))?;
            match svc.barrier() {
                Ok(()) => {}
                Err(KvError::Memory(SecureMemoryError::NeedsRecovery)) => {
                    crashed = true;
                    let report = svc
                        .recover_shard(0)
                        .map_err(|e| format!("boundary {k}, cycle {c}: recovery failed: {e}"))?;
                    let d = report
                        .durability
                        .ok_or(format!("boundary {k}, cycle {c}: no durability report"))?;
                    if d.mode != "in-memory" || d.loss_bound.is_some() || !d.within_bound() {
                        return Err(format!(
                            "boundary {k}, cycle {c}: report names tier {:?} bound {:?}",
                            d.mode, d.loss_bound
                        ));
                    }
                    let state = svc
                        .dump()
                        .map_err(|e| format!("boundary {k}, cycle {c}: dump: {e}"))?;
                    let pre = state == floors[c] && d.mutations_lost == promoted[c];
                    let post = state == floors[c + 1] && d.mutations_lost == 0;
                    if !pre && !post {
                        return Err(format!(
                            "boundary {k}, cycle {c}: recovered state is neither the \
                             pre- nor post-barrier floor with a matching loss of {}\n\
                             state: {state:?}\npre floor: {:?} (promoted {})\npost floor: {:?}",
                            d.mutations_lost,
                            floors[c],
                            promoted[c],
                            floors[c + 1]
                        ));
                    }
                    break;
                }
                Err(e) => return Err(format!("boundary {k}, cycle {c}: barrier: {e}")),
            }
        }
        if !crashed {
            return Err(format!("boundary {k}: armed crash never fired"));
        }
    }
    Ok(boundaries)
}

/// Invariant D1 (acknowledged ⇒ durable) + D7 for the Strict tier,
/// stated through the recovery report: whatever boundary the crash
/// lands on, the report must name the strict tier, a zero bound, and a
/// measured loss of zero — flushes inside the failed (unacknowledged)
/// batch never count against the contract. Returns the number of
/// boundaries swept.
fn durability_strict_check(batches: usize, batch_len: usize, seed: u64) -> Result<u64, String> {
    let spec = ServiceSpec {
        shards: 1,
        buckets: 16,
        log_blocks: 256,
        ..ServiceSpec::new(1)
    };
    let schedule: Vec<Vec<Request>> = (0..batches)
        .map(|b| generate_requests(seed ^ (b as u64 + 1), batch_len, 16, (1, 32)))
        .collect();

    let mut svc = KvService::create(&spec).map_err(|e| format!("create: {e}"))?;
    svc.set_threaded(false);
    let persist_base = svc.shard_mem(0).map(|m| m.stats().persists).unwrap_or(0);
    for (b, batch) in schedule.iter().enumerate() {
        svc.submit(batch)
            .map_err(|e| format!("clean run, batch {b}: {e}"))?;
    }
    let boundaries = svc.shard_mem(0).map(|m| m.stats().persists).unwrap_or(0) - persist_base;
    if boundaries == 0 {
        return Err("clean run never persisted; the sweep tested nothing".into());
    }

    for k in 0..boundaries {
        let mut svc = KvService::create(&spec).map_err(|e| format!("boundary {k}: create: {e}"))?;
        svc.set_threaded(false);
        if let Some(m) = svc.shard_mem_mut(0) {
            m.inject_crash_after_persists(k);
        }
        let mut crashed = false;
        for (b, batch) in schedule.iter().enumerate() {
            match svc.submit(batch) {
                Ok(_) => {}
                Err(KvError::Memory(SecureMemoryError::NeedsRecovery)) => {
                    crashed = true;
                    let report = svc
                        .recover_shard(0)
                        .map_err(|e| format!("boundary {k}, batch {b}: recovery failed: {e}"))?;
                    let d = report
                        .durability
                        .ok_or(format!("boundary {k}, batch {b}: no durability report"))?;
                    if d.mode != "strict" || d.loss_bound != Some(0) {
                        return Err(format!(
                            "boundary {k}, batch {b}: report names tier {:?} bound {:?}",
                            d.mode, d.loss_bound
                        ));
                    }
                    if d.mutations_lost != 0 {
                        return Err(format!(
                            "boundary {k}, batch {b}: strict tier reported {} lost \
                             acknowledged mutations",
                            d.mutations_lost
                        ));
                    }
                    break;
                }
                Err(e) => return Err(format!("boundary {k}, batch {b}: {e}")),
            }
        }
        if !crashed {
            return Err(format!("boundary {k}: armed crash never fired"));
        }
    }
    Ok(boundaries)
}

/// The Buffered tier's contract sweep (invariants D3/D4/D7). Half the
/// cases use a 1 ns flush interval so the group-fsync timer drives
/// flushes at run boundaries; the other half a ~17-minute interval so
/// only the `max_loss` counter flushes — the loss bound must hold
/// either way. The release CI sweep runs this at `TRIAD_PROP_CASES`
/// ≥ 100; `docs/durability-contract.md` records the acceptance run.
#[test]
fn durability_buffered_loss_stays_within_max_loss() {
    check(
        "durability_buffered_loss_stays_within_max_loss",
        Config::cases(3),
        |rng| {
            let max_loss = 1 + rng.below(6);
            let flush_interval = if rng.below(2) == 0 {
                1
            } else {
                1_000_000_000_000
            };
            let muts = (12 + rng.below(12)) as usize;
            durability_buffered_check(max_loss, flush_interval, muts, rng.next_u64())?;
            Ok(())
        },
    );
}

/// The InMemory tier's contract sweep (invariants D5/D7).
#[test]
fn durability_inmemory_recovers_to_the_last_barrier() {
    check(
        "durability_inmemory_recovers_to_the_last_barrier",
        Config::cases(3),
        |rng| {
            let cycles = (2 + rng.below(2)) as usize;
            let batch_len = (3 + rng.below(4)) as usize;
            durability_inmemory_check(cycles, batch_len, rng.next_u64())?;
            Ok(())
        },
    );
}

/// The Strict tier's report sweep (invariants D1/D7); state-level
/// crash equivalence for this tier is
/// [`service_crash_equivalence_holds_at_group_boundaries`].
#[test]
fn durability_strict_reports_zero_loss_at_every_boundary() {
    check(
        "durability_strict_reports_zero_loss_at_every_boundary",
        Config::cases(3),
        |rng| {
            let batches = (2 + rng.below(2)) as usize;
            let batch_len = (4 + rng.below(4)) as usize;
            durability_strict_check(batches, batch_len, rng.next_u64())?;
            Ok(())
        },
    );
}

#[test]
fn kv_crash_equivalence_holds_for_seeded_histories() {
    let schemes = [
        PersistScheme::triad_nvm(1),
        PersistScheme::triad_nvm(2),
        PersistScheme::triad_nvm(3),
        PersistScheme::Strict,
    ];
    check(
        "kv_crash_equivalence_holds_for_seeded_histories",
        Config::cases(3),
        |rng| {
            let ops = rng.gen_range(4..12);
            let spec = if rng.below(2) == 0 {
                KvSpec::small(ops)
            } else {
                KvSpec::small_uniform(ops)
            };
            let seed = rng.next_u64();
            for scheme in schemes {
                // Zero boundaries is legitimate (a short history may be
                // all reads or misses); the clean-run oracle check still
                // ran in that case.
                crash_equivalence_check(scheme, CounterPersistence::Strict, &spec, seed)?;
            }
            Ok(())
        },
    );
}
