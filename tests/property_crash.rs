//! Property-based crash-consistency testing: arbitrary interleavings
//! of writes, persists, evictiom pressure, crashes (including crashes
//! injected *inside* the atomic metadata-persist protocol) must always
//! recover to a verified state where every block reads a value that is
//!
//! 1. some value that was actually written to it (or zero), and
//! 2. at least as new as the last explicitly persisted value.

use proptest::prelude::*;
use triad_nvm::core::{CounterPersistence, PersistScheme, SecureMemoryBuilder, SecureMemoryError};
use triad_nvm::sim::{PhysAddr, Time};

/// Operations the property machine can perform.
#[derive(Debug, Clone)]
enum Op {
    /// Write a fresh (monotonically numbered) value to page `page`.
    Write { page: u8 },
    /// Persist page `page` (clwb + sfence).
    Persist { page: u8 },
    /// Touch many other pages to force evictions.
    Pressure { seed: u8 },
    /// Clean power loss + recovery.
    Crash,
    /// Arm a crash after `n` WPQ copies inside a future atomic persist.
    ArmCrash { n: u8 },
    /// Open an epoch (deferred persists) if none is open.
    BeginEpoch,
    /// Close the epoch, making its deferred persists durable.
    EndEpoch,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => any::<u8>().prop_map(|page| Op::Write { page: page % 16 }),
        3 => any::<u8>().prop_map(|page| Op::Persist { page: page % 16 }),
        1 => any::<u8>().prop_map(|seed| Op::Pressure { seed }),
        1 => Just(Op::Crash),
        1 => any::<u8>().prop_map(|n| Op::ArmCrash { n: n % 24 }),
        1 => Just(Op::BeginEpoch),
        1 => Just(Op::EndEpoch),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, ..ProptestConfig::default()
    })]

    #[test]
    fn crash_consistency_holds_for_arbitrary_histories(
        ops in prop::collection::vec(op_strategy(), 1..120),
        scheme_pick in 0u8..5,
    ) {
        let scheme = match scheme_pick {
            0 => PersistScheme::triad_nvm(1),
            1 => PersistScheme::triad_nvm(2),
            2 => PersistScheme::triad_nvm(3),
            _ => PersistScheme::Strict,
        };
        // Variant 4 exercises the Osiris counter relaxation on top of
        // TriadNVM-2; it shares the same consistency contract.
        let counter_persistence = if scheme_pick == 4 {
            CounterPersistence::Osiris { interval: 3 }
        } else {
            CounterPersistence::Strict
        };
        let scheme = if scheme_pick == 4 {
            PersistScheme::triad_nvm(2)
        } else {
            scheme
        };
        let mut mem = SecureMemoryBuilder::new()
            .scheme(scheme)
            .counter_persistence(counter_persistence)
            .key_seed(99)
            .build()
            .unwrap();
        let p = mem.persistent_region().start();
        let page_addr = |page: u8| PhysAddr(p.0 + page as u64 * 4096);

        // Model: per page, the last value written and the floor (last
        // value guaranteed durable by an explicit persist).
        let mut written = [0u64; 16];
        let mut floor = [0u64; 16];
        // Floors promised by persists inside a still-open epoch: they
        // only take effect at the epoch boundary.
        let mut epoch_floor: Option<[u64; 16]> = None;
        let mut next_value = 1u64;
        let mut crashed = false;

        let recover_and_check = |mem: &mut triad_nvm::core::SecureMemory,
                                     written: &mut [u64; 16],
                                     floor: &mut [u64; 16]| {
            let report = mem.recover().unwrap();
            prop_assert!(report.persistent_recovered, "{report:?}");
            for page in 0..16u8 {
                let data = mem.read(page_addr(page)).unwrap();
                let value = u64::from_le_bytes(data[..8].try_into().unwrap());
                prop_assert!(
                    value >= floor[page as usize],
                    "page {page}: rolled back below the persist floor: \
                     {value} < {}", floor[page as usize]
                );
                prop_assert!(
                    value <= written[page as usize],
                    "page {page}: value {value} was never written (max {})",
                    written[page as usize]
                );
                // Whatever survived is the new baseline: unpersisted
                // cached writes above it are gone.
                floor[page as usize] = value;
                written[page as usize] = value;
            }
            Ok(())
        };

        for op in ops {
            if crashed {
                recover_and_check(&mut mem, &mut written, &mut floor)?;
                crashed = false;
            }
            match op {
                Op::Write { page } => {
                    let v = next_value;
                    next_value += 1;
                    match mem.write(page_addr(page), &v.to_le_bytes()) {
                        Ok(()) => written[page as usize] = v,
                        Err(SecureMemoryError::NeedsRecovery) => {
                            // An armed crash fired inside an eviction's
                            // atomic persist; the write is lost.
                            crashed = true;
                        }
                        Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                    }
                }
                Op::Persist { page } => {
                    match mem.persist(page_addr(page)) {
                        Ok(()) => {
                            match &mut epoch_floor {
                                // Deferred: durable only at end_epoch.
                                Some(pending) => {
                                    pending[page as usize] = written[page as usize]
                                }
                                None => floor[page as usize] = written[page as usize],
                            }
                        }
                        Err(SecureMemoryError::NeedsRecovery) => {
                            // Crash mid-protocol: the staged update is
                            // replayed at recovery, so the persist is
                            // still durable (never happens inside an
                            // epoch, where persists defer instead).
                            if epoch_floor.is_none() {
                                floor[page as usize] = written[page as usize];
                            }
                            crashed = true;
                            epoch_floor = None;
                        }
                        Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                    }
                }
                Op::BeginEpoch => {
                    if !mem.epoch_open() {
                        mem.begin_epoch();
                        epoch_floor = Some(floor);
                    }
                }
                Op::EndEpoch => {
                    match mem.end_epoch(Time::ZERO) {
                        Ok(_) => {
                            if let Some(pending) = epoch_floor.take() {
                                floor = pending;
                            }
                        }
                        Err(SecureMemoryError::NeedsRecovery) => {
                            // Crash during the boundary flush: each
                            // member either persisted or not — floors
                            // cannot be promised, keep the old ones.
                            crashed = true;
                            epoch_floor = None;
                        }
                        Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                    }
                }
                Op::Pressure { seed } => {
                    let len = mem.persistent_region().len_bytes();
                    for i in 0..40u64 {
                        let addr = PhysAddr(
                            p.0 + 16 * 4096
                                + ((seed as u64 * 131 + i * 37) * 4096)
                                    % (len - 17 * 4096),
                        );
                        match mem.write(addr, b"pressure") {
                            Ok(()) => {}
                            Err(SecureMemoryError::NeedsRecovery) => {
                                crashed = true;
                                break;
                            }
                            Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                        }
                    }
                }
                Op::Crash => {
                    mem.crash();
                    crashed = true;
                    epoch_floor = None; // deferred persists are lost
                }
                Op::ArmCrash { n } => {
                    mem.inject_crash_after_wpq_writes(n as u64);
                }
            }
        }
        if crashed {
            recover_and_check(&mut mem, &mut written, &mut floor)?;
        }
        // Final sanity: one more clean crash/recover cycle.
        mem.crash();
        recover_and_check(&mut mem, &mut written, &mut floor)?;
    }
}
