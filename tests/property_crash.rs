//! Property-based crash-consistency testing: arbitrary interleavings
//! of writes, persists, eviction pressure, crashes (including crashes
//! injected *inside* the atomic metadata-persist protocol) must always
//! recover to a verified state where every block reads a value that is
//!
//! 1. some value that was actually written to it (or zero), and
//! 2. at least as new as the last explicitly persisted value.

mod common;

use common::{run_history, Op};
use triad_nvm::core::{CounterPersistence, PersistScheme};
use triad_nvm::sim::prop::{check, check_ops, Config};
use triad_nvm::sim::rng::SplitMix64;
use triad_nvm::workloads::kv::{crash_equivalence_check, KvSpec};

/// Mirrors the old proptest weights — 4 Write : 3 Persist : 1 each for
/// Pressure / Crash / ArmCrash / BeginEpoch / EndEpoch.
fn gen_op(rng: &mut SplitMix64) -> Op {
    match rng.gen_range(0..12) {
        0..=3 => Op::Write {
            page: rng.gen_range(0..16) as u8,
        },
        4..=6 => Op::Persist {
            page: rng.gen_range(0..16) as u8,
        },
        7 => Op::Pressure {
            seed: rng.next_u32() as u8,
        },
        8 => Op::Crash,
        9 => Op::ArmCrash {
            n: rng.gen_range(0..24) as u8,
        },
        10 => Op::BeginEpoch,
        _ => Op::EndEpoch,
    }
}

#[test]
fn crash_consistency_holds_for_arbitrary_histories() {
    check_ops(
        "crash_consistency_holds_for_arbitrary_histories",
        Config::cases(24),
        |rng| {
            let len = rng.gen_range(1..120) as usize;
            (0..len).map(|_| gen_op(rng)).collect::<Vec<Op>>()
        },
        |ops, params| {
            let scheme_pick = params.gen_range(0..5) as u8;
            let scheme = match scheme_pick {
                0 => PersistScheme::triad_nvm(1),
                1 | 4 => PersistScheme::triad_nvm(2),
                2 => PersistScheme::triad_nvm(3),
                _ => PersistScheme::Strict,
            };
            // Variant 4 exercises the Osiris counter relaxation on top
            // of TriadNVM-2; it shares the same consistency contract.
            let counter_persistence = if scheme_pick == 4 {
                CounterPersistence::Osiris { interval: 3 }
            } else {
                CounterPersistence::Strict
            };
            run_history(ops, scheme, counter_persistence)
        },
    );
}

/// The triad-kv acceptance property: a seeded multi-shard KV history
/// replayed through crash injection at *every* persist boundary must
/// recover (engine recovery + redo-log replay) to exactly the in-DRAM
/// oracle's state — pre- or post- the interrupted transaction, nothing
/// else — under every recoverable scheme.
///
/// Each case draws one history shape (op count, Zipf or uniform keys)
/// and one seed, then runs the full boundary sweep under all four
/// schemes, so `TRIAD_PROP_CASES=1000` exercises ≥ 1000 histories *per
/// scheme*. The default case count keeps the debug-mode CI run cheap;
/// the release acceptance sweep is recorded in `docs/kv.md`.
#[test]
fn kv_crash_equivalence_holds_for_seeded_histories() {
    let schemes = [
        PersistScheme::triad_nvm(1),
        PersistScheme::triad_nvm(2),
        PersistScheme::triad_nvm(3),
        PersistScheme::Strict,
    ];
    check(
        "kv_crash_equivalence_holds_for_seeded_histories",
        Config::cases(3),
        |rng| {
            let ops = rng.gen_range(4..12);
            let spec = if rng.below(2) == 0 {
                KvSpec::small(ops)
            } else {
                KvSpec::small_uniform(ops)
            };
            let seed = rng.next_u64();
            for scheme in schemes {
                // Zero boundaries is legitimate (a short history may be
                // all reads or misses); the clean-run oracle check still
                // ran in that case.
                crash_equivalence_check(scheme, CounterPersistence::Strict, &spec, seed)?;
            }
            Ok(())
        },
    );
}
