//! Property-based crash-consistency testing: arbitrary interleavings
//! of writes, persists, eviction pressure, crashes (including crashes
//! injected *inside* the atomic metadata-persist protocol) must always
//! recover to a verified state where every block reads a value that is
//!
//! 1. some value that was actually written to it (or zero), and
//! 2. at least as new as the last explicitly persisted value.

mod common;

use common::{run_history, Op};
use triad_nvm::core::{CounterPersistence, PersistScheme};
use triad_nvm::sim::prop::{check_ops, Config};
use triad_nvm::sim::rng::SplitMix64;

/// Mirrors the old proptest weights — 4 Write : 3 Persist : 1 each for
/// Pressure / Crash / ArmCrash / BeginEpoch / EndEpoch.
fn gen_op(rng: &mut SplitMix64) -> Op {
    match rng.gen_range(0..12) {
        0..=3 => Op::Write {
            page: rng.gen_range(0..16) as u8,
        },
        4..=6 => Op::Persist {
            page: rng.gen_range(0..16) as u8,
        },
        7 => Op::Pressure {
            seed: rng.next_u32() as u8,
        },
        8 => Op::Crash,
        9 => Op::ArmCrash {
            n: rng.gen_range(0..24) as u8,
        },
        10 => Op::BeginEpoch,
        _ => Op::EndEpoch,
    }
}

#[test]
fn crash_consistency_holds_for_arbitrary_histories() {
    check_ops(
        "crash_consistency_holds_for_arbitrary_histories",
        Config::cases(24),
        |rng| {
            let len = rng.gen_range(1..120) as usize;
            (0..len).map(|_| gen_op(rng)).collect::<Vec<Op>>()
        },
        |ops, params| {
            let scheme_pick = params.gen_range(0..5) as u8;
            let scheme = match scheme_pick {
                0 => PersistScheme::triad_nvm(1),
                1 | 4 => PersistScheme::triad_nvm(2),
                2 => PersistScheme::triad_nvm(3),
                _ => PersistScheme::Strict,
            };
            // Variant 4 exercises the Osiris counter relaxation on top
            // of TriadNVM-2; it shares the same consistency contract.
            let counter_persistence = if scheme_pick == 4 {
                CounterPersistence::Osiris { interval: 3 }
            } else {
                CounterPersistence::Strict
            };
            run_history(ops, scheme, counter_persistence)
        },
    );
}
