//! Property-based crash-consistency testing: arbitrary interleavings
//! of writes, persists, eviction pressure, crashes (including crashes
//! injected *inside* the atomic metadata-persist protocol) must always
//! recover to a verified state where every block reads a value that is
//!
//! 1. some value that was actually written to it (or zero), and
//! 2. at least as new as the last explicitly persisted value.

mod common;

use common::{run_history, Op};
use triad_nvm::core::{CounterPersistence, PersistScheme};
use triad_nvm::sim::prop::{check, check_ops, Config};
use triad_nvm::sim::rng::SplitMix64;
use triad_nvm::workloads::kv::{crash_equivalence_check, KvSpec};
use triad_nvm::workloads::service::{
    generate_requests, service_crash_equivalence_check, KvService, ServiceSpec,
};

/// Mirrors the old proptest weights — 4 Write : 3 Persist : 1 each for
/// Pressure / Crash / ArmCrash / BeginEpoch / EndEpoch.
fn gen_op(rng: &mut SplitMix64) -> Op {
    match rng.gen_range(0..12) {
        0..=3 => Op::Write {
            page: rng.gen_range(0..16) as u8,
        },
        4..=6 => Op::Persist {
            page: rng.gen_range(0..16) as u8,
        },
        7 => Op::Pressure {
            seed: rng.next_u32() as u8,
        },
        8 => Op::Crash,
        9 => Op::ArmCrash {
            n: rng.gen_range(0..24) as u8,
        },
        10 => Op::BeginEpoch,
        _ => Op::EndEpoch,
    }
}

#[test]
fn crash_consistency_holds_for_arbitrary_histories() {
    check_ops(
        "crash_consistency_holds_for_arbitrary_histories",
        Config::cases(24),
        |rng| {
            let len = rng.gen_range(1..120) as usize;
            (0..len).map(|_| gen_op(rng)).collect::<Vec<Op>>()
        },
        |ops, params| {
            let scheme_pick = params.gen_range(0..5) as u8;
            let scheme = match scheme_pick {
                0 => PersistScheme::triad_nvm(1),
                1 | 4 => PersistScheme::triad_nvm(2),
                2 => PersistScheme::triad_nvm(3),
                _ => PersistScheme::Strict,
            };
            // Variant 4 exercises the Osiris counter relaxation on top
            // of TriadNVM-2; it shares the same consistency contract.
            let counter_persistence = if scheme_pick == 4 {
                CounterPersistence::Osiris { interval: 3 }
            } else {
                CounterPersistence::Strict
            };
            run_history(ops, scheme, counter_persistence)
        },
    );
}

/// The triad-kv acceptance property: a seeded multi-shard KV history
/// replayed through crash injection at *every* persist boundary must
/// recover (engine recovery + redo-log replay) to exactly the in-DRAM
/// oracle's state — pre- or post- the interrupted transaction, nothing
/// else — under every recoverable scheme.
///
/// Each case draws one history shape (op count, Zipf or uniform keys)
/// and one seed, then runs the full boundary sweep under all four
/// schemes, so `TRIAD_PROP_CASES=1000` exercises ≥ 1000 histories *per
/// scheme*. The default case count keeps the debug-mode CI run cheap;
/// the release acceptance sweep is recorded in `docs/kv.md`.
/// The serving-layer extension of the sweep: the same property at
/// *group-commit* granularity. A seeded request schedule runs through
/// the sharded [`KvService`] front-end with a crash injected at every
/// persist boundary of one shard; recovery must land on exactly the
/// pre- or post-group durable snapshot (a serial prefix of flushed
/// groups), and re-driving the schedule must converge on the clean
/// run's final state.
#[test]
fn service_crash_equivalence_holds_at_group_boundaries() {
    let schemes = [PersistScheme::triad_nvm(2), PersistScheme::Strict];
    check(
        "service_crash_equivalence_holds_at_group_boundaries",
        Config::cases(2),
        |rng| {
            let batches = rng.gen_range(2..4) as usize;
            let batch_len = rng.gen_range(4..8) as usize;
            let seed = rng.next_u64();
            for scheme in schemes {
                let spec = ServiceSpec {
                    shards: 2,
                    scheme,
                    buckets: 16,
                    ..ServiceSpec::new(2)
                };
                service_crash_equivalence_check(&spec, batches, batch_len, seed)?;
            }
            Ok(())
        },
    );
}

/// The serving-layer determinism contract: threaded and
/// single-threaded execution of the same seeded schedule must be
/// byte-identical — responses, merged store and group-commit stats,
/// merged durable state, simulated makespan and total durability
/// points. This is what makes the threaded fleet a legitimate
/// subject for crash sweeps and report rows.
#[test]
fn service_threaded_and_serial_runs_are_identical() {
    check(
        "service_threaded_and_serial_runs_are_identical",
        Config::cases(3),
        |rng| {
            let spec = ServiceSpec {
                shards: 1 + rng.below(4),
                group_window: 1 + rng.below(8) as usize,
                buckets: 16,
                key_seed: rng.next_u64(),
                ..ServiceSpec::new(1)
            };
            let reqs = generate_requests(rng.next_u64(), 60, 48, (1, 64));
            let mut threaded = KvService::create(&spec).map_err(|e| format!("create: {e}"))?;
            threaded.set_threaded(true);
            let rt = threaded
                .submit(&reqs)
                .map_err(|e| format!("threaded submit: {e}"))?;
            let mut serial = KvService::create(&spec).map_err(|e| format!("create: {e}"))?;
            serial.set_threaded(false);
            let rs = serial
                .submit(&reqs)
                .map_err(|e| format!("serial submit: {e}"))?;
            if rt != rs {
                return Err("responses differ between threaded and serial".into());
            }
            if threaded.merged_kv_stats() != serial.merged_kv_stats() {
                return Err("merged store stats differ".into());
            }
            if threaded.merged_group_stats() != serial.merged_group_stats() {
                return Err("merged group stats differ".into());
            }
            if threaded.total_persists() != serial.total_persists() {
                return Err("total persists differ".into());
            }
            if threaded.max_shard_time() != serial.max_shard_time() {
                return Err("simulated makespan differs".into());
            }
            let dt = threaded.dump().map_err(|e| format!("dump: {e}"))?;
            let ds = serial.dump().map_err(|e| format!("dump: {e}"))?;
            if dt != ds {
                return Err("merged durable state differs".into());
            }
            Ok(())
        },
    );
}

#[test]
fn kv_crash_equivalence_holds_for_seeded_histories() {
    let schemes = [
        PersistScheme::triad_nvm(1),
        PersistScheme::triad_nvm(2),
        PersistScheme::triad_nvm(3),
        PersistScheme::Strict,
    ];
    check(
        "kv_crash_equivalence_holds_for_seeded_histories",
        Config::cases(3),
        |rng| {
            let ops = rng.gen_range(4..12);
            let spec = if rng.below(2) == 0 {
                KvSpec::small(ops)
            } else {
                KvSpec::small_uniform(ops)
            };
            let seed = rng.next_u64();
            for scheme in schemes {
                // Zero boundaries is legitimate (a short history may be
                // all reads or misses); the clean-run oracle check still
                // ran in that case.
                crash_equivalence_check(scheme, CounterPersistence::Strict, &spec, seed)?;
            }
            Ok(())
        },
    );
}
