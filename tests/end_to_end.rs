//! Cross-crate end-to-end tests: workload generators driving the full
//! simulated system, followed by crash/recovery of the same engine.

use triad_nvm::core::{PersistScheme, SecureMemoryBuilder, System};
use triad_nvm::sim::PhysAddr;
use triad_nvm::workloads::{build_workload, WorkloadEnv};

fn engine(scheme: PersistScheme) -> triad_nvm::core::SecureMemory {
    // Table 1 caches (8 cores, so 4-trace mixes fit) over a small NVM.
    let mut cfg = triad_nvm::sim::config::SystemConfig::isca19();
    cfg.mem.capacity_bytes = 16 << 20;
    SecureMemoryBuilder::new()
        .config(cfg)
        .persistent_fraction_eighths(2)
        .scheme(scheme)
        .build()
        .unwrap()
}

#[test]
fn every_registered_workload_runs_under_every_scheme() {
    for scheme in PersistScheme::evaluated() {
        for name in ["mcf", "hashtable", "daxbench1", "mix1"] {
            let mem = engine(scheme);
            let env = WorkloadEnv::of(&mem);
            let traces = build_workload(name, &env, 7);
            let mut sys = System::new(mem, traces);
            let result = sys.run(2_000).expect("clean run");
            assert!(result.throughput() > 0.0, "{name} under {scheme}");
        }
    }
}

#[test]
fn system_survives_crash_after_workload() {
    let mem = engine(PersistScheme::triad_nvm(2));
    let env = WorkloadEnv::of(&mem);
    let traces = build_workload("mix1", &env, 3);
    let mut sys = System::new(mem, traces);
    sys.run(3_000).unwrap();
    let mut mem = sys.into_secure();
    mem.crash();
    let report = mem.recover().unwrap();
    assert!(
        report.persistent_recovered,
        "a mixed workload must leave a recoverable image: {report:?}"
    );
}

#[test]
fn strict_is_slower_but_writes_more_and_recovers_like_triad() {
    let run = |scheme| {
        let mem = engine(scheme);
        let env = WorkloadEnv::of(&mem);
        let mut sys = System::new(mem, build_workload("hashtable", &env, 5));
        let r = sys.run(20_000).unwrap();
        let wall = r.cores[0].finish_time;
        (wall, r.stats.get("secure.persist_metadata_writes"))
    };
    let (strict_t, strict_w) = run(PersistScheme::Strict);
    let (t1_t, t1_w) = run(PersistScheme::triad_nvm(1));
    assert!(
        strict_t > t1_t,
        "strict must be slower: {strict_t} vs {t1_t}"
    );
    assert!(strict_w > t1_w, "strict must write more metadata");
}

#[test]
fn persisted_workload_state_survives_and_verifies_bit_exactly() {
    // Hand-rolled workload through the public API, then crash.
    let mut mem = engine(PersistScheme::triad_nvm(1));
    let p = mem.persistent_region().start();
    let mut golden = Vec::new();
    for i in 0..128u64 {
        let addr = PhysAddr(p.0 + i * 256);
        let payload: Vec<u8> = (0..32).map(|j| (i * 31 + j) as u8).collect();
        mem.write(addr, &payload).unwrap();
        mem.persist(addr).unwrap();
        golden.push((addr, payload));
    }
    mem.crash();
    assert!(mem.recover().unwrap().persistent_recovered);
    for (addr, payload) in golden {
        assert_eq!(&mem.read(addr).unwrap()[..32], &payload[..]);
    }
}

#[test]
fn non_persistent_region_is_fully_discarded_after_mixed_use() {
    let mut mem = engine(PersistScheme::triad_nvm(3));
    let np = mem.non_persistent_region().start();
    let p = mem.persistent_region().start();
    for i in 0..64u64 {
        mem.write(PhysAddr(np.0 + i * 4096), b"volatile").unwrap();
        mem.write(PhysAddr(p.0 + i * 4096), b"durable").unwrap();
        mem.persist(PhysAddr(p.0 + i * 4096)).unwrap();
    }
    mem.crash();
    mem.recover().unwrap();
    for i in 0..64u64 {
        assert_eq!(mem.read(PhysAddr(np.0 + i * 4096)).unwrap(), [0u8; 64]);
        assert_eq!(
            &mem.read(PhysAddr(p.0 + i * 4096)).unwrap()[..7],
            b"durable"
        );
    }
}

#[test]
fn sessions_isolate_non_persistent_data_between_boots() {
    let mut mem = engine(PersistScheme::triad_nvm(1));
    let np = mem.non_persistent_region().start();
    mem.write(np, b"boot-1").unwrap();
    for boot in 2..5u32 {
        mem.crash();
        let report = mem.recover().unwrap();
        assert_eq!(report.session, boot);
        assert_eq!(mem.read(np).unwrap(), [0u8; 64]);
        mem.write(np, &boot.to_le_bytes()).unwrap();
        assert_eq!(&mem.read(np).unwrap()[..4], &boot.to_le_bytes());
    }
}
