//! Property-based crash-equivalence testing for the detectably
//! recoverable lock-free structures in `triad-recov`.
//!
//! Each case draws one mixed operation history, splits it across
//! threads, and replays it through the seeded interleaving harness
//! under every recoverable persistence scheme — once clean, then with
//! a per-thread crash injected at swept step points of every thread,
//! and with whole-engine crashes injected at persist boundaries. Every
//! run must pass the commit-log linearizability oracle: each submitted
//! operation applies exactly once (detectability: the crashed thread's
//! in-flight operation is resolved on recovery, never double-applied),
//! the commit order replays to the final structure contents, and
//! empty removals only commit against an empty structure.
//!
//! The debug default keeps CI cheap; the release acceptance sweep runs
//! with `TRIAD_PROP_CASES=500` (recorded in `docs/recoverability.md`).
//! Failures shrink greedily to the smallest failing history and report
//! a `TRIAD_PROP_SEED` reproduction line.

use triad_nvm::core::PersistScheme;
use triad_nvm::recov::{crash_equivalence_concurrent, OpSpec, RunSpec, StructureKind};
use triad_nvm::sim::prop::{check, check_ops, Config};
use triad_nvm::sim::rng::SplitMix64;

fn schemes() -> [PersistScheme; 4] {
    [
        PersistScheme::triad_nvm(1),
        PersistScheme::triad_nvm(2),
        PersistScheme::triad_nvm(3),
        PersistScheme::Strict,
    ]
}

/// Mixed history: two inserts for every remove, values unique.
fn gen_ops(rng: &mut SplitMix64, len: usize) -> Vec<OpSpec> {
    (0..len)
        .map(|i| {
            if rng.below(3) == 2 {
                OpSpec::Remove
            } else {
                OpSpec::Insert((i as u64) | (1 << 50) | (rng.next_u32() as u64) << 8)
            }
        })
        .collect()
}

/// Round-robin split of one flat history across `threads` scripts, so
/// greedy shrinking of the flat vector always yields valid scripts.
fn split(ops: &[OpSpec], threads: usize) -> Vec<Vec<OpSpec>> {
    let mut scripts = vec![Vec::new(); threads];
    for (i, op) in ops.iter().enumerate() {
        scripts[i % threads].push(*op);
    }
    scripts
}

/// The acceptance property: for one drawn history, sweep per-thread
/// crash points (start / middle / near-end of each thread's clean
/// step count) and engine persist-boundary crashes under all four
/// recoverable schemes, for the structure the case picked. ~50
/// harness runs per case, each oracle-checked.
#[test]
fn recov_crash_equivalence_under_swept_crashes() {
    check_ops(
        "recov_crash_equivalence_under_swept_crashes",
        Config::cases(2),
        |rng| {
            let len = rng.gen_range(6..24) as usize;
            gen_ops(rng, len)
        },
        |ops, params| {
            let kind = if params.gen_bool(0.5) {
                StructureKind::Stack
            } else {
                StructureKind::Queue
            };
            let threads = 2 + params.below(2) as usize;
            let seed = params.next_u64();
            for scheme in schemes() {
                let spec = RunSpec {
                    kind,
                    scheme,
                    seed,
                    scripts: split(ops, threads),
                    thread_crash: None,
                    engine_crash_after_persists: None,
                };
                let clean = crash_equivalence_concurrent(&spec)
                    .map_err(|e| format!("{scheme} clean run: {e}"))?;
                for t in 0..threads {
                    let steps = clean.per_thread_steps[t];
                    let mut points = vec![0, steps / 2, steps.saturating_sub(1)];
                    points.dedup();
                    for k in points {
                        let mut s = spec.clone();
                        s.thread_crash = Some((t, k));
                        crash_equivalence_concurrent(&s)
                            .map_err(|e| format!("{scheme} thread {t} crashed at step {k}: {e}"))?;
                    }
                }
                for p in [1, clean.persists / 2, clean.persists.saturating_sub(1)] {
                    let mut s = spec.clone();
                    s.engine_crash_after_persists = Some(p);
                    crash_equivalence_concurrent(&s)
                        .map_err(|e| format!("{scheme} engine crash after {p} persists: {e}"))?;
                }
            }
            Ok(())
        },
    );
}

/// Detectability, exhaustively: a single-thread script crashed at
/// *every* step point — including the window between the decisive CAS
/// and the completion checkpoint — must recover with the in-flight
/// operation applied exactly once. The oracle's exactly-once count is
/// the assertion; this test makes the sweep exhaustive rather than
/// sampled so the decisive-commit window is always covered.
#[test]
fn detectability_crashed_op_applies_exactly_once_at_every_step() {
    check(
        "detectability_crashed_op_applies_exactly_once_at_every_step",
        Config::cases(2),
        |rng| {
            let kind = if rng.gen_bool(0.5) {
                StructureKind::Stack
            } else {
                StructureKind::Queue
            };
            let seed = rng.next_u64();
            let script = vec![
                OpSpec::Insert(11),
                OpSpec::Insert(22),
                OpSpec::Remove,
                OpSpec::Insert(33),
                OpSpec::Remove,
            ];
            let spec = RunSpec {
                kind,
                scheme: PersistScheme::triad_nvm(2),
                seed,
                scripts: vec![script],
                thread_crash: None,
                engine_crash_after_persists: None,
            };
            let clean = crash_equivalence_concurrent(&spec)?;
            for k in 0..clean.per_thread_steps[0] {
                let mut s = spec.clone();
                s.thread_crash = Some((0, k));
                let out = crash_equivalence_concurrent(&s)
                    .map_err(|e| format!("{kind:?} crash at step {k}: {e}"))?;
                if out.thread_crashes != 1 {
                    return Err(format!(
                        "{kind:?} crash at step {k} never fired ({} crashes)",
                        out.thread_crashes
                    ));
                }
            }
            Ok(())
        },
    );
}

/// Composition: a scheduler-armed thread crash and an engine crash in
/// the same run. Whichever fires first wins; an engine crash disarms
/// the pending thread crash (all threads restart from durable state
/// anyway), and the oracle must still hold.
#[test]
fn thread_and_engine_crashes_compose() {
    check(
        "thread_and_engine_crashes_compose",
        Config::cases(2),
        |rng| {
            let seed = rng.next_u64();
            let ops = gen_ops(rng, 12);
            for kind in [StructureKind::Stack, StructureKind::Queue] {
                let spec = RunSpec {
                    kind,
                    scheme: PersistScheme::triad_nvm(2),
                    seed,
                    scripts: split(&ops, 2),
                    thread_crash: Some((1, 4 + rng.below(8))),
                    engine_crash_after_persists: Some(3 + rng.below(12)),
                };
                let out = crash_equivalence_concurrent(&spec)
                    .map_err(|e| format!("{kind:?} composed crash: {e}"))?;
                if out.thread_crashes + out.engine_crashes == 0 {
                    return Err(format!("{kind:?}: neither armed crash fired"));
                }
            }
            Ok(())
        },
    );
}
