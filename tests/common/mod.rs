//! Shared crash-consistency machinery: the operation vocabulary and the
//! model-checked history interpreter used by both the seeded property
//! suite (`property_crash.rs`) and the checked-in regression histories
//! (`regression_triad2_persist_floor.rs`).

use triad_nvm::core::{CounterPersistence, PersistScheme, SecureMemoryBuilder, SecureMemoryError};
use triad_nvm::sim::{PhysAddr, Time};

/// Operations the crash-consistency machine can perform.
#[derive(Debug, Clone)]
// Each test binary compiles its own copy of this module, and the replay
// tests don't construct every variant.
#[allow(dead_code)]
pub enum Op {
    /// Write a fresh (monotonically numbered) value to page `page`.
    Write { page: u8 },
    /// Persist page `page` (clwb + sfence).
    Persist { page: u8 },
    /// Touch many other pages to force evictions.
    Pressure { seed: u8 },
    /// Clean power loss + recovery.
    Crash,
    /// Arm a crash after `n` WPQ copies inside a future atomic persist.
    ArmCrash { n: u8 },
    /// Open an epoch (deferred persists) if none is open.
    BeginEpoch,
    /// Close the epoch, making its deferred persists durable.
    EndEpoch,
}

/// Runs `ops` against a fresh [`SecureMemory`] under `scheme` /
/// `counter_persistence`, checking after every crash that each page
/// recovers to a value between its persist floor and its last write.
///
/// [`SecureMemory`]: triad_nvm::core::SecureMemory
pub fn run_history(
    ops: &[Op],
    scheme: PersistScheme,
    counter_persistence: CounterPersistence,
) -> Result<(), String> {
    let mut mem = SecureMemoryBuilder::new()
        .scheme(scheme)
        .counter_persistence(counter_persistence)
        .key_seed(99)
        .build()
        .unwrap();
    let p = mem.persistent_region().start();
    let page_addr = |page: u8| PhysAddr(p.0 + page as u64 * 4096);

    // Model: per page, the last value written and the floor (last
    // value guaranteed durable by an explicit persist).
    let mut written = [0u64; 16];
    let mut floor = [0u64; 16];
    // Floors promised by persists inside a still-open epoch: they
    // only take effect at the epoch boundary.
    let mut epoch_floor: Option<[u64; 16]> = None;
    let mut next_value = 1u64;
    let mut crashed = false;

    let recover_and_check = |mem: &mut triad_nvm::core::SecureMemory,
                             written: &mut [u64; 16],
                             floor: &mut [u64; 16]|
     -> Result<(), String> {
        let report = mem.recover().map_err(|e| format!("recover: {e}"))?;
        if !report.persistent_recovered {
            return Err(format!("persistent region not recovered: {report:?}"));
        }
        for page in 0..16u8 {
            let data = mem
                .read(page_addr(page))
                .map_err(|e| format!("post-recovery read of page {page}: {e}"))?;
            let value = u64::from_le_bytes(data[..8].try_into().unwrap());
            if value < floor[page as usize] {
                return Err(format!(
                    "page {page}: rolled back below the persist floor: {value} < {}",
                    floor[page as usize]
                ));
            }
            if value > written[page as usize] {
                return Err(format!(
                    "page {page}: value {value} was never written (max {})",
                    written[page as usize]
                ));
            }
            // Whatever survived is the new baseline: unpersisted
            // cached writes above it are gone.
            floor[page as usize] = value;
            written[page as usize] = value;
        }
        Ok(())
    };

    for op in ops {
        if crashed {
            recover_and_check(&mut mem, &mut written, &mut floor)?;
            crashed = false;
        }
        match *op {
            Op::Write { page } => {
                let v = next_value;
                next_value += 1;
                match mem.write(page_addr(page), &v.to_le_bytes()) {
                    Ok(()) => written[page as usize] = v,
                    Err(SecureMemoryError::NeedsRecovery) => {
                        // An armed crash fired inside an eviction's
                        // atomic persist; the write is lost.
                        crashed = true;
                    }
                    Err(e) => return Err(format!("{e}")),
                }
            }
            Op::Persist { page } => match mem.persist(page_addr(page)) {
                Ok(()) => match &mut epoch_floor {
                    // Deferred: durable only at end_epoch.
                    Some(pending) => pending[page as usize] = written[page as usize],
                    None => floor[page as usize] = written[page as usize],
                },
                Err(SecureMemoryError::NeedsRecovery) => {
                    // Crash mid-protocol: the staged update is
                    // replayed at recovery, so the persist is
                    // still durable (never happens inside an
                    // epoch, where persists defer instead).
                    if epoch_floor.is_none() {
                        floor[page as usize] = written[page as usize];
                    }
                    crashed = true;
                    epoch_floor = None;
                }
                Err(e) => return Err(format!("{e}")),
            },
            Op::BeginEpoch => {
                if !mem.epoch_open() {
                    mem.begin_epoch().map_err(|e| format!("{e}"))?;
                    epoch_floor = Some(floor);
                }
            }
            Op::EndEpoch => match mem.end_epoch(Time::ZERO) {
                Ok(_) => {
                    if let Some(pending) = epoch_floor.take() {
                        floor = pending;
                    }
                }
                Err(SecureMemoryError::NeedsRecovery) => {
                    // Crash during the boundary flush: each
                    // member either persisted or not — floors
                    // cannot be promised, keep the old ones.
                    crashed = true;
                    epoch_floor = None;
                }
                // Random histories close epochs they never opened;
                // the typed rejection leaves the engine untouched.
                Err(SecureMemoryError::EpochNotOpen) => {}
                Err(e) => return Err(format!("{e}")),
            },
            Op::Pressure { seed } => {
                let len = mem.persistent_region().len_bytes();
                for i in 0..40u64 {
                    let addr = PhysAddr(
                        p.0 + 16 * 4096 + ((seed as u64 * 131 + i * 37) * 4096) % (len - 17 * 4096),
                    );
                    match mem.write(addr, b"pressure") {
                        Ok(()) => {}
                        Err(SecureMemoryError::NeedsRecovery) => {
                            crashed = true;
                            break;
                        }
                        Err(e) => return Err(format!("{e}")),
                    }
                }
            }
            Op::Crash => {
                mem.crash();
                crashed = true;
                epoch_floor = None; // deferred persists are lost
            }
            Op::ArmCrash { n } => {
                mem.inject_crash_after_wpq_writes(n as u64);
            }
        }
    }
    if crashed {
        recover_and_check(&mut mem, &mut written, &mut floor)?;
    }
    // Final sanity: one more clean crash/recover cycle.
    mem.crash();
    recover_and_check(&mut mem, &mut written, &mut floor)?;
    Ok(())
}
