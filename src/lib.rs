//! # Triad-NVM
//!
//! A from-scratch Rust reproduction of *Triad-NVM: Persistency for
//! Integrity-Protected and Encrypted Non-Volatile Memories* (ISCA 2019),
//! including the complete architectural simulator it is evaluated on.
//!
//! This facade crate re-exports the whole workspace so downstream users
//! can depend on a single crate:
//!
//! * [`sim`] — simulation kernel: time, statistics, configuration.
//! * [`cache`] — set-associative cache models.
//! * [`mem`] — PCM-style NVM with a memory controller and ADR WPQ.
//! * [`crypto`] — AES-128, counter-mode pads, split counters, MACs.
//! * [`meta`] — counter/MAC layout and Bonsai Merkle Trees.
//! * [`core`] — the secure memory controller, persistence schemes,
//!   crash injection and recovery (the paper's contribution).
//! * [`kv`] — a crash-consistent transactional key-value store built
//!   on the secure memory (redo WAL + persistent heap).
//! * [`recov`] — detectably recoverable lock-free structures
//!   (checkpoint + detectable CAS, Treiber stack, MS queue) with a
//!   deterministic interleaving harness and per-thread crash
//!   injection — see `docs/recoverability.md`.
//! * [`workloads`] — SPEC-like / PMDK-like / DAX workload generators
//!   and the KV crash-equivalence driver.
//!
//! Two workspace crates are deliberately *not* re-exported:
//! `triad-bench` (the figure/benchmark binaries) and `triad-analyze`
//! (the in-tree `triad-lint` static-analysis pass that CI runs over
//! this source tree — see `docs/static-analysis.md`).
//!
//! ## Quick example
//!
//! ```rust
//! use triad_nvm::core::{PersistScheme, SecureMemoryBuilder};
//!
//! # fn main() -> Result<(), triad_nvm::core::SecureMemoryError> {
//! let mut mem = SecureMemoryBuilder::new()
//!     .capacity_bytes(1 << 24)            // 16 MiB simulated NVM
//!     .persistent_fraction_eighths(2)     // 4 MiB persistent region
//!     .scheme(PersistScheme::triad_nvm(1))
//!     .build()?;
//!
//! let addr = mem.persistent_region().start();
//! mem.write(addr, &[42u8; 64])?;
//! mem.persist(addr)?;
//! assert_eq!(mem.read(addr)?[0], 42);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use triad_cache as cache;
pub use triad_core as core;
pub use triad_crypto as crypto;
pub use triad_kv as kv;
pub use triad_mem as mem;
pub use triad_meta as meta;
pub use triad_recov as recov;
pub use triad_sim as sim;
pub use triad_workloads as workloads;
