//! A plain-text trace interchange format, so workloads can be
//! recorded once and replayed (or traces captured from other
//! simulators can be fed in).
//!
//! Format — one operation per line, `#` comments, blank lines ignored:
//!
//! ```text
//! # triad-trace v1
//! L 0x1a40 12     # load,             gap = 12 instructions
//! S 0x1a80 3      # store
//! P 0x2000 0      # store + clwb + sfence (persistent store)
//! F 0x2000 0      # clwb + sfence (flush)
//! ```

use std::fmt;
use std::io::{self, BufRead, Write};

use crate::addr::PhysAddr;
use crate::trace::{MemOp, OpKind, TraceSource};

/// Errors from parsing a trace file.
#[derive(Debug)]
pub enum TraceFileError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed line (1-based line number and content).
    Parse {
        /// Line number.
        line: usize,
        /// The offending text.
        text: String,
    },
}

impl fmt::Display for TraceFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceFileError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceFileError::Parse { line, text } => {
                write!(f, "malformed trace line {line}: {text:?}")
            }
        }
    }
}

impl std::error::Error for TraceFileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceFileError::Io(e) => Some(e),
            TraceFileError::Parse { .. } => None,
        }
    }
}

impl From<io::Error> for TraceFileError {
    fn from(e: io::Error) -> Self {
        TraceFileError::Io(e)
    }
}

fn kind_letter(kind: OpKind) -> char {
    match kind {
        OpKind::Load => 'L',
        OpKind::Store => 'S',
        OpKind::PersistentStore => 'P',
        OpKind::Flush => 'F',
    }
}

fn parse_kind(c: &str) -> Option<OpKind> {
    match c {
        "L" => Some(OpKind::Load),
        "S" => Some(OpKind::Store),
        "P" => Some(OpKind::PersistentStore),
        "F" => Some(OpKind::Flush),
        _ => None,
    }
}

/// Writes `ops` to `w` in the v1 text format.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_trace<W: Write>(mut w: W, ops: &[MemOp]) -> io::Result<()> {
    writeln!(w, "# triad-trace v1")?;
    for op in ops {
        writeln!(w, "{} {:#x} {}", kind_letter(op.kind), op.addr.0, op.gap)?;
    }
    Ok(())
}

/// Records up to `limit` operations from `source` into `w`.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn record<W: Write>(source: &mut dyn TraceSource, limit: u64, w: W) -> io::Result<u64> {
    let mut ops = Vec::new();
    while (ops.len() as u64) < limit {
        match source.next_op() {
            Some(op) => ops.push(op),
            None => break,
        }
    }
    write_trace(w, &ops)?;
    Ok(ops.len() as u64)
}

fn parse_line(line: &str, number: usize) -> Result<Option<MemOp>, TraceFileError> {
    let text = line.trim();
    if text.is_empty() || text.starts_with('#') {
        return Ok(None);
    }
    let err = || TraceFileError::Parse {
        line: number,
        text: text.to_string(),
    };
    let mut parts = text.split_whitespace();
    let kind = parts.next().and_then(parse_kind).ok_or_else(err)?;
    let addr_txt = parts.next().ok_or_else(err)?;
    let addr = if let Some(hex) = addr_txt.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).map_err(|_| err())?
    } else {
        addr_txt.parse().map_err(|_| err())?
    };
    let gap = match parts.next() {
        None => 0,
        Some(g) => g.parse().map_err(|_| err())?,
    };
    if parts.next().is_some() {
        return Err(err());
    }
    Ok(Some(MemOp {
        addr: PhysAddr(addr),
        kind,
        gap,
    }))
}

/// Parses a whole trace from a reader.
///
/// # Errors
///
/// Returns [`TraceFileError`] on I/O failure or malformed lines.
pub fn read_trace<R: BufRead>(r: R) -> Result<Vec<MemOp>, TraceFileError> {
    let mut ops = Vec::new();
    for (i, line) in r.lines().enumerate() {
        if let Some(op) = parse_line(&line?, i + 1)? {
            ops.push(op);
        }
    }
    Ok(ops)
}

/// A [`TraceSource`] replaying a parsed trace file.
#[derive(Debug, Clone)]
pub struct ReplayTrace {
    name: String,
    ops: Vec<MemOp>,
    cursor: usize,
    /// Loop back to the start when the trace ends.
    repeat: bool,
}

impl ReplayTrace {
    /// Creates a replayer over parsed operations.
    pub fn new(name: impl Into<String>, ops: Vec<MemOp>, repeat: bool) -> Self {
        ReplayTrace {
            name: name.into(),
            ops,
            cursor: 0,
            repeat,
        }
    }

    /// Parses a trace from any reader and wraps it for replay.
    ///
    /// # Errors
    ///
    /// Returns [`TraceFileError`] on I/O failure or malformed lines.
    pub fn from_reader<R: BufRead>(
        name: impl Into<String>,
        r: R,
        repeat: bool,
    ) -> Result<Self, TraceFileError> {
        Ok(ReplayTrace::new(name, read_trace(r)?, repeat))
    }

    /// Number of operations in the trace.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the trace has no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

impl TraceSource for ReplayTrace {
    fn next_op(&mut self) -> Option<MemOp> {
        if self.cursor >= self.ops.len() {
            if !self.repeat || self.ops.is_empty() {
                return None;
            }
            self.cursor = 0;
        }
        let op = self.ops[self.cursor];
        self.cursor += 1;
        Some(op)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::VecTrace;

    fn sample_ops() -> Vec<MemOp> {
        vec![
            MemOp::load(PhysAddr(0x1a40), 12),
            MemOp::store(PhysAddr(0x1a80), 3),
            MemOp::persist(PhysAddr(0x2000), 0),
            MemOp {
                addr: PhysAddr(0x2000),
                kind: OpKind::Flush,
                gap: 7,
            },
        ]
    }

    #[test]
    fn round_trip_through_text() {
        let ops = sample_ops();
        let mut buf = Vec::new();
        write_trace(&mut buf, &ops).unwrap();
        let parsed = read_trace(buf.as_slice()).unwrap();
        assert_eq!(parsed, ops);
    }

    #[test]
    fn comments_blank_lines_and_decimal_addresses_accepted() {
        let text = "# header\n\nL 4096 2\n  # indented comment\nS 0x40\n";
        let ops = read_trace(text.as_bytes()).unwrap();
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[0].addr, PhysAddr(4096));
        assert_eq!(ops[1].gap, 0, "missing gap defaults to zero");
    }

    #[test]
    fn malformed_lines_are_rejected_with_location() {
        for bad in ["X 0x40 1", "L", "L zzz 1", "L 0x40 1 extra"] {
            let text = format!("L 0x0 0\n{bad}\n");
            match read_trace(text.as_bytes()) {
                Err(TraceFileError::Parse { line, .. }) => assert_eq!(line, 2, "{bad}"),
                other => panic!("{bad}: expected parse error, got {other:?}"),
            }
        }
    }

    #[test]
    fn record_caps_at_limit() {
        let mut src = VecTrace::new("src", sample_ops());
        let mut buf = Vec::new();
        let n = record(&mut src, 2, &mut buf).unwrap();
        assert_eq!(n, 2);
        assert_eq!(read_trace(buf.as_slice()).unwrap().len(), 2);
    }

    #[test]
    fn replay_once_and_repeat() {
        let ops = sample_ops();
        let mut once = ReplayTrace::new("t", ops.clone(), false);
        for expected in &ops {
            assert_eq!(once.next_op().as_ref(), Some(expected));
        }
        assert_eq!(once.next_op(), None);

        let mut looped = ReplayTrace::new("t", ops.clone(), true);
        for _ in 0..3 * ops.len() {
            assert!(looped.next_op().is_some());
        }
        assert_eq!(looped.len(), ops.len());
        assert!(!looped.is_empty());
    }

    #[test]
    fn from_reader_builds_a_source() {
        let text = "L 0x40 1\nP 0x80 2\n";
        let mut t = ReplayTrace::from_reader("file", text.as_bytes(), false).unwrap();
        assert_eq!(t.name(), "file");
        assert_eq!(t.next_op().unwrap().kind, OpKind::Load);
        assert_eq!(t.next_op().unwrap().kind, OpKind::PersistentStore);
    }

    #[test]
    fn io_error_display() {
        let e = TraceFileError::from(io::Error::other("boom"));
        assert!(e.to_string().contains("boom"));
        let p = TraceFileError::Parse {
            line: 3,
            text: "junk".into(),
        };
        assert!(p.to_string().contains("line 3"));
    }
}
