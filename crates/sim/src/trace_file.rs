//! A plain-text trace interchange format, so workloads can be
//! recorded once and replayed (or traces captured from other
//! simulators can be fed in).
//!
//! Format — one operation per line, `#` comments, blank lines ignored:
//!
//! ```text
//! # triad-trace v1
//! L 0x1a40 12     # load,             gap = 12 instructions
//! S 0x1a80 3      # store
//! P 0x2000 0      # store + clwb + sfence (persistent store)
//! F 0x2000 0      # clwb + sfence (flush)
//! # triad-trace end ops=4
//! ```
//!
//! The header and the `end ops=N` footer are mandatory for
//! [`read_trace`]: a file that lost its tail (interrupted copy,
//! truncated download) would otherwise *silently* replay as a shorter
//! workload and skew every downstream statistic. Hand-authored
//! headerless snippets can still be loaded with
//! [`read_trace_lenient`], which performs no integrity checks.

use std::fmt;
use std::io::{self, BufRead, Write};

use crate::addr::PhysAddr;
use crate::trace::{MemOp, OpKind, TraceSource};

/// Errors from parsing a trace file.
#[derive(Debug)]
pub enum TraceFileError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed line (1-based line number and content).
    Parse {
        /// Line number.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// The file does not start with the `# triad-trace v1` header.
    MissingHeader,
    /// The `# triad-trace end ops=N` footer is absent: the file lost
    /// its tail and an unknown number of operations with it.
    Truncated {
        /// Operations successfully parsed before the stream ended.
        found: u64,
    },
    /// The footer's declared operation count disagrees with the body.
    CountMismatch {
        /// Count declared by the footer.
        declared: u64,
        /// Operations actually present.
        found: u64,
    },
}

impl fmt::Display for TraceFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceFileError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceFileError::Parse { line, text } => {
                write!(f, "malformed trace line {line}: {text:?}")
            }
            TraceFileError::MissingHeader => {
                write!(f, "not a triad trace: missing `# triad-trace v1` header")
            }
            TraceFileError::Truncated { found } => {
                write!(
                    f,
                    "truncated trace: no `# triad-trace end` footer after {found} ops"
                )
            }
            TraceFileError::CountMismatch { declared, found } => {
                write!(
                    f,
                    "corrupt trace: footer declares {declared} ops but {found} present"
                )
            }
        }
    }
}

impl std::error::Error for TraceFileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceFileError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceFileError {
    fn from(e: io::Error) -> Self {
        TraceFileError::Io(e)
    }
}

const HEADER: &str = "# triad-trace v1";
const FOOTER_PREFIX: &str = "# triad-trace end ops=";

fn kind_letter(kind: OpKind) -> char {
    match kind {
        OpKind::Load => 'L',
        OpKind::Store => 'S',
        OpKind::PersistentStore => 'P',
        OpKind::Flush => 'F',
    }
}

fn parse_kind(c: &str) -> Option<OpKind> {
    match c {
        "L" => Some(OpKind::Load),
        "S" => Some(OpKind::Store),
        "P" => Some(OpKind::PersistentStore),
        "F" => Some(OpKind::Flush),
        _ => None,
    }
}

/// Writes `ops` to `w` in the v1 text format.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_trace<W: Write>(mut w: W, ops: &[MemOp]) -> io::Result<()> {
    writeln!(w, "{HEADER}")?;
    for op in ops {
        writeln!(w, "{} {:#x} {}", kind_letter(op.kind), op.addr.0, op.gap)?;
    }
    // The footer carries the op count so a reader can tell a complete
    // file from one that lost its tail.
    writeln!(w, "{FOOTER_PREFIX}{}", ops.len())?;
    Ok(())
}

/// Records up to `limit` operations from `source` into `w`.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn record<W: Write>(source: &mut dyn TraceSource, limit: u64, w: W) -> io::Result<u64> {
    let mut ops = Vec::new();
    while (ops.len() as u64) < limit {
        match source.next_op() {
            Some(op) => ops.push(op),
            None => break,
        }
    }
    write_trace(w, &ops)?;
    Ok(ops.len() as u64)
}

fn parse_line(line: &str, number: usize) -> Result<Option<MemOp>, TraceFileError> {
    let text = line.trim();
    if text.is_empty() || text.starts_with('#') {
        return Ok(None);
    }
    let err = || TraceFileError::Parse {
        line: number,
        text: text.to_string(),
    };
    let mut parts = text.split_whitespace();
    let kind = parts.next().and_then(parse_kind).ok_or_else(err)?;
    let addr_txt = parts.next().ok_or_else(err)?;
    let addr = if let Some(hex) = addr_txt.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).map_err(|_| err())?
    } else {
        addr_txt.parse().map_err(|_| err())?
    };
    let gap = match parts.next() {
        None => 0,
        Some(g) => g.parse().map_err(|_| err())?,
    };
    if parts.next().is_some() {
        return Err(err());
    }
    Ok(Some(MemOp {
        addr: PhysAddr(addr),
        kind,
        gap,
    }))
}

/// Parses a complete v1 trace, verifying header and footer.
///
/// # Errors
///
/// Returns [`TraceFileError`] on I/O failure, malformed lines, a
/// missing `# triad-trace v1` header, a missing `# triad-trace end`
/// footer (truncation), or a footer count that disagrees with the
/// body (corruption).
pub fn read_trace<R: BufRead>(r: R) -> Result<Vec<MemOp>, TraceFileError> {
    let mut ops = Vec::new();
    let mut saw_header = false;
    let mut declared: Option<u64> = None;
    for (i, line) in r.lines().enumerate() {
        let line = line?;
        let text = line.trim();
        if !saw_header {
            // The header must be the first non-blank line; anything
            // else means this is not (or no longer) a v1 trace file.
            if text.is_empty() {
                continue;
            }
            if text != HEADER {
                return Err(TraceFileError::MissingHeader);
            }
            saw_header = true;
            continue;
        }
        if declared.is_some() {
            // Nothing but blanks/comments may follow the footer.
            if text.is_empty() || text.starts_with('#') {
                continue;
            }
            return Err(TraceFileError::Parse {
                line: i + 1,
                text: text.to_string(),
            });
        }
        if let Some(count_txt) = text.strip_prefix(FOOTER_PREFIX) {
            let count = count_txt
                .trim()
                .parse()
                .map_err(|_| TraceFileError::Parse {
                    line: i + 1,
                    text: text.to_string(),
                })?;
            declared = Some(count);
            continue;
        }
        if let Some(op) = parse_line(&line, i + 1)? {
            ops.push(op);
        }
    }
    if !saw_header {
        return Err(TraceFileError::MissingHeader);
    }
    match declared {
        None => Err(TraceFileError::Truncated {
            found: ops.len() as u64,
        }),
        Some(declared) if declared != ops.len() as u64 => Err(TraceFileError::CountMismatch {
            declared,
            found: ops.len() as u64,
        }),
        Some(_) => Ok(ops),
    }
}

/// Parses a trace without requiring the header or footer, accepting
/// hand-authored snippets. Performs **no** truncation detection — a
/// file that lost its tail parses as a shorter trace.
///
/// # Errors
///
/// Returns [`TraceFileError`] on I/O failure or malformed lines.
pub fn read_trace_lenient<R: BufRead>(r: R) -> Result<Vec<MemOp>, TraceFileError> {
    let mut ops = Vec::new();
    for (i, line) in r.lines().enumerate() {
        let text = line?;
        // The footer is a comment, so recorded files parse too.
        if let Some(op) = parse_line(&text, i + 1)? {
            ops.push(op);
        }
    }
    Ok(ops)
}

/// A [`TraceSource`] replaying a parsed trace file.
#[derive(Debug, Clone)]
pub struct ReplayTrace {
    name: String,
    ops: Vec<MemOp>,
    cursor: usize,
    /// Loop back to the start when the trace ends.
    repeat: bool,
}

impl ReplayTrace {
    /// Creates a replayer over parsed operations.
    pub fn new(name: impl Into<String>, ops: Vec<MemOp>, repeat: bool) -> Self {
        ReplayTrace {
            name: name.into(),
            ops,
            cursor: 0,
            repeat,
        }
    }

    /// Parses a complete v1 trace (header + footer verified, see
    /// [`read_trace`]) from any reader and wraps it for replay.
    ///
    /// # Errors
    ///
    /// Returns [`TraceFileError`] on I/O failure, malformed lines, or
    /// a missing/inconsistent header or footer.
    pub fn from_reader<R: BufRead>(
        name: impl Into<String>,
        r: R,
        repeat: bool,
    ) -> Result<Self, TraceFileError> {
        Ok(ReplayTrace::new(name, read_trace(r)?, repeat))
    }

    /// Number of operations in the trace.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the trace has no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

impl TraceSource for ReplayTrace {
    fn next_op(&mut self) -> Option<MemOp> {
        if self.cursor >= self.ops.len() {
            if !self.repeat || self.ops.is_empty() {
                return None;
            }
            self.cursor = 0;
        }
        let op = self.ops[self.cursor];
        self.cursor += 1;
        Some(op)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::VecTrace;

    fn sample_ops() -> Vec<MemOp> {
        vec![
            MemOp::load(PhysAddr(0x1a40), 12),
            MemOp::store(PhysAddr(0x1a80), 3),
            MemOp::persist(PhysAddr(0x2000), 0),
            MemOp {
                addr: PhysAddr(0x2000),
                kind: OpKind::Flush,
                gap: 7,
            },
        ]
    }

    #[test]
    fn round_trip_through_text() {
        let ops = sample_ops();
        let mut buf = Vec::new();
        write_trace(&mut buf, &ops).unwrap();
        let parsed = read_trace(buf.as_slice()).unwrap();
        assert_eq!(parsed, ops);
    }

    #[test]
    fn comments_blank_lines_and_decimal_addresses_accepted() {
        let text =
            "# triad-trace v1\n\nL 4096 2\n  # indented comment\nS 0x40\n# triad-trace end ops=2\n";
        let ops = read_trace(text.as_bytes()).unwrap();
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[0].addr, PhysAddr(4096));
        assert_eq!(ops[1].gap, 0, "missing gap defaults to zero");
    }

    #[test]
    fn malformed_lines_are_rejected_with_location() {
        for bad in ["X 0x40 1", "L", "L zzz 1", "L 0x40 1 extra"] {
            let text = format!("# triad-trace v1\nL 0x0 0\n{bad}\n");
            match read_trace(text.as_bytes()) {
                Err(TraceFileError::Parse { line, .. }) => assert_eq!(line, 3, "{bad}"),
                other => panic!("{bad}: expected parse error, got {other:?}"),
            }
        }
    }

    #[test]
    fn truncated_trace_is_rejected() {
        // Regression: a trace that lost its tail used to parse as a
        // *shorter valid trace* — every downstream statistic silently
        // ran a different workload. The footer now makes the loss
        // detectable.
        let ops = sample_ops();
        let mut buf = Vec::new();
        write_trace(&mut buf, &ops).unwrap();
        let text = String::from_utf8(buf).unwrap();
        // Drop the footer and the last op, as an interrupted copy would.
        let cut: Vec<&str> = text.lines().collect();
        let truncated = cut[..cut.len() - 2].join("\n");
        match read_trace(truncated.as_bytes()) {
            Err(TraceFileError::Truncated { found }) => {
                assert_eq!(found, ops.len() as u64 - 1);
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
        // The lenient reader documents the old behaviour: it yields
        // the short stream without complaint.
        let lenient = read_trace_lenient(truncated.as_bytes()).unwrap();
        assert_eq!(lenient.len(), ops.len() - 1);
    }

    #[test]
    fn footer_count_mismatch_is_rejected() {
        // A tampered or mid-body-truncated file whose footer survived.
        let text = "# triad-trace v1\nL 0x40 1\n# triad-trace end ops=3\n";
        match read_trace(text.as_bytes()) {
            Err(TraceFileError::CountMismatch { declared, found }) => {
                assert_eq!((declared, found), (3, 1));
            }
            other => panic!("expected CountMismatch, got {other:?}"),
        }
    }

    #[test]
    fn missing_header_is_rejected() {
        for text in ["L 0x40 1\n", "# not a trace\nL 0x40 1\n", ""] {
            match read_trace(text.as_bytes()) {
                Err(TraceFileError::MissingHeader) => {}
                other => panic!("{text:?}: expected MissingHeader, got {other:?}"),
            }
        }
        // Lenient accepts hand-authored headerless snippets.
        assert_eq!(
            read_trace_lenient(b"L 0x40 1\n".as_slice()).unwrap().len(),
            1
        );
    }

    #[test]
    fn garbage_after_footer_is_rejected() {
        let text = "# triad-trace v1\nL 0x40 1\n# triad-trace end ops=1\nS 0x80 0\n";
        match read_trace(text.as_bytes()) {
            Err(TraceFileError::Parse { line, .. }) => assert_eq!(line, 4),
            other => panic!("expected Parse, got {other:?}"),
        }
        // Trailing comments/blanks after the footer stay legal.
        let ok = "# triad-trace v1\nL 0x40 1\n# triad-trace end ops=1\n\n# eof\n";
        assert_eq!(read_trace(ok.as_bytes()).unwrap().len(), 1);
    }

    #[test]
    fn corrupt_footer_count_is_a_parse_error() {
        let text = "# triad-trace v1\n# triad-trace end ops=zz\n";
        match read_trace(text.as_bytes()) {
            Err(TraceFileError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected Parse, got {other:?}"),
        }
    }

    #[test]
    fn record_caps_at_limit() {
        let mut src = VecTrace::new("src", sample_ops());
        let mut buf = Vec::new();
        let n = record(&mut src, 2, &mut buf).unwrap();
        assert_eq!(n, 2);
        assert_eq!(read_trace(buf.as_slice()).unwrap().len(), 2);
    }

    #[test]
    fn replay_once_and_repeat() {
        let ops = sample_ops();
        let mut once = ReplayTrace::new("t", ops.clone(), false);
        for expected in &ops {
            assert_eq!(once.next_op().as_ref(), Some(expected));
        }
        assert_eq!(once.next_op(), None);

        let mut looped = ReplayTrace::new("t", ops.clone(), true);
        for _ in 0..3 * ops.len() {
            assert!(looped.next_op().is_some());
        }
        assert_eq!(looped.len(), ops.len());
        assert!(!looped.is_empty());
    }

    #[test]
    fn from_reader_builds_a_source() {
        let text = "# triad-trace v1\nL 0x40 1\nP 0x80 2\n# triad-trace end ops=2\n";
        let mut t = ReplayTrace::from_reader("file", text.as_bytes(), false).unwrap();
        assert_eq!(t.name(), "file");
        assert_eq!(t.next_op().unwrap().kind, OpKind::Load);
        assert_eq!(t.next_op().unwrap().kind, OpKind::PersistentStore);
    }

    #[test]
    fn io_error_display() {
        let e = TraceFileError::from(io::Error::other("boom"));
        assert!(e.to_string().contains("boom"));
        let p = TraceFileError::Parse {
            line: 3,
            text: "junk".into(),
        };
        assert!(p.to_string().contains("line 3"));
    }
}
