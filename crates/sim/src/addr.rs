//! Physical-address vocabulary.
//!
//! The whole simulator operates on 64-byte blocks (cache lines), the
//! granularity of every structure in the paper: data blocks, counter
//! blocks, MAC blocks and Merkle-tree nodes are all 64 B.

use std::fmt;
use std::ops::{Add, Sub};

/// Bytes per cache block / memory block (fixed at 64 in the paper).
pub const BLOCK_BYTES: usize = 64;

/// `log2(BLOCK_BYTES)`.
pub const BLOCK_SHIFT: u32 = 6;

/// A byte-granularity physical address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(pub u64);

/// A 64-byte-block-granularity physical address (`PhysAddr >> 6`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockAddr(pub u64);

impl PhysAddr {
    /// The block containing this byte address.
    pub const fn block(self) -> BlockAddr {
        BlockAddr(self.0 >> BLOCK_SHIFT)
    }

    /// Offset of this byte within its 64-byte block.
    pub const fn block_offset(self) -> usize {
        (self.0 & (BLOCK_BYTES as u64 - 1)) as usize
    }

    /// Whether the address is 64-byte aligned.
    pub const fn is_block_aligned(self) -> bool {
        self.0 & (BLOCK_BYTES as u64 - 1) == 0
    }
}

impl BlockAddr {
    /// The first byte address of the block.
    pub const fn base(self) -> PhysAddr {
        PhysAddr(self.0 << BLOCK_SHIFT)
    }

    /// The 4 KiB page index of this block (64 blocks per page).
    pub const fn page(self) -> u64 {
        self.0 >> 6
    }

    /// Index of this block within its 4 KiB page, in `0..64`.
    pub const fn page_offset(self) -> usize {
        (self.0 & 63) as usize
    }
}

impl Add<u64> for BlockAddr {
    type Output = BlockAddr;
    fn add(self, rhs: u64) -> BlockAddr {
        BlockAddr(self.0 + rhs)
    }
}

impl Sub<BlockAddr> for BlockAddr {
    type Output = u64;
    fn sub(self, rhs: BlockAddr) -> u64 {
        self.0 - rhs.0
    }
}

impl Add<u64> for PhysAddr {
    type Output = PhysAddr;
    fn add(self, rhs: u64) -> PhysAddr {
        PhysAddr(self.0 + rhs)
    }
}

impl From<u64> for PhysAddr {
    fn from(v: u64) -> Self {
        PhysAddr(v)
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blk:0x{:x}", self.0)
    }
}

impl fmt::LowerHex for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::LowerHex for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_round_trip() {
        let a = PhysAddr(0x1234);
        assert_eq!(a.block(), BlockAddr(0x48));
        assert_eq!(a.block_offset(), 0x34);
        assert_eq!(a.block().base(), PhysAddr(0x1200));
    }

    #[test]
    fn alignment() {
        assert!(PhysAddr(0x40).is_block_aligned());
        assert!(!PhysAddr(0x41).is_block_aligned());
        assert!(PhysAddr(0).is_block_aligned());
    }

    #[test]
    fn page_decomposition() {
        // Block 65 is the second block of page 1.
        let b = BlockAddr(65);
        assert_eq!(b.page(), 1);
        assert_eq!(b.page_offset(), 1);
    }

    #[test]
    fn block_arithmetic() {
        assert_eq!(BlockAddr(5) + 3, BlockAddr(8));
        assert_eq!(BlockAddr(8) - BlockAddr(5), 3);
    }
}
