//! A tiny deterministic pseudo-random generator (SplitMix64).
//!
//! This is the **only** source of randomness in the whole workspace:
//! simulator internals (random cache replacement), workload generators
//! (SPEC profiles, PMDK traces, Zipf sampling) and the in-repo
//! property-testing harness ([`crate::prop`]) all draw from it, which
//! keeps every run reproducible from a single `u64` seed with zero
//! external crates.

/// SplitMix64: a fast, well-distributed 64-bit PRNG (Steele et al.,
/// "Fast splittable pseudorandom number generators", OOPSLA 2014).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

/// The SplitMix64 state increment ("golden gamma").
const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// Finalising mix of the SplitMix64 reference implementation.
const fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SplitMix64 {
    /// Creates a generator from a seed; equal seeds give equal streams.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Creates the generator for stream `stream` of `seed`: the same
    /// seed yields independent, reproducible streams for distinct
    /// stream indices (e.g. one per property-test case).
    pub const fn stream(seed: u64, stream: u64) -> Self {
        SplitMix64 {
            state: seed ^ mix(stream.wrapping_mul(GAMMA).wrapping_add(GAMMA)),
        }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GAMMA);
        mix(self.state)
    }

    /// Next 32 uniformly distributed bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Splits off an independent child generator (Steele et al.'s
    /// `split`): the child's stream shares no prefix with the parent's,
    /// and the parent advances by one step, so repeated forks yield
    /// pairwise-independent streams.
    pub fn fork(&mut self) -> Self {
        SplitMix64 {
            state: mix(self.next_u64().wrapping_add(GAMMA)),
        }
    }

    /// Fills `dest` with uniformly distributed bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// Uniform value in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Multiply-shift: unbiased enough for replacement decisions.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in the half-open range `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range {range:?}");
        range.start + self.below(range.end - range.start)
    }

    /// Uniform value in the closed range `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range_inclusive(&mut self, range: std::ops::RangeInclusive<u64>) -> u64 {
        let (lo, hi) = (*range.start(), *range.end());
        assert!(lo <= hi, "empty range {lo}..={hi}");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.below(hi - lo + 1)
    }

    /// Uniform `f64` in `[0, 1)` with full 53-bit mantissa resolution.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        self.next_f64() < p
    }
}

impl Default for SplitMix64 {
    fn default() -> Self {
        SplitMix64::new(0x5EED_5EED_5EED_5EED)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_first_output() {
        // Reference value for seed 0 from the SplitMix64 reference
        // implementation.
        let mut g = SplitMix64::new(0);
        assert_eq!(g.next_u64(), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn below_respects_bound() {
        let mut g = SplitMix64::new(42);
        for _ in 0..1000 {
            assert!(g.below(10) < 10);
        }
    }

    #[test]
    fn below_covers_range() {
        let mut g = SplitMix64::new(9);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[g.below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        SplitMix64::new(1).below(0);
    }

    #[test]
    fn forks_are_deterministic_and_independent() {
        let mut a = SplitMix64::new(11);
        let mut b = SplitMix64::new(11);
        let mut fa = a.fork();
        let mut fb = b.fork();
        for _ in 0..100 {
            assert_eq!(fa.next_u64(), fb.next_u64(), "equal states fork equally");
        }
        // The fork and its parent produce different streams.
        let mut parent = SplitMix64::new(11);
        let mut child = parent.fork();
        let collide = (0..100)
            .filter(|_| parent.next_u64() == child.next_u64())
            .count();
        assert!(collide == 0, "parent and child streams overlap");
    }

    #[test]
    fn sibling_forks_differ() {
        let mut g = SplitMix64::new(3);
        let mut f1 = g.fork();
        let mut f2 = g.fork();
        assert_ne!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn streams_differ_but_reproduce() {
        let mut s0 = SplitMix64::stream(77, 0);
        let mut s1 = SplitMix64::stream(77, 1);
        assert_ne!(s0.next_u64(), s1.next_u64());
        let mut again = SplitMix64::stream(77, 1);
        let mut s1b = SplitMix64::stream(77, 1);
        assert_eq!(again.next_u64(), s1b.next_u64());
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut g = SplitMix64::new(5);
        let mut buf = [0u8; 13];
        g.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        // Same seed, same bytes.
        let mut g2 = SplitMix64::new(5);
        let mut buf2 = [0u8; 13];
        g2.fill_bytes(&mut buf2);
        assert_eq!(buf, buf2);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut g = SplitMix64::new(21);
        for _ in 0..2000 {
            let v = g.gen_range(10..17);
            assert!((10..17).contains(&v));
            let w = g.gen_range_inclusive(3..=3);
            assert_eq!(w, 3);
            let x = g.gen_range_inclusive(0..=6);
            assert!(x <= 6);
        }
    }

    #[test]
    fn gen_range_covers_every_value() {
        let mut g = SplitMix64::new(8);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[(g.gen_range(5..12) - 5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        SplitMix64::new(1).gen_range(4..4);
    }

    #[test]
    fn f64_is_uniform_unit_interval() {
        let mut g = SplitMix64::new(13);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = g.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut g = SplitMix64::new(17);
        let hits = (0..10_000).filter(|_| g.gen_bool(0.3)).count();
        let ratio = hits as f64 / 10_000.0;
        assert!((ratio - 0.3).abs() < 0.02, "ratio = {ratio}");
        assert!(!g.gen_bool(0.0));
        assert!(g.gen_bool(1.0));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn gen_bool_rejects_bad_probability() {
        SplitMix64::new(1).gen_bool(1.5);
    }
}
