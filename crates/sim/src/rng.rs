//! A tiny deterministic pseudo-random generator (SplitMix64).
//!
//! Used by simulator internals (e.g. random cache replacement) that
//! need cheap, reproducible randomness without a `rand` dependency.
//! Workload generators use `rand::SmallRng` instead.

/// SplitMix64: a fast, well-distributed 64-bit PRNG (Steele et al.,
/// "Fast splittable pseudorandom number generators", OOPSLA 2014).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed; equal seeds give equal streams.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Multiply-shift: unbiased enough for replacement decisions.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

impl Default for SplitMix64 {
    fn default() -> Self {
        SplitMix64::new(0x5EED_5EED_5EED_5EED)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_first_output() {
        // Reference value for seed 0 from the SplitMix64 reference
        // implementation.
        let mut g = SplitMix64::new(0);
        assert_eq!(g.next_u64(), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn below_respects_bound() {
        let mut g = SplitMix64::new(42);
        for _ in 0..1000 {
            assert!(g.below(10) < 10);
        }
    }

    #[test]
    fn below_covers_range() {
        let mut g = SplitMix64::new(9);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[g.below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        SplitMix64::new(1).below(0);
    }
}
