//! Structured event tracing: an opt-in JSON-lines sink for
//! machine-readable simulator events.
//!
//! Components hold an `Option<SharedEventSink>` that defaults to
//! `None`, so tracing costs nothing unless a harness wires a sink in.
//! Every record is stamped with simulated [`Time`] only — never wall
//! clock — so traces are bit-reproducible across runs and machines.
//!
//! One record per line:
//!
//! ```json
//! {"t_ps":77500,"event":"wpq_enqueue","addr":64,"occupancy":1}
//! ```
//!
//! Field order is the order the emitter passed, making the stream
//! diffable between runs.

use crate::time::Time;
use std::fmt;
use std::io::Write;
use std::sync::{Arc, Mutex};

/// A single typed field value in an event record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// An unsigned integer field.
    U64(u64),
    /// A boolean field.
    Bool(bool),
    /// A string field (JSON-escaped on output).
    Str(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

fn write_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON-lines event sink wrapping any [`Write`] destination.
///
/// IO failures latch the [`EventSink::failed`] flag and silence the
/// sink instead of panicking: tracing is diagnostics, not simulation
/// state, and must never abort a run.
pub struct EventSink {
    writer: Box<dyn Write + Send>,
    emitted: u64,
    failed: bool,
}

impl fmt::Debug for EventSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventSink")
            .field("emitted", &self.emitted)
            .field("failed", &self.failed)
            .finish()
    }
}

impl EventSink {
    /// Wraps a writer (a file, a `Vec<u8>`, ...).
    pub fn new(writer: Box<dyn Write + Send>) -> Self {
        EventSink {
            writer,
            emitted: 0,
            failed: false,
        }
    }

    /// A shared, reference-counted sink handle that several components
    /// can emit into — `Send`, so a sink can accompany a shard engine
    /// onto a worker thread.
    pub fn shared(writer: Box<dyn Write + Send>) -> SharedEventSink {
        Arc::new(Mutex::new(EventSink::new(writer)))
    }

    /// Number of records successfully written so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Whether an IO error has silenced the sink.
    pub fn failed(&self) -> bool {
        self.failed
    }

    /// Emits one record at simulated time `t` with the given fields,
    /// in the order given. `t_ps` and `event` always lead.
    pub fn emit(&mut self, t: Time, event: &str, fields: &[(&str, Value)]) {
        if self.failed {
            return;
        }
        let mut line = String::with_capacity(64);
        line.push_str("{\"t_ps\":");
        line.push_str(&t.as_ps().to_string());
        line.push_str(",\"event\":");
        write_json_str(&mut line, event);
        for (name, value) in fields {
            line.push(',');
            write_json_str(&mut line, name);
            line.push(':');
            match value {
                Value::U64(v) => line.push_str(&v.to_string()),
                Value::Bool(b) => line.push_str(if *b { "true" } else { "false" }),
                Value::Str(s) => write_json_str(&mut line, s),
            }
        }
        line.push('}');
        line.push('\n');
        if self.writer.write_all(line.as_bytes()).is_err() {
            self.failed = true;
            return;
        }
        self.emitted += 1;
    }

    /// Flushes the underlying writer.
    pub fn flush(&mut self) {
        if self.writer.flush().is_err() {
            self.failed = true;
        }
    }
}

/// Canonical names of cross-layer trace events. Emitters and trace
/// consumers share this vocabulary instead of scattering string
/// literals; the KV layer (`triad-kv`) is the first client.
pub mod kind {
    /// A KV put became durable (fields: `key`, `vlen`, `seq`).
    pub const KV_PUT: &str = "kv_put";
    /// A KV delete became durable (fields: `key`, `found`, `seq`).
    pub const KV_DELETE: &str = "kv_delete";
    /// A KV transaction's commit marker persisted (fields: `seq`,
    /// `writes`).
    pub const KV_TXN_COMMIT: &str = "kv_txn_commit";
    /// A group commit flushed: one commit marker covering a whole
    /// batch of key mutations (fields: `seq`, `ops`, `writes`).
    pub const KV_GROUP_COMMIT: &str = "kv_group_commit";
    /// A KV store replayed its write-ahead log at open (fields:
    /// `records_scanned`, `txns_applied`, `torn_tail`).
    pub const KV_REPLAY: &str = "kv_replay";
}

/// The handle components store: cheap to clone, absent by default.
/// `Arc<Mutex<..>>` (not `Rc<RefCell<..>>`) so an engine that holds a
/// sink stays `Send` and can live on a shard worker thread; emitters
/// on one shard never contend because each shard owns its own sink.
pub type SharedEventSink = Arc<Mutex<EventSink>>;

/// Emits into an optional shared sink; no-op when tracing is off. A
/// poisoned sink mutex (a panicking emitter elsewhere) silences the
/// sink rather than propagating the panic: tracing is diagnostics,
/// not simulation state.
pub fn emit(sink: &Option<SharedEventSink>, t: Time, event: &str, fields: &[(&str, Value)]) {
    if let Some(s) = sink {
        if let Ok(mut sink) = s.lock() {
            sink.emit(t, event, fields);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io;

    /// A Vec-backed writer we can inspect after the sink is dropped.
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);
    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn capture() -> (SharedEventSink, Arc<Mutex<Vec<u8>>>) {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let sink = EventSink::shared(Box::new(SharedBuf(buf.clone())));
        (sink, buf)
    }

    #[test]
    fn emits_json_lines_in_field_order() {
        let (sink, buf) = capture();
        emit(
            &Some(sink.clone()),
            Time::from_ps(77_500),
            "wpq_enqueue",
            &[("addr", 64u64.into()), ("occupancy", 1u64.into())],
        );
        emit(
            &Some(sink.clone()),
            Time::from_ps(80_000),
            "crash",
            &[("injected", true.into()), ("phase", "run".into())],
        );
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert_eq!(
            text,
            "{\"t_ps\":77500,\"event\":\"wpq_enqueue\",\"addr\":64,\"occupancy\":1}\n\
             {\"t_ps\":80000,\"event\":\"crash\",\"injected\":true,\"phase\":\"run\"}\n"
        );
        assert_eq!(sink.lock().unwrap().emitted(), 2);
        assert!(!sink.lock().unwrap().failed());
    }

    #[test]
    fn escapes_strings() {
        let (sink, buf) = capture();
        sink.lock()
            .unwrap()
            .emit(Time::ZERO, "note", &[("msg", "a\"b\\c\nd\te\u{1}".into())]);
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert_eq!(
            text,
            "{\"t_ps\":0,\"event\":\"note\",\"msg\":\"a\\\"b\\\\c\\nd\\te\\u0001\"}\n"
        );
    }

    #[test]
    fn shared_sinks_are_send() {
        // The sharded serving layer moves engines (which hold an
        // optional sink) onto worker threads; the handle must be Send.
        fn assert_send<T: Send>() {}
        assert_send::<SharedEventSink>();
        assert_send::<Option<SharedEventSink>>();
    }

    #[test]
    fn none_sink_is_a_noop() {
        // Must not panic or allocate a record anywhere.
        emit(&None, Time::ZERO, "ignored", &[("x", 1u64.into())]);
    }

    #[test]
    fn io_errors_latch_failed_instead_of_panicking() {
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("boom"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Err(io::Error::other("boom"))
            }
        }
        let mut sink = EventSink::new(Box::new(Broken));
        sink.emit(Time::ZERO, "e", &[]);
        assert!(sink.failed());
        assert_eq!(sink.emitted(), 0);
        // Further emits are silently dropped.
        sink.emit(Time::ZERO, "e", &[]);
        assert_eq!(sink.emitted(), 0);
    }
}
