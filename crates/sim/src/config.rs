//! Simulated-system configuration.
//!
//! [`SystemConfig::isca19`] reproduces Table 1 of the paper exactly;
//! smaller presets exist for unit tests and property tests, where a
//! 16 GB memory with multi-megabyte caches would be needlessly slow.

use crate::time::Duration;

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes. Must be `ways * sets * 64`.
    pub size_bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Access (hit) latency.
    pub latency: Duration,
}

impl CacheConfig {
    /// Creates a cache configuration with a hit latency in CPU cycles.
    pub const fn new(size_bytes: usize, ways: usize, latency_cycles: u64) -> Self {
        CacheConfig {
            size_bytes,
            ways,
            latency: Duration::from_cpu_cycles(latency_cycles),
        }
    }

    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the size is not an exact multiple of `ways * 64`.
    pub fn sets(&self) -> usize {
        let lines = self.size_bytes / crate::addr::BLOCK_BYTES;
        assert!(
            lines > 0 && lines.is_multiple_of(self.ways),
            "cache size {} not divisible into {} ways of 64B lines",
            self.size_bytes,
            self.ways
        );
        lines / self.ways
    }
}

/// PCM main-memory timing and organisation (Table 1, middle section).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Independent channels (each with its own bus and banks).
    pub channels: usize,
    /// Array read latency (row activation to data): 60 ns for PCM.
    pub read_latency: Duration,
    /// Array write latency: 150 ns for PCM.
    pub write_latency: Duration,
    /// Ranks per channel.
    pub ranks: usize,
    /// Banks per rank.
    pub banks_per_rank: usize,
    /// Row-buffer size in bytes.
    pub row_buffer_bytes: u64,
    /// Data-bus transfer time per 64 B block (tBURST): 5 ns.
    pub burst: Duration,
    /// Row-buffer hit latency (tCL): 12.5 ns → 12500 ps.
    pub t_cl: Duration,
    /// Entries in the ADR-protected write-pending queue.
    pub wpq_entries: usize,
}

/// Encryption-counter organisation (§2.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CounterMode {
    /// One 64 B block per 4 KiB page: 64-bit major + 64 × 7-bit minor
    /// counters. Space-efficient and cache-friendly; the paper's (and
    /// the literature's) default.
    #[default]
    Split,
    /// SGX-style monolithic 64-bit counters, eight per 64 B block:
    /// 8× the metadata footprint, correspondingly worse counter-cache
    /// hit rates. Kept as an ablation.
    Monolithic,
}

impl std::fmt::Display for CounterMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CounterMode::Split => write!(f, "split"),
            CounterMode::Monolithic => write!(f, "monolithic"),
        }
    }
}

/// Security-engine configuration (Table 1, bottom section).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SecurityConfig {
    /// Counter cache geometry (128 KB, 8-way).
    pub counter_cache: CacheConfig,
    /// Merkle-tree cache geometry (128 KB, 8-way).
    pub mt_cache: CacheConfig,
    /// Merkle-tree arity (8 children per node: 8 × 8 B MACs in 64 B).
    pub bmt_arity: usize,
    /// Encryption-counter organisation.
    pub counter_mode: CounterMode,
    /// Latency of one AES pad generation / one 64B→8B MAC computation.
    pub hash_latency: Duration,
    /// Latency to check/update one on-chip persistent register.
    pub persistent_register_latency: Duration,
}

/// Core-model configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreConfig {
    /// Base CPI for non-memory instructions (out-of-order cores hide
    /// most ILP; 0.5–1.0 is typical for SPEC on a 4-wide OOO core).
    pub base_cpi_ps: u64,
    /// Maximum overlapped outstanding misses per core, approximating
    /// the MLP an out-of-order window extracts.
    pub max_outstanding_misses: usize,
}

/// The complete simulated system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SystemConfig {
    /// Number of cores.
    pub cores: usize,
    /// Core model.
    pub core: CoreConfig,
    /// Private L1 data cache (32 KB, 2-way, 2 cycles).
    pub l1: CacheConfig,
    /// Private L2 (512 KB, 8-way, 20 cycles).
    pub l2: CacheConfig,
    /// Shared L3 (8 MB, 64-way, 32 cycles).
    pub l3: CacheConfig,
    /// Main memory.
    pub mem: MemConfig,
    /// Security engine.
    pub security: SecurityConfig,
    /// Fraction of the physical space that is the persistent region,
    /// in eighths (`2` = 2/8 = 25 %, matching 4 GB of 16 GB). §3.3.1
    /// requires the ratio be a whole number of eighths so no BMT root
    /// MAC covers both region kinds.
    pub persistent_eighths: u8,
}

impl SystemConfig {
    /// The exact configuration of Table 1 of the ISCA'19 paper:
    /// 8 cores at 1 GHz, 32 KB/512 KB/8 MB caches, 16 GB PCM with
    /// 60 ns reads and 150 ns writes, 128 KB counter and Merkle-tree
    /// caches, 8-ary BMT, and the last 4 GB as the persistent region.
    pub fn isca19() -> Self {
        SystemConfig {
            cores: 8,
            core: CoreConfig {
                base_cpi_ps: 500, // 0.5 CPI at 1 GHz
                max_outstanding_misses: 8,
            },
            l1: CacheConfig::new(32 << 10, 2, 2),
            l2: CacheConfig::new(512 << 10, 8, 20),
            l3: CacheConfig::new(8 << 20, 64, 32),
            mem: MemConfig {
                capacity_bytes: 16 << 30,
                channels: 1,
                read_latency: Duration::from_ns(60),
                write_latency: Duration::from_ns(150),
                ranks: 2,
                banks_per_rank: 8,
                row_buffer_bytes: 1 << 10,
                burst: Duration::from_ns(5),
                t_cl: Duration::from_ps(12_500),
                wpq_entries: 64,
            },
            security: SecurityConfig {
                counter_cache: CacheConfig::new(128 << 10, 8, 3),
                mt_cache: CacheConfig::new(128 << 10, 8, 3),
                bmt_arity: 8,
                counter_mode: CounterMode::Split,
                hash_latency: Duration::from_ns(14),
                persistent_register_latency: Duration::from_ns(1),
            },
            persistent_eighths: 2,
        }
    }

    /// A small configuration for unit/property tests: 4 MiB memory,
    /// kilobyte-scale caches, same ratios and policies as `isca19`.
    pub fn tiny() -> Self {
        SystemConfig {
            cores: 2,
            core: CoreConfig {
                base_cpi_ps: 500,
                max_outstanding_misses: 4,
            },
            l1: CacheConfig::new(2 << 10, 2, 2),
            l2: CacheConfig::new(8 << 10, 4, 20),
            l3: CacheConfig::new(32 << 10, 8, 32),
            mem: MemConfig {
                capacity_bytes: 4 << 20,
                channels: 1,
                read_latency: Duration::from_ns(60),
                write_latency: Duration::from_ns(150),
                ranks: 1,
                banks_per_rank: 4,
                row_buffer_bytes: 1 << 10,
                burst: Duration::from_ns(5),
                t_cl: Duration::from_ps(12_500),
                wpq_entries: 16,
            },
            security: SecurityConfig {
                counter_cache: CacheConfig::new(4 << 10, 4, 3),
                mt_cache: CacheConfig::new(4 << 10, 4, 3),
                bmt_arity: 8,
                counter_mode: CounterMode::Split,
                hash_latency: Duration::from_ns(14),
                persistent_register_latency: Duration::from_ns(1),
            },
            persistent_eighths: 2,
        }
    }

    /// Size of the persistent region in bytes.
    pub fn persistent_bytes(&self) -> u64 {
        self.mem.capacity_bytes / 8 * self.persistent_eighths as u64
    }

    /// Checks internal consistency (cache geometries divide evenly,
    /// persistent ratio is a legal number of eighths, capacity is a
    /// whole number of 4 KiB pages).
    pub fn validate(&self) -> Result<(), String> {
        if self.persistent_eighths > 8 {
            return Err(format!(
                "persistent_eighths must be 0..=8, got {}",
                self.persistent_eighths
            ));
        }
        if !self.mem.capacity_bytes.is_multiple_of(8 * 4096) {
            return Err("capacity must be a multiple of 8 pages".to_string());
        }
        for (name, c) in [
            ("l1", &self.l1),
            ("l2", &self.l2),
            ("l3", &self.l3),
            ("counter_cache", &self.security.counter_cache),
            ("mt_cache", &self.security.mt_cache),
        ] {
            let lines = c.size_bytes / crate::addr::BLOCK_BYTES;
            if lines == 0 || !lines.is_multiple_of(c.ways) {
                return Err(format!("{name}: bad geometry {c:?}"));
            }
        }
        if !self.security.bmt_arity.is_power_of_two() || self.security.bmt_arity < 2 {
            return Err("bmt_arity must be a power of two >= 2".to_string());
        }
        Ok(())
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig::isca19()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isca19_matches_table1() {
        let c = SystemConfig::isca19();
        assert_eq!(c.cores, 8);
        assert_eq!(c.l1.size_bytes, 32 << 10);
        assert_eq!(c.l1.ways, 2);
        assert_eq!(c.l2.size_bytes, 512 << 10);
        assert_eq!(c.l3.size_bytes, 8 << 20);
        assert_eq!(c.l3.ways, 64);
        assert_eq!(c.mem.capacity_bytes, 16 << 30);
        assert_eq!(c.mem.read_latency, Duration::from_ns(60));
        assert_eq!(c.mem.write_latency, Duration::from_ns(150));
        assert_eq!(c.security.counter_cache.size_bytes, 128 << 10);
        assert_eq!(c.security.bmt_arity, 8);
        assert_eq!(c.persistent_bytes(), 4 << 30);
        c.validate().expect("Table 1 config must validate");
    }

    #[test]
    fn tiny_validates() {
        SystemConfig::tiny().validate().unwrap();
    }

    #[test]
    fn sets_computation() {
        let c = CacheConfig::new(32 << 10, 2, 2);
        assert_eq!(c.sets(), 256);
    }

    #[test]
    fn bad_ratio_rejected() {
        let mut c = SystemConfig::tiny();
        c.persistent_eighths = 9;
        assert!(c.validate().is_err());
    }

    #[test]
    fn bad_cache_geometry_rejected() {
        let mut c = SystemConfig::tiny();
        c.l1.ways = 3; // 32 lines not divisible by 3
        assert!(c.validate().is_err());
    }

    #[test]
    fn bad_arity_rejected() {
        let mut c = SystemConfig::tiny();
        c.security.bmt_arity = 6;
        assert!(c.validate().is_err());
    }
}
