//! Deterministic multi-thread interleaving scheduler.
//!
//! Concurrent persistent structures (the `triad-recov` crate) are
//! driven by *logical* threads: each thread's operation is a step
//! machine, and a single driver loop executes one step of one thread
//! at a time. This module decides **which** thread steps next — a
//! seeded [`SplitMix64`] choice over the runnable set — so every
//! interleaving is reproducible from a `u64` seed, exactly like the
//! rest of the workspace's randomness.
//!
//! On top of step choice the scheduler owns **per-thread crash
//! injection**: [`Interleaver::arm_thread_crash`] arms a crash that
//! fires *instead of* the victim's `k`-th step (0-based, mirroring
//! `inject_crash_after_persists(0)` = "before the next one"). When the
//! armed point is reached the scheduler emits
//! [`SchedEvent::CrashThread`] and parks the thread; the driver models
//! the crash (drop the thread's volatile state) and calls
//! [`Interleaver::revive`] when the thread restarts and begins
//! recovery.
//!
//! Arming is guarded by typed errors rather than silent overwrites:
//! re-arming a thread whose crash has not fired yet is a
//! [`SchedError::CrashAlreadyArmed`] — the same
//! whichever-fires-first-wins discipline the engine-level hooks adopt
//! (see `SecureMemory::arm_crash` in `triad-core`).

use std::error::Error;
use std::fmt;

use crate::rng::SplitMix64;

/// Errors of the interleaving scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedError {
    /// A thread index was out of range.
    NoSuchThread {
        /// The rejected index.
        thread: usize,
        /// The number of threads the scheduler was built with.
        threads: usize,
    },
    /// `arm_thread_crash` was called while a crash was already armed
    /// on the same thread and had not fired yet.
    CrashAlreadyArmed {
        /// The thread with the pending crash.
        thread: usize,
        /// The step the pending crash is armed at.
        at_step: u64,
    },
    /// The requested crash step has already been executed, so the
    /// crash could never fire.
    CrashInPast {
        /// The thread.
        thread: usize,
        /// The requested step.
        at_step: u64,
        /// Steps the thread has already executed.
        taken: u64,
    },
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::NoSuchThread { thread, threads } => {
                write!(f, "thread {thread} out of range (scheduler has {threads})")
            }
            SchedError::CrashAlreadyArmed { thread, at_step } => {
                write!(
                    f,
                    "thread {thread} already has a crash armed at step {at_step}; \
                     disarm it before re-arming"
                )
            }
            SchedError::CrashInPast {
                thread,
                at_step,
                taken,
            } => {
                write!(
                    f,
                    "thread {thread} has already executed {taken} steps; \
                     a crash at step {at_step} can never fire"
                )
            }
        }
    }
}

impl Error for SchedError {}

/// What the driver should do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedEvent {
    /// Execute one step of thread `t`.
    Run(usize),
    /// Thread `t` crashes *instead of* executing its next step: drop
    /// its volatile state. The thread is parked until
    /// [`Interleaver::revive`].
    CrashThread(usize),
}

/// Per-thread scheduler state.
#[derive(Debug, Clone)]
struct ThreadSched {
    /// Eligible for step choice.
    runnable: bool,
    /// Steps executed so far (crashes do not count as steps).
    taken: u64,
    /// Crash armed to fire instead of step `taken == at`.
    crash_at: Option<u64>,
}

/// Seeded uniform interleaver over a fixed set of logical threads,
/// with per-thread crash injection. See the module docs.
#[derive(Debug, Clone)]
pub struct Interleaver {
    rng: SplitMix64,
    threads: Vec<ThreadSched>,
}

impl Interleaver {
    /// A scheduler over `threads` runnable threads; equal seeds give
    /// equal schedules over equal call sequences.
    pub fn new(seed: u64, threads: usize) -> Self {
        Interleaver {
            rng: SplitMix64::stream(seed, 0x5C4E_D01E),
            threads: vec![
                ThreadSched {
                    runnable: true,
                    taken: 0,
                    crash_at: None,
                };
                threads
            ],
        }
    }

    fn check(&self, thread: usize) -> Result<(), SchedError> {
        if thread >= self.threads.len() {
            return Err(SchedError::NoSuchThread {
                thread,
                threads: self.threads.len(),
            });
        }
        Ok(())
    }

    /// The number of threads.
    pub fn threads(&self) -> usize {
        self.threads.len()
    }

    /// Steps thread `t` has executed (crash events do not count).
    ///
    /// # Errors
    ///
    /// [`SchedError::NoSuchThread`].
    pub fn steps_taken(&self, thread: usize) -> Result<u64, SchedError> {
        self.check(thread)?;
        Ok(self.threads[thread].taken)
    }

    /// Whether thread `t` is eligible for step choice.
    ///
    /// # Errors
    ///
    /// [`SchedError::NoSuchThread`].
    pub fn is_runnable(&self, thread: usize) -> Result<bool, SchedError> {
        self.check(thread)?;
        Ok(self.threads[thread].runnable)
    }

    /// Arms a crash to fire *instead of* thread `t`'s step `at_step`
    /// (0-based over the thread's own executed steps).
    ///
    /// # Errors
    ///
    /// [`SchedError::CrashAlreadyArmed`] when a crash is already armed
    /// on the thread and has not fired — whichever was armed first
    /// wins; [`SchedError::CrashInPast`] when `at_step` has already
    /// executed; [`SchedError::NoSuchThread`].
    pub fn arm_thread_crash(&mut self, thread: usize, at_step: u64) -> Result<(), SchedError> {
        self.check(thread)?;
        let t = &mut self.threads[thread];
        if let Some(at) = t.crash_at {
            return Err(SchedError::CrashAlreadyArmed {
                thread,
                at_step: at,
            });
        }
        if at_step < t.taken {
            return Err(SchedError::CrashInPast {
                thread,
                at_step,
                taken: t.taken,
            });
        }
        t.crash_at = Some(at_step);
        Ok(())
    }

    /// Disarms a pending crash on thread `t`, returning the step it
    /// was armed at (`None` when nothing was armed). Used when a
    /// whole-system crash preempts per-thread injection — first fire
    /// wins, the loser must not fire later.
    ///
    /// # Errors
    ///
    /// [`SchedError::NoSuchThread`].
    pub fn disarm_thread_crash(&mut self, thread: usize) -> Result<Option<u64>, SchedError> {
        self.check(thread)?;
        Ok(self.threads[thread].crash_at.take())
    }

    /// Marks a finished (or blocked) thread ineligible, or re-adds it.
    ///
    /// # Errors
    ///
    /// [`SchedError::NoSuchThread`].
    pub fn set_runnable(&mut self, thread: usize, runnable: bool) -> Result<(), SchedError> {
        self.check(thread)?;
        self.threads[thread].runnable = runnable;
        Ok(())
    }

    /// Revives a crashed thread: it becomes runnable again and its
    /// step counter keeps counting from where it stopped (so a later
    /// crash point can still be armed relative to the whole life of
    /// the thread).
    ///
    /// # Errors
    ///
    /// [`SchedError::NoSuchThread`].
    pub fn revive(&mut self, thread: usize) -> Result<(), SchedError> {
        self.check(thread)?;
        self.threads[thread].runnable = true;
        Ok(())
    }

    /// Chooses the next event: uniformly one of the runnable threads.
    /// If the chosen thread has a crash armed at its current step
    /// count the crash fires instead of the step — exactly once — and
    /// the thread is parked (not runnable) until [`Interleaver::revive`].
    /// Returns `None` when no thread is runnable.
    pub fn next_event(&mut self) -> Option<SchedEvent> {
        let runnable: Vec<usize> = self
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.runnable)
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            return None;
        }
        let pick = runnable[self.rng.below(runnable.len() as u64) as usize];
        let t = &mut self.threads[pick];
        if t.crash_at == Some(t.taken) {
            t.crash_at = None;
            t.runnable = false;
            return Some(SchedEvent::CrashThread(pick));
        }
        t.taken += 1;
        Some(SchedEvent::Run(pick))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives `sched` to completion with each thread running `quota`
    /// steps before it declares itself done, collecting the events.
    fn drive(sched: &mut Interleaver, quota: u64, revive_crashed: bool) -> Vec<SchedEvent> {
        let mut events = Vec::new();
        while let Some(ev) = sched.next_event() {
            events.push(ev);
            match ev {
                SchedEvent::Run(t) => {
                    if sched.steps_taken(t).unwrap() >= quota {
                        sched.set_runnable(t, false).unwrap();
                    }
                }
                SchedEvent::CrashThread(t) => {
                    if revive_crashed {
                        sched.revive(t).unwrap();
                    }
                }
            }
        }
        events
    }

    #[test]
    fn schedules_are_deterministic() {
        let mut a = Interleaver::new(42, 3);
        let mut b = Interleaver::new(42, 3);
        assert_eq!(drive(&mut a, 20, true), drive(&mut b, 20, true));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Interleaver::new(1, 3);
        let mut b = Interleaver::new(2, 3);
        assert_ne!(drive(&mut a, 50, true), drive(&mut b, 50, true));
    }

    #[test]
    fn every_thread_gets_scheduled() {
        let mut s = Interleaver::new(7, 4);
        let events = drive(&mut s, 10, true);
        for t in 0..4 {
            assert!(events.contains(&SchedEvent::Run(t)), "thread {t} never ran");
            assert_eq!(s.steps_taken(t).unwrap(), 10);
        }
    }

    #[test]
    fn armed_crash_fires_exactly_once_at_the_armed_step() {
        let mut s = Interleaver::new(9, 2);
        s.arm_thread_crash(1, 3).unwrap();
        let events = drive(&mut s, 8, true);
        let crashes: Vec<_> = events
            .iter()
            .filter(|e| matches!(e, SchedEvent::CrashThread(_)))
            .collect();
        assert_eq!(crashes.len(), 1, "crash must fire exactly once");
        assert_eq!(*crashes[0], SchedEvent::CrashThread(1));
        // The victim had executed exactly 3 steps when it crashed:
        // count Run(1) events before the crash.
        let at = events
            .iter()
            .position(|e| *e == SchedEvent::CrashThread(1))
            .unwrap();
        let runs_before = events[..at]
            .iter()
            .filter(|e| **e == SchedEvent::Run(1))
            .count();
        assert_eq!(runs_before, 3, "crash fires instead of step 3");
        // After revival the thread still completes its quota.
        assert_eq!(s.steps_taken(1).unwrap(), 8);
    }

    #[test]
    fn unrevived_crashed_thread_stays_parked() {
        let mut s = Interleaver::new(3, 2);
        s.arm_thread_crash(0, 0).unwrap();
        let events = drive(&mut s, 4, false);
        assert!(events.contains(&SchedEvent::CrashThread(0)));
        assert!(!events.contains(&SchedEvent::Run(0)), "parked forever");
        assert!(!s.is_runnable(0).unwrap());
        assert_eq!(s.steps_taken(1).unwrap(), 4);
    }

    #[test]
    fn rearm_while_armed_is_a_typed_error() {
        let mut s = Interleaver::new(1, 2);
        s.arm_thread_crash(0, 5).unwrap();
        assert_eq!(
            s.arm_thread_crash(0, 9).unwrap_err(),
            SchedError::CrashAlreadyArmed {
                thread: 0,
                at_step: 5
            }
        );
        // Disarming frees the slot; the disarmed point is reported.
        assert_eq!(s.disarm_thread_crash(0).unwrap(), Some(5));
        assert_eq!(s.disarm_thread_crash(0).unwrap(), None);
        s.arm_thread_crash(0, 9).unwrap();
    }

    #[test]
    fn arming_in_the_past_is_rejected() {
        let mut s = Interleaver::new(1, 1);
        for _ in 0..4 {
            assert!(matches!(s.next_event(), Some(SchedEvent::Run(0))));
        }
        assert_eq!(
            s.arm_thread_crash(0, 2).unwrap_err(),
            SchedError::CrashInPast {
                thread: 0,
                at_step: 2,
                taken: 4
            }
        );
        // The current step count itself is still armable.
        s.arm_thread_crash(0, 4).unwrap();
        assert_eq!(s.next_event(), Some(SchedEvent::CrashThread(0)));
    }

    #[test]
    fn out_of_range_thread_is_rejected_everywhere() {
        let mut s = Interleaver::new(1, 2);
        let e = SchedError::NoSuchThread {
            thread: 5,
            threads: 2,
        };
        assert_eq!(s.arm_thread_crash(5, 0).unwrap_err(), e);
        assert_eq!(s.disarm_thread_crash(5).unwrap_err(), e);
        assert_eq!(s.set_runnable(5, false).unwrap_err(), e);
        assert_eq!(s.revive(5).unwrap_err(), e);
        assert_eq!(s.steps_taken(5).unwrap_err(), e);
        assert_eq!(s.is_runnable(5).unwrap_err(), e);
    }

    #[test]
    fn crash_armed_beyond_the_run_never_fires() {
        let mut s = Interleaver::new(5, 2);
        s.arm_thread_crash(0, 1_000).unwrap();
        let events = drive(&mut s, 6, true);
        assert!(!events
            .iter()
            .any(|e| matches!(e, SchedEvent::CrashThread(_))));
    }

    #[test]
    fn errors_display() {
        assert!(SchedError::NoSuchThread {
            thread: 9,
            threads: 2
        }
        .to_string()
        .contains("out of range"));
        assert!(SchedError::CrashAlreadyArmed {
            thread: 1,
            at_step: 3
        }
        .to_string()
        .contains("already"));
        assert!(SchedError::CrashInPast {
            thread: 0,
            at_step: 1,
            taken: 4
        }
        .to_string()
        .contains("never fire"));
    }
}
