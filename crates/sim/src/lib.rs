//! Simulation kernel for the Triad-NVM architectural simulator.
//!
//! This crate is the leaf of the workspace: every other crate builds on
//! the vocabulary defined here.
//!
//! * [`time`] — picosecond-resolution simulated time ([`Time`], [`Duration`]).
//! * [`addr`] — physical / 64-byte-block address newtypes.
//! * [`trace`] — the memory-operation trace interface that workload
//!   generators produce and the multi-core driver consumes.
//! * [`config`] — the full simulated-system configuration, with defaults
//!   reproducing Table 1 of the ISCA'19 paper.
//! * [`stats`] — named-counter statistics, log-bucketed latency
//!   histograms, and the hierarchical [`stats::StatRegistry`] that
//!   components report into.
//! * [`events`] — opt-in structured event tracing (JSON lines stamped
//!   with simulated time only).
//! * [`rng`] — the workspace's only randomness source: a deterministic
//!   SplitMix64 generator with range/float/byte sampling and stream
//!   splitting (no `rand` dependency anywhere).
//! * [`prop`] — a minimal seeded property-testing harness (replaces
//!   `proptest`; see DESIGN.md on the zero-dependency policy).
//! * [`sched`] — the deterministic multi-thread interleaving scheduler
//!   with per-thread crash injection that drives the `triad-recov`
//!   concurrent-recovery suite.
//!
//! # Example
//!
//! ```rust
//! use triad_sim::config::SystemConfig;
//! use triad_sim::time::Duration;
//!
//! let cfg = SystemConfig::isca19();
//! assert_eq!(cfg.cores, 8);
//! assert_eq!(cfg.mem.read_latency, Duration::from_ns(60));
//! ```

#![warn(missing_docs)]

pub mod addr;
pub mod config;
pub mod events;
pub mod prop;
pub mod rng;
pub mod sched;
pub mod stats;
pub mod time;
pub mod trace;
pub mod trace_file;

pub use addr::{BlockAddr, PhysAddr, BLOCK_BYTES, BLOCK_SHIFT};
pub use config::SystemConfig;
pub use events::{EventSink, SharedEventSink};
pub use sched::{Interleaver, SchedError, SchedEvent};
pub use stats::{Histogram, Scope, StatRegister, StatRegistry, StatSet};
pub use time::{Duration, Time};
pub use trace::{InterleavedTrace, MemOp, OpKind, TakeTrace, TraceSource};
