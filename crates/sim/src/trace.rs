//! The memory-operation trace interface.
//!
//! Workload generators (the `triad-workloads` crate) produce streams of
//! [`MemOp`]s; the multi-core driver in `triad-core` replays one stream
//! per core through the cache hierarchy into the secure memory
//! controller. Keeping these types in the kernel crate lets the driver
//! and the generators evolve independently.

use crate::addr::PhysAddr;

/// The kind of a memory operation in a workload trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// A demand load of one cache block.
    Load,
    /// A store to one cache block (write-allocate into L1).
    Store,
    /// A store followed by `clwb + sfence`: the block must reach the
    /// persistence domain (the memory controller's WPQ) before the core
    /// proceeds. Only meaningful for persistent-region addresses.
    PersistentStore,
    /// A `clwb + sfence` of an already-written block without a new
    /// store (flush of an earlier `Store`).
    Flush,
}

impl OpKind {
    /// Whether the operation writes the block.
    pub fn is_write(self) -> bool {
        matches!(self, OpKind::Store | OpKind::PersistentStore)
    }

    /// Whether the operation orders against persistence (drains to WPQ).
    pub fn is_persist(self) -> bool {
        matches!(self, OpKind::PersistentStore | OpKind::Flush)
    }
}

/// One entry of a workload trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemOp {
    /// Byte address accessed (the whole 64 B block is transferred).
    pub addr: PhysAddr,
    /// What the core does at this address.
    pub kind: OpKind,
    /// Number of non-memory instructions the core executes *before*
    /// this operation (advances time by `gap × base CPI`).
    pub gap: u32,
}

impl MemOp {
    /// Convenience constructor for a load.
    pub fn load(addr: PhysAddr, gap: u32) -> Self {
        MemOp {
            addr,
            kind: OpKind::Load,
            gap,
        }
    }

    /// Convenience constructor for a store.
    pub fn store(addr: PhysAddr, gap: u32) -> Self {
        MemOp {
            addr,
            kind: OpKind::Store,
            gap,
        }
    }

    /// Convenience constructor for a persistent store (`store; clwb; sfence`).
    pub fn persist(addr: PhysAddr, gap: u32) -> Self {
        MemOp {
            addr,
            kind: OpKind::PersistentStore,
            gap,
        }
    }

    /// Number of instructions this trace entry represents (the gap plus
    /// the memory instruction itself; persists count the clwb+fence too).
    pub fn instruction_count(&self) -> u64 {
        let mem_insts = match self.kind {
            OpKind::Load | OpKind::Store => 1,
            OpKind::PersistentStore => 3, // store + clwb + sfence
            OpKind::Flush => 2,           // clwb + sfence
        };
        self.gap as u64 + mem_insts
    }
}

/// A stream of memory operations executed by one core.
///
/// Implementations are typically infinite generators; the driver stops
/// after a configured operation or instruction budget.
pub trait TraceSource {
    /// Produces the next operation, or `None` when the workload ends.
    fn next_op(&mut self) -> Option<MemOp>;

    /// A short human-readable name for reports (e.g. `"mcf"`).
    fn name(&self) -> &str;
}

/// A trace source backed by a pre-materialised vector, useful in tests.
#[derive(Debug, Clone)]
pub struct VecTrace {
    name: String,
    ops: std::vec::IntoIter<MemOp>,
}

impl VecTrace {
    /// Creates a trace that replays `ops` once.
    pub fn new(name: impl Into<String>, ops: Vec<MemOp>) -> Self {
        VecTrace {
            name: name.into(),
            ops: ops.into_iter(),
        }
    }
}

impl TraceSource for VecTrace {
    fn next_op(&mut self) -> Option<MemOp> {
        self.ops.next()
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Round-robin interleaving of several trace sources onto one stream
/// (e.g. to co-schedule a mix's programs on a single core). Ends when
/// every source is exhausted; exhausted sources are skipped.
pub struct InterleavedTrace {
    name: String,
    sources: Vec<Box<dyn TraceSource>>,
    next: usize,
}

impl std::fmt::Debug for InterleavedTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InterleavedTrace")
            .field("name", &self.name)
            .field("sources", &self.sources.len())
            .finish()
    }
}

impl InterleavedTrace {
    /// Merges `sources` round-robin. The name joins the parts with `+`.
    pub fn new(sources: Vec<Box<dyn TraceSource>>) -> Self {
        let name = sources
            .iter()
            .map(|s| s.name())
            .collect::<Vec<_>>()
            .join("+");
        InterleavedTrace {
            name,
            sources,
            next: 0,
        }
    }
}

impl TraceSource for InterleavedTrace {
    fn next_op(&mut self) -> Option<MemOp> {
        for _ in 0..self.sources.len() {
            let idx = self.next;
            self.next = (self.next + 1) % self.sources.len().max(1);
            if let Some(op) = self.sources[idx].next_op() {
                return Some(op);
            }
        }
        None
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Caps another trace source at `limit` operations.
#[derive(Debug)]
pub struct TakeTrace<T> {
    inner: T,
    remaining: u64,
}

impl<T: TraceSource> TakeTrace<T> {
    /// Wraps `inner`, ending the stream after `limit` operations.
    pub fn new(inner: T, limit: u64) -> Self {
        TakeTrace {
            inner,
            remaining: limit,
        }
    }
}

impl<T: TraceSource> TraceSource for TakeTrace<T> {
    fn next_op(&mut self) -> Option<MemOp> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        self.inner.next_op()
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_kind_predicates() {
        assert!(OpKind::Store.is_write());
        assert!(OpKind::PersistentStore.is_write());
        assert!(!OpKind::Load.is_write());
        assert!(!OpKind::Flush.is_write());
        assert!(OpKind::PersistentStore.is_persist());
        assert!(OpKind::Flush.is_persist());
        assert!(!OpKind::Store.is_persist());
    }

    #[test]
    fn instruction_count_accounts_for_fences() {
        assert_eq!(MemOp::load(PhysAddr(0), 10).instruction_count(), 11);
        assert_eq!(MemOp::persist(PhysAddr(0), 10).instruction_count(), 13);
        let flush = MemOp {
            addr: PhysAddr(0),
            kind: OpKind::Flush,
            gap: 0,
        };
        assert_eq!(flush.instruction_count(), 2);
    }

    #[test]
    fn interleave_round_robins_and_skips_exhausted() {
        let a = VecTrace::new(
            "a",
            vec![MemOp::load(PhysAddr(0), 0), MemOp::load(PhysAddr(64), 0)],
        );
        let b = VecTrace::new("b", vec![MemOp::store(PhysAddr(128), 0)]);
        let mut t = InterleavedTrace::new(vec![Box::new(a), Box::new(b)]);
        assert_eq!(t.name(), "a+b");
        let addrs: Vec<u64> = std::iter::from_fn(|| t.next_op())
            .map(|o| o.addr.0)
            .collect();
        assert_eq!(addrs, [0, 128, 64]);
        assert!(t.next_op().is_none());
    }

    #[test]
    fn take_caps_the_stream() {
        let inner = VecTrace::new(
            "t",
            (0..10).map(|i| MemOp::load(PhysAddr(i * 64), 0)).collect(),
        );
        let mut t = TakeTrace::new(inner, 3);
        assert_eq!(t.name(), "t");
        assert_eq!(std::iter::from_fn(|| t.next_op()).count(), 3);
    }

    #[test]
    fn vec_trace_replays_and_ends() {
        let mut t = VecTrace::new("t", vec![MemOp::load(PhysAddr(0), 0)]);
        assert_eq!(t.name(), "t");
        assert!(t.next_op().is_some());
        assert!(t.next_op().is_none());
    }
}
