//! Lightweight statistics: named counters each component exposes via
//! [`StatSink`], collected into ordered reports by the harness.

use std::collections::BTreeMap;
use std::fmt;

/// An ordered set of named integer counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatSet {
    values: BTreeMap<String, u64>,
}

impl StatSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets `name` to `value`, replacing any previous value.
    pub fn set(&mut self, name: impl Into<String>, value: u64) {
        self.values.insert(name.into(), value);
    }

    /// Adds `delta` to `name` (creating it at zero first).
    pub fn add(&mut self, name: impl Into<String>, delta: u64) {
        *self.values.entry(name.into()).or_insert(0) += delta;
    }

    /// Reads a counter; zero if absent.
    pub fn get(&self, name: &str) -> u64 {
        self.values.get(name).copied().unwrap_or(0)
    }

    /// Merges another set into this one, summing shared counters.
    pub fn merge(&mut self, other: &StatSet) {
        for (k, v) in &other.values {
            *self.values.entry(k.clone()).or_insert(0) += v;
        }
    }

    /// Iterates counters in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.values.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Number of counters present.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no counters are present.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl fmt::Display for StatSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.values.is_empty() {
            return write!(f, "(no stats)");
        }
        for (k, v) in &self.values {
            writeln!(f, "{k:<48} {v}")?;
        }
        Ok(())
    }
}

impl FromIterator<(String, u64)> for StatSet {
    fn from_iter<I: IntoIterator<Item = (String, u64)>>(iter: I) -> Self {
        StatSet {
            values: iter.into_iter().collect(),
        }
    }
}

impl Extend<(String, u64)> for StatSet {
    fn extend<I: IntoIterator<Item = (String, u64)>>(&mut self, iter: I) {
        for (k, v) in iter {
            self.add(k, v);
        }
    }
}

/// A power-of-two-bucketed histogram for latency-style samples.
///
/// Buckets hold values in `[2^i, 2^(i+1))`; percentile queries return
/// the (upper-bound) bucket edge, which is exact enough for latency
/// reporting across the simulator's nanosecond-to-millisecond range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 64],
    count: u64,
    sum: u128,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 64],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let bucket = 64 - value.leading_zeros().min(63) as usize;
        // value 0 → bucket 0 handled by min above? map explicitly:
        let bucket = if value == 0 { 0 } else { bucket.min(63) };
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all samples (zero when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest sample seen.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Upper bucket edge containing the `p`-th percentile
    /// (`0.0 < p <= 100.0`); zero when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return if i == 0 { 1 } else { 1u64 << i };
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

/// Implemented by every simulator component that exposes statistics.
pub trait StatSink {
    /// Writes this component's counters into `out`, prefixing each name
    /// with `prefix` (e.g. `"l1."`).
    fn report(&self, prefix: &str, out: &mut StatSet);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_get() {
        let mut s = StatSet::new();
        assert_eq!(s.get("x"), 0);
        s.add("x", 2);
        s.add("x", 3);
        assert_eq!(s.get("x"), 5);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn merge_sums_shared_keys() {
        let mut a = StatSet::new();
        a.set("x", 1);
        a.set("y", 2);
        let mut b = StatSet::new();
        b.set("y", 3);
        b.set("z", 4);
        a.merge(&b);
        assert_eq!(a.get("x"), 1);
        assert_eq!(a.get("y"), 5);
        assert_eq!(a.get("z"), 4);
    }

    #[test]
    fn iteration_is_name_ordered() {
        let mut s = StatSet::new();
        s.set("b", 1);
        s.set("a", 2);
        let keys: Vec<_> = s.iter().map(|(k, _)| k.to_string()).collect();
        assert_eq!(keys, ["a", "b"]);
    }

    #[test]
    fn display_is_never_empty() {
        let s = StatSet::new();
        assert_eq!(s.to_string(), "(no stats)");
    }

    #[test]
    fn histogram_basics() {
        let mut h = Histogram::new();
        assert_eq!(h.percentile(50.0), 0);
        for v in [1u64, 2, 4, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 221.4).abs() < 0.01);
        // Median bucket upper edge covers the value 4.
        let p50 = h.percentile(50.0);
        assert!((4..=8).contains(&p50), "p50 = {p50}");
        assert!(h.percentile(100.0) >= 1000);
    }

    #[test]
    fn histogram_handles_extremes() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), u64::MAX);
        assert!(h.percentile(1.0) <= 1);
    }

    #[test]
    fn histogram_merge_combines_samples() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 1000);
        assert!(a.percentile(100.0) >= 1000);
    }

    #[test]
    fn collect_and_extend() {
        let mut s: StatSet = vec![("a".to_string(), 1)].into_iter().collect();
        s.extend(vec![("a".to_string(), 2), ("b".to_string(), 7)]);
        assert_eq!(s.get("a"), 3);
        assert_eq!(s.get("b"), 7);
    }
}
