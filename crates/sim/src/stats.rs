//! Statistics: named counters, log-bucketed latency histograms, and
//! the hierarchical [`StatRegistry`] every component registers into
//! via [`StatRegister`]. The harness flattens a registry into an
//! ordered, diffable [`StatSet`] report.

use std::collections::BTreeMap;
use std::fmt;

/// An ordered set of named integer counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatSet {
    values: BTreeMap<String, u64>,
}

impl StatSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets `name` to `value`, replacing any previous value.
    pub fn set(&mut self, name: impl Into<String>, value: u64) {
        self.values.insert(name.into(), value);
    }

    /// Adds `delta` to `name` (creating it at zero first).
    pub fn add(&mut self, name: impl Into<String>, delta: u64) {
        *self.values.entry(name.into()).or_insert(0) += delta;
    }

    /// Reads a counter; zero if absent.
    pub fn get(&self, name: &str) -> u64 {
        self.values.get(name).copied().unwrap_or(0)
    }

    /// Merges another set into this one, summing shared counters.
    pub fn merge(&mut self, other: &StatSet) {
        for (k, v) in &other.values {
            *self.values.entry(k.clone()).or_insert(0) += v;
        }
    }

    /// Iterates counters in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.values.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Number of counters present.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no counters are present.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl fmt::Display for StatSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.values.is_empty() {
            return write!(f, "(no stats)");
        }
        // BTreeMap iteration is name-ordered, so two reports over the
        // same counters are line-for-line diffable.
        for (k, v) in &self.values {
            writeln!(f, "{k:<48} {v}")?;
        }
        Ok(())
    }
}

impl FromIterator<(String, u64)> for StatSet {
    fn from_iter<I: IntoIterator<Item = (String, u64)>>(iter: I) -> Self {
        // Duplicate keys must *sum*, matching `merge` and `Extend`:
        // collecting straight into the map would silently keep only the
        // last occurrence and drop counts.
        let mut out = StatSet::new();
        for (k, v) in iter {
            out.add(k, v);
        }
        out
    }
}

impl Extend<(String, u64)> for StatSet {
    fn extend<I: IntoIterator<Item = (String, u64)>>(&mut self, iter: I) {
        for (k, v) in iter {
            self.add(k, v);
        }
    }
}

/// A power-of-two-bucketed histogram for latency-style samples.
///
/// Buckets hold values in `[2^(i-1), 2^i)` (bucket 0 holds zero);
/// percentile queries return the (upper-bound) bucket edge, which is
/// exact enough for latency reporting across the simulator's
/// nanosecond-to-millisecond range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 64],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 64],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let bucket = 64 - value.leading_zeros().min(63) as usize;
        // value 0 → bucket 0 handled by min above? map explicitly:
        let bucket = if value == 0 { 0 } else { bucket.min(63) };
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Mean of all samples (zero when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest sample seen (zero when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample seen.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Upper bucket edge containing the `p`-th percentile
    /// (`0.0 < p <= 100.0`); zero when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return if i == 0 { 1 } else { 1u64 << i };
            }
        }
        self.max
    }

    /// Median bucket edge ([`Histogram::percentile`] at 50).
    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    /// 95th-percentile bucket edge.
    pub fn p95(&self) -> u64 {
        self.percentile(95.0)
    }

    /// 99th-percentile bucket edge.
    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A hierarchical collection of counters and latency histograms.
///
/// Components contribute through a [`Scope`] handle that prefixes
/// every name with a dotted path (`mem.wpq_residency_ns`), so the
/// flattened report groups by component automatically. Identical names
/// accumulate: counters sum, histograms merge.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl StatRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// A scope writing names under `prefix.` (an empty prefix writes
    /// bare names).
    pub fn scope<'a>(&'a mut self, prefix: &str) -> Scope<'a> {
        Scope {
            reg: self,
            prefix: prefix.to_string(),
        }
    }

    /// Reads a counter; zero if absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Reads a histogram by full dotted name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterates counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Merges another registry: shared counters sum, shared histograms
    /// merge.
    pub fn merge(&mut self, other: &StatRegistry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Flattens into a plain counter set: counters verbatim, each
    /// histogram expanded to `name.count/.min/.max/.mean/.p50/.p95/.p99`.
    pub fn to_stat_set(&self) -> StatSet {
        let mut out = StatSet::new();
        for (k, v) in &self.counters {
            out.set(k.clone(), *v);
        }
        for (k, h) in &self.histograms {
            out.set(format!("{k}.count"), h.count());
            out.set(format!("{k}.min"), h.min());
            out.set(format!("{k}.max"), h.max());
            out.set(format!("{k}.mean"), h.mean().round() as u64);
            out.set(format!("{k}.p50"), h.p50());
            out.set(format!("{k}.p95"), h.p95());
            out.set(format!("{k}.p99"), h.p99());
        }
        out
    }
}

impl fmt::Display for StatRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_stat_set())
    }
}

/// A write handle into a [`StatRegistry`] under a dotted path prefix.
pub struct Scope<'a> {
    reg: &'a mut StatRegistry,
    prefix: String,
}

impl Scope<'_> {
    fn path(&self, name: &str) -> String {
        if self.prefix.is_empty() {
            name.to_string()
        } else {
            format!("{}.{name}", self.prefix)
        }
    }

    /// A nested scope (`mem` → `mem.wpq`).
    pub fn scope(&mut self, name: &str) -> Scope<'_> {
        let prefix = self.path(name);
        Scope {
            reg: self.reg,
            prefix,
        }
    }

    /// Sets counter `name` (replacing any previous value).
    pub fn set(&mut self, name: &str, value: u64) {
        self.reg.counters.insert(self.path(name), value);
    }

    /// Adds `delta` to counter `name`.
    pub fn add(&mut self, name: &str, delta: u64) {
        *self.reg.counters.entry(self.path(name)).or_insert(0) += delta;
    }

    /// Records one sample into histogram `name`.
    pub fn record(&mut self, name: &str, sample: u64) {
        self.reg
            .histograms
            .entry(self.path(name))
            .or_default()
            .record(sample);
    }

    /// Merges a component-held histogram into histogram `name`.
    pub fn histogram(&mut self, name: &str, h: &Histogram) {
        self.reg
            .histograms
            .entry(self.path(name))
            .or_default()
            .merge(h);
    }
}

/// Implemented by every simulator component that exposes statistics:
/// the component writes its counters and histograms into the scope the
/// harness hands it (e.g. the scope `"l3"` for the shared cache).
pub trait StatRegister {
    /// Contributes this component's statistics into `scope`.
    fn register(&self, scope: &mut Scope<'_>);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_get() {
        let mut s = StatSet::new();
        assert_eq!(s.get("x"), 0);
        s.add("x", 2);
        s.add("x", 3);
        assert_eq!(s.get("x"), 5);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn merge_sums_shared_keys() {
        let mut a = StatSet::new();
        a.set("x", 1);
        a.set("y", 2);
        let mut b = StatSet::new();
        b.set("y", 3);
        b.set("z", 4);
        a.merge(&b);
        assert_eq!(a.get("x"), 1);
        assert_eq!(a.get("y"), 5);
        assert_eq!(a.get("z"), 4);
    }

    #[test]
    fn from_iterator_sums_duplicate_keys() {
        // Regression: `FromIterator` used to collect straight into the
        // BTreeMap, so a duplicate key *overwrote* instead of summing —
        // disagreeing with `merge` and `Extend` and silently dropping
        // counts when per-shard reports were collected by iterator.
        let s: StatSet = vec![
            ("a".to_string(), 1),
            ("b".to_string(), 10),
            ("a".to_string(), 2),
        ]
        .into_iter()
        .collect();
        assert_eq!(s.get("a"), 3, "duplicate keys must sum, not overwrite");
        assert_eq!(s.get("b"), 10);
    }

    #[test]
    fn merge_and_collect_agree_on_duplicates() {
        let pairs = [("k".to_string(), 7), ("k".to_string(), 5)];
        let collected: StatSet = pairs.iter().cloned().collect();
        let mut merged = StatSet::new();
        for (k, v) in &pairs {
            let mut one = StatSet::new();
            one.set(k.clone(), *v);
            merged.merge(&one);
        }
        assert_eq!(collected, merged);
    }

    #[test]
    fn iteration_is_name_ordered() {
        let mut s = StatSet::new();
        s.set("b", 1);
        s.set("a", 2);
        let keys: Vec<_> = s.iter().map(|(k, _)| k.to_string()).collect();
        assert_eq!(keys, ["a", "b"]);
    }

    #[test]
    fn display_is_never_empty() {
        let s = StatSet::new();
        assert_eq!(s.to_string(), "(no stats)");
    }

    #[test]
    fn display_is_stable_ordered_and_diffable() {
        // Insertion order must not leak into the report: the same
        // counters inserted in any order render byte-identically.
        let mut a = StatSet::new();
        a.set("z.last", 3);
        a.set("a.first", 1);
        a.set("m.middle", 2);
        let mut b = StatSet::new();
        b.set("m.middle", 2);
        b.set("z.last", 3);
        b.set("a.first", 1);
        assert_eq!(a.to_string(), b.to_string());
        let rendered = a.to_string();
        let lines: Vec<&str> = rendered.lines().map(str::trim_end).collect();
        let mut sorted = lines.clone();
        sorted.sort();
        assert_eq!(lines, sorted, "display must be name-sorted");
    }

    #[test]
    fn histogram_basics() {
        let mut h = Histogram::new();
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.min(), 0);
        for v in [1u64, 2, 4, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.sum(), 1107);
        assert!((h.mean() - 221.4).abs() < 0.01);
        // Median bucket upper edge covers the value 4.
        let p50 = h.p50();
        assert!((4..=8).contains(&p50), "p50 = {p50}");
        assert!(h.percentile(100.0) >= 1000);
        assert!(h.p95() >= h.p50());
        assert!(h.p99() >= h.p95());
    }

    #[test]
    fn histogram_handles_extremes() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
        assert!(h.percentile(1.0) <= 1);
    }

    #[test]
    fn histogram_merge_combines_samples() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 10);
        assert_eq!(a.max(), 1000);
        assert!(a.percentile(100.0) >= 1000);
        // Merging an empty histogram must not disturb min.
        a.merge(&Histogram::new());
        assert_eq!(a.min(), 10);
    }

    #[test]
    fn collect_and_extend() {
        let mut s: StatSet = vec![("a".to_string(), 1)].into_iter().collect();
        s.extend(vec![("a".to_string(), 2), ("b".to_string(), 7)]);
        assert_eq!(s.get("a"), 3);
        assert_eq!(s.get("b"), 7);
    }

    #[test]
    fn registry_scopes_nest_and_accumulate() {
        let mut reg = StatRegistry::new();
        {
            let mut mem = reg.scope("mem");
            mem.add("writes", 2);
            mem.add("writes", 3);
            let mut wpq = mem.scope("wpq");
            wpq.record("residency_ns", 100);
            wpq.record("residency_ns", 200);
        }
        {
            let mut root = reg.scope("");
            root.set("boot_count", 1);
        }
        assert_eq!(reg.counter("mem.writes"), 5);
        assert_eq!(reg.counter("boot_count"), 1);
        assert_eq!(reg.counter("absent"), 0);
        let h = reg.histogram("mem.wpq.residency_ns").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), 100);
    }

    #[test]
    fn registry_merge_sums_and_merges() {
        let mut a = StatRegistry::new();
        a.scope("x").add("c", 1);
        a.scope("x").record("h", 10);
        let mut b = StatRegistry::new();
        b.scope("x").add("c", 2);
        b.scope("x").record("h", 20);
        a.merge(&b);
        assert_eq!(a.counter("x.c"), 3);
        assert_eq!(a.histogram("x.h").unwrap().count(), 2);
    }

    #[test]
    fn registry_flattens_histograms_into_stat_set() {
        let mut reg = StatRegistry::new();
        let mut s = reg.scope("core");
        s.record("latency_ns", 5);
        s.record("latency_ns", 7);
        s.add("ops", 2);
        let set = reg.to_stat_set();
        assert_eq!(set.get("core.ops"), 2);
        assert_eq!(set.get("core.latency_ns.count"), 2);
        assert_eq!(set.get("core.latency_ns.min"), 5);
        assert_eq!(set.get("core.latency_ns.max"), 7);
        assert_eq!(set.get("core.latency_ns.mean"), 6);
        assert!(set.get("core.latency_ns.p50") >= 5);
        assert!(set.get("core.latency_ns.p99") >= set.get("core.latency_ns.p50"));
    }

    #[test]
    fn registry_display_is_stable() {
        let mut a = StatRegistry::new();
        a.scope("b").add("x", 1);
        a.scope("a").record("h", 3);
        let first = a.to_string();
        assert_eq!(first, a.to_string());
        assert!(first.contains("a.h.count"));
        assert!(first.contains("b.x"));
    }

    #[test]
    fn component_registration_via_trait() {
        struct Demo {
            hits: u64,
            lat: Histogram,
        }
        impl StatRegister for Demo {
            fn register(&self, scope: &mut Scope<'_>) {
                scope.set("hits", self.hits);
                scope.histogram("lat_ns", &self.lat);
            }
        }
        let mut lat = Histogram::new();
        lat.record(42);
        let d = Demo { hits: 9, lat };
        let mut reg = StatRegistry::new();
        d.register(&mut reg.scope("demo"));
        assert_eq!(reg.counter("demo.hits"), 9);
        assert_eq!(reg.histogram("demo.lat_ns").unwrap().count(), 1);
    }
}
