//! A minimal, self-contained property-testing harness.
//!
//! The workspace builds with **zero external crates**, so this module
//! replaces `proptest` for the repository's property suites. It is
//! deliberately small:
//!
//! * **Seeded case generation** — every case draws its inputs from a
//!   [`SplitMix64`] stream derived from a fixed
//!   base seed and the case index, so a run is reproducible bit-for-bit
//!   on any machine.
//! * **Fixed case counts** — no time-based stopping; [`Config::cases`]
//!   is exact (overridable with `TRIAD_PROP_CASES`).
//! * **Failure-seed reporting** — a failing case panics with its case
//!   seed and a `TRIAD_PROP_SEED=0x… cargo test <name>` reproduction
//!   line; setting that variable re-runs only the failing case.
//! * **Greedy shrinking** (optional) — [`check_ops`] properties over an
//!   operation vector shrink the failing vector by greedily deleting
//!   chunks, reporting the smallest still-failing history.
//!
//! # Example
//!
//! ```rust
//! use triad_sim::prop::{check, Config};
//!
//! check("addition_commutes", Config::cases(64), |rng| {
//!     let (a, b) = (rng.next_u32() as u64, rng.next_u32() as u64);
//!     if a + b == b + a {
//!         Ok(())
//!     } else {
//!         Err(format!("{a} + {b} misbehaved"))
//!     }
//! });
//! ```

use crate::rng::SplitMix64;

/// Outcome of one property case: `Err` carries the failure description.
pub type CaseResult = Result<(), String>;

/// Salt separating the op-generation stream from the parameter stream
/// of the same case, so shrinking can replay parameters unchanged.
const PARAM_SALT: u64 = 0x9AEA_11A7_0B5E_55ED;

/// Harness configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of seeded cases to run.
    pub cases: u64,
    /// Base seed; case `i` uses the stream `(seed, i)`.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 64,
            seed: 0x0071_21AD,
        }
    }
}

impl Config {
    /// A configuration running `cases` cases with the default seed.
    pub fn cases(cases: u64) -> Self {
        Config {
            cases,
            ..Config::default()
        }
    }

    /// Overrides the base seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn effective_cases(&self) -> u64 {
        match std::env::var("TRIAD_PROP_CASES") {
            Ok(v) => v
                .parse()
                .unwrap_or_else(|_| panic!("TRIAD_PROP_CASES={v:?} is not a number")),
            Err(_) => self.cases,
        }
    }
}

fn pinned_seed() -> Option<u64> {
    let v = std::env::var("TRIAD_PROP_SEED").ok()?;
    let parsed = if let Some(hex) = v.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        v.parse()
    };
    Some(parsed.unwrap_or_else(|_| panic!("TRIAD_PROP_SEED={v:?} is not a u64")))
}

fn case_seed(cfg: &Config, index: u64) -> u64 {
    SplitMix64::stream(cfg.seed, index).next_u64()
}

fn fail(name: &str, case: &str, seed: u64, msg: &str) -> ! {
    panic!(
        "property '{name}' failed on {case} (case seed {seed:#x}):\n\
         {msg}\n\
         reproduce with: TRIAD_PROP_SEED={seed:#x} cargo test {name}"
    );
}

/// Runs `prop` over [`Config::cases`] seeded cases; the property draws
/// all of its inputs from the provided per-case generator.
///
/// # Panics
///
/// Panics on the first failing case, reporting its seed.
pub fn check<F>(name: &str, cfg: Config, prop: F)
where
    F: Fn(&mut SplitMix64) -> CaseResult,
{
    if let Some(seed) = pinned_seed() {
        let mut rng = SplitMix64::new(seed);
        if let Err(msg) = prop(&mut rng) {
            fail(name, "the pinned case", seed, &msg);
        }
        return;
    }
    for i in 0..cfg.effective_cases() {
        let seed = case_seed(&cfg, i);
        let mut rng = SplitMix64::new(seed);
        if let Err(msg) = prop(&mut rng) {
            fail(name, &format!("case {i}"), seed, &msg);
        }
    }
}

/// Runs a property over a generated operation vector, with greedy
/// shrinking on failure.
///
/// `gen` draws the vector from the case's op stream; `prop` receives
/// the (possibly shrunk) ops plus a *parameter* generator whose stream
/// is fixed per case — auxiliary inputs drawn from it (scheme picks,
/// way counts, …) replay identically across shrink attempts, so only
/// the history shrinks.
///
/// # Panics
///
/// Panics on the first failing case, reporting its seed and the
/// smallest failing history found.
pub fn check_ops<T, G, F>(name: &str, cfg: Config, gen: G, prop: F)
where
    T: Clone + std::fmt::Debug,
    G: Fn(&mut SplitMix64) -> Vec<T>,
    F: Fn(&[T], &mut SplitMix64) -> CaseResult,
{
    let run_seed = |seed: u64| -> Option<(Vec<T>, String)> {
        let mut rng = SplitMix64::new(seed);
        let ops = gen(&mut rng);
        let mut params = SplitMix64::new(seed ^ PARAM_SALT);
        match prop(&ops, &mut params) {
            Ok(()) => None,
            Err(msg) => Some((ops, msg)),
        }
    };
    let shrink_and_fail = |case: &str, seed: u64, ops: Vec<T>, msg: String| -> ! {
        let reprop = |ops: &[T]| -> CaseResult {
            let mut params = SplitMix64::new(seed ^ PARAM_SALT);
            prop(ops, &mut params)
        };
        let (ops, msg) = shrink(ops, msg, reprop);
        fail(
            name,
            case,
            seed,
            &format!("{msg}\nshrunk history ({} ops): {ops:?}", ops.len()),
        );
    };
    if let Some(seed) = pinned_seed() {
        if let Some((ops, msg)) = run_seed(seed) {
            shrink_and_fail("the pinned case", seed, ops, msg);
        }
        return;
    }
    for i in 0..cfg.effective_cases() {
        let seed = case_seed(&cfg, i);
        if let Some((ops, msg)) = run_seed(seed) {
            shrink_and_fail(&format!("case {i}"), seed, ops, msg);
        }
    }
}

/// Greedy delta-debugging style shrink: repeatedly delete chunks
/// (halving the chunk size down to single elements) while the property
/// keeps failing. Deterministic and bounded.
fn shrink<T, F>(mut ops: Vec<T>, mut msg: String, prop: F) -> (Vec<T>, String)
where
    T: Clone,
    F: Fn(&[T]) -> CaseResult,
{
    let mut chunk = (ops.len() / 2).max(1);
    loop {
        let mut progressed = false;
        let mut start = 0;
        while start < ops.len() {
            let end = (start + chunk).min(ops.len());
            let mut candidate = Vec::with_capacity(ops.len() - (end - start));
            candidate.extend_from_slice(&ops[..start]);
            candidate.extend_from_slice(&ops[end..]);
            if candidate.is_empty() {
                start += chunk;
                continue;
            }
            if let Err(candidate_msg) = prop(&candidate) {
                ops = candidate;
                msg = candidate_msg;
                progressed = true;
                // Retry the same window: the next chunk slid into it.
            } else {
                start += chunk;
            }
        }
        if !progressed {
            if chunk == 1 {
                return (ops, msg);
            }
            chunk = (chunk / 2).max(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let seen = std::cell::Cell::new(0u64);
        check("always_true", Config::cases(10), |_| {
            seen.set(seen.get() + 1);
            Ok(())
        });
        assert_eq!(seen.get(), 10);
    }

    #[test]
    fn cases_are_deterministic_across_runs() {
        let collect = || {
            let mut out = Vec::new();
            for i in 0..5 {
                let seed = case_seed(&Config::default(), i);
                out.push(SplitMix64::new(seed).next_u64());
            }
            out
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    #[should_panic(expected = "TRIAD_PROP_SEED=")]
    fn failing_property_reports_seed() {
        check(
            "always_false",
            Config::cases(3),
            |_| Err("nope".to_string()),
        );
    }

    #[test]
    fn shrink_finds_a_minimal_failing_subset() {
        // Fails whenever the vector contains a 7: the shrunk history
        // must be exactly [7].
        let ops = vec![1, 2, 7, 3, 4, 7, 5];
        let (shrunk, _) = shrink(ops, "seed failure".into(), |ops| {
            if ops.contains(&7) {
                Err("has a 7".into())
            } else {
                Ok(())
            }
        });
        assert_eq!(shrunk, vec![7]);
    }

    #[test]
    fn shrink_preserves_order_dependent_failures() {
        // Fails only when a 2 appears somewhere after a 1.
        let ops = vec![3, 1, 9, 9, 2, 4];
        let (shrunk, _) = shrink(ops, "seed failure".into(), |ops| {
            let one = ops.iter().position(|&x| x == 1);
            let two = ops.iter().rposition(|&x| x == 2);
            match (one, two) {
                (Some(a), Some(b)) if a < b => Err("1 then 2".into()),
                _ => Ok(()),
            }
        });
        assert_eq!(shrunk, vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "shrunk history (1 ops)")]
    fn check_ops_shrinks_before_reporting() {
        check_ops(
            "contains_a_multiple_of_97",
            Config::cases(50),
            |rng| {
                (0..40)
                    .map(|_| rng.gen_range(0..1000))
                    .collect::<Vec<u64>>()
            },
            |ops, _| {
                if ops.iter().any(|v| v % 97 == 0) {
                    Err("found one".into())
                } else {
                    Ok(())
                }
            },
        );
    }
}
