//! Simulated time.
//!
//! The simulator mixes a 1 GHz CPU clock with a 1200 MHz memory clock
//! (Table 1), so time is kept in integer **picoseconds**: both clocks
//! have an exact integer period (1000 ps and 833 ps would not — the
//! memory clock is modelled as its bus-transfer time directly, so no
//! fractional periods are ever needed).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant of simulated time, in picoseconds since boot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

/// A span of simulated time, in picoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(u64);

impl Time {
    /// The beginning of simulated time.
    pub const ZERO: Time = Time(0);

    /// Creates an instant `ps` picoseconds after boot.
    pub const fn from_ps(ps: u64) -> Self {
        Time(ps)
    }

    /// Creates an instant `ns` nanoseconds after boot.
    pub const fn from_ns(ns: u64) -> Self {
        Time(ns * 1_000)
    }

    /// Picoseconds since boot.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Whole nanoseconds since boot (truncating).
    pub const fn as_ns(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since boot as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// The later of two instants.
    pub fn max(self, other: Time) -> Time {
        Time(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: Time) -> Time {
        Time(self.0.min(other.0))
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is
    /// in the future.
    pub fn since(self, earlier: Time) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Duration {
    /// The empty span.
    pub const ZERO: Duration = Duration(0);

    /// Creates a span of `ps` picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        Duration(ps)
    }

    /// Creates a span of `ns` nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        Duration(ns * 1_000)
    }

    /// Creates a span of `us` microseconds.
    pub const fn from_us(us: u64) -> Self {
        Duration(us * 1_000_000)
    }

    /// Creates a span of whole CPU cycles at 1 GHz (Table 1 core clock).
    pub const fn from_cpu_cycles(cycles: u64) -> Self {
        Duration(cycles * 1_000)
    }

    /// The span in picoseconds.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// The span in whole nanoseconds (truncating).
    pub const fn as_ns(self) -> u64 {
        self.0 / 1_000
    }

    /// The span in seconds as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// The longer of two spans.
    pub fn max(self, other: Duration) -> Duration {
        Duration(self.0.max(other.0))
    }

    /// Multiplies the span by an integer count, saturating on overflow.
    pub fn saturating_mul(self, n: u64) -> Duration {
        Duration(self.0.saturating_mul(n))
    }
}

impl Add<Duration> for Time {
    type Output = Time;
    fn add(self, rhs: Duration) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Time {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Duration> for Time {
    type Output = Time;
    fn sub(self, rhs: Duration) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl Sub<Time> for Time {
    type Output = Duration;
    fn sub(self, rhs: Time) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl SubAssign for Duration {
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0 * rhs)
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        Duration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", Duration(self.0))
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps >= 1_000_000_000_000 {
            write!(f, "{:.3}s", ps as f64 / 1e12)
        } else if ps >= 1_000_000_000 {
            write!(f, "{:.3}ms", ps as f64 / 1e9)
        } else if ps >= 1_000_000 {
            write!(f, "{:.3}us", ps as f64 / 1e6)
        } else if ps >= 1_000 {
            write!(f, "{:.3}ns", ps as f64 / 1e3)
        } else {
            write!(f, "{ps}ps")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = Time::from_ns(5) + Duration::from_ns(10);
        assert_eq!(t.as_ns(), 15);
        assert_eq!(t - Time::from_ns(5), Duration::from_ns(10));
    }

    #[test]
    fn since_saturates() {
        let early = Time::from_ns(1);
        let late = Time::from_ns(9);
        assert_eq!(late.since(early), Duration::from_ns(8));
        assert_eq!(early.since(late), Duration::ZERO);
    }

    #[test]
    fn cpu_cycles_are_one_ns() {
        assert_eq!(Duration::from_cpu_cycles(7), Duration::from_ns(7));
    }

    #[test]
    fn duration_scalar_ops() {
        let d = Duration::from_ns(10) * 3;
        assert_eq!(d.as_ns(), 30);
        assert_eq!((d / 4).as_ps(), 7_500);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(Duration::from_ps(12).to_string(), "12ps");
        assert_eq!(Duration::from_ns(60).to_string(), "60.000ns");
        assert_eq!(Duration::from_us(3).to_string(), "3.000us");
        assert_eq!(Duration::from_ps(2_500_000_000_000).to_string(), "2.500s");
    }

    #[test]
    fn max_min_behave() {
        let a = Time::from_ns(4);
        let b = Time::from_ns(6);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(
            Duration::from_ns(1).max(Duration::from_ns(2)),
            Duration::from_ns(2)
        );
    }

    #[test]
    fn sum_of_durations() {
        let total: Duration = (1..=4).map(Duration::from_ns).sum();
        assert_eq!(total, Duration::from_ns(10));
    }

    #[test]
    fn saturating_mul_caps() {
        assert_eq!(
            Duration::from_ps(u64::MAX).saturating_mul(2),
            Duration::from_ps(u64::MAX)
        );
    }
}
