//! Security-metadata layout and Bonsai-Merkle-tree machinery.
//!
//! The paper divides NVM into a **persistent** and a **non-persistent**
//! region (set at boot, like `memmap=4G!12G`), and chooses the design
//! where each region has its *own* BMT whose metadata lives inside the
//! region itself (§3.3.1: "we chose this approach"). This crate
//! provides:
//!
//! * [`layout`] — exact block-level placement of data, counter blocks,
//!   MAC blocks and BMT nodes within each region, and the two-region
//!   [`layout::MemoryMap`].
//! * [`bmt`] — tree geometry, node-buffer slot operations, and the
//!   pure rebuild/verify routines that the recovery engine uses
//!   (rebuild all levels above level *k* from the NVM image and check
//!   the result against the on-chip root).
//!
//! # Example
//!
//! ```rust
//! use triad_meta::layout::MemoryMap;
//! use triad_sim::config::SystemConfig;
//!
//! let map = MemoryMap::new(&SystemConfig::tiny());
//! let data = map.persistent().data_start;
//! let counter = map.persistent().counter_block_of(data);
//! assert!(map.persistent().contains(counter.base()));
//! ```

#![warn(missing_docs)]

pub mod bmt;
pub mod layout;

pub use bmt::{coalesce_dirty_paths, BmtGeometry, CoalescedPaths, NodeBuf, NodeId};
pub use layout::{MemoryMap, RegionKind, RegionLayout};
