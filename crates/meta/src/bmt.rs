//! Bonsai-Merkle-tree geometry, node buffers and rebuild routines.
//!
//! Leaves (level 0) are the split-counter blocks; every node above
//! packs `arity` 8-byte child hashes into a 64 B block. The single top
//! node — the **root node** — is held on-chip in a persistent register
//! (the paper notes the root may hold a full 64 B). Intermediate nodes
//! live in memory and are rebuildable: that is what makes the
//! TriadNVM-N relaxation sound (§3.3.3).

use triad_crypto::mac::{Mac64, MacEngine};
use triad_mem::store::{Block, SparseStore};

use crate::layout::{RegionKind, RegionLayout};

/// Tree shape over a given number of leaves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BmtGeometry {
    arity: u64,
    /// `level_counts[l]` = number of nodes at level `l`; index 0 =
    /// leaves (counter blocks), last index = the single root node.
    level_counts: Vec<u64>,
}

impl BmtGeometry {
    /// Builds the geometry for `leaves` counter blocks with the given
    /// arity.
    ///
    /// # Panics
    ///
    /// Panics if `arity` is not in `2..=8` (eight 8 B hashes is all a
    /// 64 B node can hold) or is not a power of two.
    pub fn new(leaves: u64, arity: u64) -> Self {
        assert!(
            (2..=8).contains(&arity) && arity.is_power_of_two(),
            "arity must be 2, 4 or 8, got {arity}"
        );
        let mut level_counts = vec![leaves];
        let mut n = leaves;
        // Grow until a single node covers everything; `max(1)` keeps the
        // degenerate 0/1-leaf regions well-formed with a root at level 1.
        while level_counts.len() < 2 || n > 1 {
            n = n.div_ceil(arity).max(1);
            level_counts.push(n);
            if n == 1 {
                break;
            }
        }
        BmtGeometry {
            arity,
            level_counts,
        }
    }

    /// The tree arity.
    pub fn arity(&self) -> u64 {
        self.arity
    }

    /// Number of leaves (counter blocks).
    pub fn leaves(&self) -> u64 {
        self.level_counts[0]
    }

    /// The root node's level (leaves are level 0).
    pub fn root_level(&self) -> u8 {
        (self.level_counts.len() - 1) as u8
    }

    /// Number of nodes at `level`; zero when out of range.
    pub fn nodes_at_level(&self, level: u8) -> u64 {
        self.level_counts.get(level as usize).copied().unwrap_or(0)
    }

    /// Node counts for the in-memory levels (1‥root, exclusive),
    /// lowest level first.
    pub fn in_memory_level_counts(&self) -> Vec<u64> {
        if self.level_counts.len() <= 2 {
            return Vec::new();
        }
        self.level_counts[1..self.level_counts.len() - 1].to_vec()
    }

    /// Parent coordinates of node `(level, index)`.
    pub fn parent(&self, level: u8, index: u64) -> (u8, u64) {
        (level + 1, index / self.arity)
    }

    /// The slot this node's hash occupies inside its parent.
    pub fn child_slot(&self, index: u64) -> usize {
        (index % self.arity) as usize
    }

    /// Total in-memory metadata blocks (all levels except leaves and
    /// root).
    pub fn in_memory_nodes(&self) -> u64 {
        self.in_memory_level_counts().iter().sum()
    }
}

/// Logical identity of a tree node, bound into its hash so nodes
/// cannot be relocated between levels, indices or regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId {
    /// Region whose tree the node belongs to.
    pub region: RegionKind,
    /// Level (0 = counter blocks).
    pub level: u8,
    /// Index within the level.
    pub index: u64,
}

impl NodeId {
    /// Packs the identity into the 64-bit "address" fed to the MAC.
    pub fn to_u64(self) -> u64 {
        let region_bit = match self.region {
            RegionKind::NonPersistent => 0u64,
            RegionKind::Persistent => 1u64 << 63,
        };
        region_bit | ((self.level as u64) << 56) | (self.index & ((1 << 56) - 1))
    }
}

/// A 64-byte tree-node buffer: `arity` 8-byte child-hash slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeBuf(pub Block);

impl Default for NodeBuf {
    fn default() -> Self {
        NodeBuf::zeroed()
    }
}

impl NodeBuf {
    /// An all-zero node (the lazy-recovery initial state, §3.3.4).
    pub fn zeroed() -> Self {
        NodeBuf([0; 64])
    }

    /// Reads child-hash slot `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= 8`.
    pub fn slot(&self, slot: usize) -> Mac64 {
        // Documented panic on slot >= 8; the slice is 8 bytes exactly.
        let b: [u8; 8] = self.0[slot * 8..slot * 8 + 8]
            .try_into()
            // triad-lint: allow(panic-policy) -- documented panic; the MAC block is 64 bytes so every slot < 8 is in range
            .expect("8-byte slot");
        Mac64::from_bytes(b)
    }

    /// Writes child-hash slot `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= 8`.
    pub fn set_slot(&mut self, slot: usize, mac: Mac64) {
        self.0[slot * 8..slot * 8 + 8].copy_from_slice(&mac.to_bytes());
    }

    /// Whether every slot is zero.
    pub fn is_zeroed(&self) -> bool {
        self.0 == [0; 64]
    }
}

impl From<Block> for NodeBuf {
    fn from(b: Block) -> Self {
        NodeBuf(b)
    }
}

impl AsRef<Block> for NodeBuf {
    fn as_ref(&self) -> &Block {
        &self.0
    }
}

/// Hash of a node's (or counter block's) 64 bytes, bound to its
/// identity.
pub fn node_hash(engine: &MacEngine, id: NodeId, bytes: &Block) -> Mac64 {
    engine.node_mac(id.to_u64(), bytes)
}

/// Hash of a **leaf** (counter block), with the lazy-recovery sentinel
/// of §3.3.4: an all-zero counter block hashes to [`Mac64::ZERO`], and
/// a counter block that would *naturally* hash to zero is remapped to 1
/// (the paper instead bumps a minor counter and re-encrypts; remapping
/// is behaviourally equivalent — no genuine counter state ever carries
/// the "uninitialised" marker — and keeps the hash a pure function).
pub fn leaf_hash(engine: &MacEngine, region: RegionKind, index: u64, bytes: &Block) -> Mac64 {
    if bytes == &[0u8; 64] {
        return Mac64::ZERO;
    }
    let h = node_hash(
        engine,
        NodeId {
            region,
            level: 0,
            index,
        },
        bytes,
    );
    if h.is_zero() {
        Mac64(1)
    } else {
        h
    }
}

/// The coalesced ancestor set of a batch of dirty leaves.
///
/// Built by [`coalesce_dirty_paths`]: when several leaves of one batch
/// share ancestors, each shared node appears **once** per level instead
/// of once per leaf — the redundancy a write-batch pipeline eliminates
/// (cf. *Streamlining Integrity Tree Updates for Secure Persistent
/// NVM*).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoalescedPaths {
    /// `levels[l]` holds the sorted, deduplicated node indices touched
    /// at level `l + 1` (level 0 — the leaves themselves — is the input
    /// and is not repeated here). The last entry is the root level.
    pub levels: Vec<Vec<u64>>,
    /// Path-node updates a scalar walk would perform: one full
    /// leaf-to-root path per dirty leaf.
    pub naive_updates: u64,
    /// Path-node updates after coalescing: each shared ancestor is
    /// updated once per batch.
    pub coalesced_updates: u64,
}

impl CoalescedPaths {
    /// Node updates saved by coalescing (`naive - coalesced`).
    pub fn saved_updates(&self) -> u64 {
        self.naive_updates - self.coalesced_updates
    }

    /// The deduplicated node indices at tree `level` (1-based; the
    /// leaves are the caller's input). Empty when out of range.
    pub fn nodes_at_level(&self, level: u8) -> &[u64] {
        match level {
            0 => &[],
            l => self
                .levels
                .get(l as usize - 1)
                .map(Vec::as_slice)
                .unwrap_or(&[]),
        }
    }
}

/// Coalesces the update paths of a batch of dirty leaves: walks every
/// leaf's path to the root and merges shared ancestors so each node is
/// visited once per level, in ascending index order.
///
/// `leaves` may contain duplicates (a batch that writes one page twice
/// dirties its counter leaf twice); duplicates count toward the naive
/// cost but collapse in the coalesced set.
pub fn coalesce_dirty_paths(geom: &BmtGeometry, leaves: &[u64]) -> CoalescedPaths {
    let root = geom.root_level();
    let mut levels: Vec<Vec<u64>> = Vec::with_capacity(root as usize);
    // A scalar walk climbs the full path once per dirty leaf.
    let naive = leaves.len() as u64 * root as u64;
    let mut coalesced = 0u64;
    let mut current: Vec<u64> = leaves.to_vec();
    for level in 0..root {
        let mut parents: Vec<u64> = current.iter().map(|&i| geom.parent(level, i).1).collect();
        parents.sort_unstable();
        parents.dedup();
        coalesced += parents.len() as u64;
        levels.push(parents.clone());
        current = parents;
    }
    CoalescedPaths {
        levels,
        naive_updates: naive,
        coalesced_updates: coalesced,
    }
}

/// Result of a tree rebuild.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RebuildOutcome {
    /// The recomputed root node.
    pub root: NodeBuf,
    /// Blocks read from NVM during the rebuild (drives the
    /// recovery-time model: 100 ns per block in the paper's estimate).
    pub blocks_read: u64,
    /// Hash computations performed.
    pub hashes_computed: u64,
}

/// Rebuilds all BMT levels **above** `from_level` from the NVM image,
/// writing the recomputed in-memory levels back into `store`, and
/// returns the recomputed root node.
///
/// * `from_level = 0` — read every counter block and rebuild the whole
///   tree (the "counters only persisted" case, paper's TriadNVM-1).
/// * `from_level = k` — trust the persisted level-`k` nodes and rebuild
///   upward (TriadNVM-(k+1)).
///
/// # Panics
///
/// Panics if `from_level` is at or above the root level (nothing to
/// rebuild) on a non-empty region.
pub fn rebuild_from_level(
    store: &mut SparseStore,
    layout: &RegionLayout,
    engine: &MacEngine,
    from_level: u8,
) -> RebuildOutcome {
    let geom = &layout.geometry;
    if layout.is_empty() {
        return RebuildOutcome {
            root: NodeBuf::zeroed(),
            blocks_read: 0,
            hashes_computed: 0,
        };
    }
    assert!(
        from_level < geom.root_level(),
        "from_level {from_level} has nothing above it (root level {})",
        geom.root_level()
    );
    let mut blocks_read = 0u64;
    let mut hashes = 0u64;
    // Hashes of the current level's nodes, read from NVM.
    let mut level = from_level;
    let mut current: Vec<Mac64> = (0..geom.nodes_at_level(level))
        .map(|i| {
            let addr = if level == 0 {
                layout.counter_start + i
            } else {
                // Rebuild walks stored levels only (below the root).
                layout
                    .bmt_node_addr(level, i)
                    // triad-lint: allow(panic-policy) -- rebuild iterates nodes_at_level, so every (level, i) is a stored node
                    .expect("in-memory level node")
            };
            blocks_read += 1;
            hashes += 1;
            let bytes = store.read(addr);
            if level == 0 {
                leaf_hash(engine, layout.kind, i, &bytes)
            } else {
                node_hash(
                    engine,
                    NodeId {
                        region: layout.kind,
                        level,
                        index: i,
                    },
                    &bytes,
                )
            }
        })
        .collect();
    // Build upward, writing in-memory levels back.
    loop {
        let parent_level = level + 1;
        let parent_count = geom.nodes_at_level(parent_level);
        let mut parents: Vec<NodeBuf> = vec![NodeBuf::zeroed(); parent_count as usize];
        for (i, mac) in current.iter().enumerate() {
            let (pl, pi) = geom.parent(level, i as u64);
            debug_assert_eq!(pl, parent_level);
            parents[pi as usize].set_slot(geom.child_slot(i as u64), *mac);
        }
        if parent_level == geom.root_level() {
            return RebuildOutcome {
                root: parents[0],
                blocks_read,
                hashes_computed: hashes,
            };
        }
        current = parents
            .iter()
            .enumerate()
            .map(|(i, node)| {
                // The loop stops before the root, so the level is stored.
                let addr = layout
                    .bmt_node_addr(parent_level, i as u64)
                    // triad-lint: allow(panic-policy) -- the loop stops before the root, so parent_level is always stored
                    .expect("in-memory level");
                store.write(addr, node.0);
                hashes += 1;
                node_hash(
                    engine,
                    NodeId {
                        region: layout.kind,
                        level: parent_level,
                        index: i as u64,
                    },
                    &node.0,
                )
            })
            .collect();
        level = parent_level;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triad_sim::config::SystemConfig;

    use crate::layout::MemoryMap;

    #[test]
    fn geometry_level_counts() {
        let g = BmtGeometry::new(100, 8);
        assert_eq!(g.leaves(), 100);
        assert_eq!(g.nodes_at_level(1), 13);
        assert_eq!(g.nodes_at_level(2), 2);
        assert_eq!(g.nodes_at_level(3), 1);
        assert_eq!(g.root_level(), 3);
        assert_eq!(g.in_memory_level_counts(), vec![13, 2]);
        assert_eq!(g.in_memory_nodes(), 15);
    }

    #[test]
    fn geometry_degenerate_sizes() {
        let g = BmtGeometry::new(0, 8);
        assert_eq!(g.root_level(), 1);
        assert!(g.in_memory_level_counts().is_empty());
        let g = BmtGeometry::new(1, 8);
        assert_eq!(g.root_level(), 1);
        let g = BmtGeometry::new(8, 8);
        assert_eq!(g.root_level(), 1);
        let g = BmtGeometry::new(9, 8);
        assert_eq!(g.root_level(), 2);
        assert_eq!(g.in_memory_level_counts(), vec![2]);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn bad_arity_rejected() {
        BmtGeometry::new(10, 16);
    }

    #[test]
    fn parent_child_mapping() {
        let g = BmtGeometry::new(100, 8);
        assert_eq!(g.parent(0, 17), (1, 2));
        assert_eq!(g.child_slot(17), 1);
        assert_eq!(g.arity(), 8);
    }

    #[test]
    fn coalescing_merges_shared_ancestors() {
        // 100 leaves, arity 8: leaves 0, 1 and 7 share the level-1
        // parent 0; leaf 17 has parent 2. Everything merges by level 2.
        let g = BmtGeometry::new(100, 8);
        let c = coalesce_dirty_paths(&g, &[0, 1, 7, 17]);
        assert_eq!(c.nodes_at_level(1), &[0, 2]);
        assert_eq!(c.nodes_at_level(2), &[0]);
        assert_eq!(c.nodes_at_level(3), &[0]);
        // Naive: 4 leaves × 3 levels; coalesced: 2 + 1 + 1.
        assert_eq!(c.naive_updates, 12);
        assert_eq!(c.coalesced_updates, 4);
        assert_eq!(c.saved_updates(), 8);
    }

    #[test]
    fn coalescing_duplicate_leaves_collapse() {
        let g = BmtGeometry::new(100, 8);
        let c = coalesce_dirty_paths(&g, &[5, 5, 5]);
        assert_eq!(c.nodes_at_level(1), &[0]);
        assert_eq!(c.naive_updates, 3 * 3);
        // One node per level once the duplicates merge.
        assert_eq!(c.coalesced_updates, 3);
    }

    #[test]
    fn coalescing_disjoint_paths_saves_only_at_the_top() {
        let g = BmtGeometry::new(100, 8);
        // Leaves 0 and 64 share no ancestor below the root node.
        let c = coalesce_dirty_paths(&g, &[0, 64]);
        assert_eq!(c.nodes_at_level(1), &[0, 8]);
        assert_eq!(c.nodes_at_level(2), &[0, 1]);
        assert_eq!(c.nodes_at_level(3), &[0]);
        assert_eq!(c.saved_updates(), 1);
    }

    #[test]
    fn coalescing_empty_batch_is_empty() {
        let g = BmtGeometry::new(100, 8);
        let c = coalesce_dirty_paths(&g, &[]);
        assert_eq!(c.naive_updates, 0);
        assert_eq!(c.coalesced_updates, 0);
        assert!(c.levels.iter().all(Vec::is_empty));
        assert!(c.nodes_at_level(0).is_empty());
        assert!(c.nodes_at_level(9).is_empty());
    }

    #[test]
    fn node_buf_slots() {
        let mut n = NodeBuf::zeroed();
        assert!(n.is_zeroed());
        n.set_slot(3, Mac64(0xABCD));
        assert_eq!(n.slot(3), Mac64(0xABCD));
        assert_eq!(n.slot(2), Mac64::ZERO);
        assert!(!n.is_zeroed());
    }

    #[test]
    fn node_id_packing_is_injective_across_fields() {
        let a = NodeId {
            region: RegionKind::Persistent,
            level: 1,
            index: 5,
        };
        let b = NodeId {
            region: RegionKind::NonPersistent,
            level: 1,
            index: 5,
        };
        let c = NodeId {
            region: RegionKind::Persistent,
            level: 2,
            index: 5,
        };
        let d = NodeId {
            region: RegionKind::Persistent,
            level: 1,
            index: 6,
        };
        let ids = [a, b, c, d].map(NodeId::to_u64);
        for i in 0..4 {
            for j in i + 1..4 {
                assert_ne!(ids[i], ids[j]);
            }
        }
    }

    fn setup() -> (SparseStore, MemoryMap, MacEngine) {
        (
            SparseStore::new(),
            MemoryMap::new(&SystemConfig::tiny()),
            MacEngine::new([5; 16]),
        )
    }

    #[test]
    fn rebuild_is_deterministic_and_input_sensitive() {
        let (mut store, map, engine) = setup();
        let layout = map.persistent();
        let a = rebuild_from_level(&mut store, layout, &engine, 0);
        let b = rebuild_from_level(&mut store, layout, &engine, 0);
        assert_eq!(a.root, b.root);
        // Tamper with one counter block → root changes.
        store.tamper(layout.counter_start, {
            let mut m = [0u8; 64];
            m[0] = 1;
            m
        });
        let c = rebuild_from_level(&mut store, layout, &engine, 0);
        assert_ne!(a.root, c.root);
    }

    #[test]
    fn rebuild_from_level0_reads_all_counters() {
        let (mut store, map, engine) = setup();
        let layout = map.persistent();
        let out = rebuild_from_level(&mut store, layout, &engine, 0);
        assert_eq!(out.blocks_read, layout.counter_blocks);
        assert!(out.hashes_computed >= out.blocks_read);
    }

    #[test]
    fn rebuild_from_level1_matches_full_rebuild() {
        let (mut store, map, engine) = setup();
        let layout = map.persistent();
        // Full rebuild writes correct L1 (and up) nodes into the store…
        let full = rebuild_from_level(&mut store, layout, &engine, 0);
        // …so a rebuild that *trusts* L1 must reach the same root.
        let partial = rebuild_from_level(&mut store, layout, &engine, 1);
        assert_eq!(full.root, partial.root);
        assert_eq!(partial.blocks_read, layout.geometry.nodes_at_level(1));
        assert!(partial.blocks_read < full.blocks_read);
    }

    #[test]
    fn tampered_intermediate_node_changes_partial_rebuild_root() {
        let (mut store, map, engine) = setup();
        let layout = map.persistent();
        let honest = rebuild_from_level(&mut store, layout, &engine, 0);
        let l1 = layout.bmt_node_addr(1, 0).unwrap();
        store.tamper(l1, {
            let mut m = [0u8; 64];
            m[8] = 0xFF;
            m
        });
        let partial = rebuild_from_level(&mut store, layout, &engine, 1);
        assert_ne!(honest.root, partial.root, "tampering must be visible");
    }

    #[test]
    fn leaf_hash_sentinel_semantics() {
        let engine = MacEngine::new([5; 16]);
        let zero = [0u8; 64];
        assert_eq!(
            leaf_hash(&engine, RegionKind::Persistent, 3, &zero),
            Mac64::ZERO
        );
        let mut one = zero;
        one[0] = 1;
        let h = leaf_hash(&engine, RegionKind::Persistent, 3, &one);
        assert!(!h.is_zero(), "real counter state never hashes to zero");
        // Different leaf indices of identical bytes hash differently.
        assert_ne!(h, leaf_hash(&engine, RegionKind::Persistent, 4, &one));
    }

    #[test]
    fn untouched_region_has_all_zero_level_one() {
        // With the sentinel, a fresh region's L1 is entirely zero, so
        // the initial tree build stores no L1 bytes at all.
        let (mut store, map, engine) = setup();
        let layout = map.persistent();
        rebuild_from_level(&mut store, layout, &engine, 0);
        let l1 = layout.bmt_node_addr(1, 0).unwrap();
        assert_eq!(store.read(l1), [0u8; 64]);
    }

    #[test]
    fn empty_region_rebuild_is_trivial() {
        let mut cfg = SystemConfig::tiny();
        cfg.persistent_eighths = 0;
        let map = MemoryMap::new(&cfg);
        let mut store = SparseStore::new();
        let engine = MacEngine::new([5; 16]);
        let out = rebuild_from_level(&mut store, map.persistent(), &engine, 0);
        assert_eq!(out.blocks_read, 0);
        assert!(out.root.is_zeroed());
    }
}
