//! Block-level placement of data and security metadata.
//!
//! Each region is laid out as:
//!
//! ```text
//! | data pages | counter blocks | MAC blocks | BMT L1 | BMT L2 | … |
//! ```
//!
//! * one 64 B **counter block** per 4 KiB data page (split counters),
//! * one 64 B **MAC block** per 8 data blocks (8 × 8 B tags),
//! * BMT levels 1‥top-1 in memory; the single top node (the **root
//!   node**) lives on-chip in a persistent register and is not given a
//!   memory address.
//!
//! The data area is sized by binary search so data + metadata exactly
//! fit the region.

use crate::bmt::BmtGeometry;
use triad_sim::config::{CounterMode, SystemConfig};
use triad_sim::{BlockAddr, PhysAddr};

/// Which region an address belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegionKind {
    /// Conventional memory: discarded at reboot, lazily recovered.
    NonPersistent,
    /// DAX/PMDK-style persistent memory: recoverable across crashes.
    Persistent,
}

impl RegionKind {
    /// Both kinds, non-persistent first (address order).
    pub const ALL: [RegionKind; 2] = [RegionKind::NonPersistent, RegionKind::Persistent];
}

impl std::fmt::Display for RegionKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegionKind::NonPersistent => write!(f, "non-persistent"),
            RegionKind::Persistent => write!(f, "persistent"),
        }
    }
}

/// What role a block plays within its region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockRole {
    /// Application data.
    Data,
    /// Split-counter block.
    Counter,
    /// MAC block (8 tags).
    Mac,
    /// BMT node at the given in-memory level (1-based).
    BmtNode(u8),
    /// Past the laid-out area (slack left by rounding).
    Unused,
}

/// The complete layout of one region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionLayout {
    /// Which region this is.
    pub kind: RegionKind,
    /// First block of the region.
    pub region_start: BlockAddr,
    /// Total blocks in the region (data + metadata + slack).
    pub region_blocks: u64,
    /// First data block.
    pub data_start: BlockAddr,
    /// Number of data blocks (a multiple of 64: whole pages).
    pub data_blocks: u64,
    /// First counter block.
    pub counter_start: BlockAddr,
    /// Number of counter blocks (= BMT leaves).
    pub counter_blocks: u64,
    /// Data blocks covered by one counter block (64 for split
    /// counters, 8 for monolithic).
    pub counter_coverage: u64,
    /// First MAC block.
    pub mac_start: BlockAddr,
    /// Number of MAC blocks.
    pub mac_blocks: u64,
    /// First block of each in-memory BMT level (index 0 = level 1).
    pub bmt_level_start: Vec<BlockAddr>,
    /// Tree geometry over the counter blocks.
    pub geometry: BmtGeometry,
}

impl RegionLayout {
    /// Lays out a region of `region_blocks` blocks starting at
    /// `region_start`, with the given BMT arity.
    ///
    /// Returns a degenerate empty layout when `region_blocks` is too
    /// small for even one page plus its metadata.
    pub fn new(kind: RegionKind, region_start: BlockAddr, region_blocks: u64, arity: u64) -> Self {
        Self::with_counter_coverage(kind, region_start, region_blocks, arity, 64)
    }

    /// Like [`RegionLayout::new`] with an explicit counter coverage:
    /// data blocks per counter block (64 = split, 8 = monolithic).
    ///
    /// # Panics
    ///
    /// Panics if `coverage` is not 8 or 64.
    pub fn with_counter_coverage(
        kind: RegionKind,
        region_start: BlockAddr,
        region_blocks: u64,
        arity: u64,
        coverage: u64,
    ) -> Self {
        assert!(
            coverage == 64 || coverage == 8,
            "counter coverage must be 64 (split) or 8 (monolithic)"
        );
        // Find the largest number of whole data pages that fits.
        let fits = |pages: u64| -> Option<u64> {
            if pages == 0 {
                return Some(0);
            }
            let data = pages * 64;
            let counters = data.div_ceil(coverage);
            let macs = data.div_ceil(8);
            let geometry = BmtGeometry::new(counters, arity);
            let bmt: u64 = geometry.in_memory_level_counts().iter().sum();
            let total = data + counters + macs + bmt;
            (total <= region_blocks).then_some(total)
        };
        let (mut lo, mut hi) = (0u64, region_blocks / 64);
        while lo < hi {
            let mid = (lo + hi).div_ceil(2);
            if fits(mid).is_some() {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        let pages = lo;
        let data_blocks = pages * 64;
        let counter_blocks = data_blocks
            .div_ceil(coverage)
            .max(if pages > 0 { 1 } else { 0 });
        let mac_blocks = data_blocks.div_ceil(8);
        let geometry = BmtGeometry::new(counter_blocks, arity);
        let data_start = region_start;
        let counter_start = data_start + data_blocks;
        let mac_start = counter_start + counter_blocks;
        let mut bmt_level_start = Vec::new();
        let mut cursor = mac_start + mac_blocks;
        for count in geometry.in_memory_level_counts() {
            bmt_level_start.push(cursor);
            cursor = cursor + count;
        }
        RegionLayout {
            kind,
            region_start,
            region_blocks,
            data_start,
            data_blocks,
            counter_start,
            counter_blocks,
            counter_coverage: coverage,
            mac_start,
            mac_blocks,
            bmt_level_start,
            geometry,
        }
    }

    /// Whether the region holds any data at all.
    pub fn is_empty(&self) -> bool {
        self.data_blocks == 0
    }

    /// Whether `addr` falls inside this region.
    pub fn contains(&self, addr: PhysAddr) -> bool {
        let b = addr.block();
        b.0 >= self.region_start.0 && b.0 < self.region_start.0 + self.region_blocks
    }

    /// Whether `block` is one of this region's data blocks.
    pub fn contains_data_block(&self, block: BlockAddr) -> bool {
        block.0 >= self.data_start.0 && block.0 < self.data_start.0 + self.data_blocks
    }

    /// First byte address of the data area.
    pub fn data_base(&self) -> PhysAddr {
        self.data_start.base()
    }

    /// Size of the data area in bytes.
    pub fn data_bytes(&self) -> u64 {
        self.data_blocks * 64
    }

    /// Zero-based index of a data block within the region.
    ///
    /// # Panics
    ///
    /// Panics if `block` is not a data block of this region.
    pub fn data_index(&self, block: BlockAddr) -> u64 {
        assert!(
            self.contains_data_block(block),
            "{block} is not a data block of the {} region",
            self.kind
        );
        block - self.data_start
    }

    /// The counter block covering `data`.
    pub fn counter_block_of(&self, data: BlockAddr) -> BlockAddr {
        self.counter_start + self.data_index(data) / self.counter_coverage
    }

    /// The counter slot of `data` within its counter block.
    pub fn counter_slot_of(&self, data: BlockAddr) -> usize {
        (self.data_index(data) % self.counter_coverage) as usize
    }

    /// The MAC block holding `data`'s tag (8 tags per block).
    pub fn mac_block_of(&self, data: BlockAddr) -> BlockAddr {
        self.mac_start + self.data_index(data) / 8
    }

    /// The tag slot of `data` within its MAC block.
    pub fn mac_slot_of(&self, data: BlockAddr) -> usize {
        (self.data_index(data) % 8) as usize
    }

    /// BMT leaf index of a counter block.
    ///
    /// # Panics
    ///
    /// Panics if `counter` is not a counter block of this region.
    pub fn leaf_index(&self, counter: BlockAddr) -> u64 {
        assert!(
            counter.0 >= self.counter_start.0
                && counter.0 < self.counter_start.0 + self.counter_blocks,
            "{counter} is not a counter block of the {} region",
            self.kind
        );
        counter - self.counter_start
    }

    /// Memory address of BMT node `(level, index)`; `None` when the
    /// node is the on-chip root node (top level) or out of range.
    pub fn bmt_node_addr(&self, level: u8, index: u64) -> Option<BlockAddr> {
        if level == 0 || level as usize > self.bmt_level_start.len() {
            return None;
        }
        if index >= self.geometry.nodes_at_level(level) {
            return None;
        }
        Some(self.bmt_level_start[level as usize - 1] + index)
    }

    /// Classifies a block within the region.
    pub fn role_of(&self, block: BlockAddr) -> BlockRole {
        let b = block.0;
        if self.contains_data_block(block) {
            return BlockRole::Data;
        }
        if b >= self.counter_start.0 && b < self.counter_start.0 + self.counter_blocks {
            return BlockRole::Counter;
        }
        if b >= self.mac_start.0 && b < self.mac_start.0 + self.mac_blocks {
            return BlockRole::Mac;
        }
        for (i, start) in self.bmt_level_start.iter().enumerate() {
            let level = i as u8 + 1;
            let count = self.geometry.nodes_at_level(level);
            if b >= start.0 && b < start.0 + count {
                return BlockRole::BmtNode(level);
            }
        }
        BlockRole::Unused
    }
}

/// The full physical memory map: non-persistent region first (low
/// addresses), persistent region last — mirroring `memmap=4G!12G`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryMap {
    non_persistent: RegionLayout,
    persistent: RegionLayout,
}

impl MemoryMap {
    /// Builds the map from a system configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`SystemConfig::validate`].
    pub fn new(config: &SystemConfig) -> Self {
        // Documented panic: callers validate configs before mapping.
        // triad-lint: allow(panic-policy) -- documented panic; construction is config-time, not a recovery path
        config.validate().expect("invalid system configuration");
        let total_blocks = config.mem.capacity_bytes / 64;
        let np_blocks = total_blocks / 8 * (8 - config.persistent_eighths) as u64;
        let arity = config.security.bmt_arity as u64;
        let coverage = match config.security.counter_mode {
            CounterMode::Split => 64,
            CounterMode::Monolithic => 8,
        };
        MemoryMap {
            non_persistent: RegionLayout::with_counter_coverage(
                RegionKind::NonPersistent,
                BlockAddr(0),
                np_blocks,
                arity,
                coverage,
            ),
            persistent: RegionLayout::with_counter_coverage(
                RegionKind::Persistent,
                BlockAddr(np_blocks),
                total_blocks - np_blocks,
                arity,
                coverage,
            ),
        }
    }

    /// The non-persistent region's layout.
    pub fn non_persistent(&self) -> &RegionLayout {
        &self.non_persistent
    }

    /// The persistent region's layout.
    pub fn persistent(&self) -> &RegionLayout {
        &self.persistent
    }

    /// The layout of `kind`.
    pub fn region(&self, kind: RegionKind) -> &RegionLayout {
        match kind {
            RegionKind::NonPersistent => &self.non_persistent,
            RegionKind::Persistent => &self.persistent,
        }
    }

    /// Which region contains `addr`, if any.
    pub fn region_of(&self, addr: PhysAddr) -> Option<RegionKind> {
        if self.non_persistent.contains(addr) && !self.non_persistent.is_empty() {
            Some(RegionKind::NonPersistent)
        } else if self.persistent.contains(addr) {
            Some(RegionKind::Persistent)
        } else {
            None
        }
    }

    /// The region whose *data area* contains `block`, if any.
    pub fn data_region_of(&self, block: BlockAddr) -> Option<RegionKind> {
        if self.non_persistent.contains_data_block(block) {
            Some(RegionKind::NonPersistent)
        } else if self.persistent.contains_data_block(block) {
            Some(RegionKind::Persistent)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triad_sim::config::SystemConfig;

    fn map() -> MemoryMap {
        MemoryMap::new(&SystemConfig::tiny())
    }

    #[test]
    fn regions_partition_the_space() {
        let m = map();
        let np = m.non_persistent();
        let p = m.persistent();
        assert_eq!(np.region_start, BlockAddr(0));
        assert_eq!(p.region_start.0, np.region_blocks);
        // tiny(): 4 MiB → 65536 blocks, 2/8 persistent.
        assert_eq!(np.region_blocks + p.region_blocks, 65536);
        assert_eq!(p.region_blocks, 16384);
    }

    #[test]
    fn layout_sections_are_disjoint_and_in_order() {
        let m = map();
        for r in [m.non_persistent(), m.persistent()] {
            assert!(r.data_start.0 < r.counter_start.0);
            assert_eq!(r.counter_start.0, r.data_start.0 + r.data_blocks);
            assert_eq!(r.mac_start.0, r.counter_start.0 + r.counter_blocks);
            let mut cursor = r.mac_start.0 + r.mac_blocks;
            for (i, s) in r.bmt_level_start.iter().enumerate() {
                assert_eq!(s.0, cursor, "level {} start", i + 1);
                cursor += r.geometry.nodes_at_level(i as u8 + 1);
            }
            assert!(cursor <= r.region_start.0 + r.region_blocks);
        }
    }

    #[test]
    fn data_area_is_whole_pages_and_maximal() {
        let m = map();
        let r = m.persistent();
        assert_eq!(r.data_blocks % 64, 0);
        // One more page must not fit.
        let pages = r.data_blocks / 64 + 1;
        let data = pages * 64;
        let macs = data.div_ceil(8);
        let bmt: u64 = BmtGeometry::new(pages, 8)
            .in_memory_level_counts()
            .iter()
            .sum();
        assert!(data + pages + macs + bmt > r.region_blocks);
    }

    #[test]
    fn counter_and_mac_mapping() {
        let m = map();
        let r = m.persistent();
        let d0 = r.data_start;
        let d65 = r.data_start + 65;
        assert_eq!(r.counter_block_of(d0), r.counter_start);
        assert_eq!(r.counter_slot_of(d0), 0);
        assert_eq!(r.counter_block_of(d65), r.counter_start + 1);
        assert_eq!(r.counter_slot_of(d65), 1);
        assert_eq!(r.mac_block_of(d0), r.mac_start);
        assert_eq!(r.mac_slot_of(d65), 1);
        assert_eq!(r.mac_block_of(d65), r.mac_start + 8);
    }

    #[test]
    fn role_classification_covers_all_sections() {
        let m = map();
        let r = m.persistent();
        assert_eq!(r.role_of(r.data_start), BlockRole::Data);
        assert_eq!(r.role_of(r.counter_start), BlockRole::Counter);
        assert_eq!(r.role_of(r.mac_start), BlockRole::Mac);
        assert_eq!(r.role_of(r.bmt_level_start[0]), BlockRole::BmtNode(1));
        // A layout with one extra block has slack at the end.
        let slack = RegionLayout::new(RegionKind::Persistent, BlockAddr(0), r.region_blocks + 1, 8);
        let last = BlockAddr(slack.region_blocks - 1);
        assert_eq!(slack.role_of(last), BlockRole::Unused);
    }

    #[test]
    fn bmt_node_addresses() {
        let m = map();
        let r = m.persistent();
        let l1 = r.bmt_node_addr(1, 0).unwrap();
        assert_eq!(l1, r.bmt_level_start[0]);
        assert_eq!(r.bmt_node_addr(0, 0), None, "leaves are counter blocks");
        let top = r.geometry.root_level();
        assert_eq!(r.bmt_node_addr(top, 0), None, "root node is on-chip");
    }

    #[test]
    fn region_of_classifies_addresses() {
        let m = map();
        assert_eq!(m.region_of(PhysAddr(0)), Some(RegionKind::NonPersistent));
        let p_base = m.persistent().region_start.base();
        assert_eq!(m.region_of(p_base), Some(RegionKind::Persistent));
        assert_eq!(m.region_of(PhysAddr(4 << 20)), None);
    }

    #[test]
    fn zero_persistent_ratio_gives_empty_region() {
        let mut cfg = SystemConfig::tiny();
        cfg.persistent_eighths = 0;
        let m = MemoryMap::new(&cfg);
        assert!(m.persistent().is_empty());
        assert!(!m.non_persistent().is_empty());
        assert_eq!(
            m.data_region_of(m.non_persistent().data_start),
            Some(RegionKind::NonPersistent)
        );
    }

    #[test]
    fn data_index_panics_outside_region() {
        let m = map();
        let r = m.persistent();
        let c = r.counter_start;
        assert!(std::panic::catch_unwind(|| r.data_index(c)).is_err());
    }

    #[test]
    fn isca19_map_has_expected_scale() {
        let m = MemoryMap::new(&SystemConfig::isca19());
        let p = m.persistent();
        // 4 GB persistent region → ~64 Mi data blocks, ~1 Mi counters.
        assert!(p.data_bytes() > 3 << 30);
        assert_eq!(p.counter_blocks, p.data_blocks / 64);
        // Paper's Table 1: ~9-level 8-ary tree over the full memory.
        assert!(p.geometry.root_level() >= 6);
    }
}
