//! The sharded KV serving front-end: [`KvService`] — the ROADMAP's
//! "fleet scale" layer over `triad-kv`.
//!
//! Where [`crate::kv::KvFleet`] is a deterministic test driver (many
//! shards multiplexed onto one secure memory, one op at a time), the
//! service is the serving-shaped composition the paper's throughput
//! argument needs:
//!
//! * **Routing** — every key is hashed (keyed SipHash-2-4) onto one of
//!   N *independent* shards, each owning its own [`SecureMemory`],
//!   persistent heap, WAL and [`KvStore`]. Nothing is shared between
//!   shards, so a submit batch runs the shards genuinely in parallel
//!   on worker threads ([`std::thread::scope`]).
//! * **Group commit** — each shard accumulates routed mutations and
//!   flushes them through [`KvStore::apply_group`]: one redo
//!   transaction, one commit-marker persist, amortized across the
//!   whole group. The `group_window` knob bounds group size; window 1
//!   degenerates to the unbatched one-marker-per-mutation path.
//! * **Admission control** — each flush observes the shard's
//!   `wpq_full_events` delta. Under [`AdmissionPolicy::Shed`] a
//!   saturated flush starts a cooldown during which incoming
//!   mutations are rejected ([`Response::Shed`]); under
//!   [`AdmissionPolicy::Delay`] the shard instead grows its group
//!   window (fewer, larger flushes) until the pressure clears.
//! * **Determinism** — the response vector, merged stats and merged
//!   state of a submit are identical whether the lanes run threaded
//!   or serial: requests are partitioned per shard in submit order,
//!   each lane is a pure function of its own slice, and every merge
//!   walks lanes in shard-index order over ordered containers (the
//!   `shard-safety/nondeterministic-merge` contract).
//!
//! Durability contract: when [`KvService::submit`] returns `Ok`, every
//! admitted mutation of the batch is durable (each lane drains its
//! pending group before returning). A crash mid-submit loses at most
//! the interrupted group on the crashed shard — recovery lands on a
//! group boundary, which the fleet crash sweep in
//! `tests/property_crash.rs` checks at every persist boundary.

use std::collections::BTreeMap;

use triad_core::{
    CounterPersistence, PersistScheme, RecoveryReport, SecureMemory, SecureMemoryBuilder,
    SecureMemoryError,
};
use triad_crypto::SipHash24;
use triad_kv::heap::PersistentHeap;
use triad_kv::{KvConfig, KvError, KvStats, KvStore};
use triad_sim::config::SystemConfig;
use triad_sim::rng::SplitMix64;
use triad_sim::Time;

use crate::kv::{value_bytes, MAX_SHARDS};

/// Per-shard reaction to WPQ saturation observed at flush time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Admit everything; no backpressure.
    Open,
    /// After a flush that saturated the WPQ, reject the next
    /// `cooldown` mutations routed to this shard.
    Shed {
        /// Mutations rejected per saturation episode.
        cooldown: u64,
    },
    /// After a saturated flush, double the shard's group window (up to
    /// `max_window`) so persists amortize harder; halve it back toward
    /// the configured window once flushes run clean.
    Delay {
        /// The largest window the shard may grow to.
        max_window: usize,
    },
}

/// Everything that determines a service fleet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceSpec {
    /// Independent shards (1..=[`MAX_SHARDS`]).
    pub shards: u64,
    /// Mutations a shard accumulates before flushing a group
    /// (min 1; 1 = unbatched, one commit marker per mutation).
    pub group_window: usize,
    /// Backpressure policy.
    pub admission: AdmissionPolicy,
    /// Persistence scheme of every shard engine.
    pub scheme: PersistScheme,
    /// Counter-persistence policy of every shard engine.
    pub counters: CounterPersistence,
    /// Buckets per shard store.
    pub buckets: u64,
    /// WAL blocks per shard store.
    pub log_blocks: u64,
    /// Base key seed; shard i derives its own stream from it.
    pub key_seed: u64,
    /// Engine geometry override (`None` = builder default).
    pub config: Option<SystemConfig>,
}

impl ServiceSpec {
    /// A serving-shaped default: TriadNVM-2, strict counters, window 8.
    pub fn new(shards: u64) -> Self {
        ServiceSpec {
            shards,
            group_window: 8,
            admission: AdmissionPolicy::Open,
            scheme: PersistScheme::triad_nvm(2),
            counters: CounterPersistence::Strict,
            buckets: 64,
            log_blocks: 64,
            key_seed: 1,
            config: None,
        }
    }
}

/// One client request against the service's single keyspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Insert or replace `key`.
    Put {
        /// The key.
        key: u64,
        /// The value bytes.
        value: Vec<u8>,
    },
    /// Point lookup.
    Get {
        /// The key.
        key: u64,
    },
    /// Point delete.
    Delete {
        /// The key.
        key: u64,
    },
    /// Full sorted scan across every shard (forces a fleet-wide
    /// flush so the scan sees every earlier mutation of the batch).
    Scan,
}

/// What one request returned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// A put or delete was admitted (durable once submit returns).
    Done,
    /// Admission control rejected the mutation under WPQ pressure.
    Shed,
    /// A get's value (or absence).
    Value(Option<Vec<u8>>),
    /// A scan's merged, key-sorted pairs.
    Scanned(Vec<(u64, Vec<u8>)>),
}

/// Group-commit and admission counters of one shard (or, merged, of
/// the whole service).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GroupStats {
    /// Groups flushed.
    pub flushes: u64,
    /// Mutations those groups carried.
    pub ops: u64,
    /// Redo records appended (coalesced per distinct block).
    pub log_records: u64,
    /// Commit markers persisted — the amortization numerator.
    pub commit_markers: u64,
    /// Mutations rejected by admission control.
    pub shed: u64,
}

impl GroupStats {
    /// Merges another shard's counters (field-wise sum; deterministic
    /// regardless of shard visit order).
    pub fn merge(&mut self, other: &GroupStats) {
        self.flushes += other.flushes;
        self.ops += other.ops;
        self.log_records += other.log_records;
        self.commit_markers += other.commit_markers;
        self.shed += other.shed;
    }
}

/// A request routed onto one lane, tagged with its submit index so
/// responses merge back deterministically.
#[derive(Debug, Clone)]
enum LaneOp {
    /// A put (`Some`) or delete (`None`).
    Mutate {
        idx: usize,
        key: u64,
        value: Option<Vec<u8>>,
    },
    Get {
        idx: usize,
        key: u64,
    },
    /// This lane's slice of a fleet-wide scan.
    Scan {
        idx: usize,
    },
}

/// What one lane op produced.
#[derive(Debug, Clone)]
enum LaneOutcome {
    Done,
    Shed,
    Got(Option<Vec<u8>>),
    /// This lane's sorted pairs; the service merges across lanes.
    Scanned(Vec<(u64, Vec<u8>)>),
}

/// One shard: a whole private engine + store, plus the group-commit
/// staging state. `Send`, so submit can move it onto a worker thread.
#[derive(Debug)]
struct ShardLane {
    mem: SecureMemory,
    store: KvStore,
    /// Mutations staged since the last flush, in admit order.
    pending: Vec<(u64, Option<Vec<u8>>)>,
    /// Current flush threshold (Delay adapts it).
    window: usize,
    /// The configured threshold Delay decays back to.
    base_window: usize,
    /// Mutations still to reject in the current Shed cooldown.
    shed_remaining: u64,
    policy: AdmissionPolicy,
    groups: GroupStats,
}

impl ShardLane {
    /// Flushes the pending group through [`KvStore::apply_group`] and
    /// feeds the observed WPQ pressure back into admission. A group
    /// whose coalesced write set overflows the WAL is split in half
    /// and flushed as two groups (recursively), so an oversized window
    /// costs extra markers instead of failing the batch.
    fn flush(&mut self) -> Result<(), KvError> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let muts = std::mem::take(&mut self.pending);
        self.flush_muts(muts)
    }

    fn flush_muts(&mut self, mut muts: Vec<(u64, Option<Vec<u8>>)>) -> Result<(), KvError> {
        let before = self.mem.mem_stats().wpq_full_events;
        match self.store.apply_group(&mut self.mem, &muts) {
            Ok(receipt) => {
                self.groups.flushes += 1;
                self.groups.ops += receipt.ops;
                self.groups.log_records += receipt.log_records;
                self.groups.commit_markers += receipt.commit_markers;
                let delta = self.mem.mem_stats().wpq_full_events - before;
                self.note_flush_pressure(delta);
                Ok(())
            }
            Err(KvError::LogFull) if muts.len() > 1 => {
                let tail = muts.split_off(muts.len() / 2);
                self.flush_muts(muts)?;
                self.flush_muts(tail)
            }
            Err(e) => Err(e),
        }
    }

    /// Admission-control reaction to one flush's `wpq_full_events`
    /// delta. Pure state transition — unit-testable without having to
    /// provoke real WPQ saturation.
    fn note_flush_pressure(&mut self, wpq_full_delta: u64) {
        match self.policy {
            AdmissionPolicy::Open => {}
            AdmissionPolicy::Shed { cooldown } => {
                if wpq_full_delta > 0 {
                    self.shed_remaining = cooldown;
                }
            }
            AdmissionPolicy::Delay { max_window } => {
                if wpq_full_delta > 0 {
                    self.window = (self.window.saturating_mul(2)).min(max_window.max(1));
                } else if self.window > self.base_window {
                    self.window = (self.window / 2).max(self.base_window);
                }
            }
        }
    }

    /// The value `key` would read right now: the youngest pending
    /// mutation wins over the durable store.
    fn pending_lookup(&self, key: u64) -> Option<Option<Vec<u8>>> {
        self.pending
            .iter()
            .rev()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v.clone())
    }

    /// Runs this lane's slice of a submit batch, in order, flushing on
    /// window boundaries, scans, and at the end (the submit durability
    /// contract).
    fn run(&mut self, ops: &[LaneOp]) -> Result<Vec<(usize, LaneOutcome)>, KvError> {
        let mut out = Vec::with_capacity(ops.len());
        for op in ops {
            match op {
                LaneOp::Mutate { idx, key, value } => {
                    if self.shed_remaining > 0 {
                        self.shed_remaining -= 1;
                        self.groups.shed += 1;
                        out.push((*idx, LaneOutcome::Shed));
                        continue;
                    }
                    self.pending.push((*key, value.clone()));
                    out.push((*idx, LaneOutcome::Done));
                    if self.pending.len() >= self.window {
                        self.flush()?;
                    }
                }
                LaneOp::Get { idx, key } => {
                    let value = match self.pending_lookup(*key) {
                        Some(staged) => staged,
                        None => self.store.get(&mut self.mem, *key)?,
                    };
                    out.push((*idx, LaneOutcome::Got(value)));
                }
                LaneOp::Scan { idx } => {
                    self.flush()?;
                    out.push((*idx, LaneOutcome::Scanned(self.store.scan(&mut self.mem)?)));
                }
            }
        }
        self.flush()?;
        Ok(out)
    }
}

/// The sharded serving front-end. See the module docs for the
/// routing / group-commit / admission / determinism contract.
#[derive(Debug)]
pub struct KvService {
    lanes: Vec<ShardLane>,
    threaded: bool,
}

impl KvService {
    /// Builds a fleet of `spec.shards` independent shard engines.
    ///
    /// # Errors
    ///
    /// [`KvError::TooManyShards`] above [`MAX_SHARDS`]; engine build
    /// or heap errors otherwise.
    pub fn create(spec: &ServiceSpec) -> Result<KvService, KvError> {
        let shards = spec.shards.max(1);
        if shards > MAX_SHARDS {
            return Err(KvError::TooManyShards {
                requested: shards,
                max: MAX_SHARDS,
            });
        }
        let mut lanes = Vec::with_capacity(shards as usize);
        for i in 0..shards {
            lanes.push(Self::create_lane(spec, i)?);
        }
        Ok(KvService {
            lanes,
            threaded: true,
        })
    }

    fn create_lane(spec: &ServiceSpec, i: u64) -> Result<ShardLane, KvError> {
        let mut builder = SecureMemoryBuilder::new()
            .scheme(spec.scheme)
            .counter_persistence(spec.counters)
            // Distinct per-shard key streams, derived SplitMix64-style
            // from the base seed.
            .key_seed(spec.key_seed ^ (i + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        if let Some(cfg) = spec.config {
            builder = builder.config(cfg);
        }
        let mut mem = builder.build().map_err(KvError::Memory)?;
        let heap = PersistentHeap::format(&mut mem)?;
        let store = KvStore::create(
            &mut mem,
            heap,
            KvConfig {
                buckets: spec.buckets,
                log_blocks: spec.log_blocks,
            },
        )?;
        // Heap root = superblock: the single-store layout
        // `triad_kv::recover_store` recovers in one call.
        heap.set_root(&mut mem, store.superblock().0)?;
        let window = spec.group_window.max(1);
        Ok(ShardLane {
            mem,
            store,
            pending: Vec::new(),
            window,
            base_window: window,
            shed_remaining: 0,
            policy: spec.admission,
            groups: GroupStats::default(),
        })
    }

    /// Shard count.
    pub fn shard_count(&self) -> usize {
        self.lanes.len()
    }

    /// Chooses threaded (default) or single-threaded lane execution.
    /// Both produce identical responses, stats and state — the
    /// determinism test pins that.
    pub fn set_threaded(&mut self, threaded: bool) {
        self.threaded = threaded;
    }

    /// The shard index serving `key` (keyed-hash routing, reduced in
    /// u64 — see `route_shard` in [`crate::kv`]).
    pub fn route(&self, key: u64) -> usize {
        let h = SipHash24::new(*b"triad-kv routing").hash_words(&[key]);
        (h % self.lanes.len().max(1) as u64) as usize
    }

    /// Serves one batch: partitions the requests across shards in
    /// submit order, runs every lane (threaded or serial), and merges
    /// the responses back into submit order. On `Ok`, every admitted
    /// mutation is durable.
    ///
    /// # Errors
    ///
    /// The first failing lane's error, in shard order (an injected
    /// crash surfaces as `KvError::Memory(NeedsRecovery)`; see
    /// [`KvService::recover_shard`]).
    pub fn submit(&mut self, reqs: &[Request]) -> Result<Vec<Response>, KvError> {
        let n = self.lanes.len();
        let mut per_lane: Vec<Vec<LaneOp>> = (0..n).map(|_| Vec::new()).collect();
        for (idx, req) in reqs.iter().enumerate() {
            match req {
                Request::Put { key, value } => per_lane[self.route(*key)].push(LaneOp::Mutate {
                    idx,
                    key: *key,
                    value: Some(value.clone()),
                }),
                Request::Delete { key } => per_lane[self.route(*key)].push(LaneOp::Mutate {
                    idx,
                    key: *key,
                    value: None,
                }),
                Request::Get { key } => {
                    per_lane[self.route(*key)].push(LaneOp::Get { idx, key: *key });
                }
                Request::Scan => {
                    for ops in per_lane.iter_mut() {
                        ops.push(LaneOp::Scan { idx });
                    }
                }
            }
        }

        let results: Vec<Result<Vec<(usize, LaneOutcome)>, KvError>> = if self.threaded {
            std::thread::scope(|s| {
                let handles: Vec<_> = self
                    .lanes
                    .iter_mut()
                    .zip(per_lane.iter())
                    .map(|(lane, ops)| s.spawn(move || lane.run(ops)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| match h.join() {
                        Ok(r) => r,
                        Err(panic) => std::panic::resume_unwind(panic),
                    })
                    .collect()
            })
        } else {
            self.lanes
                .iter_mut()
                .zip(per_lane.iter())
                .map(|(lane, ops)| lane.run(ops))
                .collect()
        };

        // Deterministic merge: lanes visited in shard order, scan
        // fragments merged through an ordered map.
        let mut responses: Vec<Option<Response>> = vec![None; reqs.len()];
        let mut scans: BTreeMap<usize, BTreeMap<u64, Vec<u8>>> = BTreeMap::new();
        for lane_result in results {
            for (idx, outcome) in lane_result? {
                match outcome {
                    LaneOutcome::Done => responses[idx] = Some(Response::Done),
                    LaneOutcome::Shed => responses[idx] = Some(Response::Shed),
                    LaneOutcome::Got(v) => responses[idx] = Some(Response::Value(v)),
                    LaneOutcome::Scanned(pairs) => {
                        scans.entry(idx).or_default().extend(pairs);
                    }
                }
            }
        }
        for (idx, merged) in scans {
            responses[idx] = Some(Response::Scanned(merged.into_iter().collect()));
        }
        Ok(responses
            .into_iter()
            .map(|r| r.expect("every submitted request produces exactly one response"))
            .collect())
    }

    /// The service's durable state, merged across shards by key.
    /// Reads only what is on NVM — staged-but-unflushed mutations
    /// (none, after a successful submit) are not included.
    ///
    /// # Errors
    ///
    /// Propagates store/memory errors.
    pub fn dump(&mut self) -> Result<BTreeMap<u64, Vec<u8>>, KvError> {
        let mut out = BTreeMap::new();
        for lane in self.lanes.iter_mut() {
            for (key, value) in lane.store.scan(&mut lane.mem)? {
                out.insert(key, value);
            }
        }
        Ok(out)
    }

    /// Merged store counters, shard-order field-wise sum.
    pub fn merged_kv_stats(&self) -> KvStats {
        let mut out = KvStats::default();
        for lane in &self.lanes {
            out.merge(lane.store.stats());
        }
        out
    }

    /// Merged group-commit/admission counters.
    pub fn merged_group_stats(&self) -> GroupStats {
        let mut out = GroupStats::default();
        for lane in &self.lanes {
            out.merge(&lane.groups);
        }
        out
    }

    /// The fleet's simulated makespan: the slowest shard's clock.
    /// Shards run in parallel, so this is the serving-time analogue
    /// (total work / this = aggregate throughput).
    pub fn max_shard_time(&self) -> Time {
        self.lanes
            .iter()
            .map(|l| l.mem.now())
            .max()
            .unwrap_or(Time::ZERO)
    }

    /// Summed durability points across shards.
    pub fn total_persists(&self) -> u64 {
        self.lanes.iter().map(|l| l.mem.stats().persists).sum()
    }

    /// Summed metadata persist writes across shards (the bench-delta
    /// crypto-overhead metric).
    pub fn total_persist_metadata_writes(&self) -> u64 {
        self.lanes
            .iter()
            .map(|l| l.mem.stats().persist_metadata_writes())
            .sum()
    }

    /// One shard's engine (crash arming, stats).
    pub fn shard_mem(&self, i: usize) -> Option<&SecureMemory> {
        self.lanes.get(i).map(|l| &l.mem)
    }

    /// One shard's engine, mutably (crash injection).
    pub fn shard_mem_mut(&mut self, i: usize) -> Option<&mut SecureMemory> {
        self.lanes.get_mut(i).map(|l| &mut l.mem)
    }

    /// One shard's store (stats, event wiring).
    pub fn shard_store_mut(&mut self, i: usize) -> Option<&mut KvStore> {
        self.lanes.get_mut(i).map(|l| &mut l.store)
    }

    /// Recovers shard `i` after a crash: engine recovery + WAL replay
    /// via [`triad_kv::recover_store`]. Pending (unflushed) mutations
    /// of the crashed shard are discarded — they were never durable.
    /// The shard's store counters restart from zero, as after any
    /// reopen.
    ///
    /// # Errors
    ///
    /// [`KvError::NotAStore`] for an out-of-range index; recovery
    /// errors otherwise.
    pub fn recover_shard(&mut self, i: usize) -> Result<RecoveryReport, KvError> {
        let lane = self.lanes.get_mut(i).ok_or(KvError::NotAStore)?;
        lane.pending.clear();
        lane.shed_remaining = 0;
        lane.window = lane.base_window;
        let (store, report) = triad_kv::recover_store(&mut lane.mem)?;
        lane.store = store;
        Ok(report)
    }
}

/// Generates a seeded put/get/delete request schedule over a global
/// keyspace (5:3:2 mix, [`value_bytes`]-derived payloads). Scans are
/// fleet-wide barriers and are driven explicitly where needed.
pub fn generate_requests(
    seed: u64,
    ops: usize,
    keyspace: u64,
    value_len: (usize, usize),
) -> Vec<Request> {
    let mut rng = SplitMix64::stream(seed, 0x73_7276_6372_6571);
    (0..ops)
        .map(|_| {
            let key = rng.below(keyspace.max(1));
            match rng.below(10) {
                0..=4 => {
                    let len =
                        rng.gen_range_inclusive(value_len.0 as u64..=value_len.1 as u64) as usize;
                    Request::Put {
                        key,
                        value: value_bytes(rng.next_u64(), len),
                    }
                }
                5..=7 => Request::Get { key },
                _ => Request::Delete { key },
            }
        })
        .collect()
}

/// The serving-layer crash-equivalence property: a seeded schedule,
/// submitted batch by batch (one group-commit flush per shard per
/// batch), replayed once per persist boundary of the victim shard with
/// a crash armed at that boundary. After every crash the victim must
/// recover to **exactly** the pre- or post-group durable snapshot of
/// the interrupted batch — a serial prefix at group granularity,
/// nothing else — and re-driving the schedule must converge on the
/// clean run's final state. Returns the number of boundaries swept.
///
/// `base` supplies the fleet geometry and scheme; the check forces
/// serial lane execution, `Open` admission and a whole-batch group
/// window so group boundaries are exactly batch boundaries.
///
/// # Errors
///
/// A human-readable description of the first divergence, formatted
/// with the boundary and batch index for reproduction.
pub fn service_crash_equivalence_check(
    base: &ServiceSpec,
    batches: usize,
    batch_len: usize,
    seed: u64,
) -> Result<u64, String> {
    let spec = ServiceSpec {
        group_window: batch_len.max(1),
        admission: AdmissionPolicy::Open,
        // Roomy WAL: the sweep's batch = one group, never log-split.
        log_blocks: base.log_blocks.max(256),
        ..*base
    };
    let schedule: Vec<Vec<Request>> = (0..batches)
        .map(|b| generate_requests(seed ^ (b as u64 + 1), batch_len, 16, (1, 48)))
        .collect();
    let victim = 0usize;

    // Clean run: verify every response against the model and snapshot
    // the victim shard's durable state at every group boundary.
    let mut svc = KvService::create(&spec).map_err(|e| format!("create: {e}"))?;
    svc.set_threaded(false);
    let persist_base = svc
        .shard_mem(victim)
        .map(|m| m.stats().persists)
        .unwrap_or(0);
    let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    let victim_view = |svc: &KvService, m: &BTreeMap<u64, Vec<u8>>| -> BTreeMap<u64, Vec<u8>> {
        m.iter()
            .filter(|(k, _)| svc.route(**k) == victim)
            .map(|(k, v)| (*k, v.clone()))
            .collect()
    };
    let mut snaps: Vec<BTreeMap<u64, Vec<u8>>> = vec![BTreeMap::new()];
    for (b, batch) in schedule.iter().enumerate() {
        let resps = svc
            .submit(batch)
            .map_err(|e| format!("clean run, batch {b}: {e}"))?;
        for (req, resp) in batch.iter().zip(&resps) {
            match (req, resp) {
                (Request::Put { key, value }, Response::Done) => {
                    model.insert(*key, value.clone());
                }
                (Request::Delete { key }, Response::Done) => {
                    model.remove(key);
                }
                (Request::Get { key }, Response::Value(v)) => {
                    if v.as_ref() != model.get(key) {
                        return Err(format!(
                            "clean run, batch {b}: get({key}) disagrees with the model"
                        ));
                    }
                }
                (rq, rs) => {
                    return Err(format!(
                        "clean run, batch {b}: unexpected response {rs:?} for {rq:?}"
                    ))
                }
            }
        }
        snaps.push(victim_view(&svc, &model));
    }
    let final_state = svc.dump().map_err(|e| format!("clean run: dump: {e}"))?;
    if final_state != model {
        return Err("clean run: durable state diverges from the model".into());
    }
    let boundaries = svc
        .shard_mem(victim)
        .map(|m| m.stats().persists)
        .unwrap_or(0)
        - persist_base;

    for k in 0..boundaries {
        let mut svc = KvService::create(&spec).map_err(|e| format!("boundary {k}: create: {e}"))?;
        svc.set_threaded(false);
        if let Some(m) = svc.shard_mem_mut(victim) {
            m.inject_crash_after_persists(k);
        }
        let mut crashed_at: Option<usize> = None;
        let mut b = 0;
        while b < schedule.len() {
            match svc.submit(&schedule[b]) {
                Ok(_) => b += 1,
                Err(KvError::Memory(SecureMemoryError::NeedsRecovery)) if crashed_at.is_none() => {
                    crashed_at = Some(b);
                    let report = svc
                        .recover_shard(victim)
                        .map_err(|e| format!("boundary {k}, batch {b}: recovery failed: {e}"))?;
                    if !report.persistent_recovered {
                        return Err(format!(
                            "boundary {k}, batch {b}: persistent region did not recover"
                        ));
                    }
                    let state = svc
                        .dump()
                        .map_err(|e| format!("boundary {k}, batch {b}: dump: {e}"))?;
                    let recovered = victim_view(&svc, &state);
                    // The interrupted group either committed or it
                    // didn't; any third state breaks crash atomicity.
                    if recovered != snaps[b] && recovered != snaps[b + 1] {
                        return Err(format!(
                            "boundary {k}, batch {b}: recovered victim state matches \
                             neither the pre-group nor the post-group snapshot"
                        ));
                    }
                    // Re-drive the interrupted batch (idempotent at
                    // the model level) and the rest of the schedule.
                }
                Err(e) => return Err(format!("boundary {k}, batch {b}: {e}")),
            }
        }
        if crashed_at.is_none() {
            return Err(format!("boundary {k}: armed crash never fired"));
        }
        let state = svc
            .dump()
            .map_err(|e| format!("boundary {k}: final dump: {e}"))?;
        if state != model {
            return Err(format!(
                "boundary {k}: final state diverges from the clean run"
            ));
        }
    }
    Ok(boundaries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(shards: u64) -> ServiceSpec {
        ServiceSpec {
            buckets: 16,
            log_blocks: 64,
            ..ServiceSpec::new(shards)
        }
    }

    /// A seeded request schedule over a global keyspace.
    fn schedule(seed: u64, n: usize, keyspace: u64) -> Vec<Request> {
        let mut rng = SplitMix64::stream(seed, 0x73_6572_7669_6365);
        (0..n)
            .map(|_| {
                let key = rng.below(keyspace);
                match rng.below(10) {
                    0..=4 => Request::Put {
                        key,
                        value: vec![rng.next_u64() as u8; 1 + rng.below(24) as usize],
                    },
                    5..=7 => Request::Get { key },
                    8 => Request::Delete { key },
                    _ => Request::Scan,
                }
            })
            .collect()
    }

    /// The in-DRAM oracle of a schedule, tracking shed responses.
    fn oracle(reqs: &[Request], resps: &[Response]) -> BTreeMap<u64, Vec<u8>> {
        let mut model = BTreeMap::new();
        for (req, resp) in reqs.iter().zip(resps) {
            if *resp == Response::Shed {
                continue;
            }
            match req {
                Request::Put { key, value } => {
                    model.insert(*key, value.clone());
                }
                Request::Delete { key } => {
                    model.remove(key);
                }
                Request::Get { .. } | Request::Scan => {}
            }
        }
        model
    }

    #[test]
    fn serves_reads_and_scans_consistently() {
        let mut svc = KvService::create(&spec(3)).unwrap();
        let reqs = schedule(42, 120, 40);
        let resps = svc.submit(&reqs).unwrap();
        let model = oracle(&reqs, &resps);
        // Every response type checks out against a replayed model.
        let mut replay = BTreeMap::new();
        for (req, resp) in reqs.iter().zip(&resps) {
            match (req, resp) {
                (Request::Put { key, value }, Response::Done) => {
                    replay.insert(*key, value.clone());
                }
                (Request::Delete { key }, Response::Done) => {
                    replay.remove(key);
                }
                (Request::Get { key }, Response::Value(v)) => {
                    assert_eq!(v.as_ref(), replay.get(key), "get({key})");
                }
                (Request::Scan, Response::Scanned(pairs)) => {
                    let want: Vec<(u64, Vec<u8>)> =
                        replay.iter().map(|(k, v)| (*k, v.clone())).collect();
                    assert_eq!(*pairs, want, "scan");
                }
                (req, resp) => panic!("mismatched response {resp:?} for {req:?}"),
            }
        }
        assert_eq!(svc.dump().unwrap(), model);
    }

    #[test]
    fn threaded_and_serial_execution_are_identical() {
        let reqs = schedule(7, 200, 64);
        let mut threaded = KvService::create(&spec(4)).unwrap();
        threaded.set_threaded(true);
        let rt = threaded.submit(&reqs).unwrap();
        let mut serial = KvService::create(&spec(4)).unwrap();
        serial.set_threaded(false);
        let rs = serial.submit(&reqs).unwrap();
        assert_eq!(rt, rs, "responses must not depend on threading");
        assert_eq!(threaded.merged_kv_stats(), serial.merged_kv_stats());
        assert_eq!(threaded.merged_group_stats(), serial.merged_group_stats());
        assert_eq!(threaded.dump().unwrap(), serial.dump().unwrap());
        assert_eq!(threaded.max_shard_time(), serial.max_shard_time());
        assert_eq!(threaded.total_persists(), serial.total_persists());
    }

    #[test]
    fn group_commit_amortizes_markers() {
        let puts: Vec<Request> = (0..64u64)
            .map(|k| Request::Put {
                key: k,
                value: vec![k as u8; 8],
            })
            .collect();
        let mut grouped = KvService::create(&spec(2)).unwrap();
        grouped.submit(&puts).unwrap();
        let mut unbatched = KvService::create(&ServiceSpec {
            group_window: 1,
            ..spec(2)
        })
        .unwrap();
        unbatched.submit(&puts).unwrap();

        let g = grouped.merged_group_stats();
        let u = unbatched.merged_group_stats();
        assert_eq!(g.ops, 64);
        assert_eq!(u.ops, 64);
        assert_eq!(u.commit_markers, 64, "window 1 = one marker per put");
        assert!(
            g.commit_markers * 4 <= u.commit_markers,
            "window 8 must amortize markers at least 4x: {} vs {}",
            g.commit_markers,
            u.commit_markers
        );
        assert_eq!(grouped.dump().unwrap(), unbatched.dump().unwrap());
        assert!(
            grouped.total_persists() < unbatched.total_persists(),
            "fewer markers must mean fewer durability points"
        );
    }

    #[test]
    fn shed_policy_rejects_during_cooldown() {
        let mut svc = KvService::create(&ServiceSpec {
            shards: 1,
            admission: AdmissionPolicy::Shed { cooldown: 3 },
            ..spec(1)
        })
        .unwrap();
        // Simulate a saturated flush directly (the pure transition),
        // then watch the next three mutations bounce.
        svc.lanes[0].note_flush_pressure(2);
        let reqs: Vec<Request> = (0..5u64)
            .map(|k| Request::Put {
                key: k,
                value: vec![1],
            })
            .collect();
        let resps = svc.submit(&reqs).unwrap();
        assert_eq!(
            resps,
            vec![
                Response::Shed,
                Response::Shed,
                Response::Shed,
                Response::Done,
                Response::Done
            ]
        );
        assert_eq!(svc.merged_group_stats().shed, 3);
        // Shed mutations must not reach the store.
        assert_eq!(svc.dump().unwrap().len(), 2);
    }

    #[test]
    fn delay_policy_widens_and_decays_the_window() {
        let mut svc = KvService::create(&ServiceSpec {
            shards: 1,
            group_window: 4,
            admission: AdmissionPolicy::Delay { max_window: 16 },
            ..spec(1)
        })
        .unwrap();
        let lane = &mut svc.lanes[0];
        lane.note_flush_pressure(1);
        assert_eq!(lane.window, 8);
        lane.note_flush_pressure(5);
        assert_eq!(lane.window, 16);
        lane.note_flush_pressure(9);
        assert_eq!(lane.window, 16, "capped at max_window");
        lane.note_flush_pressure(0);
        assert_eq!(lane.window, 8, "clean flush decays");
        lane.note_flush_pressure(0);
        assert_eq!(lane.window, 4);
        lane.note_flush_pressure(0);
        assert_eq!(lane.window, 4, "never below the configured window");
    }

    #[test]
    fn admission_reacts_to_real_wpq_saturation() {
        // A deliberately starved WPQ (2 entries) under a write burst:
        // flushes must observe wpq_full_events and trigger Shed.
        let mut cfg = SystemConfig::tiny();
        cfg.mem.wpq_entries = 2;
        let mut svc = KvService::create(&ServiceSpec {
            shards: 1,
            group_window: 16,
            admission: AdmissionPolicy::Shed { cooldown: 4 },
            config: Some(cfg),
            ..spec(1)
        })
        .unwrap();
        let reqs: Vec<Request> = (0..48u64)
            .map(|k| Request::Put {
                key: k,
                value: vec![k as u8; 48],
            })
            .collect();
        let resps = svc.submit(&reqs).unwrap();
        let stats = svc.merged_group_stats();
        assert!(
            svc.shard_mem(0).unwrap().mem_stats().wpq_full_events > 0,
            "the starved WPQ must have saturated"
        );
        assert!(
            stats.shed > 0,
            "saturation must have shed mutations: {stats:?}"
        );
        assert!(resps.contains(&Response::Shed));
    }

    #[test]
    fn crash_on_one_shard_recovers_to_a_group_boundary() {
        let mut svc = KvService::create(&ServiceSpec {
            shards: 2,
            group_window: 4,
            ..spec(2)
        })
        .unwrap();
        svc.set_threaded(false);
        // First batch: fully durable.
        let warm: Vec<Request> = (0..8u64)
            .map(|k| Request::Put {
                key: k,
                value: vec![k as u8; 8],
            })
            .collect();
        svc.submit(&warm).unwrap();
        let durable = svc.dump().unwrap();
        // Arm a crash early on shard 0, then push another batch.
        svc.shard_mem_mut(0).unwrap().inject_crash_after_persists(2);
        let burst: Vec<Request> = (100..120u64)
            .map(|k| Request::Put {
                key: k,
                value: vec![k as u8; 8],
            })
            .collect();
        let err = svc.submit(&burst).unwrap_err();
        assert!(matches!(err, KvError::Memory(_)), "crash must surface");
        let report = svc.recover_shard(0).unwrap();
        assert!(report.persistent_recovered);
        let after = svc.dump().unwrap();
        // Shard 0 lost its in-flight group; every key it still holds
        // was durable before, and the pre-crash state is a subset.
        for (k, v) in &durable {
            assert_eq!(after.get(k), Some(v), "durable key {k} lost");
        }
        // The service keeps serving.
        svc.submit(&warm).unwrap();
        assert!(svc.dump().unwrap().len() >= durable.len());
    }

    #[test]
    fn crash_equivalence_smoke_sweeps_group_boundaries() {
        // The full seeded sweep lives in tests/property_crash.rs; this
        // is the in-crate smoke version (one scheme, one tiny
        // schedule).
        let boundaries = service_crash_equivalence_check(&spec(2), 2, 4, 99).unwrap();
        assert!(boundaries > 0, "schedule must cross persist boundaries");
    }

    #[test]
    fn create_rejects_oversized_fleets() {
        assert_eq!(
            KvService::create(&spec(MAX_SHARDS + 1)).unwrap_err(),
            KvError::TooManyShards {
                requested: MAX_SHARDS + 1,
                max: MAX_SHARDS
            }
        );
    }
}
