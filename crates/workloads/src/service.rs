//! The sharded KV serving front-end: [`KvService`] — the ROADMAP's
//! "fleet scale" layer over `triad-kv`.
//!
//! Where [`crate::kv::KvFleet`] is a deterministic test driver (many
//! shards multiplexed onto one secure memory, one op at a time), the
//! service is the serving-shaped composition the paper's throughput
//! argument needs:
//!
//! * **Routing** — every key is hashed (keyed SipHash-2-4) onto one of
//!   N *independent* shards, each owning its own [`SecureMemory`],
//!   persistent heap, WAL and [`KvStore`]. Nothing is shared between
//!   shards, so a submit batch runs the shards genuinely in parallel
//!   on worker threads ([`std::thread::scope`]).
//! * **Group commit** — each shard accumulates routed mutations and
//!   flushes them through [`KvStore::apply_group`]: one redo
//!   transaction, one commit-marker persist, amortized across the
//!   whole group. The `group_window` knob bounds group size; window 1
//!   degenerates to the unbatched one-marker-per-mutation path.
//! * **Admission control** — each flush observes the shard's
//!   `wpq_full_events` delta. Under [`AdmissionPolicy::Shed`] a
//!   saturated flush starts a cooldown during which incoming
//!   mutations are rejected ([`Response::Shed`]); under
//!   [`AdmissionPolicy::Delay`] the shard instead grows its group
//!   window (fewer, larger flushes) until the pressure clears.
//! * **Determinism** — the response vector, merged stats and merged
//!   state of a submit are identical whether the lanes run threaded
//!   or serial: requests are partitioned per shard in submit order,
//!   each lane is a pure function of its own slice, and every merge
//!   walks lanes in shard-index order over ordered containers (the
//!   `shard-safety/nondeterministic-merge` contract).
//!
//! # Durability tiers
//!
//! Every tenant is served under a [`DurabilityMode`]
//! (`docs/durability-contract.md` freezes the guarantees as numbered
//! invariants D1–D8):
//!
//! * **Strict** (the default, and the only behavior that existed
//!   before tiers): when [`KvService::submit`] returns `Ok`, every
//!   admitted mutation of the batch is durable (each lane drains its
//!   pending group before returning). A crash mid-submit loses at
//!   most the interrupted group on the crashed shard — recovery lands
//!   on a group boundary, which the fleet crash sweep in
//!   `tests/property_crash.rs` checks at every persist boundary.
//! * **Buffered { flush_interval, max_loss }**: mutations are
//!   acknowledged from a DRAM buffer that survives across submits and
//!   group-commits when it reaches `max_loss` mutations or when
//!   `flush_interval` of simulated time has passed since the buffer's
//!   oldest mutation (checked at run boundaries — the group-fsync
//!   analogue). A crash loses at most `max_loss` acknowledged
//!   mutations.
//! * **InMemory**: mutations live in a volatile per-shard overlay and
//!   only reach NVM at an explicit [`KvService::barrier`]; a crash
//!   rolls the tenant back to its last completed barrier.
//!
//! Reads see the youngest staged value by *tier precedence* (volatile
//! over strict-pending over buffered over NVM). When tenants of
//! different tiers mutate the *same* key, inter-tier ordering follows
//! that precedence rather than admit order — the contract's
//! invariants are stated per tier over its own keys.
//!
//! After a crash, [`KvService::recover_shard`] reports the weakest
//! tier that acknowledged mutations since the last recovery and the
//! measured loss (acknowledged mutations the recovered state does not
//! reflect) as a [`triad_core::DurabilityRecovery`], so the bounded-
//! loss invariant is asserted against a reported number.

use std::collections::BTreeMap;

use triad_core::{
    CounterPersistence, DurabilityRecovery, PersistScheme, RecoveryReport, SecureMemory,
    SecureMemoryBuilder, SecureMemoryError,
};
use triad_crypto::SipHash24;
use triad_kv::heap::PersistentHeap;
use triad_kv::{KvConfig, KvError, KvStats, KvStore};
use triad_sim::config::SystemConfig;
use triad_sim::rng::SplitMix64;
use triad_sim::time::Duration;
use triad_sim::Time;

use crate::kv::{value_bytes, MAX_SHARDS};

pub use triad_kv::DurabilityMode;

/// Per-shard reaction to WPQ saturation observed at flush time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Admit everything; no backpressure.
    Open,
    /// After a flush that saturated the WPQ, reject the next
    /// `cooldown` mutations routed to this shard.
    Shed {
        /// Mutations rejected per saturation episode.
        cooldown: u64,
    },
    /// After a saturated flush, double the shard's group window (up to
    /// `max_window`) so persists amortize harder; halve it back toward
    /// the configured window once flushes run clean.
    Delay {
        /// The largest window the shard may grow to.
        max_window: usize,
    },
}

/// Everything that determines a service fleet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceSpec {
    /// Independent shards (1..=[`MAX_SHARDS`]).
    pub shards: u64,
    /// Mutations a shard accumulates before flushing a group
    /// (min 1; 1 = unbatched, one commit marker per mutation).
    pub group_window: usize,
    /// Backpressure policy.
    pub admission: AdmissionPolicy,
    /// Persistence scheme of every shard engine.
    pub scheme: PersistScheme,
    /// Counter-persistence policy of every shard engine.
    pub counters: CounterPersistence,
    /// Buckets per shard store.
    pub buckets: u64,
    /// WAL blocks per shard store.
    pub log_blocks: u64,
    /// Base key seed; shard i derives its own stream from it.
    pub key_seed: u64,
    /// Engine geometry override (`None` = builder default).
    pub config: Option<SystemConfig>,
    /// The durability tier tenants get unless overridden per tenant
    /// via [`KvService::set_tenant_mode`]. Defaults to
    /// [`DurabilityMode::Strict`] — exactly the pre-tier behavior.
    pub durability: DurabilityMode,
}

impl ServiceSpec {
    /// A serving-shaped default: TriadNVM-2, strict counters, window 8,
    /// strict durability.
    pub fn new(shards: u64) -> Self {
        ServiceSpec {
            shards,
            group_window: 8,
            admission: AdmissionPolicy::Open,
            scheme: PersistScheme::triad_nvm(2),
            counters: CounterPersistence::Strict,
            buckets: 64,
            log_blocks: 64,
            key_seed: 1,
            config: None,
            durability: DurabilityMode::Strict,
        }
    }
}

/// One client request against the service's single keyspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Insert or replace `key`.
    Put {
        /// The key.
        key: u64,
        /// The value bytes.
        value: Vec<u8>,
    },
    /// Point lookup.
    Get {
        /// The key.
        key: u64,
    },
    /// Point delete.
    Delete {
        /// The key.
        key: u64,
    },
    /// Full sorted scan across every shard (forces a fleet-wide
    /// flush so the scan sees every earlier mutation of the batch).
    Scan,
}

/// What one request returned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// A put or delete was admitted (durable once submit returns).
    Done,
    /// Admission control rejected the mutation under WPQ pressure.
    Shed,
    /// A get's value (or absence).
    Value(Option<Vec<u8>>),
    /// A scan's merged, key-sorted pairs.
    Scanned(Vec<(u64, Vec<u8>)>),
}

/// Group-commit and admission counters of one shard (or, merged, of
/// the whole service).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GroupStats {
    /// Groups flushed.
    pub flushes: u64,
    /// Mutations those groups carried.
    pub ops: u64,
    /// Redo records appended (coalesced per distinct block).
    pub log_records: u64,
    /// Commit markers persisted — the amortization numerator.
    pub commit_markers: u64,
    /// Mutations rejected by admission control.
    pub shed: u64,
}

impl GroupStats {
    /// Merges another shard's counters (field-wise sum; deterministic
    /// regardless of shard visit order).
    pub fn merge(&mut self, other: &GroupStats) {
        self.flushes += other.flushes;
        self.ops += other.ops;
        self.log_records += other.log_records;
        self.commit_markers += other.commit_markers;
        self.shed += other.shed;
    }
}

/// A request routed onto one lane, tagged with its submit index so
/// responses merge back deterministically.
#[derive(Debug, Clone)]
enum LaneOp {
    /// A put (`Some`) or delete (`None`).
    Mutate {
        idx: usize,
        key: u64,
        value: Option<Vec<u8>>,
    },
    Get {
        idx: usize,
        key: u64,
    },
    /// This lane's slice of a fleet-wide scan.
    Scan {
        idx: usize,
    },
}

/// What one lane op produced.
#[derive(Debug, Clone)]
enum LaneOutcome {
    Done,
    Shed,
    Got(Option<Vec<u8>>),
    /// This lane's sorted pairs; the service merges across lanes.
    Scanned(Vec<(u64, Vec<u8>)>),
}

/// One shard: a whole private engine + store, plus the group-commit
/// staging state. `Send`, so submit can move it onto a worker thread.
#[derive(Debug)]
struct ShardLane {
    mem: SecureMemory,
    store: KvStore,
    /// Strict-tier mutations staged since the last flush, in admit
    /// order. Always drained before a run returns (invariant D1).
    pending: Vec<(u64, Option<Vec<u8>>)>,
    /// Buffered-tier mutations, in admit order. Survives across
    /// submits — this backlog *is* the bounded loss window.
    buffered: Vec<(u64, Option<Vec<u8>>)>,
    /// When the non-empty `buffered` backlog must flush at the next
    /// run boundary even if short of `max_loss` (the group-fsync
    /// analogue; `None` while the buffer is empty).
    buffered_deadline: Option<Time>,
    /// InMemory-tier overlay: youngest mutation per key, never logged
    /// or persisted until a [`KvService::barrier`] promotes it.
    volatile: BTreeMap<u64, Option<Vec<u8>>>,
    /// Current flush threshold (Delay adapts it).
    window: usize,
    /// The configured threshold Delay decays back to.
    base_window: usize,
    /// Consecutive clean (zero wpq_full_events delta) flushes — the
    /// Delay hysteresis counter; the window only decays after
    /// [`DELAY_DECAY_STREAK`] clean flushes in a row.
    clean_streak: u64,
    /// Mutations still to reject in the current Shed cooldown.
    shed_remaining: u64,
    policy: AdmissionPolicy,
    groups: GroupStats,
    /// Durable-tier (Strict + Buffered) mutations acknowledged to
    /// clients since the last recovery — i.e. counted only when the
    /// run that admitted them completed.
    acked_admitted: u64,
    /// Mutations whose group commit is known durable (marker
    /// persisted), including in-flight groups resolved at recovery.
    durable: u64,
    /// InMemory-tier mutations acknowledged since the last completed
    /// barrier (each admit counts once; barrier promotion re-counts
    /// the overlay's distinct keys into `acked_admitted`).
    volatile_since_barrier: u64,
    /// `(expected_seq, ops)` of a group commit in flight when a crash
    /// fired; resolved against the recovered store's `next_seq` to
    /// decide whether its marker persisted.
    in_flight: Option<(u64, u64)>,
    /// The weakest tier that acknowledged mutations since the last
    /// recovery — what [`DurabilityRecovery::mode`] reports.
    weakest: Option<DurabilityMode>,
}

/// Clean flushes in a row before a Delay-widened window decays one
/// step. One clean flush must NOT decay (a 1,0,1,0… pressure pattern
/// would flap the window every flush); two in a row is the smallest
/// hysteresis that kills the oscillation.
const DELAY_DECAY_STREAK: u64 = 2;

/// Picks the weaker of the current weakest tier and a newly observed
/// one (same tier: the larger loss bound is the weaker promise).
fn weaken(current: &mut Option<DurabilityMode>, observed: DurabilityMode) {
    let Some(cur) = *current else {
        *current = Some(observed);
        return;
    };
    let replace = if observed.weaker_or_equal(cur) && cur.weaker_or_equal(observed) {
        matches!(
            (observed.loss_bound(), cur.loss_bound()),
            (Some(a), Some(b)) if a > b
        )
    } else {
        observed.weaker_or_equal(cur)
    };
    if replace {
        *current = Some(observed);
    }
}

impl ShardLane {
    /// Flushes the pending group through [`KvStore::apply_group`] and
    /// feeds the observed WPQ pressure back into admission. A group
    /// whose coalesced write set overflows the WAL is split in half
    /// and flushed as two groups (recursively), so an oversized window
    /// costs extra markers instead of failing the batch.
    fn flush(&mut self) -> Result<(), KvError> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let muts = std::mem::take(&mut self.pending);
        self.flush_muts(muts)
    }

    fn flush_muts(&mut self, mut muts: Vec<(u64, Option<Vec<u8>>)>) -> Result<(), KvError> {
        let before = self.mem.mem_stats().wpq_full_events;
        // Record the commit frontier before the group goes down: if a
        // crash fires inside apply_group, recovery compares the
        // recovered store's next_seq against this to decide whether
        // the group's marker persisted (it moved past) or the whole
        // group rolled back.
        self.in_flight = Some((self.store.next_seq(), muts.len() as u64));
        match self.store.apply_group(&mut self.mem, &muts) {
            Ok(receipt) => {
                self.in_flight = None;
                self.durable += muts.len() as u64;
                self.groups.flushes += 1;
                self.groups.ops += receipt.ops;
                self.groups.log_records += receipt.log_records;
                self.groups.commit_markers += receipt.commit_markers;
                let delta = self.mem.mem_stats().wpq_full_events - before;
                self.note_flush_pressure(delta);
                Ok(())
            }
            Err(KvError::LogFull) if muts.len() > 1 => {
                self.in_flight = None;
                let tail = muts.split_off(muts.len() / 2);
                self.flush_muts(muts)?;
                self.flush_muts(tail)
            }
            Err(e) => {
                // Only a crash leaves the outcome genuinely unresolved;
                // every other failure means nothing was committed.
                if !matches!(e, KvError::Memory(SecureMemoryError::NeedsRecovery)) {
                    self.in_flight = None;
                }
                Err(e)
            }
        }
    }

    /// Flushes the Buffered-tier backlog as one group commit and
    /// disarms its deadline timer.
    fn flush_buffered(&mut self) -> Result<(), KvError> {
        self.buffered_deadline = None;
        if self.buffered.is_empty() {
            return Ok(());
        }
        let muts = std::mem::take(&mut self.buffered);
        self.flush_muts(muts)
    }

    /// The Buffered flush-interval timer, checked at run boundaries
    /// (the lane's flush opportunities): a backlog whose deadline has
    /// passed on this shard's simulated clock is flushed now.
    fn check_buffer_timer(&mut self) -> Result<(), KvError> {
        if matches!(self.buffered_deadline, Some(d) if self.mem.now() >= d) {
            self.flush_buffered()?;
        }
        Ok(())
    }

    /// Admits one InMemory-tier mutation into the volatile overlay.
    /// This path must stay free of persist effects — no log append, no
    /// commit marker, no data persist — which is exactly what the
    /// `durability-contract` lint checks for `volatile`-named fns
    /// (invariant D8).
    fn stage_volatile(&mut self, key: u64, value: Option<Vec<u8>>) {
        self.volatile.insert(key, value);
    }

    /// Admission-control reaction to one flush's `wpq_full_events`
    /// delta. Pure state transition — unit-testable without having to
    /// provoke real WPQ saturation.
    ///
    /// Delay widens immediately on pressure but decays only after
    /// [`DELAY_DECAY_STREAK`] consecutive clean flushes: with an
    /// immediate decay, a load that saturates every other flush
    /// (delta 1,0,1,0,…) would flap the window between two sizes on
    /// every single flush instead of holding the widened one.
    fn note_flush_pressure(&mut self, wpq_full_delta: u64) {
        if wpq_full_delta > 0 {
            self.clean_streak = 0;
        } else {
            self.clean_streak += 1;
        }
        match self.policy {
            AdmissionPolicy::Open => {}
            AdmissionPolicy::Shed { cooldown } => {
                if wpq_full_delta > 0 {
                    self.shed_remaining = cooldown;
                }
            }
            AdmissionPolicy::Delay { max_window } => {
                if wpq_full_delta > 0 {
                    self.window = (self.window.saturating_mul(2)).min(max_window.max(1));
                } else if self.window > self.base_window && self.clean_streak >= DELAY_DECAY_STREAK
                {
                    self.window = (self.window / 2).max(self.base_window);
                    self.clean_streak = 0;
                }
            }
        }
    }

    /// The value `key` would read right now, by tier precedence:
    /// volatile overlay, then strict-pending (youngest first), then
    /// the buffered backlog (youngest first), then the durable store.
    fn staged_lookup(&self, key: u64) -> Option<Option<Vec<u8>>> {
        if let Some(v) = self.volatile.get(&key) {
            return Some(v.clone());
        }
        if let Some((_, v)) = self.pending.iter().rev().find(|(k, _)| *k == key) {
            return Some(v.clone());
        }
        self.buffered
            .iter()
            .rev()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v.clone())
    }

    /// Runs this lane's slice of a submit batch under `mode`, in
    /// order, flushing on window boundaries, scans, and at the end
    /// (the Strict submit durability contract). Buffered-tier
    /// acknowledgements and InMemory admissions are folded into the
    /// loss ledger only when the whole run completes — a mutation in
    /// a run that dies on a crash was never acknowledged to a client,
    /// so it cannot count as "lost".
    fn run(
        &mut self,
        ops: &[LaneOp],
        mode: DurabilityMode,
    ) -> Result<Vec<(usize, LaneOutcome)>, KvError> {
        self.check_buffer_timer()?;
        let mut out = Vec::with_capacity(ops.len());
        let mut batch_admitted = 0u64;
        let mut batch_volatile = 0u64;
        for op in ops {
            match op {
                LaneOp::Mutate { idx, key, value } => {
                    if self.shed_remaining > 0 {
                        self.shed_remaining -= 1;
                        self.groups.shed += 1;
                        out.push((*idx, LaneOutcome::Shed));
                        continue;
                    }
                    match mode {
                        DurabilityMode::InMemory => {
                            self.stage_volatile(*key, value.clone());
                            batch_volatile += 1;
                            out.push((*idx, LaneOutcome::Done));
                        }
                        DurabilityMode::Buffered {
                            flush_interval,
                            max_loss,
                        } => {
                            if self.buffered.is_empty() {
                                self.buffered_deadline =
                                    Some(self.mem.now() + Duration::from_ns(flush_interval));
                            }
                            self.buffered.push((*key, value.clone()));
                            batch_admitted += 1;
                            out.push((*idx, LaneOutcome::Done));
                            // Flush strictly before the backlog could
                            // exceed the contractual loss bound.
                            if self.buffered.len() as u64 >= max_loss.max(1) {
                                self.flush_buffered()?;
                            }
                        }
                        DurabilityMode::Strict => {
                            self.pending.push((*key, value.clone()));
                            batch_admitted += 1;
                            out.push((*idx, LaneOutcome::Done));
                            if self.pending.len() >= self.window {
                                self.flush()?;
                            }
                        }
                    }
                }
                LaneOp::Get { idx, key } => {
                    let value = match self.staged_lookup(*key) {
                        Some(staged) => staged,
                        None => self.store.get(&mut self.mem, *key)?,
                    };
                    out.push((*idx, LaneOutcome::Got(value)));
                }
                LaneOp::Scan { idx } => {
                    // A scan is a durability barrier for the durable
                    // tiers (drains pending + buffered) and reads the
                    // volatile overlay on top without promoting it.
                    self.flush()?;
                    self.flush_buffered()?;
                    let mut pairs: BTreeMap<u64, Vec<u8>> =
                        self.store.scan(&mut self.mem)?.into_iter().collect();
                    for (k, v) in &self.volatile {
                        match v {
                            Some(val) => {
                                pairs.insert(*k, val.clone());
                            }
                            None => {
                                pairs.remove(k);
                            }
                        }
                    }
                    out.push((*idx, LaneOutcome::Scanned(pairs.into_iter().collect())));
                }
            }
        }
        self.flush()?;
        self.check_buffer_timer()?;
        if batch_admitted > 0 || batch_volatile > 0 {
            weaken(&mut self.weakest, mode);
        }
        self.acked_admitted += batch_admitted;
        self.volatile_since_barrier += batch_volatile;
        Ok(out)
    }

    /// The explicit Strict barrier: drains every durable-tier buffer,
    /// then promotes the volatile overlay to NVM as one group commit.
    /// On `Ok` the lane holds no staged state at all — every
    /// acknowledged mutation is durable, whatever tier admitted it.
    fn barrier(&mut self) -> Result<(), KvError> {
        self.flush()?;
        self.flush_buffered()?;
        let muts: Vec<(u64, Option<Vec<u8>>)> =
            std::mem::take(&mut self.volatile).into_iter().collect();
        self.volatile_since_barrier = 0;
        if muts.is_empty() {
            return Ok(());
        }
        // Promotion counts the overlay's distinct keys: an overwritten
        // duplicate neither survives nor counts as lost.
        self.acked_admitted += muts.len() as u64;
        self.flush_muts(muts)
    }
}

/// The sharded serving front-end. See the module docs for the
/// routing / group-commit / admission / determinism contract.
#[derive(Debug)]
pub struct KvService {
    lanes: Vec<ShardLane>,
    threaded: bool,
    /// The spec's default tier for tenants without an override.
    default_mode: DurabilityMode,
    /// Per-tenant durability overrides (ordered, so any iteration is
    /// deterministic).
    tenant_modes: BTreeMap<u64, DurabilityMode>,
}

impl KvService {
    /// Builds a fleet of `spec.shards` independent shard engines.
    ///
    /// # Errors
    ///
    /// [`KvError::TooManyShards`] above [`MAX_SHARDS`]; engine build
    /// or heap errors otherwise.
    pub fn create(spec: &ServiceSpec) -> Result<KvService, KvError> {
        let shards = spec.shards.max(1);
        if shards > MAX_SHARDS {
            return Err(KvError::TooManyShards {
                requested: shards,
                max: MAX_SHARDS,
            });
        }
        let mut lanes = Vec::with_capacity(shards as usize);
        for i in 0..shards {
            lanes.push(Self::create_lane(spec, i)?);
        }
        Ok(KvService {
            lanes,
            threaded: true,
            default_mode: spec.durability,
            tenant_modes: BTreeMap::new(),
        })
    }

    fn create_lane(spec: &ServiceSpec, i: u64) -> Result<ShardLane, KvError> {
        let mut builder = SecureMemoryBuilder::new()
            .scheme(spec.scheme)
            .counter_persistence(spec.counters)
            // Distinct per-shard key streams, derived SplitMix64-style
            // from the base seed.
            .key_seed(spec.key_seed ^ (i + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        if let Some(cfg) = spec.config {
            builder = builder.config(cfg);
        }
        let mut mem = builder.build().map_err(KvError::Memory)?;
        let heap = PersistentHeap::format(&mut mem)?;
        let store = KvStore::create(
            &mut mem,
            heap,
            KvConfig {
                buckets: spec.buckets,
                log_blocks: spec.log_blocks,
            },
        )?;
        // Heap root = superblock: the single-store layout
        // `triad_kv::recover_store` recovers in one call.
        heap.set_root(&mut mem, store.superblock().0)?;
        let window = spec.group_window.max(1);
        Ok(ShardLane {
            mem,
            store,
            pending: Vec::new(),
            buffered: Vec::new(),
            buffered_deadline: None,
            volatile: BTreeMap::new(),
            window,
            base_window: window,
            clean_streak: 0,
            shed_remaining: 0,
            policy: spec.admission,
            groups: GroupStats::default(),
            acked_admitted: 0,
            durable: 0,
            volatile_since_barrier: 0,
            in_flight: None,
            weakest: None,
        })
    }

    /// Shard count.
    pub fn shard_count(&self) -> usize {
        self.lanes.len()
    }

    /// Chooses threaded (default) or single-threaded lane execution.
    /// Both produce identical responses, stats and state — the
    /// determinism test pins that.
    pub fn set_threaded(&mut self, threaded: bool) {
        self.threaded = threaded;
    }

    /// The shard index serving `key` (keyed-hash routing, reduced in
    /// u64 — see `route_shard` in [`crate::kv`]).
    pub fn route(&self, key: u64) -> usize {
        let h = SipHash24::new(*b"triad-kv routing").hash_words(&[key]);
        (h % self.lanes.len().max(1) as u64) as usize
    }

    /// Sets the durability tier tenant `tenant` submits under,
    /// overriding the spec default. Takes effect from the next
    /// [`KvService::submit_as`] — mutations already staged keep the
    /// tier they were admitted under.
    pub fn set_tenant_mode(&mut self, tenant: u64, mode: DurabilityMode) {
        self.tenant_modes.insert(tenant, mode);
    }

    /// The durability tier `tenant` currently submits under.
    pub fn tenant_mode(&self, tenant: u64) -> DurabilityMode {
        self.tenant_modes
            .get(&tenant)
            .copied()
            .unwrap_or(self.default_mode)
    }

    /// Serves one batch for the default tenant (tenant 0). On `Ok`,
    /// every admitted mutation carries the default tenant's tier
    /// guarantee — under the default Strict spec this is exactly the
    /// pre-tier contract: every admitted mutation is durable.
    ///
    /// # Errors
    ///
    /// See [`KvService::submit_as`].
    pub fn submit(&mut self, reqs: &[Request]) -> Result<Vec<Response>, KvError> {
        self.submit_as(0, reqs)
    }

    /// Serves one batch for `tenant`: partitions the requests across
    /// shards in submit order, runs every lane (threaded or serial)
    /// under the tenant's [`DurabilityMode`], and merges the responses
    /// back into submit order. What `Ok` promises depends on the
    /// tier — see the module docs and `docs/durability-contract.md`.
    ///
    /// # Errors
    ///
    /// The first failing lane's error, in shard order (an injected
    /// crash surfaces as `KvError::Memory(NeedsRecovery)`; see
    /// [`KvService::recover_shard`]).
    pub fn submit_as(&mut self, tenant: u64, reqs: &[Request]) -> Result<Vec<Response>, KvError> {
        let mode = self.tenant_mode(tenant);
        let n = self.lanes.len();
        let mut per_lane: Vec<Vec<LaneOp>> = (0..n).map(|_| Vec::new()).collect();
        for (idx, req) in reqs.iter().enumerate() {
            match req {
                Request::Put { key, value } => per_lane[self.route(*key)].push(LaneOp::Mutate {
                    idx,
                    key: *key,
                    value: Some(value.clone()),
                }),
                Request::Delete { key } => per_lane[self.route(*key)].push(LaneOp::Mutate {
                    idx,
                    key: *key,
                    value: None,
                }),
                Request::Get { key } => {
                    per_lane[self.route(*key)].push(LaneOp::Get { idx, key: *key });
                }
                Request::Scan => {
                    for ops in per_lane.iter_mut() {
                        ops.push(LaneOp::Scan { idx });
                    }
                }
            }
        }

        let results: Vec<Result<Vec<(usize, LaneOutcome)>, KvError>> = if self.threaded {
            std::thread::scope(|s| {
                let handles: Vec<_> = self
                    .lanes
                    .iter_mut()
                    .zip(per_lane.iter())
                    .map(|(lane, ops)| s.spawn(move || lane.run(ops, mode)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| match h.join() {
                        Ok(r) => r,
                        Err(panic) => std::panic::resume_unwind(panic),
                    })
                    .collect()
            })
        } else {
            self.lanes
                .iter_mut()
                .zip(per_lane.iter())
                .map(|(lane, ops)| lane.run(ops, mode))
                .collect()
        };

        // Deterministic merge: lanes visited in shard order, scan
        // fragments merged through an ordered map.
        let mut responses: Vec<Option<Response>> = vec![None; reqs.len()];
        let mut scans: BTreeMap<usize, BTreeMap<u64, Vec<u8>>> = BTreeMap::new();
        for lane_result in results {
            for (idx, outcome) in lane_result? {
                match outcome {
                    LaneOutcome::Done => responses[idx] = Some(Response::Done),
                    LaneOutcome::Shed => responses[idx] = Some(Response::Shed),
                    LaneOutcome::Got(v) => responses[idx] = Some(Response::Value(v)),
                    LaneOutcome::Scanned(pairs) => {
                        scans.entry(idx).or_default().extend(pairs);
                    }
                }
            }
        }
        for (idx, merged) in scans {
            responses[idx] = Some(Response::Scanned(merged.into_iter().collect()));
        }
        Ok(responses
            .into_iter()
            .map(|r| r.expect("every submitted request produces exactly one response"))
            .collect())
    }

    /// The service's durable state, merged across shards by key.
    /// Reads only what is on NVM — staged-but-unflushed mutations
    /// (none, after a successful submit) are not included.
    ///
    /// # Errors
    ///
    /// Propagates store/memory errors.
    pub fn dump(&mut self) -> Result<BTreeMap<u64, Vec<u8>>, KvError> {
        let mut out = BTreeMap::new();
        for lane in self.lanes.iter_mut() {
            for (key, value) in lane.store.scan(&mut lane.mem)? {
                out.insert(key, value);
            }
        }
        Ok(out)
    }

    /// Merged store counters, shard-order field-wise sum.
    pub fn merged_kv_stats(&self) -> KvStats {
        let mut out = KvStats::default();
        for lane in &self.lanes {
            out.merge(lane.store.stats());
        }
        out
    }

    /// Merged group-commit/admission counters.
    pub fn merged_group_stats(&self) -> GroupStats {
        let mut out = GroupStats::default();
        for lane in &self.lanes {
            out.merge(&lane.groups);
        }
        out
    }

    /// The fleet's simulated makespan: the slowest shard's clock.
    /// Shards run in parallel, so this is the serving-time analogue
    /// (total work / this = aggregate throughput).
    pub fn max_shard_time(&self) -> Time {
        self.lanes
            .iter()
            .map(|l| l.mem.now())
            .max()
            .unwrap_or(Time::ZERO)
    }

    /// Summed durability points across shards.
    pub fn total_persists(&self) -> u64 {
        self.lanes.iter().map(|l| l.mem.stats().persists).sum()
    }

    /// Summed metadata persist writes across shards (the bench-delta
    /// crypto-overhead metric).
    pub fn total_persist_metadata_writes(&self) -> u64 {
        self.lanes
            .iter()
            .map(|l| l.mem.stats().persist_metadata_writes())
            .sum()
    }

    /// One shard's engine (crash arming, stats).
    pub fn shard_mem(&self, i: usize) -> Option<&SecureMemory> {
        self.lanes.get(i).map(|l| &l.mem)
    }

    /// One shard's engine, mutably (crash injection).
    pub fn shard_mem_mut(&mut self, i: usize) -> Option<&mut SecureMemory> {
        self.lanes.get_mut(i).map(|l| &mut l.mem)
    }

    /// One shard's store (stats, event wiring).
    pub fn shard_store_mut(&mut self, i: usize) -> Option<&mut KvStore> {
        self.lanes.get_mut(i).map(|l| &mut l.store)
    }

    /// The explicit Strict barrier: every lane drains its durable-tier
    /// buffers and promotes its volatile overlay to NVM through group
    /// commits. On `Ok`, every acknowledged mutation of every tier is
    /// durable — the InMemory tier's recovery floor advances to here
    /// (invariant D5).
    ///
    /// # Errors
    ///
    /// The first failing lane's error, in shard order.
    pub fn barrier(&mut self) -> Result<(), KvError> {
        for lane in self.lanes.iter_mut() {
            lane.barrier()?;
        }
        Ok(())
    }

    /// Recovers shard `i` after a crash: engine recovery + WAL replay
    /// via [`triad_kv::recover_store`]. Staged state of every tier
    /// (strict pending, buffered backlog, volatile overlay) is
    /// discarded — it was never durable. The shard's store counters
    /// restart from zero, as after any reopen.
    ///
    /// The report's `durability` field states the weakest tier that
    /// acknowledged mutations since the last recovery, the measured
    /// loss (acknowledged mutations the recovered state does not
    /// reflect, resolved against the interrupted group's commit
    /// marker), and that tier's contractual loss bound (invariant D7).
    ///
    /// # Errors
    ///
    /// [`KvError::NotAStore`] for an out-of-range index; recovery
    /// errors otherwise.
    pub fn recover_shard(&mut self, i: usize) -> Result<RecoveryReport, KvError> {
        let lane = self.lanes.get_mut(i).ok_or(KvError::NotAStore)?;
        lane.pending.clear();
        lane.buffered.clear();
        lane.buffered_deadline = None;
        lane.volatile.clear();
        lane.shed_remaining = 0;
        lane.window = lane.base_window;
        lane.clean_streak = 0;
        let (store, mut report) = triad_kv::recover_store(&mut lane.mem)?;
        lane.store = store;
        // Resolve the interrupted group: its marker persisted iff log
        // replay applied a transaction AND the recovered frontier is
        // exactly one past the seq the group committed under. The
        // frontier alone is not a witness — replay fences `next_seq`
        // above *uncommitted* torn records too, so a group whose
        // records persisted but whose marker did not still moves the
        // frontier past `expected_seq`. Conversely, replay re-applying
        // the *previous* group's stale records (crash before the new
        // group wrote anything) lands the frontier at `expected_seq`,
        // not past it, so it earns no credit either.
        if let Some((expected_seq, ops)) = lane.in_flight.take() {
            let applied = report.log_replay.map_or(0, |r| r.txns_applied);
            if applied > 0 && lane.store.next_seq() == expected_seq + 1 {
                lane.durable += ops;
            }
        }
        let mode = lane.weakest.unwrap_or(DurabilityMode::Strict);
        report.durability = Some(DurabilityRecovery {
            mode: mode.tier_name(),
            mutations_lost: lane.acked_admitted.saturating_sub(lane.durable)
                + lane.volatile_since_barrier,
            loss_bound: mode.loss_bound(),
        });
        // The recovered store is the new contract baseline.
        lane.acked_admitted = 0;
        lane.durable = 0;
        lane.volatile_since_barrier = 0;
        lane.weakest = None;
        Ok(report)
    }
}

/// Generates a seeded put/get/delete request schedule over a global
/// keyspace (5:3:2 mix, [`value_bytes`]-derived payloads). Scans are
/// fleet-wide barriers and are driven explicitly where needed.
pub fn generate_requests(
    seed: u64,
    ops: usize,
    keyspace: u64,
    value_len: (usize, usize),
) -> Vec<Request> {
    let mut rng = SplitMix64::stream(seed, 0x73_7276_6372_6571);
    (0..ops)
        .map(|_| {
            let key = rng.below(keyspace.max(1));
            match rng.below(10) {
                0..=4 => {
                    let len =
                        rng.gen_range_inclusive(value_len.0 as u64..=value_len.1 as u64) as usize;
                    Request::Put {
                        key,
                        value: value_bytes(rng.next_u64(), len),
                    }
                }
                5..=7 => Request::Get { key },
                _ => Request::Delete { key },
            }
        })
        .collect()
}

/// The serving-layer crash-equivalence property: a seeded schedule,
/// submitted batch by batch (one group-commit flush per shard per
/// batch), replayed once per persist boundary of the victim shard with
/// a crash armed at that boundary. After every crash the victim must
/// recover to **exactly** the pre- or post-group durable snapshot of
/// the interrupted batch — a serial prefix at group granularity,
/// nothing else — and re-driving the schedule must converge on the
/// clean run's final state. Returns the number of boundaries swept.
///
/// `base` supplies the fleet geometry and scheme; the check forces
/// serial lane execution, `Open` admission and a whole-batch group
/// window so group boundaries are exactly batch boundaries.
///
/// # Errors
///
/// A human-readable description of the first divergence, formatted
/// with the boundary and batch index for reproduction.
pub fn service_crash_equivalence_check(
    base: &ServiceSpec,
    batches: usize,
    batch_len: usize,
    seed: u64,
) -> Result<u64, String> {
    let spec = ServiceSpec {
        group_window: batch_len.max(1),
        admission: AdmissionPolicy::Open,
        // Roomy WAL: the sweep's batch = one group, never log-split.
        log_blocks: base.log_blocks.max(256),
        ..*base
    };
    let schedule: Vec<Vec<Request>> = (0..batches)
        .map(|b| generate_requests(seed ^ (b as u64 + 1), batch_len, 16, (1, 48)))
        .collect();
    let victim = 0usize;

    // Clean run: verify every response against the model and snapshot
    // the victim shard's durable state at every group boundary.
    let mut svc = KvService::create(&spec).map_err(|e| format!("create: {e}"))?;
    svc.set_threaded(false);
    let persist_base = svc
        .shard_mem(victim)
        .map(|m| m.stats().persists)
        .unwrap_or(0);
    let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    let victim_view = |svc: &KvService, m: &BTreeMap<u64, Vec<u8>>| -> BTreeMap<u64, Vec<u8>> {
        m.iter()
            .filter(|(k, _)| svc.route(**k) == victim)
            .map(|(k, v)| (*k, v.clone()))
            .collect()
    };
    let mut snaps: Vec<BTreeMap<u64, Vec<u8>>> = vec![BTreeMap::new()];
    for (b, batch) in schedule.iter().enumerate() {
        let resps = svc
            .submit(batch)
            .map_err(|e| format!("clean run, batch {b}: {e}"))?;
        for (req, resp) in batch.iter().zip(&resps) {
            match (req, resp) {
                (Request::Put { key, value }, Response::Done) => {
                    model.insert(*key, value.clone());
                }
                (Request::Delete { key }, Response::Done) => {
                    model.remove(key);
                }
                (Request::Get { key }, Response::Value(v)) => {
                    if v.as_ref() != model.get(key) {
                        return Err(format!(
                            "clean run, batch {b}: get({key}) disagrees with the model"
                        ));
                    }
                }
                (rq, rs) => {
                    return Err(format!(
                        "clean run, batch {b}: unexpected response {rs:?} for {rq:?}"
                    ))
                }
            }
        }
        snaps.push(victim_view(&svc, &model));
    }
    let final_state = svc.dump().map_err(|e| format!("clean run: dump: {e}"))?;
    if final_state != model {
        return Err("clean run: durable state diverges from the model".into());
    }
    let boundaries = svc
        .shard_mem(victim)
        .map(|m| m.stats().persists)
        .unwrap_or(0)
        - persist_base;

    for k in 0..boundaries {
        let mut svc = KvService::create(&spec).map_err(|e| format!("boundary {k}: create: {e}"))?;
        svc.set_threaded(false);
        if let Some(m) = svc.shard_mem_mut(victim) {
            m.inject_crash_after_persists(k);
        }
        let mut crashed_at: Option<usize> = None;
        let mut b = 0;
        while b < schedule.len() {
            match svc.submit(&schedule[b]) {
                Ok(_) => b += 1,
                Err(KvError::Memory(SecureMemoryError::NeedsRecovery)) if crashed_at.is_none() => {
                    crashed_at = Some(b);
                    let report = svc
                        .recover_shard(victim)
                        .map_err(|e| format!("boundary {k}, batch {b}: recovery failed: {e}"))?;
                    if !report.persistent_recovered {
                        return Err(format!(
                            "boundary {k}, batch {b}: persistent region did not recover"
                        ));
                    }
                    let state = svc
                        .dump()
                        .map_err(|e| format!("boundary {k}, batch {b}: dump: {e}"))?;
                    let recovered = victim_view(&svc, &state);
                    // The interrupted group either committed or it
                    // didn't; any third state breaks crash atomicity.
                    if recovered != snaps[b] && recovered != snaps[b + 1] {
                        return Err(format!(
                            "boundary {k}, batch {b}: recovered victim state matches \
                             neither the pre-group nor the post-group snapshot"
                        ));
                    }
                    // Re-drive the interrupted batch (idempotent at
                    // the model level) and the rest of the schedule.
                }
                Err(e) => return Err(format!("boundary {k}, batch {b}: {e}")),
            }
        }
        if crashed_at.is_none() {
            return Err(format!("boundary {k}: armed crash never fired"));
        }
        let state = svc
            .dump()
            .map_err(|e| format!("boundary {k}: final dump: {e}"))?;
        if state != model {
            return Err(format!(
                "boundary {k}: final state diverges from the clean run"
            ));
        }
    }
    Ok(boundaries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(shards: u64) -> ServiceSpec {
        ServiceSpec {
            buckets: 16,
            log_blocks: 64,
            ..ServiceSpec::new(shards)
        }
    }

    /// A seeded request schedule over a global keyspace.
    fn schedule(seed: u64, n: usize, keyspace: u64) -> Vec<Request> {
        let mut rng = SplitMix64::stream(seed, 0x73_6572_7669_6365);
        (0..n)
            .map(|_| {
                let key = rng.below(keyspace);
                match rng.below(10) {
                    0..=4 => Request::Put {
                        key,
                        value: vec![rng.next_u64() as u8; 1 + rng.below(24) as usize],
                    },
                    5..=7 => Request::Get { key },
                    8 => Request::Delete { key },
                    _ => Request::Scan,
                }
            })
            .collect()
    }

    /// The in-DRAM oracle of a schedule, tracking shed responses.
    fn oracle(reqs: &[Request], resps: &[Response]) -> BTreeMap<u64, Vec<u8>> {
        let mut model = BTreeMap::new();
        for (req, resp) in reqs.iter().zip(resps) {
            if *resp == Response::Shed {
                continue;
            }
            match req {
                Request::Put { key, value } => {
                    model.insert(*key, value.clone());
                }
                Request::Delete { key } => {
                    model.remove(key);
                }
                Request::Get { .. } | Request::Scan => {}
            }
        }
        model
    }

    #[test]
    fn serves_reads_and_scans_consistently() {
        let mut svc = KvService::create(&spec(3)).unwrap();
        let reqs = schedule(42, 120, 40);
        let resps = svc.submit(&reqs).unwrap();
        let model = oracle(&reqs, &resps);
        // Every response type checks out against a replayed model.
        let mut replay = BTreeMap::new();
        for (req, resp) in reqs.iter().zip(&resps) {
            match (req, resp) {
                (Request::Put { key, value }, Response::Done) => {
                    replay.insert(*key, value.clone());
                }
                (Request::Delete { key }, Response::Done) => {
                    replay.remove(key);
                }
                (Request::Get { key }, Response::Value(v)) => {
                    assert_eq!(v.as_ref(), replay.get(key), "get({key})");
                }
                (Request::Scan, Response::Scanned(pairs)) => {
                    let want: Vec<(u64, Vec<u8>)> =
                        replay.iter().map(|(k, v)| (*k, v.clone())).collect();
                    assert_eq!(*pairs, want, "scan");
                }
                (req, resp) => panic!("mismatched response {resp:?} for {req:?}"),
            }
        }
        assert_eq!(svc.dump().unwrap(), model);
    }

    #[test]
    fn threaded_and_serial_execution_are_identical() {
        let reqs = schedule(7, 200, 64);
        let mut threaded = KvService::create(&spec(4)).unwrap();
        threaded.set_threaded(true);
        let rt = threaded.submit(&reqs).unwrap();
        let mut serial = KvService::create(&spec(4)).unwrap();
        serial.set_threaded(false);
        let rs = serial.submit(&reqs).unwrap();
        assert_eq!(rt, rs, "responses must not depend on threading");
        assert_eq!(threaded.merged_kv_stats(), serial.merged_kv_stats());
        assert_eq!(threaded.merged_group_stats(), serial.merged_group_stats());
        assert_eq!(threaded.dump().unwrap(), serial.dump().unwrap());
        assert_eq!(threaded.max_shard_time(), serial.max_shard_time());
        assert_eq!(threaded.total_persists(), serial.total_persists());
    }

    #[test]
    fn group_commit_amortizes_markers() {
        let puts: Vec<Request> = (0..64u64)
            .map(|k| Request::Put {
                key: k,
                value: vec![k as u8; 8],
            })
            .collect();
        let mut grouped = KvService::create(&spec(2)).unwrap();
        grouped.submit(&puts).unwrap();
        let mut unbatched = KvService::create(&ServiceSpec {
            group_window: 1,
            ..spec(2)
        })
        .unwrap();
        unbatched.submit(&puts).unwrap();

        let g = grouped.merged_group_stats();
        let u = unbatched.merged_group_stats();
        assert_eq!(g.ops, 64);
        assert_eq!(u.ops, 64);
        assert_eq!(u.commit_markers, 64, "window 1 = one marker per put");
        assert!(
            g.commit_markers * 4 <= u.commit_markers,
            "window 8 must amortize markers at least 4x: {} vs {}",
            g.commit_markers,
            u.commit_markers
        );
        assert_eq!(grouped.dump().unwrap(), unbatched.dump().unwrap());
        assert!(
            grouped.total_persists() < unbatched.total_persists(),
            "fewer markers must mean fewer durability points"
        );
    }

    #[test]
    fn shed_policy_rejects_during_cooldown() {
        let mut svc = KvService::create(&ServiceSpec {
            shards: 1,
            admission: AdmissionPolicy::Shed { cooldown: 3 },
            ..spec(1)
        })
        .unwrap();
        // Simulate a saturated flush directly (the pure transition),
        // then watch the next three mutations bounce.
        svc.lanes[0].note_flush_pressure(2);
        let reqs: Vec<Request> = (0..5u64)
            .map(|k| Request::Put {
                key: k,
                value: vec![1],
            })
            .collect();
        let resps = svc.submit(&reqs).unwrap();
        assert_eq!(
            resps,
            vec![
                Response::Shed,
                Response::Shed,
                Response::Shed,
                Response::Done,
                Response::Done
            ]
        );
        assert_eq!(svc.merged_group_stats().shed, 3);
        // Shed mutations must not reach the store.
        assert_eq!(svc.dump().unwrap().len(), 2);
    }

    #[test]
    fn delay_policy_widens_and_decays_the_window() {
        let mut svc = KvService::create(&ServiceSpec {
            shards: 1,
            group_window: 4,
            admission: AdmissionPolicy::Delay { max_window: 16 },
            ..spec(1)
        })
        .unwrap();
        let lane = &mut svc.lanes[0];
        lane.note_flush_pressure(1);
        assert_eq!(lane.window, 8);
        lane.note_flush_pressure(5);
        assert_eq!(lane.window, 16);
        lane.note_flush_pressure(9);
        assert_eq!(lane.window, 16, "capped at max_window");
        lane.note_flush_pressure(0);
        assert_eq!(
            lane.window, 16,
            "one clean flush must not decay (hysteresis)"
        );
        lane.note_flush_pressure(0);
        assert_eq!(
            lane.window, 8,
            "two consecutive clean flushes decay one step"
        );
        lane.note_flush_pressure(0);
        assert_eq!(lane.window, 8);
        lane.note_flush_pressure(0);
        assert_eq!(lane.window, 4);
        lane.note_flush_pressure(0);
        lane.note_flush_pressure(0);
        assert_eq!(lane.window, 4, "never below the configured window");
    }

    #[test]
    fn delay_window_holds_steady_under_oscillating_pressure() {
        // The boundary case the hysteresis exists for: a load that
        // saturates every other flush (deltas 1,0,1,0,…). Without the
        // clean-streak requirement the window halved on every clean
        // flush and re-doubled on the next saturated one — a fresh
        // admission decision per flush. With it, the window rises to
        // the cap and holds.
        let mut svc = KvService::create(&ServiceSpec {
            shards: 1,
            group_window: 4,
            admission: AdmissionPolicy::Delay { max_window: 16 },
            ..spec(1)
        })
        .unwrap();
        let lane = &mut svc.lanes[0];
        for _ in 0..4 {
            lane.note_flush_pressure(1);
            lane.note_flush_pressure(0);
        }
        assert_eq!(lane.window, 16, "oscillation widens to the cap");
        for _ in 0..4 {
            let before = lane.window;
            lane.note_flush_pressure(1);
            lane.note_flush_pressure(0);
            assert_eq!(lane.window, before, "window must not flap under 1,0 deltas");
        }
        // A pressure episode that genuinely ends decays normally.
        lane.note_flush_pressure(0);
        lane.note_flush_pressure(0);
        assert_eq!(lane.window, 8);
    }

    #[test]
    fn admission_reacts_to_real_wpq_saturation() {
        // A deliberately starved WPQ (2 entries) under a write burst:
        // flushes must observe wpq_full_events and trigger Shed.
        let mut cfg = SystemConfig::tiny();
        cfg.mem.wpq_entries = 2;
        let mut svc = KvService::create(&ServiceSpec {
            shards: 1,
            group_window: 16,
            admission: AdmissionPolicy::Shed { cooldown: 4 },
            config: Some(cfg),
            ..spec(1)
        })
        .unwrap();
        let reqs: Vec<Request> = (0..48u64)
            .map(|k| Request::Put {
                key: k,
                value: vec![k as u8; 48],
            })
            .collect();
        let resps = svc.submit(&reqs).unwrap();
        let stats = svc.merged_group_stats();
        assert!(
            svc.shard_mem(0).unwrap().mem_stats().wpq_full_events > 0,
            "the starved WPQ must have saturated"
        );
        assert!(
            stats.shed > 0,
            "saturation must have shed mutations: {stats:?}"
        );
        assert!(resps.contains(&Response::Shed));
    }

    #[test]
    fn crash_on_one_shard_recovers_to_a_group_boundary() {
        let mut svc = KvService::create(&ServiceSpec {
            shards: 2,
            group_window: 4,
            ..spec(2)
        })
        .unwrap();
        svc.set_threaded(false);
        // First batch: fully durable.
        let warm: Vec<Request> = (0..8u64)
            .map(|k| Request::Put {
                key: k,
                value: vec![k as u8; 8],
            })
            .collect();
        svc.submit(&warm).unwrap();
        let durable = svc.dump().unwrap();
        // Arm a crash early on shard 0, then push another batch.
        svc.shard_mem_mut(0).unwrap().inject_crash_after_persists(2);
        let burst: Vec<Request> = (100..120u64)
            .map(|k| Request::Put {
                key: k,
                value: vec![k as u8; 8],
            })
            .collect();
        let err = svc.submit(&burst).unwrap_err();
        assert!(matches!(err, KvError::Memory(_)), "crash must surface");
        let report = svc.recover_shard(0).unwrap();
        assert!(report.persistent_recovered);
        let after = svc.dump().unwrap();
        // Shard 0 lost its in-flight group; every key it still holds
        // was durable before, and the pre-crash state is a subset.
        for (k, v) in &durable {
            assert_eq!(after.get(k), Some(v), "durable key {k} lost");
        }
        // The service keeps serving.
        svc.submit(&warm).unwrap();
        assert!(svc.dump().unwrap().len() >= durable.len());
    }

    #[test]
    fn crash_equivalence_smoke_sweeps_group_boundaries() {
        // The full seeded sweep lives in tests/property_crash.rs; this
        // is the in-crate smoke version (one scheme, one tiny
        // schedule).
        let boundaries = service_crash_equivalence_check(&spec(2), 2, 4, 99).unwrap();
        assert!(boundaries > 0, "schedule must cross persist boundaries");
    }

    fn puts(range: std::ops::Range<u64>) -> Vec<Request> {
        range
            .map(|k| Request::Put {
                key: k,
                value: vec![k as u8; 8],
            })
            .collect()
    }

    #[test]
    fn tenant_modes_default_and_override() {
        let mut svc = KvService::create(&spec(1)).unwrap();
        assert_eq!(svc.tenant_mode(0), DurabilityMode::Strict);
        svc.set_tenant_mode(7, DurabilityMode::InMemory);
        assert_eq!(svc.tenant_mode(7), DurabilityMode::InMemory);
        assert_eq!(
            svc.tenant_mode(8),
            DurabilityMode::Strict,
            "others keep the default"
        );
    }

    #[test]
    fn buffered_mode_acknowledges_from_dram_and_flushes_at_max_loss() {
        let mut svc = KvService::create(&spec(1)).unwrap();
        svc.set_tenant_mode(
            1,
            DurabilityMode::Buffered {
                flush_interval: u64::MAX / 2_000, // effectively never
                max_loss: 4,
            },
        );
        // Three mutations: acknowledged, readable, NOT yet durable.
        let resps = svc.submit_as(1, &puts(0..3)).unwrap();
        assert!(resps.iter().all(|r| *r == Response::Done));
        assert!(
            svc.dump().unwrap().is_empty(),
            "backlog must not be on NVM yet"
        );
        let read = svc.submit_as(1, &[Request::Get { key: 2 }]).unwrap();
        assert_eq!(read, vec![Response::Value(Some(vec![2u8; 8]))]);
        // The fourth reaches max_loss: the whole backlog group-commits.
        svc.submit_as(1, &puts(3..4)).unwrap();
        assert_eq!(
            svc.dump().unwrap().len(),
            4,
            "backlog flushed at the loss bound"
        );
        // One group, one marker — buffering amortizes like group commit.
        assert_eq!(svc.merged_group_stats().commit_markers, 1);
    }

    #[test]
    fn buffered_timer_flushes_idle_backlog_at_a_run_boundary() {
        let mut svc = KvService::create(&spec(1)).unwrap();
        svc.set_tenant_mode(
            1,
            DurabilityMode::Buffered {
                flush_interval: 1, // 1 ns: expires as soon as the clock moves
                max_loss: 100,
            },
        );
        svc.submit_as(1, &puts(0..2)).unwrap();
        // Buffered staging touches no memory, so the shard clock has
        // not moved and the backlog legitimately sits in DRAM.
        assert!(svc.dump().unwrap().is_empty());
        // Unrelated store work advances the shard's simulated clock
        // past the deadline; the run-boundary timer check flushes.
        svc.submit_as(0, &puts(500..502)).unwrap();
        let state = svc.dump().unwrap();
        assert!(
            state.contains_key(&0) && state.contains_key(&1),
            "expired backlog must be flushed at the next run boundary: {state:?}"
        );
    }

    #[test]
    fn inmemory_mode_is_volatile_until_a_barrier() {
        let mut svc = KvService::create(&spec(2)).unwrap();
        svc.set_tenant_mode(9, DurabilityMode::InMemory);
        let resps = svc.submit_as(9, &puts(0..6)).unwrap();
        assert!(resps.iter().all(|r| *r == Response::Done));
        assert!(
            svc.dump().unwrap().is_empty(),
            "volatile overlay must not persist"
        );
        assert_eq!(
            svc.total_persists(),
            {
                let mut fresh = KvService::create(&spec(2)).unwrap();
                fresh.submit_as(9, &[]).unwrap();
                fresh.total_persists()
            },
            "InMemory admission makes no durability points"
        );
        // Reads and scans see the overlay.
        let read = svc
            .submit_as(9, &[Request::Get { key: 3 }, Request::Scan])
            .unwrap();
        assert_eq!(read[0], Response::Value(Some(vec![3u8; 8])));
        let Response::Scanned(pairs) = &read[1] else {
            panic!("scan response expected, got {read:?}");
        };
        assert_eq!(pairs.len(), 6, "scan reads through the overlay");
        // The barrier promotes the overlay; state is now durable.
        svc.barrier().unwrap();
        assert_eq!(svc.dump().unwrap().len(), 6);
        // Deletes staged volatile win over promoted state.
        svc.submit_as(9, &[Request::Delete { key: 3 }]).unwrap();
        let read = svc.submit_as(9, &[Request::Get { key: 3 }]).unwrap();
        assert_eq!(read, vec![Response::Value(None)]);
        assert_eq!(
            svc.dump().unwrap().len(),
            6,
            "delete volatile until the barrier"
        );
        svc.barrier().unwrap();
        assert_eq!(svc.dump().unwrap().len(), 5);
    }

    #[test]
    fn recovery_report_states_mode_and_loss_for_all_three_tiers() {
        // Strict: everything acknowledged was durable — zero loss.
        let mut svc = KvService::create(&spec(1)).unwrap();
        svc.submit(&puts(0..5)).unwrap();
        svc.shard_mem_mut(0).unwrap().crash();
        let d = svc.recover_shard(0).unwrap().durability.unwrap();
        assert_eq!(
            (d.mode, d.mutations_lost, d.loss_bound),
            ("strict", 0, Some(0))
        );
        assert!(d.within_bound());

        // Buffered: the acknowledged backlog is lost, within max_loss.
        let mut svc = KvService::create(&spec(1)).unwrap();
        svc.set_tenant_mode(
            1,
            DurabilityMode::Buffered {
                flush_interval: u64::MAX / 2_000,
                max_loss: 8,
            },
        );
        svc.submit_as(1, &puts(0..3)).unwrap();
        svc.shard_mem_mut(0).unwrap().crash();
        let d = svc.recover_shard(0).unwrap().durability.unwrap();
        assert_eq!(
            (d.mode, d.mutations_lost, d.loss_bound),
            ("buffered", 3, Some(8))
        );
        assert!(d.within_bound());

        // InMemory: the whole overlay since the last barrier is lost,
        // and the bound is reported as unbounded.
        let mut svc = KvService::create(&spec(1)).unwrap();
        svc.set_tenant_mode(9, DurabilityMode::InMemory);
        svc.submit_as(9, &puts(0..4)).unwrap();
        svc.shard_mem_mut(0).unwrap().crash();
        let d = svc.recover_shard(0).unwrap().durability.unwrap();
        assert_eq!(
            (d.mode, d.mutations_lost, d.loss_bound),
            ("in-memory", 4, None)
        );
        assert!(d.within_bound());

        // After recovery the ledger restarts: a clean strict run and a
        // second crash report zero loss under the strict tier again.
        svc.submit(&puts(100..102)).unwrap();
        svc.shard_mem_mut(0).unwrap().crash();
        let d = svc.recover_shard(0).unwrap().durability.unwrap();
        assert_eq!(
            (d.mode, d.mutations_lost, d.loss_bound),
            ("strict", 0, Some(0))
        );
    }

    #[test]
    fn mixed_tenants_share_one_fleet() {
        // A zero-loss tenant and a bounded-loss tenant interleave on
        // the same shards; each keeps its own contract.
        let mut svc = KvService::create(&spec(2)).unwrap();
        svc.set_tenant_mode(
            2,
            DurabilityMode::Buffered {
                flush_interval: u64::MAX / 2_000,
                max_loss: 64,
            },
        );
        svc.submit(&puts(0..8)).unwrap(); // strict tenant: durable now
        svc.submit_as(2, &puts(100..104)).unwrap(); // buffered: DRAM backlog
        let durable = svc.dump().unwrap();
        assert_eq!(
            durable.len(),
            8,
            "strict keys durable, buffered backlog not"
        );
        assert!(durable.keys().all(|k| *k < 8));
        // The barrier drains every tier.
        svc.barrier().unwrap();
        assert_eq!(svc.dump().unwrap().len(), 12);
    }

    #[test]
    fn create_rejects_oversized_fleets() {
        assert_eq!(
            KvService::create(&spec(MAX_SHARDS + 1)).unwrap_err(),
            KvError::TooManyShards {
                requested: MAX_SHARDS + 1,
                max: MAX_SHARDS
            }
        );
    }
}
