//! Mixed-operation driver for the `triad-recov` lock-free structures.
//!
//! This is the benchmark-facing counterpart of the [`kv`](crate::kv)
//! driver: it generates deterministic per-thread operation scripts,
//! runs them through the seeded interleaving harness in
//! [`triad_recov::harness`], and checks the commit-log
//! crash-equivalence oracle on every run. The report binary uses it
//! for the `stack-mixed-*` / `queue-mixed-*` rows.

use triad_core::PersistScheme;
use triad_recov::{crash_equivalence_concurrent, OpSpec, RunSpec};
use triad_sim::rng::SplitMix64;

pub use triad_recov::{RunOutcome, StructureKind};

/// Stream selector for script generation, so recov scripts never
/// collide with other consumers of the same seed.
const SCRIPT_STREAM: u64 = 0x5EC0_4D17;

/// Specification for one mixed recov run.
#[derive(Debug, Clone)]
pub struct RecovMixSpec {
    /// Which structure to drive.
    pub kind: StructureKind,
    /// Number of concurrent threads (each gets its own script).
    pub threads: usize,
    /// Operations per thread.
    pub ops_per_thread: usize,
    /// Persistence scheme for the backing secure memory.
    pub scheme: PersistScheme,
    /// Seed for both script generation and the interleaver.
    pub seed: u64,
    /// Optional per-thread crash injection `(thread, at_step)`.
    pub thread_crash: Option<(usize, u64)>,
}

/// Result of a mixed recov run that passed the oracle.
#[derive(Debug, Clone)]
pub struct RecovMixResult {
    /// Full harness outcome (commit log, latencies, counters).
    pub outcome: RunOutcome,
    /// Completed operations per second of simulated time.
    pub ops_per_sec: f64,
    /// Atomic persists issued per completed operation.
    pub persists_per_op: f64,
}

/// Generate deterministic per-thread scripts: roughly two inserts for
/// every remove, with values unique across the whole run.
pub fn generate_recov_scripts(
    threads: usize,
    ops_per_thread: usize,
    seed: u64,
) -> Vec<Vec<OpSpec>> {
    (0..threads)
        .map(|t| {
            let mut rng = SplitMix64::stream(seed ^ SCRIPT_STREAM, t as u64);
            (0..ops_per_thread)
                .map(|i| {
                    if rng.below(3) == 2 {
                        OpSpec::Remove
                    } else {
                        // Bit 60 keeps every value nonzero and disjoint
                        // from node addresses that may appear in logs.
                        OpSpec::Insert(((t as u64) << 32) | (i as u64) | (1 << 60))
                    }
                })
                .collect()
        })
        .collect()
}

/// Run one mixed workload through the harness and the oracle.
///
/// Returns `Err` with a human-readable message if the harness hits a
/// typed error or the commit-log oracle rejects the run.
pub fn run_recov_mix(spec: &RecovMixSpec) -> Result<RecovMixResult, String> {
    let run_spec = RunSpec {
        kind: spec.kind,
        scheme: spec.scheme,
        seed: spec.seed,
        scripts: generate_recov_scripts(spec.threads, spec.ops_per_thread, spec.seed),
        thread_crash: spec.thread_crash,
        engine_crash_after_persists: None,
    };
    let outcome = crash_equivalence_concurrent(&run_spec)?;
    let total_ops = outcome.op_latency_ns.len() as f64;
    let ops_per_sec = total_ops / (outcome.sim_ns.max(1) as f64 * 1e-9);
    let persists_per_op = if total_ops > 0.0 {
        outcome.persists as f64 / total_ops
    } else {
        0.0
    };
    Ok(RecovMixResult {
        outcome,
        ops_per_sec,
        persists_per_op,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(kind: StructureKind, threads: usize) -> RecovMixSpec {
        RecovMixSpec {
            kind,
            threads,
            ops_per_thread: 12,
            scheme: PersistScheme::triad_nvm(2),
            seed: 0xFEED_BEEF,
            thread_crash: None,
        }
    }

    #[test]
    fn scripts_are_deterministic_and_mixed() {
        let a = generate_recov_scripts(3, 32, 7);
        let b = generate_recov_scripts(3, 32, 7);
        assert_eq!(a, b);
        let c = generate_recov_scripts(3, 32, 8);
        assert_ne!(a, c);
        let flat: Vec<_> = a.into_iter().flatten().collect();
        assert!(flat.iter().any(|o| matches!(o, OpSpec::Insert(_))));
        assert!(flat.iter().any(|o| matches!(o, OpSpec::Remove)));
    }

    #[test]
    fn mixed_runs_pass_the_oracle_for_both_structures() {
        for kind in [StructureKind::Stack, StructureKind::Queue] {
            let res = run_recov_mix(&spec(kind, 3)).expect("oracle");
            let total: usize = res.outcome.results.iter().map(|r| r.len()).sum();
            assert_eq!(res.outcome.op_latency_ns.len(), total);
            assert!(res.persists_per_op > 0.0);
            assert!(res.ops_per_sec > 0.0);
        }
    }

    #[test]
    fn crash_injected_runs_pass_and_count_the_crash() {
        let mut s = spec(StructureKind::Queue, 2);
        s.thread_crash = Some((1, 9));
        let res = run_recov_mix(&s).expect("oracle under crash");
        assert_eq!(res.outcome.thread_crashes, 1);
    }
}
