//! Workloads for the Triad-NVM evaluation (§4 of the paper).
//!
//! The paper runs SPEC CPU2006 binaries, PMDK microbenchmarks and
//! DAX-mmap synthetic workloads under gem5. This crate provides the
//! closest equivalents the simulator can drive:
//!
//! * [`spec`] — synthetic trace generators parameterised to match each
//!   SPEC benchmark's first-order memory behaviour (footprint,
//!   write intensity, spatial locality, pointer-chasing) — the
//!   properties Figures 4/8/9 actually depend on.
//! * [`heap`] — a miniature PMDK (`libpmemobj`) substitute: a
//!   persistent heap with a redo-log transaction mechanism over
//!   [`triad_core::SecureMemory`] (now lives in `triad-kv`;
//!   re-exported here for compatibility).
//! * [`structures`] — the paper's three PMDK microbenchmarks as real
//!   data structures on that heap: [`structures::PersistentHashtable`],
//!   [`structures::PersistentQueue`], [`structures::ArraySwap`].
//! * [`traces`] — trace-generator forms of the PMDK benchmarks and
//!   the `DAXBENCH-S-RW` strided workload, for the timing simulator.
//! * [`mixes`] — the Table 2 workload registry (DAXBENCH1–4, MIX1–4)
//!   plus every single-program workload the figures sweep.
//! * [`kv`] — the deterministic multi-shard driver for the `triad-kv`
//!   store: seeded history generation (Zipf or uniform keys), an
//!   in-DRAM oracle, and the crash-equivalence check that replays a
//!   history through crash injection at every persist boundary.
//! * [`recov`] — the mixed-operation driver for the `triad-recov`
//!   detectably recoverable lock-free structures: deterministic
//!   per-thread scripts through the seeded interleaving harness, with
//!   the concurrent crash-equivalence oracle checked on every run.
//! * [`service`] — the sharded serving front-end over `triad-kv`:
//!   keyed-hash routing across independent shard engines on worker
//!   threads, group commit (one commit marker per flushed batch), and
//!   WPQ-pressure admission control, with deterministic merges.

#![warn(missing_docs)]

pub use triad_kv::heap;

pub mod kv;
pub mod mixes;
pub mod recov;
pub mod service;
pub mod spec;
pub mod structures;
pub mod traces;
pub mod zipf;

pub use heap::{HeapError, PersistentHeap};
pub use kv::{crash_equivalence_check, generate_history, KvFleet, KvMix, KvOp, KvSpec};
pub use mixes::{all_figure_workloads, build_workload, WorkloadEnv};
pub use recov::{generate_recov_scripts, run_recov_mix, RecovMixResult, RecovMixSpec};
pub use service::{
    generate_requests, service_crash_equivalence_check, AdmissionPolicy, DurabilityMode, KvService,
    Request, Response, ServiceSpec,
};
pub use spec::SpecWorkload;
pub use traces::{DaxBench, PmdkKind, PmdkTrace};
pub use zipf::Zipf;
