//! The paper's PMDK microbenchmarks as real persistent data
//! structures over [`PersistentHeap`]: Hashtable, Queue and ArraySwap
//! (§4, Table 2).
//!
//! Every structure keeps all state in the persistent region and
//! mutates through redo-log transactions, so any crash leaves it
//! either before or after each operation — which the crash tests
//! verify through real power-loss simulation.

use triad_core::SecureMemory;
use triad_sim::{PhysAddr, BLOCK_BYTES};

use crate::heap::{HeapError, PersistentHeap, Result};

fn read_u64(mem: &mut SecureMemory, addr: PhysAddr, off: usize) -> Result<u64> {
    let b = mem.read(addr)?;
    Ok(u64::from_le_bytes(b[off..off + 8].try_into().expect("8B")))
}

fn with_u64(block: [u8; BLOCK_BYTES], off: usize, v: u64) -> [u8; BLOCK_BYTES] {
    let mut b = block;
    b[off..off + 8].copy_from_slice(&v.to_le_bytes());
    b
}

/// A fixed-bucket chained hashtable of `u64 → u64`.
///
/// Layout: a header block (bucket count), `buckets/8` bucket blocks of
/// 8-byte entry pointers, and one block per entry
/// (`key, value, next`).
#[derive(Debug, Clone, Copy)]
pub struct PersistentHashtable {
    heap: PersistentHeap,
    header: PhysAddr,
    buckets: u64,
}

impl PersistentHashtable {
    /// Creates a table with `buckets` buckets (rounded up to 8).
    ///
    /// # Errors
    ///
    /// Propagates allocation failures.
    pub fn create(mem: &mut SecureMemory, heap: PersistentHeap, buckets: u64) -> Result<Self> {
        let buckets = buckets.div_ceil(8) * 8;
        let header = heap.alloc_blocks(mem, 1 + buckets / 8)?;
        mem.write(header, &buckets.to_le_bytes())?;
        mem.persist(header)?;
        // Bucket blocks are freshly allocated ⇒ already zero.
        Ok(PersistentHashtable {
            heap,
            header,
            buckets,
        })
    }

    /// Reopens a table from its header address (e.g. the heap root).
    ///
    /// # Errors
    ///
    /// Propagates read failures.
    pub fn open(mem: &mut SecureMemory, heap: PersistentHeap, header: PhysAddr) -> Result<Self> {
        let buckets = read_u64(mem, header, 0)?;
        Ok(PersistentHashtable {
            heap,
            header,
            buckets,
        })
    }

    /// The header address (store it as the heap root).
    pub fn header(&self) -> PhysAddr {
        self.header
    }

    fn bucket_slot(&self, key: u64) -> (PhysAddr, usize) {
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        let idx = h % self.buckets;
        (
            PhysAddr(self.header.0 + 64 + idx / 8 * 64),
            (idx % 8) as usize * 8,
        )
    }

    /// Inserts or updates `key → value` crash-atomically.
    ///
    /// # Errors
    ///
    /// Propagates allocation/transaction failures.
    pub fn insert(&self, mem: &mut SecureMemory, key: u64, value: u64) -> Result<()> {
        // Update in place if present.
        let mut cursor = {
            let (baddr, off) = self.bucket_slot(key);
            read_u64(mem, baddr, off)?
        };
        while cursor != 0 {
            let entry = PhysAddr(cursor);
            if read_u64(mem, entry, 0)? == key {
                let block = with_u64(mem.read(entry)?, 8, value);
                return self.heap.commit(mem, &[(entry, block)]);
            }
            cursor = read_u64(mem, entry, 16)?;
        }
        // Prepend a new entry.
        let (baddr, off) = self.bucket_slot(key);
        let head = read_u64(mem, baddr, off)?;
        let entry = self.heap.alloc_blocks(mem, 1)?;
        let mut eblock = [0u8; BLOCK_BYTES];
        eblock = with_u64(eblock, 0, key);
        eblock = with_u64(eblock, 8, value);
        eblock = with_u64(eblock, 16, head);
        let bblock = with_u64(mem.read(baddr)?, off, entry.0);
        self.heap.commit(mem, &[(entry, eblock), (baddr, bblock)])
    }

    /// Looks up `key`.
    ///
    /// # Errors
    ///
    /// Propagates read failures.
    pub fn get(&self, mem: &mut SecureMemory, key: u64) -> Result<Option<u64>> {
        let (baddr, off) = self.bucket_slot(key);
        let mut cursor = read_u64(mem, baddr, off)?;
        while cursor != 0 {
            let entry = PhysAddr(cursor);
            if read_u64(mem, entry, 0)? == key {
                return Ok(Some(read_u64(mem, entry, 8)?));
            }
            cursor = read_u64(mem, entry, 16)?;
        }
        Ok(None)
    }

    /// Removes `key`, returning its value if present.
    ///
    /// # Errors
    ///
    /// Propagates read/transaction failures.
    pub fn remove(&self, mem: &mut SecureMemory, key: u64) -> Result<Option<u64>> {
        let (baddr, off) = self.bucket_slot(key);
        let mut prev: Option<PhysAddr> = None;
        let mut cursor = read_u64(mem, baddr, off)?;
        while cursor != 0 {
            let entry = PhysAddr(cursor);
            let next = read_u64(mem, entry, 16)?;
            if read_u64(mem, entry, 0)? == key {
                let value = read_u64(mem, entry, 8)?;
                match prev {
                    None => {
                        let bblock = with_u64(mem.read(baddr)?, off, next);
                        self.heap.commit(mem, &[(baddr, bblock)])?;
                    }
                    Some(p) => {
                        let pblock = with_u64(mem.read(p)?, 16, next);
                        self.heap.commit(mem, &[(p, pblock)])?;
                    }
                }
                return Ok(Some(value));
            }
            prev = Some(entry);
            cursor = next;
        }
        Ok(None)
    }
}

/// A bounded persistent FIFO queue of `u64` values.
///
/// Layout: header block (capacity, head, tail) + one block per slot.
#[derive(Debug, Clone, Copy)]
pub struct PersistentQueue {
    heap: PersistentHeap,
    header: PhysAddr,
    capacity: u64,
}

impl PersistentQueue {
    /// Creates a queue holding up to `capacity` values.
    ///
    /// # Errors
    ///
    /// Propagates allocation failures.
    pub fn create(mem: &mut SecureMemory, heap: PersistentHeap, capacity: u64) -> Result<Self> {
        let header = heap.alloc_blocks(mem, 1 + capacity)?;
        mem.write(header, &capacity.to_le_bytes())?;
        mem.persist(header)?;
        Ok(PersistentQueue {
            heap,
            header,
            capacity,
        })
    }

    /// Reopens a queue from its header address.
    ///
    /// # Errors
    ///
    /// Propagates read failures.
    pub fn open(mem: &mut SecureMemory, heap: PersistentHeap, header: PhysAddr) -> Result<Self> {
        let capacity = read_u64(mem, header, 0)?;
        Ok(PersistentQueue {
            heap,
            header,
            capacity,
        })
    }

    /// The header address.
    pub fn header(&self) -> PhysAddr {
        self.header
    }

    fn slot_addr(&self, index: u64) -> PhysAddr {
        PhysAddr(self.header.0 + 64 + (index % self.capacity) * 64)
    }

    /// Number of queued values.
    ///
    /// # Errors
    ///
    /// Propagates read failures.
    pub fn len(&self, mem: &mut SecureMemory) -> Result<u64> {
        let head = read_u64(mem, self.header, 8)?;
        let tail = read_u64(mem, self.header, 16)?;
        Ok(tail - head)
    }

    /// Whether the queue is empty.
    ///
    /// # Errors
    ///
    /// Propagates read failures.
    pub fn is_empty(&self, mem: &mut SecureMemory) -> Result<bool> {
        Ok(self.len(mem)? == 0)
    }

    /// Appends a value crash-atomically.
    ///
    /// # Errors
    ///
    /// [`HeapError::OutOfSpace`] when full.
    pub fn enqueue(&self, mem: &mut SecureMemory, value: u64) -> Result<()> {
        let hdr = mem.read(self.header)?;
        let head = u64::from_le_bytes(hdr[8..16].try_into().expect("8B"));
        let tail = u64::from_le_bytes(hdr[16..24].try_into().expect("8B"));
        if tail - head >= self.capacity {
            return Err(HeapError::OutOfSpace);
        }
        let slot = self.slot_addr(tail);
        let sblock = with_u64(mem.read(slot)?, 0, value);
        let hblock = with_u64(hdr, 16, tail + 1);
        self.heap
            .commit(mem, &[(slot, sblock), (self.header, hblock)])
    }

    /// Pops the oldest value crash-atomically.
    ///
    /// # Errors
    ///
    /// Propagates read/transaction failures.
    pub fn dequeue(&self, mem: &mut SecureMemory) -> Result<Option<u64>> {
        let hdr = mem.read(self.header)?;
        let head = u64::from_le_bytes(hdr[8..16].try_into().expect("8B"));
        let tail = u64::from_le_bytes(hdr[16..24].try_into().expect("8B"));
        if head == tail {
            return Ok(None);
        }
        let value = read_u64(mem, self.slot_addr(head), 0)?;
        let hblock = with_u64(hdr, 8, head + 1);
        self.heap.commit(mem, &[(self.header, hblock)])?;
        Ok(Some(value))
    }
}

/// The ArraySwap microbenchmark: an array of 64 B records where random
/// pairs are swapped crash-atomically.
#[derive(Debug, Clone, Copy)]
pub struct ArraySwap {
    heap: PersistentHeap,
    base: PhysAddr,
    len: u64,
}

impl ArraySwap {
    /// Allocates an array of `len` records, each initialised with its
    /// own index in the first 8 bytes.
    ///
    /// # Errors
    ///
    /// Propagates allocation failures.
    pub fn create(mem: &mut SecureMemory, heap: PersistentHeap, len: u64) -> Result<Self> {
        let base = heap.alloc_blocks(mem, len)?;
        for i in 0..len {
            let addr = PhysAddr(base.0 + i * 64);
            mem.write(addr, &i.to_le_bytes())?;
            mem.persist(addr)?;
        }
        Ok(ArraySwap { heap, base, len })
    }

    /// Reopens an array at a known base.
    pub fn open(heap: PersistentHeap, base: PhysAddr, len: u64) -> Self {
        ArraySwap { heap, base, len }
    }

    /// The array base address.
    pub fn base(&self) -> PhysAddr {
        self.base
    }

    /// Number of records.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the array has no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads record `i`'s tag (first 8 bytes).
    ///
    /// # Errors
    ///
    /// Propagates read failures.
    pub fn tag(&self, mem: &mut SecureMemory, i: u64) -> Result<u64> {
        read_u64(mem, PhysAddr(self.base.0 + (i % self.len) * 64), 0)
    }

    /// Swaps records `i` and `j` crash-atomically.
    ///
    /// # Errors
    ///
    /// Propagates read/transaction failures.
    pub fn swap(&self, mem: &mut SecureMemory, i: u64, j: u64) -> Result<()> {
        let a = PhysAddr(self.base.0 + (i % self.len) * 64);
        let b = PhysAddr(self.base.0 + (j % self.len) * 64);
        if a == b {
            return Ok(());
        }
        let va = mem.read(a)?;
        let vb = mem.read(b)?;
        self.heap.commit(mem, &[(a, vb), (b, va)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triad_core::{PersistScheme, SecureMemoryBuilder};

    fn setup() -> (SecureMemory, PersistentHeap) {
        let mut m = SecureMemoryBuilder::new()
            .scheme(PersistScheme::triad_nvm(1))
            .build()
            .unwrap();
        let h = PersistentHeap::format(&mut m).unwrap();
        (m, h)
    }

    #[test]
    fn hashtable_insert_get_remove() {
        let (mut m, h) = setup();
        let t = PersistentHashtable::create(&mut m, h, 16).unwrap();
        for k in 0..100u64 {
            t.insert(&mut m, k, k * 10).unwrap();
        }
        for k in 0..100u64 {
            assert_eq!(t.get(&mut m, k).unwrap(), Some(k * 10));
        }
        assert_eq!(t.get(&mut m, 1000).unwrap(), None);
        assert_eq!(t.remove(&mut m, 50).unwrap(), Some(500));
        assert_eq!(t.get(&mut m, 50).unwrap(), None);
        assert_eq!(t.remove(&mut m, 50).unwrap(), None);
        // Update in place.
        t.insert(&mut m, 3, 99).unwrap();
        assert_eq!(t.get(&mut m, 3).unwrap(), Some(99));
    }

    #[test]
    fn hashtable_survives_crash() {
        let (mut m, h) = setup();
        let t = PersistentHashtable::create(&mut m, h, 16).unwrap();
        h.set_root(&mut m, t.header().0).unwrap();
        for k in 0..50u64 {
            t.insert(&mut m, k, k + 1).unwrap();
        }
        m.crash();
        m.recover().unwrap();
        let h = PersistentHeap::open(&mut m).unwrap();
        let root = h.root(&mut m).unwrap();
        let t = PersistentHashtable::open(&mut m, h, PhysAddr(root)).unwrap();
        for k in 0..50u64 {
            assert_eq!(t.get(&mut m, k).unwrap(), Some(k + 1));
        }
    }

    #[test]
    fn queue_fifo_order_and_bounds() {
        let (mut m, h) = setup();
        let q = PersistentQueue::create(&mut m, h, 8).unwrap();
        assert!(q.is_empty(&mut m).unwrap());
        for v in 0..8u64 {
            q.enqueue(&mut m, v).unwrap();
        }
        assert_eq!(q.enqueue(&mut m, 99).unwrap_err(), HeapError::OutOfSpace);
        for v in 0..8u64 {
            assert_eq!(q.dequeue(&mut m).unwrap(), Some(v));
        }
        assert_eq!(q.dequeue(&mut m).unwrap(), None);
        // Wrap-around.
        for v in 100..110u64 {
            q.enqueue(&mut m, v).unwrap();
            assert_eq!(q.dequeue(&mut m).unwrap(), Some(v));
        }
    }

    #[test]
    fn queue_survives_crash() {
        let (mut m, h) = setup();
        let q = PersistentQueue::create(&mut m, h, 32).unwrap();
        h.set_root(&mut m, q.header().0).unwrap();
        for v in 0..10u64 {
            q.enqueue(&mut m, v).unwrap();
        }
        q.dequeue(&mut m).unwrap();
        m.crash();
        m.recover().unwrap();
        let h = PersistentHeap::open(&mut m).unwrap();
        let root = h.root(&mut m).unwrap();
        let q = PersistentQueue::open(&mut m, h, PhysAddr(root)).unwrap();
        assert_eq!(q.len(&mut m).unwrap(), 9);
        assert_eq!(q.dequeue(&mut m).unwrap(), Some(1));
    }

    #[test]
    fn array_swap_is_a_permutation() {
        let (mut m, h) = setup();
        let a = ArraySwap::create(&mut m, h, 32).unwrap();
        for s in 0..100u64 {
            a.swap(&mut m, s * 7, s * 13 + 1).unwrap();
        }
        let mut seen: Vec<u64> = (0..32).map(|i| a.tag(&mut m, i).unwrap()).collect();
        seen.sort_unstable();
        assert_eq!(
            seen,
            (0..32).collect::<Vec<_>>(),
            "tags must stay a permutation"
        );
    }

    #[test]
    fn array_swap_crash_atomic() {
        let (mut m, h) = setup();
        let a = ArraySwap::create(&mut m, h, 16).unwrap();
        a.swap(&mut m, 0, 1).unwrap();
        m.crash();
        m.recover().unwrap();
        let h2 = PersistentHeap::open(&mut m).unwrap();
        let a = ArraySwap::open(h2, a.base(), 16);
        let mut seen: Vec<u64> = (0..16).map(|i| a.tag(&mut m, i).unwrap()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..16).collect::<Vec<_>>());
        assert_eq!(a.tag(&mut m, 0).unwrap(), 1);
        assert_eq!(a.tag(&mut m, 1).unwrap(), 0);
    }

    #[test]
    fn self_swap_is_noop() {
        let (mut m, h) = setup();
        let a = ArraySwap::create(&mut m, h, 4).unwrap();
        a.swap(&mut m, 2, 2).unwrap();
        assert_eq!(a.tag(&mut m, 2).unwrap(), 2);
        assert!(!a.is_empty());
        assert_eq!(a.len(), 4);
    }
}
