//! Deterministic multi-shard driver for the `triad-kv` store, and the
//! crash-equivalence check behind the PR-4 acceptance property.
//!
//! A [`KvSpec`] plus a seed fully determines an operation history
//! ([`generate_history`]: SplitMix64 streams, Zipf or uniform keys,
//! a configurable put/get/delete/scan mix). [`KvFleet`] runs that
//! history against a fleet of store shards on one secure memory while
//! the caller maintains an in-DRAM oracle ([`oracle_apply`]).
//!
//! [`crash_equivalence_check`] is the heart: it replays *the same
//! history* once cleanly to count persist boundaries, then once per
//! boundary with [`SecureMemory::inject_crash_after_persists`] armed at
//! that boundary — crash, recover, reopen (log replay), and require
//! the surviving state to equal the oracle exactly. The only ambiguity
//! a crash may leave is whether the in-flight operation committed; the
//! check accepts exactly the pre-op or post-op oracle and nothing
//! else.

use std::collections::BTreeMap;

use triad_core::{
    CounterPersistence, PersistScheme, RecoveryReport, SecureMemory, SecureMemoryBuilder,
    SecureMemoryError,
};
use triad_kv::heap::PersistentHeap;
use triad_kv::{KvConfig, KvError, KvStore};
use triad_sim::rng::SplitMix64;
use triad_sim::{PhysAddr, BLOCK_BYTES};

use crate::zipf::Zipf;

/// Operation weights of a generated history (relative, not percent).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvMix {
    /// Weight of `put`.
    pub put: u32,
    /// Weight of `get`.
    pub get: u32,
    /// Weight of `delete`.
    pub delete: u32,
    /// Weight of `scan`.
    pub scan: u32,
}

impl KvMix {
    /// The crash-suite default: update-heavy so most ops hit the log.
    pub fn balanced() -> Self {
        KvMix {
            put: 5,
            get: 4,
            delete: 2,
            scan: 1,
        }
    }

    /// The report mix: read-leaning, YCSB-B-flavoured.
    pub fn read_heavy() -> Self {
        KvMix {
            put: 4,
            get: 9,
            delete: 2,
            scan: 1,
        }
    }

    fn total(&self) -> u32 {
        self.put + self.get + self.delete + self.scan
    }
}

/// Everything that determines a KV history and its fleet geometry.
#[derive(Debug, Clone, PartialEq)]
pub struct KvSpec {
    /// Store shards (1..=[`MAX_SHARDS`]; the directory chains across
    /// blocks as needed).
    pub shards: u64,
    /// Operations in the history.
    pub ops: u64,
    /// Distinct keys per shard.
    pub keyspace: usize,
    /// Zipf skew for key choice; `None` = uniform.
    pub zipf_s: Option<f64>,
    /// Inclusive (min, max) value length in bytes.
    pub value_len: (usize, usize),
    /// Operation weights.
    pub mix: KvMix,
    /// Buckets per shard.
    pub buckets: u64,
    /// Log blocks per shard.
    pub log_blocks: u64,
}

impl KvSpec {
    /// The crash-equivalence suite geometry: small enough that
    /// crash-at-every-boundary times four schemes stays fast, varied
    /// enough (two shards, multi-block values, all four op kinds) to
    /// exercise every protocol path.
    pub fn small(ops: u64) -> Self {
        KvSpec {
            shards: 2,
            ops,
            keyspace: 12,
            zipf_s: Some(0.9),
            value_len: (1, 100),
            mix: KvMix::balanced(),
            buckets: 16,
            log_blocks: 32,
        }
    }

    /// [`KvSpec::small`] with uniform instead of Zipf keys.
    pub fn small_uniform(ops: u64) -> Self {
        KvSpec {
            zipf_s: None,
            ..KvSpec::small(ops)
        }
    }

    /// The triad-report `kv-zipf` row: four shards, Zipf(0.99) keys.
    pub fn report_zipf(ops: u64) -> Self {
        KvSpec {
            shards: 4,
            ops,
            keyspace: 256,
            zipf_s: Some(0.99),
            value_len: (8, 256),
            mix: KvMix::read_heavy(),
            buckets: 64,
            log_blocks: 64,
        }
    }

    /// The triad-report `kv-uniform` row.
    pub fn report_uniform(ops: u64) -> Self {
        KvSpec {
            zipf_s: None,
            ..KvSpec::report_zipf(ops)
        }
    }
}

/// One operation of a generated history. `tag` seeds the deterministic
/// value bytes (see [`value_bytes`]), so the oracle and the store
/// derive identical payloads without storing them in the history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvOp {
    /// Insert or replace `key` with `len` bytes derived from `tag`.
    Put {
        /// Target shard.
        shard: u64,
        /// Key within the shard.
        key: u64,
        /// Value length in bytes.
        len: usize,
        /// Seed of the value bytes.
        tag: u64,
    },
    /// Point lookup.
    Get {
        /// Target shard.
        shard: u64,
        /// Key within the shard.
        key: u64,
    },
    /// Point delete.
    Delete {
        /// Target shard.
        shard: u64,
        /// Key within the shard.
        key: u64,
    },
    /// Full sorted scan of one shard.
    Scan {
        /// Target shard.
        shard: u64,
    },
}

/// The deterministic value payload for a put's `(tag, len)`.
pub fn value_bytes(tag: u64, len: usize) -> Vec<u8> {
    let mut out = vec![0u8; len];
    SplitMix64::new(tag ^ len as u64).fill_bytes(&mut out);
    out
}

/// Generates the seeded operation history for `spec`.
pub fn generate_history(spec: &KvSpec, seed: u64) -> Vec<KvOp> {
    let mut rng = SplitMix64::stream(seed, 0x6b76_6f70_7321);
    let zipf = spec.zipf_s.map(|s| Zipf::new(spec.keyspace, s));
    let total = spec.mix.total().max(1) as u64;
    let mut history = Vec::with_capacity(spec.ops as usize);
    for _ in 0..spec.ops {
        let shard = rng.below(spec.shards.max(1));
        let key = match &zipf {
            Some(z) => z.sample(&mut rng) as u64,
            None => rng.below(spec.keyspace.max(1) as u64),
        };
        let r = rng.below(total) as u32;
        let op = if r < spec.mix.put {
            KvOp::Put {
                shard,
                key,
                len: rng.gen_range_inclusive(spec.value_len.0 as u64..=spec.value_len.1 as u64)
                    as usize,
                tag: rng.next_u64(),
            }
        } else if r < spec.mix.put + spec.mix.get {
            KvOp::Get { shard, key }
        } else if r < spec.mix.put + spec.mix.get + spec.mix.delete {
            KvOp::Delete { shard, key }
        } else {
            KvOp::Scan { shard }
        };
        history.push(op);
    }
    history
}

/// The in-DRAM oracle: `(shard, key) → value`.
pub type Model = BTreeMap<(u64, u64), Vec<u8>>;

/// Applies one op to the oracle (reads leave it unchanged).
pub fn oracle_apply(model: &mut Model, op: &KvOp) {
    match *op {
        KvOp::Put {
            shard,
            key,
            len,
            tag,
        } => {
            model.insert((shard, key), value_bytes(tag, len));
        }
        KvOp::Delete { shard, key } => {
            model.remove(&(shard, key));
        }
        KvOp::Get { .. } | KvOp::Scan { .. } => {}
    }
}

/// What a fleet op returned, for read-verification against the oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpOutcome {
    /// A put or delete completed.
    Done,
    /// A get returned this value (or absence).
    Got(Option<Vec<u8>>),
    /// A scan returned these sorted pairs.
    Scanned(Vec<(u64, Vec<u8>)>),
}

/// The largest fleet the directory chain will describe. Far above any
/// simulated geometry; the bound exists so `open` can reject a
/// corrupt count word before walking garbage.
pub const MAX_SHARDS: u64 = 64;

/// Shard superblock addresses the first directory block holds next to
/// the count word (words 1..=6; word 7 chains to the next block).
const DIR_FIRST_ADDRS: usize = 6;
/// Addresses per continuation block (words 0..=6; word 7 chains).
const DIR_CHAIN_ADDRS: usize = 7;
/// Byte offset of a directory block's chain pointer (word 7).
const DIR_NEXT_OFF: usize = 56;

/// Routes a history shard id onto a fleet index: modulo in u64
/// *before* narrowing. The narrowing-first form (`s as usize % len`)
/// truncates ids ≥ 2^32 on 32-bit targets ahead of the modulo, which
/// silently reroutes them whenever the fleet size is not a power of
/// two.
fn route_shard(s: u64, shards: usize) -> usize {
    (s % shards.max(1) as u64) as usize
}

/// A fleet of KV shards on one secure memory, published through a
/// directory chain at the heap root: the first block holds the shard
/// count (word 0), up to 6 superblock addresses (words 1..=6) and a
/// chain pointer (word 7); continuation blocks hold 7 addresses plus
/// the chain pointer.
#[derive(Debug)]
pub struct KvFleet {
    heap: PersistentHeap,
    shards: Vec<KvStore>,
}

impl KvFleet {
    fn shard_cfg(spec: &KvSpec) -> KvConfig {
        KvConfig {
            buckets: spec.buckets,
            log_blocks: spec.log_blocks,
        }
    }

    /// Formats the heap and creates `spec.shards` stores, publishing
    /// the directory chain durably before returning.
    ///
    /// # Errors
    ///
    /// [`KvError::TooManyShards`] above [`MAX_SHARDS`] — never a
    /// silent clamp; heap/memory errors otherwise.
    pub fn create(mem: &mut SecureMemory, spec: &KvSpec) -> Result<KvFleet, KvError> {
        let count = spec.shards.max(1);
        if count > MAX_SHARDS {
            return Err(KvError::TooManyShards {
                requested: count,
                max: MAX_SHARDS,
            });
        }
        let heap = PersistentHeap::format(mem)?;
        let dir = heap.alloc_blocks(mem, 1)?;
        let mut shards = Vec::with_capacity(count as usize);
        let mut supers = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let store = KvStore::create(mem, heap, Self::shard_cfg(spec))?;
            supers.push(store.superblock().0);
            shards.push(store);
        }
        // Build the directory chain in DRAM first (continuation blocks
        // are allocated as needed, so each block can name its
        // successor), then write it out and persist before the heap
        // root publishes it.
        let mut blocks: Vec<(PhysAddr, [u8; BLOCK_BYTES])> = Vec::new();
        let mut first = [0u8; BLOCK_BYTES];
        first[..8].copy_from_slice(&count.to_le_bytes());
        let head = supers.len().min(DIR_FIRST_ADDRS);
        for (i, sb) in supers[..head].iter().enumerate() {
            let off = 8 + i * 8;
            first[off..off + 8].copy_from_slice(&sb.to_le_bytes());
        }
        blocks.push((dir, first));
        let mut rest = &supers[head..];
        while !rest.is_empty() {
            let next = heap.alloc_blocks(mem, 1)?;
            let prev = blocks.len() - 1;
            blocks[prev].1[DIR_NEXT_OFF..DIR_NEXT_OFF + 8].copy_from_slice(&next.0.to_le_bytes());
            let take = rest.len().min(DIR_CHAIN_ADDRS);
            let mut blk = [0u8; BLOCK_BYTES];
            for (i, sb) in rest[..take].iter().enumerate() {
                blk[i * 8..i * 8 + 8].copy_from_slice(&sb.to_le_bytes());
            }
            blocks.push((next, blk));
            rest = &rest[take..];
        }
        for (addr, blk) in &blocks {
            mem.write(*addr, blk)?;
            mem.persist(*addr)?;
        }
        heap.set_root(mem, dir.0)?;
        Ok(KvFleet { heap, shards })
    }

    /// Walks the directory chain at `root` and returns the `count`
    /// validated superblock addresses: every entry nonzero and
    /// distinct, the chain long enough for the count. Anything else is
    /// [`KvError::NotAStore`] — a corrupt directory must fail loudly,
    /// not open one shard twice.
    fn read_directory(mem: &mut SecureMemory, root: u64) -> Result<Vec<u64>, KvError> {
        let first = mem.read(PhysAddr(root))?;
        let mut count_bytes = [0u8; 8];
        count_bytes.copy_from_slice(&first[..8]);
        let count = u64::from_le_bytes(count_bytes);
        if count == 0 || count > MAX_SHARDS {
            return Err(KvError::NotAStore);
        }
        let mut supers = Vec::with_capacity(count as usize);
        let mut block = first;
        let mut off = 8;
        while supers.len() < count as usize {
            if off + 8 <= DIR_NEXT_OFF {
                let mut sb = [0u8; 8];
                sb.copy_from_slice(&block[off..off + 8]);
                supers.push(u64::from_le_bytes(sb));
                off += 8;
                continue;
            }
            let mut next = [0u8; 8];
            next.copy_from_slice(&block[DIR_NEXT_OFF..DIR_NEXT_OFF + 8]);
            let next = u64::from_le_bytes(next);
            if next == 0 {
                // The count promises more shards than the chain holds.
                return Err(KvError::NotAStore);
            }
            block = mem.read(PhysAddr(next))?;
            off = 0;
        }
        let mut seen = std::collections::BTreeSet::new();
        for &sb in &supers {
            if sb == 0 || !seen.insert(sb) {
                return Err(KvError::NotAStore);
            }
        }
        Ok(supers)
    }

    /// Opens an existing fleet, replaying every shard's log; returns
    /// the merged replay stats.
    ///
    /// # Errors
    ///
    /// [`KvError::NotAStore`] when the heap root is unset or the
    /// directory is corrupt (bad count, zero or duplicated superblock
    /// entries, truncated chain).
    pub fn open(mem: &mut SecureMemory) -> Result<(KvFleet, triad_core::LogReplayStats), KvError> {
        let heap = PersistentHeap::open(mem)?;
        let root = heap.root(mem)?;
        if root == 0 {
            return Err(KvError::NotAStore);
        }
        let supers = Self::read_directory(mem, root)?;
        let mut shards = Vec::with_capacity(supers.len());
        let mut merged = triad_core::LogReplayStats::default();
        for sb in supers {
            let (store, replay) = KvStore::open(mem, heap, PhysAddr(sb))?;
            merged.merge(&replay);
            shards.push(store);
        }
        Ok((KvFleet { heap, shards }, merged))
    }

    /// Crash recovery in one call: engine recovery, then
    /// [`KvFleet::open`], with the merged log-replay stats recorded on
    /// the returned report (`log_replay`).
    ///
    /// # Errors
    ///
    /// Same classes as [`SecureMemory::recover`] and [`KvFleet::open`].
    pub fn recover(mem: &mut SecureMemory) -> Result<(KvFleet, RecoveryReport), KvError> {
        let mut report = mem.recover()?;
        let (fleet, replay) = Self::open(mem)?;
        report.log_replay = Some(replay);
        Ok((fleet, report))
    }

    /// Shard count.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The fleet's backing heap (for allocator stats or extra roots).
    pub fn heap(&self) -> PersistentHeap {
        self.heap
    }

    /// Direct access to one shard (for stats/event wiring).
    pub fn shard_mut(&mut self, i: usize) -> Option<&mut KvStore> {
        self.shards.get_mut(i)
    }

    /// Applies one history op, returning what it read.
    ///
    /// # Errors
    ///
    /// Propagates store errors (including the injected-crash
    /// `NeedsRecovery`).
    pub fn apply(&mut self, mem: &mut SecureMemory, op: &KvOp) -> Result<OpOutcome, KvError> {
        let shard = |fleet: &mut KvFleet, s: u64| -> usize { route_shard(s, fleet.shards.len()) };
        match *op {
            KvOp::Put {
                shard: s,
                key,
                len,
                tag,
            } => {
                let i = shard(self, s);
                self.shards[i].put(mem, key, &value_bytes(tag, len))?;
                Ok(OpOutcome::Done)
            }
            KvOp::Get { shard: s, key } => {
                let i = shard(self, s);
                Ok(OpOutcome::Got(self.shards[i].get(mem, key)?))
            }
            KvOp::Delete { shard: s, key } => {
                let i = shard(self, s);
                self.shards[i].delete(mem, key)?;
                Ok(OpOutcome::Done)
            }
            KvOp::Scan { shard: s } => {
                let i = shard(self, s);
                Ok(OpOutcome::Scanned(self.shards[i].scan(mem)?))
            }
        }
    }

    /// The fleet's full state, oracle-shaped.
    ///
    /// # Errors
    ///
    /// Propagates secure-memory errors.
    pub fn dump(&mut self, mem: &mut SecureMemory) -> Result<Model, KvError> {
        let mut out = Model::new();
        for (i, store) in self.shards.iter_mut().enumerate() {
            for (key, value) in store.scan(mem)? {
                out.insert((i as u64, key), value);
            }
        }
        Ok(out)
    }
}

fn build_mem(
    scheme: PersistScheme,
    counters: CounterPersistence,
    seed: u64,
) -> Result<SecureMemory, String> {
    SecureMemoryBuilder::new()
        .scheme(scheme)
        .counter_persistence(counters)
        .key_seed(seed)
        .build()
        .map_err(|e| format!("build: {e}"))
}

/// Verifies the read outcome of a cleanly-applied op against the
/// oracle.
fn check_read(op: &KvOp, outcome: &OpOutcome, oracle: &Model) -> Result<(), String> {
    match (op, outcome) {
        (KvOp::Get { shard, key }, OpOutcome::Got(got)) => {
            let want = oracle.get(&(*shard, *key));
            if got.as_ref() != want {
                return Err(format!("get({shard},{key}) disagrees with the oracle"));
            }
        }
        (KvOp::Scan { shard }, OpOutcome::Scanned(pairs)) => {
            let want: Vec<(u64, Vec<u8>)> = oracle
                .range((*shard, 0)..=(*shard, u64::MAX))
                .map(|((_, k), v)| (*k, v.clone()))
                .collect();
            if *pairs != want {
                return Err(format!("scan({shard}) disagrees with the oracle"));
            }
        }
        _ => {}
    }
    Ok(())
}

/// One crash run: same history, crash armed at persist boundary `k`
/// (counted from the end of fleet creation). After the crash fires the
/// run recovers, reopens the fleet, accepts exactly the pre-op or
/// post-op oracle for the interrupted operation, finishes the history,
/// and requires final state equality.
fn run_with_crash(
    scheme: PersistScheme,
    counters: CounterPersistence,
    spec: &KvSpec,
    seed: u64,
    history: &[KvOp],
    k: u64,
) -> Result<(), String> {
    let ctx = |what: &str, idx: usize| format!("scheme {scheme}, boundary {k}, op {idx}: {what}");
    let mut mem = build_mem(scheme, counters, seed)?;
    let mut fleet = KvFleet::create(&mut mem, spec).map_err(|e| ctx(&format!("create: {e}"), 0))?;
    mem.inject_crash_after_persists(k);
    let mut oracle = Model::new();
    let mut crashed = false;
    for (idx, op) in history.iter().enumerate() {
        let before = oracle.clone();
        match fleet.apply(&mut mem, op) {
            Ok(outcome) => {
                oracle_apply(&mut oracle, op);
                check_read(op, &outcome, &oracle).map_err(|e| ctx(&e, idx))?;
            }
            Err(KvError::Memory(SecureMemoryError::NeedsRecovery)) if !crashed => {
                crashed = true;
                let (reopened, report) = KvFleet::recover(&mut mem)
                    .map_err(|e| ctx(&format!("recovery failed: {e}"), idx))?;
                if !report.persistent_recovered {
                    return Err(ctx("persistent region did not recover", idx));
                }
                fleet = reopened;
                let state = fleet
                    .dump(&mut mem)
                    .map_err(|e| ctx(&format!("dump: {e}"), idx))?;
                let mut after = before.clone();
                oracle_apply(&mut after, op);
                // The crashed op either committed or it didn't; any
                // third state is a consistency violation.
                if state == after {
                    oracle = after;
                } else if state == before {
                    oracle = before;
                } else {
                    return Err(ctx(
                        "post-recovery state matches neither the pre-op nor post-op oracle",
                        idx,
                    ));
                }
            }
            Err(e) => return Err(ctx(&format!("{e}"), idx)),
        }
    }
    if !crashed {
        return Err(format!(
            "scheme {scheme}, boundary {k}: armed crash never fired"
        ));
    }
    let state = fleet
        .dump(&mut mem)
        .map_err(|e| format!("scheme {scheme}, boundary {k}: final dump: {e}"))?;
    if state != oracle {
        return Err(format!(
            "scheme {scheme}, boundary {k}: final state diverges from the oracle"
        ));
    }
    Ok(())
}

/// The PR-4 acceptance property for one (scheme, history): replays the
/// seeded history cleanly (oracle equality required), then once per
/// persist boundary with a crash injected at that boundary. Returns
/// the number of boundaries exercised.
///
/// # Errors
///
/// A human-readable description of the first divergence, integrity
/// failure, or recovery failure — formatted to include the scheme,
/// boundary, and op index for reproduction.
pub fn crash_equivalence_check(
    scheme: PersistScheme,
    counters: CounterPersistence,
    spec: &KvSpec,
    seed: u64,
) -> Result<u64, String> {
    let history = generate_history(spec, seed);
    // Reference run: no crash; verify the oracle and count boundaries.
    let mut mem = build_mem(scheme, counters, seed)?;
    let mut fleet =
        KvFleet::create(&mut mem, spec).map_err(|e| format!("scheme {scheme}: create: {e}"))?;
    let base = mem.stats().persists;
    let mut oracle = Model::new();
    for (idx, op) in history.iter().enumerate() {
        let outcome = fleet
            .apply(&mut mem, op)
            .map_err(|e| format!("scheme {scheme}, clean run, op {idx}: {e}"))?;
        oracle_apply(&mut oracle, op);
        check_read(op, &outcome, &oracle)
            .map_err(|e| format!("scheme {scheme}, clean run, op {idx}: {e}"))?;
    }
    let state = fleet
        .dump(&mut mem)
        .map_err(|e| format!("scheme {scheme}, clean run: dump: {e}"))?;
    if state != oracle {
        return Err(format!(
            "scheme {scheme}, clean run: state diverges from the oracle"
        ));
    }
    let boundaries = mem.stats().persists - base;
    for k in 0..boundaries {
        run_with_crash(scheme, counters, spec, seed, &history, k)?;
    }
    Ok(boundaries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn history_generation_is_deterministic_and_mixed() {
        let spec = KvSpec::small(64);
        let a = generate_history(&spec, 7);
        let b = generate_history(&spec, 7);
        assert_eq!(a, b);
        let c = generate_history(&spec, 8);
        assert_ne!(a, c, "different seeds must differ");
        let puts = a.iter().filter(|o| matches!(o, KvOp::Put { .. })).count();
        let gets = a.iter().filter(|o| matches!(o, KvOp::Get { .. })).count();
        assert!(puts > 0 && gets > 0, "mix must produce both kinds");
    }

    #[test]
    fn value_bytes_depend_on_tag_and_len() {
        assert_eq!(value_bytes(1, 10), value_bytes(1, 10));
        assert_ne!(value_bytes(1, 10), value_bytes(2, 10));
        assert_eq!(value_bytes(1, 0).len(), 0);
    }

    #[test]
    fn fleet_round_trip_matches_oracle() {
        let spec = KvSpec::small(40);
        let history = generate_history(&spec, 11);
        let mut mem =
            build_mem(PersistScheme::triad_nvm(2), CounterPersistence::Strict, 11).unwrap();
        let mut fleet = KvFleet::create(&mut mem, &spec).unwrap();
        assert_eq!(fleet.shard_count(), 2);
        let mut oracle = Model::new();
        for op in &history {
            let outcome = fleet.apply(&mut mem, op).unwrap();
            oracle_apply(&mut oracle, op);
            check_read(op, &outcome, &oracle).unwrap();
        }
        assert_eq!(fleet.dump(&mut mem).unwrap(), oracle);
        // Clean crash: everything persisted must survive verbatim.
        mem.crash();
        let (mut fleet, report) = KvFleet::recover(&mut mem).unwrap();
        assert!(report.persistent_recovered);
        assert!(report.log_replay.is_some());
        assert_eq!(fleet.dump(&mut mem).unwrap(), oracle);
    }

    #[test]
    fn routing_reduces_in_u64_before_narrowing() {
        // Ids above 2^32 with a non-power-of-two fleet: the buggy
        // narrow-then-modulo form truncates to `(s mod 2^32) mod len`
        // on 32-bit targets, which disagrees whenever 2^32 % len != 0.
        let big = (1u64 << 32) + 3;
        assert_eq!(route_shard(big, 3), (big % 3) as usize);
        assert_eq!(route_shard(big, 3), 1);
        assert_eq!(route_shard(u64::MAX, 7), (u64::MAX % 7) as usize);
        assert_eq!(route_shard(5, 1), 0);

        // End to end: a history op carrying a >2^32 shard id lands on
        // the reduced index and is readable back from that shard.
        let spec = KvSpec {
            shards: 3,
            ..KvSpec::small(0)
        };
        let mut mem =
            build_mem(PersistScheme::triad_nvm(2), CounterPersistence::Strict, 5).unwrap();
        let mut fleet = KvFleet::create(&mut mem, &spec).unwrap();
        fleet
            .apply(
                &mut mem,
                &KvOp::Put {
                    shard: big,
                    key: 9,
                    len: 4,
                    tag: 77,
                },
            )
            .unwrap();
        let state = fleet.dump(&mut mem).unwrap();
        assert_eq!(state.get(&(1, 9)), Some(&value_bytes(77, 4)));
    }

    #[test]
    fn create_rejects_oversized_fleets_instead_of_clamping() {
        let spec = KvSpec {
            shards: MAX_SHARDS + 1,
            ..KvSpec::small(0)
        };
        let mut mem =
            build_mem(PersistScheme::triad_nvm(2), CounterPersistence::Strict, 5).unwrap();
        assert_eq!(
            KvFleet::create(&mut mem, &spec).unwrap_err(),
            KvError::TooManyShards {
                requested: MAX_SHARDS + 1,
                max: MAX_SHARDS
            }
        );
    }

    #[test]
    fn multi_block_directory_chain_survives_recovery() {
        // 16 shards no longer fit one directory block (6 + 7 + 3): the
        // chain must round-trip through crash recovery intact.
        let spec = KvSpec {
            shards: 16,
            buckets: 8,
            log_blocks: 16,
            ..KvSpec::small(0)
        };
        let mut mem =
            build_mem(PersistScheme::triad_nvm(2), CounterPersistence::Strict, 9).unwrap();
        let mut fleet = KvFleet::create(&mut mem, &spec).unwrap();
        assert_eq!(fleet.shard_count(), 16);
        let mut oracle = Model::new();
        for s in 0..16u64 {
            let op = KvOp::Put {
                shard: s,
                key: s,
                len: 8,
                tag: s + 1,
            };
            fleet.apply(&mut mem, &op).unwrap();
            oracle_apply(&mut oracle, &op);
        }
        mem.crash();
        let (mut fleet, report) = KvFleet::recover(&mut mem).unwrap();
        assert!(report.persistent_recovered);
        assert_eq!(fleet.shard_count(), 16);
        assert_eq!(fleet.dump(&mut mem).unwrap(), oracle);
    }

    #[test]
    fn open_rejects_corrupted_directories() {
        let corrupt = |patch: fn(&mut [u8; BLOCK_BYTES], u64)| {
            let spec = KvSpec::small(0);
            let mut mem =
                build_mem(PersistScheme::triad_nvm(2), CounterPersistence::Strict, 13).unwrap();
            let fleet = KvFleet::create(&mut mem, &spec).unwrap();
            let heap = fleet.heap();
            let root = heap.root(&mut mem).unwrap();
            let mut dir = mem.read(PhysAddr(root)).unwrap();
            let valid_entry = u64::from_le_bytes(dir[8..16].try_into().unwrap());
            patch(&mut dir, valid_entry);
            mem.write(PhysAddr(root), &dir).unwrap();
            mem.persist(PhysAddr(root)).unwrap();
            KvFleet::open(&mut mem).unwrap_err()
        };
        // A zeroed superblock entry.
        let err = corrupt(|dir, _| dir[16..24].copy_from_slice(&0u64.to_le_bytes()));
        assert_eq!(err, KvError::NotAStore);
        // The same shard listed twice: without validation this opens
        // one store as two aliased shards.
        let err = corrupt(|dir, first| dir[16..24].copy_from_slice(&first.to_le_bytes()));
        assert_eq!(err, KvError::NotAStore);
        // An absurd count word.
        let err = corrupt(|dir, _| dir[..8].copy_from_slice(&(MAX_SHARDS + 1).to_le_bytes()));
        assert_eq!(err, KvError::NotAStore);
        // A count promising more shards than the (unchained) block has.
        let err = corrupt(|dir, _| dir[..8].copy_from_slice(&7u64.to_le_bytes()));
        assert_eq!(err, KvError::NotAStore);
    }

    #[test]
    fn fleet_open_without_root_is_rejected() {
        let mut mem =
            build_mem(PersistScheme::triad_nvm(2), CounterPersistence::Strict, 3).unwrap();
        PersistentHeap::format(&mut mem).unwrap();
        assert!(matches!(
            KvFleet::open(&mut mem).unwrap_err(),
            KvError::NotAStore
        ));
    }

    #[test]
    fn crash_equivalence_holds_on_one_small_history() {
        // The full seeded sweep lives in tests/property_crash.rs; this
        // is the in-crate smoke version (one scheme, one tiny history).
        let spec = KvSpec::small(6);
        let boundaries = crash_equivalence_check(
            PersistScheme::triad_nvm(2),
            CounterPersistence::Strict,
            &spec,
            42,
        )
        .unwrap();
        assert!(boundaries > 0, "history must cross persist boundaries");
    }
}
