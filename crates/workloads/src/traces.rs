//! Trace-generator forms of the persistent workloads, for the timing
//! simulator.
//!
//! [`PmdkTrace`] replays the *memory-access shape* of the
//! [`crate::structures`] benchmarks (bucket/slot loads, redo-log
//! persists, header persists) without needing a live engine, and
//! [`DaxBench`] is the paper's `DAXBENCH-S-RW` strided mmap workload:
//! stride `S` bytes, `RW` reads per write, writes persisted in place
//! (DAX semantics).

use triad_sim::rng::SplitMix64;
use triad_sim::trace::{MemOp, TraceSource};
use triad_sim::PhysAddr;

/// Which PMDK microbenchmark shape to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PmdkKind {
    /// Random bucket + chain walk, then transactional insert.
    Hashtable,
    /// Hot header block + sequential slots.
    Queue,
    /// Two random records swapped per transaction.
    ArraySwap,
}

impl std::fmt::Display for PmdkKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PmdkKind::Hashtable => write!(f, "hashtable"),
            PmdkKind::Queue => write!(f, "queue"),
            PmdkKind::ArraySwap => write!(f, "arrayswap"),
        }
    }
}

/// Synthetic PMDK-microbenchmark trace (persistent region).
#[derive(Debug, Clone)]
pub struct PmdkTrace {
    name: String,
    kind: PmdkKind,
    base: PhysAddr,
    data_blocks: u64,
    rng: SplitMix64,
    /// Queued micro-ops of the operation in flight.
    pending: Vec<MemOp>,
    seq: u64,
}

/// Blocks reserved at the start of the area for header + redo log.
const META_BLOCKS: u64 = 1 + 32;

impl PmdkTrace {
    /// Creates a trace over `area_blocks` blocks starting at `base`
    /// inside the persistent region.
    ///
    /// # Panics
    ///
    /// Panics if the area is too small to hold the log and any data.
    pub fn new(kind: PmdkKind, base: PhysAddr, area_blocks: u64, seed: u64) -> Self {
        assert!(
            area_blocks > META_BLOCKS + 8,
            "area of {area_blocks} blocks too small"
        );
        PmdkTrace {
            name: kind.to_string(),
            kind,
            base,
            data_blocks: area_blocks - META_BLOCKS,
            rng: SplitMix64::new(seed ^ 0x9d1c),
            pending: Vec::new(),
            seq: 0,
        }
    }

    fn header(&self) -> PhysAddr {
        self.base
    }

    fn log_block(&self, i: u64) -> PhysAddr {
        PhysAddr(self.base.0 + 64 + (i % 32) * 64)
    }

    fn data_block(&self, i: u64) -> PhysAddr {
        PhysAddr(self.base.0 + META_BLOCKS * 64 + (i % self.data_blocks) * 64)
    }

    /// Queues the §PMDK transaction skeleton: log writes, commit,
    /// in-place writes, clear — exactly the persist sequence
    /// [`crate::heap::PersistentHeap::commit`] issues.
    fn queue_tx(&mut self, targets: &[PhysAddr]) {
        for (i, _) in targets.iter().enumerate() {
            self.pending
                .push(MemOp::persist(self.log_block(2 * i as u64), 80));
            self.pending
                .push(MemOp::persist(self.log_block(2 * i as u64 + 1), 40));
        }
        self.pending.push(MemOp::persist(self.header(), 60)); // log_len
        self.pending.push(MemOp::persist(self.header(), 30)); // commit
        for t in targets {
            self.pending.push(MemOp::persist(*t, 70));
        }
        self.pending.push(MemOp::persist(self.header(), 30)); // clear
    }

    fn start_operation(&mut self) {
        self.seq += 1;
        match self.kind {
            PmdkKind::Hashtable => {
                let bucket_idx = self.rng.gen_range(0..self.data_blocks / 4);
                let entry_idx = self.data_blocks / 4 + self.rng.gen_range(0..self.data_blocks / 2);
                let bucket = self.data_block(bucket_idx);
                let entry = self.data_block(entry_idx);
                self.pending.push(MemOp::load(bucket, 250));
                self.pending.push(MemOp::load(entry, 100));
                self.queue_tx(&[entry, bucket]);
            }
            PmdkKind::Queue => {
                let slot = self.data_block(self.seq);
                self.pending.push(MemOp::load(self.header(), 220));
                self.queue_tx(&[slot, self.header()]);
            }
            PmdkKind::ArraySwap => {
                let (ia, ib) = (self.rng.next_u64(), self.rng.next_u64());
                let a = self.data_block(ia);
                let b = self.data_block(ib);
                self.pending.push(MemOp::load(a, 200));
                self.pending.push(MemOp::load(b, 80));
                self.queue_tx(&[a, b]);
            }
        }
        // Emit in program order.
        self.pending.reverse();
    }
}

impl TraceSource for PmdkTrace {
    fn next_op(&mut self) -> Option<MemOp> {
        if self.pending.is_empty() {
            self.start_operation();
        }
        self.pending.pop()
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// The `DAXBENCH-S-RW` synthetic workload: a DAX-mmapped file accessed
/// with stride `S` bytes and `RW` reads per write; writes persist in
/// place.
#[derive(Debug, Clone)]
pub struct DaxBench {
    name: String,
    base: PhysAddr,
    footprint_bytes: u64,
    stride: u64,
    reads_per_write: u32,
    cursor: u64,
    phase: u32,
}

impl DaxBench {
    /// Creates `DAXBENCH-<stride>-<rw>` over `footprint_bytes` at
    /// `base` (inside the persistent region).
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero or the footprint smaller than one
    /// stride.
    pub fn new(base: PhysAddr, footprint_bytes: u64, stride: u64, reads_per_write: u32) -> Self {
        assert!(stride > 0, "stride must be positive");
        assert!(footprint_bytes >= stride, "footprint below one stride");
        DaxBench {
            name: format!("daxbench-{stride}-{reads_per_write}"),
            base,
            footprint_bytes,
            stride,
            reads_per_write,
            cursor: 0,
            phase: 0,
        }
    }
}

impl TraceSource for DaxBench {
    fn next_op(&mut self) -> Option<MemOp> {
        let addr = PhysAddr(self.base.0 + self.cursor);
        self.cursor = (self.cursor + self.stride) % self.footprint_bytes;
        let op = if self.phase == self.reads_per_write {
            self.phase = 0;
            MemOp::persist(addr, 40)
        } else {
            self.phase += 1;
            MemOp::load(addr, 25)
        };
        Some(op)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triad_sim::trace::OpKind;

    #[test]
    fn pmdk_trace_emits_transactional_pattern() {
        let mut t = PmdkTrace::new(PmdkKind::Hashtable, PhysAddr(0), 1024, 1);
        // One hashtable operation = 2 loads + 9 persists
        // (4 log + log_len + commit + 2 targets + clear).
        let ops: Vec<MemOp> = (0..11).map(|_| t.next_op().unwrap()).collect();
        assert_eq!(ops[0].kind, OpKind::Load);
        assert_eq!(ops[1].kind, OpKind::Load);
        assert!(ops[2..].iter().all(|o| o.kind == OpKind::PersistentStore));
        let persists = ops.iter().filter(|o| o.kind.is_persist()).count();
        assert_eq!(persists, 9);
    }

    #[test]
    fn queue_trace_hammers_header() {
        let mut t = PmdkTrace::new(PmdkKind::Queue, PhysAddr(4096), 512, 2);
        let header_hits = (0..100)
            .filter(|_| t.next_op().unwrap().addr == PhysAddr(4096))
            .count();
        assert!(header_hits >= 30, "header touched {header_hits} times");
    }

    #[test]
    fn arrayswap_trace_touches_random_pairs() {
        let mut t = PmdkTrace::new(PmdkKind::ArraySwap, PhysAddr(0), 1024, 2);
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..200 {
            distinct.insert(t.next_op().unwrap().addr.0);
        }
        assert!(distinct.len() > 20);
    }

    #[test]
    fn pmdk_addresses_stay_in_area() {
        for kind in [PmdkKind::Hashtable, PmdkKind::Queue, PmdkKind::ArraySwap] {
            let base = PhysAddr(1 << 20);
            let mut t = PmdkTrace::new(kind, base, 256, 3);
            for _ in 0..2000 {
                let op = t.next_op().unwrap();
                assert!(
                    op.addr.0 >= base.0 && op.addr.0 < base.0 + 256 * 64,
                    "{kind}"
                );
            }
        }
    }

    #[test]
    fn daxbench_stride_and_ratio() {
        let mut d = DaxBench::new(PhysAddr(0), 1 << 20, 128, 2);
        assert_eq!(d.name(), "daxbench-128-2");
        let ops: Vec<MemOp> = (0..9).map(|_| d.next_op().unwrap()).collect();
        assert_eq!(ops[1].addr.0 - ops[0].addr.0, 128);
        // Pattern: R R W repeated.
        let kinds: Vec<bool> = ops.iter().map(|o| o.kind.is_persist()).collect();
        assert_eq!(
            kinds,
            [false, false, true, false, false, true, false, false, true]
        );
    }

    #[test]
    fn daxbench_wraps_at_footprint() {
        let mut d = DaxBench::new(PhysAddr(0), 1024, 512, 1);
        let addrs: Vec<u64> = (0..5).map(|_| d.next_op().unwrap().addr.0).collect();
        assert_eq!(addrs, [0, 512, 0, 512, 0]);
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn zero_stride_rejected() {
        DaxBench::new(PhysAddr(0), 1024, 0, 1);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_pmdk_area_rejected() {
        PmdkTrace::new(PmdkKind::Queue, PhysAddr(0), 10, 1);
    }
}
