//! The workload registry: every single-program workload of Figures
//! 4/8/9 plus the Table 2 multi-programmed mixes.
//!
//! | name | composition |
//! |---|---|
//! | 12 SPEC names | one synthetic SPEC-like core (non-persistent) |
//! | `hashtable` / `queue` / `arrayswap` | one PMDK-like core (persistent) |
//! | `daxbench1..4` | `DAXBENCH-128-2`, `-1024-2`, `-256-2`, `-512-3` |
//! | `mix1` | arrayswap, queue, hashtable, daxbench-64-2 |
//! | `mix2` | mcf, queue, hashtable, daxbench-64-2 |
//! | `mix3` | mcf, lbm, hashtable, daxbench-512-2 |
//! | `mix4` | arrayswap, hashtable, hashtable, daxbench-1024-2 |

use triad_core::SecureMemory;
use triad_sim::trace::TraceSource;
use triad_sim::PhysAddr;

use crate::spec::{SpecWorkload, SPEC_NAMES};
use crate::traces::{DaxBench, PmdkKind, PmdkTrace};

/// Address-space bounds the generators may use, derived from a built
/// [`SecureMemory`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadEnv {
    /// Base of the persistent region's data area.
    pub persistent_base: PhysAddr,
    /// Usable bytes of the persistent data area.
    pub persistent_bytes: u64,
    /// Base of the non-persistent region's data area.
    pub non_persistent_base: PhysAddr,
    /// Usable bytes of the non-persistent data area.
    pub non_persistent_bytes: u64,
}

impl WorkloadEnv {
    /// Reads the bounds from an engine.
    pub fn of(mem: &SecureMemory) -> Self {
        let p = mem.persistent_region();
        let np = mem.non_persistent_region();
        WorkloadEnv {
            persistent_base: p.start(),
            persistent_bytes: p.len_bytes(),
            non_persistent_base: np.start(),
            non_persistent_bytes: np.len_bytes(),
        }
    }

    /// Splits the persistent data area into `n` equal lanes and
    /// returns lane `i` as `(base, bytes)`.
    fn p_lane(&self, i: u64, n: u64) -> (PhysAddr, u64) {
        let lane = self.persistent_bytes / n / 64 * 64;
        (PhysAddr(self.persistent_base.0 + i * lane), lane)
    }

    /// Same for the non-persistent area.
    fn np_lane(&self, i: u64, n: u64) -> (PhysAddr, u64) {
        let lane = self.non_persistent_bytes / n / 64 * 64;
        (PhysAddr(self.non_persistent_base.0 + i * lane), lane)
    }
}

fn spec_lane(
    env: &WorkloadEnv,
    name: &str,
    lane: u64,
    lanes: u64,
    seed: u64,
) -> Box<dyn TraceSource> {
    let (base, bytes) = env.np_lane(lane, lanes);
    Box::new(SpecWorkload::new(name, base, bytes / 64, seed))
}

fn pmdk_lane(
    env: &WorkloadEnv,
    kind: PmdkKind,
    lane: u64,
    lanes: u64,
    seed: u64,
) -> Box<dyn TraceSource> {
    let (base, bytes) = env.p_lane(lane, lanes);
    Box::new(PmdkTrace::new(kind, base, bytes / 64, seed))
}

fn dax_lane(
    env: &WorkloadEnv,
    stride: u64,
    rw: u32,
    lane: u64,
    lanes: u64,
) -> Box<dyn TraceSource> {
    let (base, bytes) = env.p_lane(lane, lanes);
    Box::new(DaxBench::new(base, bytes, stride, rw))
}

/// Builds the named workload's per-core traces.
///
/// # Panics
///
/// Panics on an unknown workload name (see [`all_figure_workloads`]).
pub fn build_workload(name: &str, env: &WorkloadEnv, seed: u64) -> Vec<Box<dyn TraceSource>> {
    if SPEC_NAMES.contains(&name) {
        return vec![spec_lane(env, name, 0, 1, seed)];
    }
    match name {
        "hashtable" => vec![pmdk_lane(env, PmdkKind::Hashtable, 0, 1, seed)],
        "queue" => vec![pmdk_lane(env, PmdkKind::Queue, 0, 1, seed)],
        "arrayswap" => vec![pmdk_lane(env, PmdkKind::ArraySwap, 0, 1, seed)],
        "daxbench1" => vec![dax_lane(env, 128, 2, 0, 1)],
        "daxbench2" => vec![dax_lane(env, 1024, 2, 0, 1)],
        "daxbench3" => vec![dax_lane(env, 256, 2, 0, 1)],
        "daxbench4" => vec![dax_lane(env, 512, 3, 0, 1)],
        "mix1" => vec![
            pmdk_lane(env, PmdkKind::ArraySwap, 0, 4, seed),
            pmdk_lane(env, PmdkKind::Queue, 1, 4, seed + 1),
            pmdk_lane(env, PmdkKind::Hashtable, 2, 4, seed + 2),
            dax_lane(env, 64, 2, 3, 4),
        ],
        "mix2" => vec![
            spec_lane(env, "mcf", 0, 1, seed),
            pmdk_lane(env, PmdkKind::Queue, 0, 4, seed + 1),
            pmdk_lane(env, PmdkKind::Hashtable, 1, 4, seed + 2),
            dax_lane(env, 64, 2, 2, 4),
        ],
        "mix3" => vec![
            spec_lane(env, "mcf", 0, 2, seed),
            spec_lane(env, "lbm", 1, 2, seed + 1),
            pmdk_lane(env, PmdkKind::Hashtable, 0, 2, seed + 2),
            dax_lane(env, 512, 2, 1, 2),
        ],
        "mix4" => vec![
            pmdk_lane(env, PmdkKind::ArraySwap, 0, 4, seed),
            pmdk_lane(env, PmdkKind::Hashtable, 1, 4, seed + 1),
            pmdk_lane(env, PmdkKind::Hashtable, 2, 4, seed + 2),
            dax_lane(env, 1024, 2, 3, 4),
        ],
        other => panic!("unknown workload {other:?}"),
    }
}

/// Every workload plotted in Figures 4, 8 and 9, in plotting order.
pub fn all_figure_workloads() -> Vec<&'static str> {
    let mut v: Vec<&'static str> = SPEC_NAMES.to_vec();
    v.extend([
        "hashtable",
        "queue",
        "arrayswap",
        "daxbench1",
        "daxbench2",
        "daxbench3",
        "daxbench4",
        "mix1",
        "mix2",
        "mix3",
        "mix4",
    ]);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use triad_core::{PersistScheme, SecureMemoryBuilder};

    fn env() -> WorkloadEnv {
        let m = SecureMemoryBuilder::new()
            .scheme(PersistScheme::triad_nvm(1))
            .build()
            .unwrap();
        WorkloadEnv::of(&m)
    }

    #[test]
    fn all_workloads_build_and_generate() {
        let env = env();
        for name in all_figure_workloads() {
            let mut traces = build_workload(name, &env, 42);
            assert!(!traces.is_empty(), "{name}");
            for t in &mut traces {
                for _ in 0..50 {
                    assert!(t.next_op().is_some(), "{name}");
                }
            }
        }
    }

    #[test]
    fn mixes_have_four_cores() {
        let env = env();
        for name in ["mix1", "mix2", "mix3", "mix4"] {
            assert_eq!(build_workload(name, &env, 1).len(), 4, "{name}");
        }
    }

    #[test]
    fn figure_workload_count_matches_paper() {
        // 12 SPEC + 3 PMDK + 4 DAXBENCH + 4 MIX = 23 bars.
        assert_eq!(all_figure_workloads().len(), 23);
    }

    #[test]
    #[should_panic(expected = "unknown workload")]
    fn unknown_workload_panics() {
        build_workload("nosuch", &env(), 0);
    }

    #[test]
    fn lanes_do_not_overlap() {
        let env = env();
        let (a, la) = env.p_lane(0, 4);
        let (b, _) = env.p_lane(1, 4);
        assert!(a.0 + la <= b.0);
        let (c, lc) = env.np_lane(3, 4);
        assert!(c.0 + lc <= env.non_persistent_base.0 + env.non_persistent_bytes);
    }
}
