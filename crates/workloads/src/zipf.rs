//! A Zipfian key sampler (precomputed-CDF inversion), for
//! YCSB-style skewed key-value workloads.

use triad_sim::rng::SplitMix64;

/// Samples `0..n` with probability ∝ `1 / (rank+1)^s`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for `n` items with exponent `s`
    /// (YCSB uses s ≈ 0.99).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `s` is not finite and positive.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "need at least one item");
        assert!(s.is_finite() && s > 0.0, "exponent must be positive");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 0..n {
            acc += 1.0 / ((rank + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the sampler has no items (never true — `new` rejects 0).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one item index.
    pub fn sample(&self, rng: &mut SplitMix64) -> usize {
        let u = rng.next_f64();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn histogram(n: usize, s: f64, draws: usize) -> Vec<u64> {
        let z = Zipf::new(n, s);
        let mut rng = SplitMix64::new(42);
        let mut h = vec![0u64; n];
        for _ in 0..draws {
            h[z.sample(&mut rng)] += 1;
        }
        h
    }

    #[test]
    fn rank_zero_dominates() {
        let h = histogram(100, 0.99, 50_000);
        assert!(h[0] > h[1], "{} vs {}", h[0], h[1]);
        assert!(h[0] > h[50] * 10, "head must dominate the tail");
    }

    #[test]
    fn frequencies_roughly_follow_the_law() {
        let h = histogram(10, 1.0, 200_000);
        // p(0)/p(4) should be ≈ 5 for s = 1.
        let ratio = h[0] as f64 / h[4] as f64;
        assert!((3.5..7.0).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn all_items_reachable() {
        let h = histogram(16, 0.5, 100_000);
        assert!(h.iter().all(|&c| c > 0), "{h:?}");
    }

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(7, 0.99);
        let mut rng = SplitMix64::new(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 7);
        }
        assert_eq!(z.len(), 7);
        assert!(!z.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn zero_items_rejected() {
        Zipf::new(0, 1.0);
    }

    /// Golden values pinning the exact sampling sequence: the
    /// `rand::SmallRng` → [`SplitMix64`] port must stay reproducible,
    /// and any accidental change to the CDF inversion or to the float
    /// sampling path shows up here immediately.
    #[test]
    fn golden_sample_sequence() {
        let z = Zipf::new(100, 0.99);
        let mut rng = SplitMix64::new(7);
        let first: Vec<usize> = (0..16).map(|_| z.sample(&mut rng)).collect();
        assert_eq!(first, GOLDEN_SEED7_N100_S099);
    }

    /// First 16 draws of `Zipf::new(100, 0.99)` under seed 7.
    const GOLDEN_SEED7_N100_S099: [usize; 16] =
        [3, 0, 60, 11, 5, 1, 6, 2, 0, 4, 0, 81, 65, 51, 49, 9];

    /// The empirical head mass must match the analytic Zipf mass — the
    /// distribution itself, not just the sequence, survives the port.
    #[test]
    fn head_mass_matches_analytic_value() {
        let n = 100;
        let s = 0.99;
        let h = histogram(n, s, 200_000);
        let harmonic: f64 = (1..=n).map(|r| 1.0 / (r as f64).powf(s)).sum();
        let analytic_head: f64 = (1..=10).map(|r| 1.0 / (r as f64).powf(s) / harmonic).sum();
        let empirical_head = h[..10].iter().sum::<u64>() as f64 / 200_000.0;
        assert!(
            (empirical_head - analytic_head).abs() < 0.01,
            "head mass {empirical_head} vs analytic {analytic_head}"
        );
    }
}
