//! Synthetic SPEC CPU2006-like workload generators.
//!
//! We cannot run SPEC binaries inside a Rust trace simulator, so each
//! benchmark is modelled by the memory-behaviour parameters that the
//! paper's figures are sensitive to: footprint, read/write mix, spatial
//! locality, hot-set skew and memory-operation density. Parameter
//! values are chosen from the well-known characterisation literature
//! (e.g. `mcf` = huge pointer-chasing footprint, `lbm` = write-heavy
//! streaming, `libquantum` = sequential streaming over a large vector).
//! All SPEC workloads allocate in the **non-persistent** region and
//! never issue persists.

use triad_sim::rng::SplitMix64;
use triad_sim::trace::{MemOp, OpKind, TraceSource};
use triad_sim::PhysAddr;

/// Memory-behaviour parameters of one synthetic benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpecProfile {
    /// Touched memory, in 64 B blocks.
    pub footprint_blocks: u64,
    /// Fraction of memory operations that are stores.
    pub write_ratio: f64,
    /// Probability the next access continues a sequential run.
    pub sequential: f64,
    /// Fraction of random accesses that hit the hot set.
    pub hot_prob: f64,
    /// Hot-set size as a fraction of the footprint.
    pub hot_fraction: f64,
    /// Mean non-memory instructions between memory operations.
    pub mean_gap: u32,
}

/// The 12 SPEC2006 benchmarks used in the paper's evaluation.
pub const SPEC_NAMES: [&str; 12] = [
    "mcf",
    "lbm",
    "libquantum",
    "milc",
    "soplex",
    "gcc",
    "bzip2",
    "gobmk",
    "hmmer",
    "sjeng",
    "namd",
    "astar",
];

/// Returns the profile for one of [`SPEC_NAMES`].
///
/// # Panics
///
/// Panics on an unknown name.
pub fn profile(name: &str) -> SpecProfile {
    // footprint, write, seq, hot_p, hot_f, gap
    let p = |f: u64, w: f64, s: f64, hp: f64, hf: f64, g: u32| SpecProfile {
        footprint_blocks: f,
        write_ratio: w,
        sequential: s,
        hot_prob: hp,
        hot_fraction: hf,
        mean_gap: g,
    };
    match name {
        // Pointer-chasing over a huge working set; read-dominated,
        // cache-hostile.
        "mcf" => p(1 << 20, 0.25, 0.05, 0.3, 0.05, 4),
        // Streaming stencil, very write-intensive, perfectly regular.
        "lbm" => p(1 << 19, 0.55, 0.95, 0.1, 0.02, 6),
        // Sequential sweeps over a large quantum-register vector;
        // extremely write-heavy and streaming.
        "libquantum" => p(1 << 18, 0.50, 0.98, 0.05, 0.01, 5),
        // Lattice QCD: large arrays, moderate writes, decent locality.
        "milc" => p(1 << 19, 0.35, 0.70, 0.3, 0.1, 8),
        // Sparse LP solver: irregular reads, some writes.
        "soplex" => p(1 << 18, 0.20, 0.40, 0.5, 0.1, 10),
        // Compiler: modest footprint, good locality, light writes.
        "gcc" => p(1 << 16, 0.30, 0.60, 0.7, 0.2, 12),
        // Compression: small hot window, balanced mix.
        "bzip2" => p(1 << 15, 0.35, 0.75, 0.8, 0.25, 10),
        // Game tree search: small footprint, read-mostly, cache-happy.
        "gobmk" => p(1 << 14, 0.15, 0.50, 0.85, 0.3, 14),
        // HMM search: streaming reads over profiles, few writes.
        "hmmer" => p(1 << 15, 0.10, 0.90, 0.6, 0.2, 9),
        // Chess: tiny working set, read-mostly.
        "sjeng" => p(1 << 13, 0.15, 0.40, 0.9, 0.4, 15),
        // Molecular dynamics: regular reads, few writes, compute-bound.
        "namd" => p(1 << 16, 0.12, 0.85, 0.5, 0.2, 20),
        // Path-finding: irregular, moderate writes.
        "astar" => p(1 << 16, 0.30, 0.35, 0.6, 0.15, 10),
        other => panic!("unknown SPEC benchmark {other:?}"),
    }
}

/// A running instance of a synthetic SPEC-like benchmark.
#[derive(Debug, Clone)]
pub struct SpecWorkload {
    name: String,
    profile: SpecProfile,
    base: PhysAddr,
    rng: SplitMix64,
    cursor: u64,
}

impl SpecWorkload {
    /// Creates the named benchmark, laying its footprint from `base`
    /// (normally the non-persistent region's data base).
    ///
    /// `limit_blocks` clamps the footprint (for small test memories).
    ///
    /// # Panics
    ///
    /// Panics on an unknown benchmark name.
    pub fn new(name: &str, base: PhysAddr, limit_blocks: u64, seed: u64) -> Self {
        let mut profile = profile(name);
        profile.footprint_blocks = profile.footprint_blocks.min(limit_blocks).max(64);
        SpecWorkload {
            name: name.to_string(),
            profile,
            base,
            rng: SplitMix64::new(seed ^ 0x5bec),
            cursor: 0,
        }
    }

    /// The effective profile in use (after clamping).
    pub fn profile(&self) -> SpecProfile {
        self.profile
    }
}

impl TraceSource for SpecWorkload {
    fn next_op(&mut self) -> Option<MemOp> {
        let p = self.profile;
        let block = if self.rng.gen_bool(p.sequential) {
            self.cursor = (self.cursor + 1) % p.footprint_blocks;
            self.cursor
        } else if self.rng.gen_bool(p.hot_prob) {
            let hot = ((p.footprint_blocks as f64 * p.hot_fraction) as u64).max(1);
            self.cursor = self.rng.gen_range(0..hot);
            self.cursor
        } else {
            self.cursor = self.rng.gen_range(0..p.footprint_blocks);
            self.cursor
        };
        let kind = if self.rng.gen_bool(p.write_ratio) {
            OpKind::Store
        } else {
            OpKind::Load
        };
        let gap = self.rng.gen_range_inclusive(0..=(p.mean_gap * 2) as u64) as u32;
        Some(MemOp {
            addr: PhysAddr(self.base.0 + block * 64),
            kind,
            gap,
        })
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_resolve() {
        for name in SPEC_NAMES {
            let p = profile(name);
            assert!(p.footprint_blocks > 0);
            assert!((0.0..=1.0).contains(&p.write_ratio));
        }
    }

    #[test]
    #[should_panic(expected = "unknown SPEC benchmark")]
    fn unknown_name_panics() {
        profile("perlbench");
    }

    #[test]
    fn workload_is_deterministic_per_seed() {
        let mut a = SpecWorkload::new("mcf", PhysAddr(0), 1 << 14, 7);
        let mut b = SpecWorkload::new("mcf", PhysAddr(0), 1 << 14, 7);
        for _ in 0..1000 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }

    #[test]
    fn addresses_stay_inside_footprint() {
        let base = PhysAddr(1 << 20);
        let mut w = SpecWorkload::new("lbm", base, 1 << 12, 1);
        let span = w.profile().footprint_blocks * 64;
        for _ in 0..10_000 {
            let op = w.next_op().unwrap();
            assert!(op.addr.0 >= base.0 && op.addr.0 < base.0 + span);
            assert!(!op.kind.is_persist(), "SPEC never persists");
        }
    }

    #[test]
    fn write_ratio_is_respected_statistically() {
        let mut w = SpecWorkload::new("libquantum", PhysAddr(0), 1 << 14, 3);
        let writes = (0..20_000)
            .filter(|_| w.next_op().unwrap().kind.is_write())
            .count();
        let ratio = writes as f64 / 20_000.0;
        assert!((ratio - 0.50).abs() < 0.05, "ratio = {ratio}");
    }

    #[test]
    fn footprint_clamps_to_limit() {
        let w = SpecWorkload::new("mcf", PhysAddr(0), 128, 1);
        assert_eq!(w.profile().footprint_blocks, 128);
    }

    #[test]
    fn streaming_workloads_are_mostly_sequential() {
        let mut w = SpecWorkload::new("libquantum", PhysAddr(0), 1 << 14, 9);
        let mut prev = w.next_op().unwrap().addr.0;
        let mut seq = 0;
        for _ in 0..10_000 {
            let a = w.next_op().unwrap().addr.0;
            if a == prev + 64 {
                seq += 1;
            }
            prev = a;
        }
        assert!(seq > 9_000, "sequential count = {seq}");
    }
}

#[cfg(test)]
mod profile_statistics {
    use super::*;

    /// Every profile's generated stream must match its declared write
    /// ratio and rough sequentiality — the properties the figures
    /// depend on (DESIGN.md §3 substitution argument).
    #[test]
    fn every_profile_matches_its_declared_statistics() {
        const OPS: usize = 30_000;
        for name in SPEC_NAMES {
            let mut w = SpecWorkload::new(name, PhysAddr(0), 1 << 16, 11);
            let declared = w.profile();
            let mut writes = 0usize;
            let mut seq = 0usize;
            let mut prev = u64::MAX;
            for _ in 0..OPS {
                let op = w.next_op().expect("infinite generator");
                if op.kind.is_write() {
                    writes += 1;
                }
                if prev != u64::MAX && op.addr.0 == prev + 64 {
                    seq += 1;
                }
                prev = op.addr.0;
            }
            let write_ratio = writes as f64 / OPS as f64;
            assert!(
                (write_ratio - declared.write_ratio).abs() < 0.03,
                "{name}: write ratio {write_ratio} vs declared {}",
                declared.write_ratio
            );
            let seq_ratio = seq as f64 / OPS as f64;
            assert!(
                seq_ratio >= declared.sequential * 0.8,
                "{name}: sequential {seq_ratio} vs declared {}",
                declared.sequential
            );
        }
    }

    /// Footprint ordering the literature reports: mcf's working set
    /// dwarfs sjeng's.
    #[test]
    fn footprints_are_ordered_sanely() {
        assert!(profile("mcf").footprint_blocks > profile("sjeng").footprint_blocks * 50);
        assert!(profile("lbm").write_ratio > profile("hmmer").write_ratio);
    }
}
