//! A minimal wall-clock micro-benchmark harness (Criterion
//! replacement), used by the `benches/*.rs` `harness = false` targets.
//!
//! Measurement model: every sample times a *batch* of iterations on the
//! monotonic clock ([`std::time::Instant`]) and divides by the batch
//! length, so per-call overhead of the clock amortises away even for
//! nanosecond-scale operations. The batch size is auto-calibrated until
//! one batch takes at least [`Sampler::batch_target`]. After a warmup
//! batch, the
//! harness collects [`Sampler::samples`] samples and reports the
//! **median** and **min** per-iteration time — the median is the robust
//! central estimate, the min approximates the noise floor.
//!
//! Environment knobs:
//!
//! * `TRIAD_BENCH_SAMPLES` — sample count per benchmark (default 30).
//! * `TRIAD_BENCH_QUICK` — when set, 5 samples and a 10× smaller batch
//!   target, for CI smoke runs.

use std::time::{Duration, Instant};

/// Target wall time of one calibrated measurement batch.
const TARGET_BATCH: Duration = Duration::from_millis(2);

/// Per-benchmark measurement configuration.
#[derive(Debug, Clone, Copy)]
pub struct Sampler {
    /// Number of timed samples collected after warmup.
    pub samples: usize,
    /// Wall-time target for one batch of iterations.
    pub batch_target: Duration,
}

impl Default for Sampler {
    fn default() -> Self {
        let quick = std::env::var_os("TRIAD_BENCH_QUICK").is_some();
        let samples = std::env::var("TRIAD_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(if quick { 5 } else { 30 });
        Sampler {
            samples: samples.max(1),
            batch_target: if quick {
                TARGET_BATCH / 10
            } else {
                TARGET_BATCH
            },
        }
    }
}

/// One benchmark's aggregated result, in per-iteration seconds.
#[derive(Debug, Clone, Copy)]
pub struct Report {
    /// Median per-iteration time across samples.
    pub median: f64,
    /// Minimum per-iteration time across samples.
    pub min: f64,
    /// Iterations per measurement batch after calibration.
    pub batch: u64,
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

fn print_report(name: &str, r: &Report) {
    println!(
        "{name:<40} median {:>12}   min {:>12}   ({} iters/sample)",
        format_time(r.median),
        format_time(r.min),
        r.batch
    );
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = samples.len();
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2.0
    }
}

/// Times `f` and prints a median/min report under `name`.
///
/// The closure's return value is passed through [`std::hint::black_box`]
/// so the computation cannot be optimised away.
pub fn bench<R, F: FnMut() -> R>(name: &str, mut f: F) -> Report {
    let cfg = Sampler::default();
    // Calibrate: grow the batch until it exceeds the target.
    let mut batch = 1u64;
    loop {
        let t0 = Instant::now();
        for _ in 0..batch {
            std::hint::black_box(f());
        }
        let took = t0.elapsed();
        if took >= cfg.batch_target || batch >= 1 << 30 {
            break;
        }
        // Aim straight for the target, with headroom.
        let scale = cfg.batch_target.as_secs_f64() / took.as_secs_f64().max(1e-9);
        batch = (batch as f64 * scale.clamp(2.0, 1000.0)).ceil() as u64;
    }
    let mut samples = Vec::with_capacity(cfg.samples);
    for _ in 0..cfg.samples {
        let t0 = Instant::now();
        for _ in 0..batch {
            std::hint::black_box(f());
        }
        samples.push(t0.elapsed().as_secs_f64() / batch as f64);
    }
    let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
    let report = Report {
        median: median(&mut samples),
        min,
        batch,
    };
    print_report(name, &report);
    report
}

/// Times `f` on inputs produced by `setup`, excluding setup time —
/// for benchmarks that consume their input (e.g. crash recovery).
///
/// Each sample times a single call, so this suits operations in the
/// microsecond range and above.
pub fn bench_batched<S, R, G: FnMut() -> S, F: FnMut(S) -> R>(
    name: &str,
    mut setup: G,
    mut f: F,
) -> Report {
    let cfg = Sampler::default();
    // Warmup (also primes allocators and code paths).
    std::hint::black_box(f(setup()));
    let mut samples = Vec::with_capacity(cfg.samples);
    for _ in 0..cfg.samples {
        let input = setup();
        let t0 = Instant::now();
        std::hint::black_box(f(input));
        samples.push(t0.elapsed().as_secs_f64());
    }
    let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
    let report = Report {
        median: median(&mut samples),
        min,
        batch: 1,
    };
    print_report(name, &report);
    report
}

/// Prints the standard header for a bench binary.
pub fn header(title: &str) {
    println!("== {title} ==");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_odd_and_even() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn format_picks_sane_units() {
        assert!(format_time(2.0).ends_with(" s"));
        assert!(format_time(2e-3).ends_with(" ms"));
        assert!(format_time(2e-6).ends_with(" µs"));
        assert!(format_time(2e-9).ends_with(" ns"));
    }

    #[test]
    fn bench_reports_positive_times() {
        std::env::set_var("TRIAD_BENCH_QUICK", "1");
        let r = bench("spin", || std::hint::black_box(17u64).wrapping_mul(3));
        assert!(r.median > 0.0);
        assert!(r.min <= r.median);
        assert!(r.batch >= 1);
    }

    #[test]
    fn bench_batched_excludes_setup() {
        std::env::set_var("TRIAD_BENCH_QUICK", "1");
        let r = bench_batched("sum", || vec![1u64; 1024], |v| v.iter().sum::<u64>());
        assert!(r.median > 0.0);
    }
}
