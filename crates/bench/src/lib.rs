//! Shared harness for regenerating the paper's figures.
//!
//! Each `fig*` binary sweeps the workloads of §4 over the persistence
//! schemes of §5 on the simulated system and prints the same rows the
//! paper plots. Absolute numbers differ from the paper (different
//! substrate), but the orderings and rough factors are the point —
//! see EXPERIMENTS.md for the side-by-side.

use triad_core::{PersistScheme, SecureMemoryBuilder, System};
use triad_sim::config::SystemConfig;
use triad_workloads::{build_workload, WorkloadEnv};

pub mod timing;

/// Result of one (workload, scheme) cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunOutcome {
    /// Instructions per simulated second.
    pub throughput: f64,
    /// Total NVM writes (Figure 9's metric).
    pub nvm_writes: u64,
    /// Memory ops executed across all cores.
    pub ops: u64,
}

/// The evaluation configuration: Table 1 caches and timing over a
/// 1 GiB memory (so per-figure sweeps finish in minutes; ratios match
/// the 16 GiB original because metadata scales linearly).
pub fn harness_config() -> SystemConfig {
    let mut cfg = SystemConfig::isca19();
    cfg.mem.capacity_bytes = 1 << 30;
    cfg
}

/// Number of memory operations per core in figure sweeps (override
/// with the `TRIAD_OPS` environment variable).
pub fn default_ops() -> u64 {
    std::env::var("TRIAD_OPS")
        .ok()
        .and_then(|v| v.parse().ok())
        // Must exceed the 8 MB L3's 131072 lines, or write-back
        // traffic never reaches the NVM and every scheme looks equal.
        .unwrap_or(400_000)
}

/// Runs one workload under one scheme and returns the outcome.
///
/// # Panics
///
/// Panics if the engine rejects the configuration or an integrity
/// violation occurs (neither should happen in clean runs).
pub fn run_one(workload: &str, scheme: PersistScheme, ops_per_core: u64, seed: u64) -> RunOutcome {
    let mem = SecureMemoryBuilder::new()
        .config(harness_config())
        .scheme(scheme)
        .key_seed(seed)
        .build()
        .expect("harness config is valid");
    let env = WorkloadEnv::of(&mem);
    let traces = build_workload(workload, &env, seed);
    let mut system = System::new(mem, traces);
    let result = system.run(ops_per_core).expect("clean run");
    RunOutcome {
        throughput: result.throughput(),
        nvm_writes: result.nvm_writes,
        ops: result.cores.iter().map(|c| c.ops).sum(),
    }
}

/// Geometric mean of a slice (ignores non-positive entries).
pub fn geomean(values: &[f64]) -> f64 {
    let logs: Vec<f64> = values
        .iter()
        .filter(|v| **v > 0.0)
        .map(|v| v.ln())
        .collect();
    if logs.is_empty() {
        return 0.0;
    }
    (logs.iter().sum::<f64>() / logs.len() as f64).exp()
}

/// Prints a header row for a figure table.
pub fn print_header(first: &str, columns: &[String]) {
    print!("{first:<12}");
    for c in columns {
        print!(" {c:>12}");
    }
    println!();
    println!("{}", "-".repeat(12 + 13 * columns.len()));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
        assert_eq!(geomean(&[0.0, -1.0]), 0.0);
    }

    #[test]
    fn harness_config_validates() {
        harness_config().validate().unwrap();
    }

    #[test]
    fn smoke_run_small() {
        let out = run_one("sjeng", PersistScheme::triad_nvm(1), 200, 1);
        assert_eq!(out.ops, 200);
        assert!(out.throughput > 0.0);
    }
}
