//! `bench-delta`: compares two `triad-report` JSON files row by row
//! and prints the p95-latency and `persist_metadata_writes`-per-op
//! deltas for every (workload, scheme) cell present in both.
//!
//! With `--check` the exit code becomes a CI gate: it fails when the
//! schema versions differ, when no rows match, or when any matched row
//! *regresses* — a higher p95 bucket, a >1% higher metadata-write rate
//! per op, or a cell that recovered in the baseline but no longer
//! does. Rows only in the baseline are reported but not fatal (the
//! smoke matrix is a subset of the full one).
//!
//! Usage:
//!   cargo run -p triad-bench --release --bin bench-delta -- \
//!       BENCH_pr4.json BENCH_pr6.json [--check]
//!
//! The parser is hand-rolled for the report's own fixed-key-order
//! output (the workspace builds with zero external crates); it is not
//! a general JSON reader.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// The per-row fields the delta cares about.
#[derive(Debug, Clone)]
struct Row {
    ops: u64,
    p95: u64,
    mean: f64,
    persist_metadata_writes: u64,
    recovered: bool,
}

impl Row {
    fn pmw_per_op(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.persist_metadata_writes as f64 / self.ops as f64
        }
    }
}

/// Extracts the string / number right after `"key": ` in `cell`.
fn field<'a>(cell: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": ");
    let start = cell.find(&pat)? + pat.len();
    let rest = &cell[start..];
    let end = rest.find([',', '}', '\n']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

fn str_field(cell: &str, key: &str) -> Option<String> {
    Some(field(cell, key)?.trim_matches('"').to_string())
}

fn u64_field(cell: &str, key: &str) -> Option<u64> {
    field(cell, key)?.parse().ok()
}

fn f64_field(cell: &str, key: &str) -> Option<f64> {
    field(cell, key)?.parse().ok()
}

/// Rows keyed by (workload, scheme).
type Rows = BTreeMap<(String, String), Row>;

/// Parses a report file into (schema version, rows by workload/scheme).
fn parse(path: &str) -> Result<(u64, Rows), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let version = u64_field(&text, "version").ok_or_else(|| format!("{path}: no version"))?;
    let mut rows = BTreeMap::new();
    // Each cell is one `{ "workload": ... }` object on its own line.
    for line in text.lines() {
        let cell = line.trim().trim_end_matches(',');
        if !cell.starts_with("{ \"workload\"") {
            continue;
        }
        let workload =
            str_field(cell, "workload").ok_or_else(|| format!("{path}: cell without workload"))?;
        let scheme =
            str_field(cell, "scheme").ok_or_else(|| format!("{path}: cell without scheme"))?;
        let row = Row {
            ops: u64_field(cell, "ops").ok_or_else(|| format!("{path}: cell without ops"))?,
            p95: u64_field(cell, "p95").ok_or_else(|| format!("{path}: cell without p95"))?,
            mean: f64_field(cell, "mean").unwrap_or(0.0),
            persist_metadata_writes: u64_field(cell, "persist_metadata_writes")
                .ok_or_else(|| format!("{path}: cell without persist_metadata_writes"))?,
            recovered: field(cell, "recovered") == Some("true"),
        };
        rows.insert((workload, scheme), row);
    }
    Ok((version, rows))
}

fn main() -> ExitCode {
    let mut check = false;
    let mut paths = Vec::new();
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--check" => check = true,
            other => paths.push(other.to_string()),
        }
    }
    let [baseline_path, new_path] = paths.as_slice() else {
        eprintln!("usage: bench-delta BASELINE.json NEW.json [--check]");
        return ExitCode::from(2);
    };

    let (bv, baseline) = match parse(baseline_path) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("bench-delta: {e}");
            return ExitCode::from(2);
        }
    };
    let (nv, new) = match parse(new_path) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("bench-delta: {e}");
            return ExitCode::from(2);
        }
    };

    let mut failures: Vec<String> = Vec::new();
    if bv != nv {
        failures.push(format!("schema version changed: {bv} -> {nv}"));
    }

    println!(
        "{:<12} {:>12} {:>14} {:>18} {:>12}",
        "workload", "scheme", "p95 ns", "meta writes/op", "mean ns"
    );
    println!("{}", "-".repeat(72));
    let mut matched = 0usize;
    for ((w, s), b) in &baseline {
        let Some(n) = new.get(&(w.clone(), s.clone())) else {
            println!("{w:<12} {s:>12}   (not in {new_path})");
            continue;
        };
        matched += 1;
        println!(
            "{:<12} {:>12} {:>5} -> {:<5} {:>7.3} -> {:<7.3} {:>5.0} -> {:<5.0}",
            w,
            s,
            b.p95,
            n.p95,
            b.pmw_per_op(),
            n.pmw_per_op(),
            b.mean,
            n.mean,
        );
        if n.p95 > b.p95 {
            failures.push(format!("{w}/{s}: p95 regressed {} -> {}", b.p95, n.p95));
        }
        if n.pmw_per_op() > b.pmw_per_op() * 1.01 {
            failures.push(format!(
                "{w}/{s}: persist_metadata_writes/op regressed {:.3} -> {:.3}",
                b.pmw_per_op(),
                n.pmw_per_op()
            ));
        }
        if b.recovered && !n.recovered {
            failures.push(format!("{w}/{s}: recovery regressed"));
        }
    }
    if matched == 0 {
        failures.push("no matching rows between the two reports".to_string());
    }
    println!("\n{matched} matched rows, {} failures", failures.len());
    for f in &failures {
        eprintln!("bench-delta: FAIL: {f}");
    }
    if check && !failures.is_empty() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
