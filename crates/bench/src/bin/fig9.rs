//! Figure 9: number of NVM writes under each persistence scheme.
//!
//! Paper headline: writes grow with the persist level; for most
//! workloads TriadNVM stays close to the no-persistence write count,
//! while Strict multiplies writes.
//!
//! Usage: `cargo run -p triad-bench --release --bin fig9`

use triad_bench::{default_ops, harness_config, print_header, run_one};
use triad_core::{PersistScheme, SecureMemoryBuilder, System};
use triad_workloads::{all_figure_workloads, build_workload, WorkloadEnv};

fn main() {
    let ops = default_ops();
    let schemes = PersistScheme::evaluated();
    println!("Figure 9 — NVM writes per scheme ({ops} memory ops per core)\n");
    let cols: Vec<String> = schemes.iter().map(|s| s.to_string()).collect();
    print_header("workload", &cols);
    let mut totals = vec![0u64; schemes.len()];
    for w in all_figure_workloads() {
        print!("{w:<12}");
        for (i, s) in schemes.iter().enumerate() {
            let writes = run_one(w, *s, ops, 42).nvm_writes;
            totals[i] += writes;
            print!(" {writes:>12}");
        }
        println!();
    }
    println!();
    print!("{:<12}", "total");
    for t in &totals {
        print!(" {t:>12}");
    }
    println!();
    println!(
        "\npaper: #writes increases with persistence level; TriadNVM ≈ baseline for most workloads"
    );

    // Endurance view (the paper's write-reduction motivation): wear on
    // the hottest block for one persist-heavy workload per scheme.
    println!("\nwear on the hottest NVM block (hashtable, {ops} ops):");
    println!(
        "{:<12} {:>12} {:>14} {:>12}",
        "scheme", "max writes", "blocks", "imbalance"
    );
    for s in &schemes {
        let mem = SecureMemoryBuilder::new()
            .config(harness_config())
            .scheme(*s)
            .build()
            .expect("valid config");
        let env = WorkloadEnv::of(&mem);
        let mut sys = System::new(mem, build_workload("hashtable", &env, 42));
        sys.run(ops).expect("clean run");
        let binding = sys.into_secure();
        let w = binding.wear();
        println!(
            "{:<12} {:>12} {:>14} {:>12.1}",
            s.to_string(),
            w.max_writes(),
            w.blocks_touched(),
            w.imbalance()
        );
    }
}
