//! Ablations of the design choices discussed in the paper but not
//! swept in its figures:
//!
//! 1. **Counter organisation** (§2.1.2): split vs monolithic counters.
//! 2. **Persistent : non-persistent ratio** (§3.3.1): the legal n/8
//!    splits.
//! 3. **WPQ depth** (§3.2's atomicity substrate).
//! 4. **BMT arity** (tree height vs node fan-out).
//! 5. **Key policy** (§3.3.2): session counter vs dual keys.
//!
//! Usage: `cargo run -p triad-bench --release --bin ablation`

use triad_bench::{default_ops, harness_config};
use triad_core::{CounterPersistence, KeyPolicy, PersistScheme, SecureMemoryBuilder, System};
use triad_sim::config::{CounterMode, SystemConfig};
use triad_workloads::{build_workload, WorkloadEnv};

fn run(
    cfg: SystemConfig,
    scheme: PersistScheme,
    policy: KeyPolicy,
    workload: &str,
    ops: u64,
) -> (f64, u64) {
    let mem = SecureMemoryBuilder::new()
        .config(cfg)
        .scheme(scheme)
        .key_policy(policy)
        .build()
        .expect("valid config");
    let env = WorkloadEnv::of(&mem);
    let traces = build_workload(workload, &env, 42);
    let mut sys = System::new(mem, traces);
    let r = sys.run(ops).expect("clean run");
    (r.throughput(), r.nvm_writes)
}

fn main() {
    let ops = default_ops();
    let scheme = PersistScheme::triad_nvm(2);

    println!("Ablation 1 — counter organisation (TriadNVM-2, {ops} ops)\n");
    println!(
        "{:<12} {:>12} {:>14} {:>12} {:>14}",
        "workload", "split", "split writes", "monolithic", "mono writes"
    );
    for w in ["hashtable", "daxbench1", "mcf"] {
        let (ts, ws) = run(harness_config(), scheme, KeyPolicy::SessionCounter, w, ops);
        let mut mono = harness_config();
        mono.security.counter_mode = CounterMode::Monolithic;
        let (tm, wm) = run(mono, scheme, KeyPolicy::SessionCounter, w, ops);
        println!("{w:<12} {ts:>12.3e} {ws:>14} {tm:>12.3e} {wm:>14}");
    }
    println!("(expected: monolithic has 8× counter footprint → worse hit rates, more writes)\n");

    println!("Ablation 2 — persistent fraction (mix1, TriadNVM-2)\n");
    println!("{:<10} {:>14} {:>14}", "ratio", "throughput", "nvm writes");
    for eighths in [1u8, 2, 4, 6, 7] {
        let mut cfg = harness_config();
        cfg.persistent_eighths = eighths;
        let (t, w) = run(cfg, scheme, KeyPolicy::SessionCounter, "mix1", ops);
        println!("{:<10} {t:>14.3e} {w:>14}", format!("{eighths}:8"));
    }
    println!();

    println!("Ablation 3 — WPQ depth (hashtable, TriadNVM-1)\n");
    println!(
        "{:<10} {:>14} {:>14}",
        "entries", "throughput", "nvm writes"
    );
    for entries in [8usize, 16, 32, 64, 128] {
        let mut cfg = harness_config();
        cfg.mem.wpq_entries = entries;
        let (t, w) = run(
            cfg,
            PersistScheme::triad_nvm(1),
            KeyPolicy::SessionCounter,
            "hashtable",
            ops,
        );
        println!("{entries:<10} {t:>14.3e} {w:>14}");
    }
    println!("(deeper WPQ → more coalescing of hot metadata blocks → fewer writes)\n");

    println!("Ablation 4 — BMT arity (hashtable, Strict: full-path persistence)\n");
    println!("{:<10} {:>14} {:>14}", "arity", "throughput", "nvm writes");
    for arity in [2usize, 4, 8] {
        let mut cfg = harness_config();
        cfg.security.bmt_arity = arity;
        let (t, w) = run(
            cfg,
            PersistScheme::Strict,
            KeyPolicy::SessionCounter,
            "hashtable",
            ops,
        );
        println!("{arity:<10} {t:>14.3e} {w:>14}");
    }
    println!("(lower arity → taller tree → more levels persisted under Strict)\n");

    println!("Ablation 5 — Osiris counter relaxation (hashtable, TriadNVM-2)\n");
    println!(
        "{:<14} {:>14} {:>14}",
        "counters", "throughput", "nvm writes"
    );
    for (label, policy) in [
        ("strict", CounterPersistence::Strict),
        ("osiris-4", CounterPersistence::Osiris { interval: 4 }),
        ("osiris-16", CounterPersistence::Osiris { interval: 16 }),
    ] {
        let mem = SecureMemoryBuilder::new()
            .config(harness_config())
            .scheme(scheme)
            .counter_persistence(policy)
            .build()
            .expect("valid config");
        let env = WorkloadEnv::of(&mem);
        let traces = build_workload("hashtable", &env, 42);
        let mut sys = System::new(mem, traces);
        let r = sys.run(ops).expect("clean run");
        println!("{label:<14} {:>14.3e} {:>14}", r.throughput(), r.nvm_writes);
    }
    println!("(longer intervals skip more counter persists; recovery searches MACs instead)\n");

    println!("Ablation 6 — key policy (daxbench1, TriadNVM-2)\n");
    println!("{:<18} {:>14}", "policy", "throughput");
    for policy in [KeyPolicy::SessionCounter, KeyPolicy::DualKey] {
        let (t, _) = run(harness_config(), scheme, policy, "daxbench1", ops);
        println!("{:<18} {t:>14.3e}", policy.to_string());
    }
    println!("(both avoid cross-boot pad reuse; runtime cost is identical by design)\n");

    println!("Ablation 7 — metadata cache size (mcf + hashtable, TriadNVM-2)\n");
    println!("{:<10} {:>14} {:>14}", "KiB each", "mcf", "hashtable");
    for kib in [32usize, 64, 128, 256] {
        let mut cfg = harness_config();
        cfg.security.counter_cache = triad_sim::config::CacheConfig::new(kib << 10, 8, 3);
        cfg.security.mt_cache = triad_sim::config::CacheConfig::new(kib << 10, 8, 3);
        let (tm, _) = run(cfg, scheme, KeyPolicy::SessionCounter, "mcf", ops);
        let (th, _) = run(cfg, scheme, KeyPolicy::SessionCounter, "hashtable", ops);
        println!("{kib:<10} {tm:>14.3e} {th:>14.3e}");
    }
    println!(
        "(Table 1 uses 128 KiB; larger metadata caches absorb more of the verification traffic)"
    );
}
