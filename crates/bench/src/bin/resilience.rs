//! §5.2 resilience (in-text claims, table-ised): how precisely each
//! scheme can pinpoint uncorrectable metadata corruption at recovery,
//! and how much data it must declare unverifiable.
//!
//! Paper claims: TriadNVM-2 isolates a corrupt node to 32 KB; with
//! only counters persisted, a corrupt counter costs up to 1/8 of the
//! region (one root slot's subtree).
//!
//! Usage: `cargo run -p triad-bench --release --bin resilience`

use triad_core::{PersistScheme, SecureMemoryBuilder};
use triad_sim::config::SystemConfig;
use triad_sim::PhysAddr;

fn main() {
    let mut cfg = SystemConfig::isca19();
    cfg.mem.capacity_bytes = 256 << 20;
    println!("Resilience — unverifiable data after one corrupt metadata block\n");
    println!(
        "{:<12} {:>18} {:>18} {:>14}",
        "scheme", "corrupt block", "unverifiable", "recovered?"
    );
    println!("{}", "-".repeat(66));

    for (scheme, what) in [
        (PersistScheme::triad_nvm(1), "counter"),
        (PersistScheme::triad_nvm(2), "counter"),
        (PersistScheme::triad_nvm(2), "L1 node"),
        (PersistScheme::triad_nvm(2), "counter+L1"),
        (PersistScheme::triad_nvm(3), "counter+L1"),
    ] {
        let mut mem = SecureMemoryBuilder::new()
            .config(cfg)
            .scheme(scheme)
            .build()
            .expect("valid config");
        let p = mem.persistent_region().start();
        // Persist a few pages so there is real state to protect.
        for i in 0..64u64 {
            let a = PhysAddr(p.0 + i * 4096);
            mem.write(a, &i.to_le_bytes()).expect("write");
            mem.persist(a).expect("persist");
        }
        mem.crash();
        let layout = mem.memory_map().persistent().clone();
        let mut mask = [0u8; 64];
        mask[20] = 0xFF;
        if what.contains("counter") {
            mem.nvm_image_mut()
                .tamper(layout.counter_block_of(p.block()), mask);
        }
        if what.contains("L1") {
            mem.nvm_image_mut()
                .tamper(layout.bmt_node_addr(1, 0).expect("L1 exists"), mask);
        }
        let report = mem.recover().expect("recovery runs");
        let unverifiable: u64 = report.unverifiable.iter().map(|r| r.bytes).sum();
        println!(
            "{:<12} {:>18} {:>15} KiB {:>14}",
            scheme.to_string(),
            what,
            unverifiable / 1024,
            if report.persistent_recovered {
                "yes"
            } else {
                "no"
            }
        );
    }
    println!("\npaper: TriadNVM-2 pinpoints to 32 KB; counters-only risks 1/8 of the region");
}
