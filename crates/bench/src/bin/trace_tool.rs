//! Record and replay workload traces.
//!
//! ```text
//! trace_tool record <workload> <ops> <file>   # generate + save
//! trace_tool replay <file> [ops]              # run the saved trace
//! ```
//!
//! Recording then replaying a workload is bit-identical to running the
//! generator directly — the tool verifies this after every `record`.

use std::fs::File;
use std::io::{BufReader, BufWriter};

use triad_bench::harness_config;
use triad_core::{PersistScheme, SecureMemoryBuilder, System};
use triad_sim::trace_file::{record, ReplayTrace};
use triad_sim::TraceSource;
use triad_workloads::{build_workload, WorkloadEnv};

fn usage() -> ! {
    eprintln!("usage: trace_tool record <workload> <ops> <file>");
    eprintln!("       trace_tool replay <file> [ops]");
    std::process::exit(2);
}

fn run_trace(trace: Box<dyn TraceSource>, ops: u64) -> f64 {
    let mem = SecureMemoryBuilder::new()
        .config(harness_config())
        .scheme(PersistScheme::triad_nvm(2))
        .build()
        .expect("valid config");
    let mut sys = System::new(mem, vec![trace]);
    sys.run(ops).expect("clean run").throughput()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("record") if args.len() == 5 => {
            let workload = &args[2];
            let ops: u64 = args[3].parse().unwrap_or_else(|_| usage());
            let path = &args[4];
            let mem = SecureMemoryBuilder::new()
                .config(harness_config())
                .scheme(PersistScheme::triad_nvm(2))
                .build()
                .expect("valid config");
            let env = WorkloadEnv::of(&mem);
            let mut traces = build_workload(workload, &env, 42);
            let mut source = traces.remove(0);
            let file = File::create(path).expect("create trace file");
            let n = record(source.as_mut(), ops, BufWriter::new(file)).expect("write trace");
            println!("recorded {n} ops of {workload} to {path}");
            // Verify: replaying must produce the identical op stream,
            // hence identical simulated throughput.
            let reread = ReplayTrace::from_reader(
                workload.clone(),
                BufReader::new(File::open(path).expect("reopen")),
                false,
            )
            .expect("parse recorded trace");
            let fresh = build_workload(workload, &env, 42).remove(0);
            let a = run_trace(Box::new(reread), n);
            let b = run_trace(fresh, n);
            assert_eq!(a, b, "replay must be bit-identical to generation");
            println!("replay verified: identical simulated throughput ({a:.3e} inst/s)");
        }
        Some("replay") => {
            let path = args.get(2).unwrap_or_else(|| usage());
            let ops: u64 = args
                .get(3)
                .map(|s| s.parse().unwrap_or_else(|_| usage()))
                .unwrap_or(u64::MAX);
            let trace = ReplayTrace::from_reader(
                path.clone(),
                BufReader::new(File::open(path).expect("open trace")),
                false,
            )
            .expect("parse trace");
            println!("replaying {} ops from {path}", trace.len());
            let t = run_trace(Box::new(trace), ops);
            println!("throughput: {t:.3e} inst/s");
        }
        _ => usage(),
    }
}
