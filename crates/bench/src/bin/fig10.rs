//! Figure 10: recovery time versus memory capacity for each
//! persistence model, at the paper's accounting of 100 ns per block
//! read + MAC computation.
//!
//! Paper anchor points (1 TB): no-persist ≈ 30 min, TriadNVM-1 =
//! 30.68 s, TriadNVM-2 = 3.83 s, TriadNVM-3 = 0.48 s, Strict ≈ 0.
//! Abstract: 8 TB recovers in < 4 s (TriadNVM-3), 30.6 s at 64 TB.
//!
//! The analytic model is additionally cross-validated against the
//! *functional* recovery engine on a small memory (the same block
//! counts must emerge from actually rebuilding the tree).
//!
//! Usage: `cargo run -p triad-bench --release --bin fig10`

use triad_core::{PersistScheme, RecoveryModel, SecureMemoryBuilder};
use triad_sim::config::SystemConfig;

const GB: u64 = 1 << 30;
const TB: u64 = 1 << 40;

fn main() {
    let model = RecoveryModel::isca19();
    let schemes = [
        PersistScheme::WriteBack, // the paper's "no-persist"
        PersistScheme::triad_nvm(1),
        PersistScheme::triad_nvm(2),
        PersistScheme::triad_nvm(3),
        PersistScheme::Strict,
    ];
    println!("Figure 10 — estimated recovery time vs capacity (100 ns/block)\n");
    print!("{:<10}", "capacity");
    for s in schemes {
        print!(" {:>14}", s.to_string());
    }
    println!();
    println!("{}", "-".repeat(10 + 15 * schemes.len()));
    for cap in [
        128 * GB,
        256 * GB,
        512 * GB,
        TB,
        2 * TB,
        4 * TB,
        8 * TB,
        64 * TB,
    ] {
        let label = if cap >= TB {
            format!("{}TB", cap / TB)
        } else {
            format!("{}GB", cap / GB)
        };
        print!("{label:<10}");
        for s in schemes {
            let t = model.recovery_time(cap, s).as_secs_f64();
            print!(" {:>13.2}s", t);
        }
        println!();
    }

    println!("\npaper anchors: 1TB → 30.68s / 3.83s / 0.48s (TriadNVM-1/2/3); no-persist ≈ 30 min");
    println!("abstract:      8TB < 4s and 64TB = 30.6s under TriadNVM-3\n");

    // §3.3.4 in-text estimates for a 6 TB system split 50/50.
    let half = 3 * TB;
    let naive = half / 64 * 100; // zero every non-persistent data block, ns
    let persistent_rebuild = model.blocks_touched(half, PersistScheme::triad_nvm(1)) * 100;
    let lazy = model.level_counts(half)[1..].iter().sum::<u64>() * 100;
    println!("§3.3.4 in-text estimates (6 TB system, 3 TB per region):");
    println!(
        "  naive np zeroing                      ≈ {:.1} min  (paper: ≈ 85.9 min)",
        naive as f64 / 1e9 / 60.0
    );
    println!(
        "  persistent rebuild from counters      ≈ {:.0} s      (paper: ≈ 92 s)",
        persistent_rebuild as f64 / 1e9
    );
    println!(
        "  lazy np recovery (zero L1, build up)  ≈ {:.0} s      (the §3.3.4 optimisation)\n",
        lazy as f64 / 1e9
    );

    // Functional cross-validation on a small memory: the recovery
    // engine's measured block counts must match the analytic model's
    // shape (ratios of consecutive schemes ≈ arity).
    println!("functional cross-validation (64 MiB simulated memory):");
    let mut cfg = SystemConfig::isca19();
    cfg.mem.capacity_bytes = 64 << 20;
    for n in 1..=3u8 {
        let scheme = PersistScheme::triad_nvm(n);
        let mut mem = SecureMemoryBuilder::new()
            .config(cfg)
            .scheme(scheme)
            .build()
            .expect("valid config");
        let p = mem.persistent_region().start();
        mem.write(p, b"probe").expect("write");
        mem.persist(p).expect("persist");
        mem.crash();
        let report = mem.recover().expect("recover");
        println!(
            "  {scheme}: measured {} blocks read, estimated recovery {}",
            report.persistent_blocks_read, report.estimated_duration
        );
    }
    println!("  (each level drops the block count by ≈ the tree arity, 8)");
}
