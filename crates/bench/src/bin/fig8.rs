//! Figure 8: throughput under each Merkle-tree persistence model,
//! normalised to the no-metadata-persistence baseline.
//!
//! Paper headline: Strict ≈ 2.2× average slowdown; TriadNVM-1/2/3 cost
//! only ≈ 4.9 % / 10.1 % / 15.6 %.
//!
//! Usage: `cargo run -p triad-bench --release --bin fig8`

use triad_bench::{default_ops, geomean, print_header, run_one};
use triad_core::PersistScheme;
use triad_workloads::all_figure_workloads;

fn main() {
    let ops = default_ops();
    let schemes = PersistScheme::evaluated();
    println!("Figure 8 — normalised throughput per persistence scheme");
    println!("({ops} memory ops per core; baseline = WriteBack = 1.0)\n");
    let cols: Vec<String> = schemes.iter().map(|s| s.to_string()).collect();
    print_header("workload", &cols);
    let mut per_scheme: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
    for w in all_figure_workloads() {
        let base = run_one(w, PersistScheme::WriteBack, ops, 42).throughput;
        print!("{w:<12}");
        for (i, s) in schemes.iter().enumerate() {
            let rel = if *s == PersistScheme::WriteBack {
                1.0
            } else {
                run_one(w, *s, ops, 42).throughput / base
            };
            per_scheme[i].push(rel);
            print!(" {rel:>12.3}");
        }
        println!();
    }
    println!();
    print!("{:<12}", "geomean");
    for rels in &per_scheme {
        print!(" {:>12.3}", geomean(rels));
    }
    println!();
    println!("\npaper: Strict ≈ 1/2.2 = 0.455; TriadNVM-1 ≈ 0.953, -2 ≈ 0.908, -3 ≈ 0.865");
}
