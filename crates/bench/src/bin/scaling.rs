//! Multi-core scaling study: how contention on the shared L3,
//! metadata caches, banks and WPQ changes the cost of metadata
//! persistence as more cores run the same persistent workload
//! (the Table 1 system is 8-core; the paper's mixes stop at 4).
//!
//! Usage: `cargo run -p triad-bench --release --bin scaling`

use triad_bench::harness_config;
use triad_core::{PersistScheme, SecureMemoryBuilder, System};
use triad_sim::trace::TraceSource;
use triad_sim::PhysAddr;
use triad_workloads::traces::{PmdkKind, PmdkTrace};
use triad_workloads::WorkloadEnv;

fn main() {
    let ops: u64 = 60_000;
    println!("Scaling — N cores × hashtable ({ops} ops/core)\n");
    println!(
        "{:<7} {:>14} {:>14} {:>14} {:>12}",
        "cores", "WriteBack", "TriadNVM-2", "relative", "p99 (ns)"
    );
    println!("{}", "-".repeat(66));
    for cores in [1usize, 2, 4, 8] {
        let mut results = Vec::new();
        let mut p99 = 0;
        for scheme in [PersistScheme::WriteBack, PersistScheme::triad_nvm(2)] {
            let mem = SecureMemoryBuilder::new()
                .config(harness_config())
                .scheme(scheme)
                .build()
                .expect("valid config");
            let env = WorkloadEnv::of(&mem);
            // One private persistent lane per core, all hammering the
            // shared uncore simultaneously.
            let traces: Vec<Box<dyn TraceSource>> = (0..cores)
                .map(|i| {
                    let lane = env.persistent_bytes / 8 / 64 * 64;
                    let base = PhysAddr(env.persistent_base.0 + i as u64 * lane);
                    Box::new(PmdkTrace::new(
                        PmdkKind::Hashtable,
                        base,
                        lane / 64,
                        42 + i as u64,
                    )) as Box<dyn TraceSource>
                })
                .collect();
            let mut sys = System::new(mem, traces);
            let r = sys.run(ops).expect("clean run");
            results.push(r.throughput());
            if scheme != PersistScheme::WriteBack {
                let mut h = triad_sim::stats::Histogram::new();
                for c in &r.cores {
                    h.merge(&c.latency_ns);
                }
                p99 = h.percentile(99.0);
            }
        }
        println!(
            "{cores:<7} {:>14.3e} {:>14.3e} {:>14.3} {:>12}",
            results[0],
            results[1],
            results[1] / results[0],
            p99
        );
    }
    println!(
        "\n(more cores → more WPQ/bank contention → metadata persistence costs relatively more)"
    );
}
