//! Figure 4: relative system throughput when *strictly* persisting all
//! security metadata (counters + MACs + full BMT) versus a baseline
//! that persists none.
//!
//! Paper headline: most workloads degrade severely; worst case ≈ 9.4×
//! slowdown, average ≈ 2.2×.
//!
//! Usage: `cargo run -p triad-bench --release --bin fig4`
//! (`TRIAD_OPS=<n>` overrides the per-core op budget).

use triad_bench::{default_ops, geomean, print_header, run_one};
use triad_core::PersistScheme;
use triad_workloads::all_figure_workloads;

fn main() {
    let ops = default_ops();
    println!("Figure 4 — throughput of Strict persistence relative to no metadata persistence");
    println!("({ops} memory ops per core)\n");
    print_header(
        "workload",
        &["baseline".into(), "strict".into(), "relative".into()],
    );
    let mut rels = Vec::new();
    for w in all_figure_workloads() {
        let base = run_one(w, PersistScheme::WriteBack, ops, 42);
        let strict = run_one(w, PersistScheme::Strict, ops, 42);
        let rel = strict.throughput / base.throughput;
        rels.push(rel);
        println!(
            "{w:<12} {:>12.3e} {:>12.3e} {:>12.3}",
            base.throughput, strict.throughput, rel
        );
    }
    let gm = geomean(&rels);
    println!(
        "\ngeomean relative throughput: {gm:.3}  (paper: avg slowdown ≈ 2.2×, i.e. ≈ {:.3})",
        1.0 / 2.2
    );
    let worst = rels.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "worst-case slowdown: {:.1}×  (paper: up to 9.4×)",
        1.0 / worst
    );
}
