//! Extension experiment: epoch persistency (Liu et al., HPCA'18) on
//! top of Triad-NVM — the relaxation the paper's §3.3.1/§6 cite as
//! orthogonal and compatible. Sweeps the epoch length on a
//! transactional workload and reports throughput-equivalent latency
//! and metadata-write savings.
//!
//! Usage: `cargo run -p triad-bench --release --bin epoch`

use triad_bench::harness_config;
use triad_core::{PersistScheme, SecureMemoryBuilder};
use triad_sim::{PhysAddr, Time};

fn main() {
    let ops: u64 = 40_000;
    println!("Epoch persistency over TriadNVM-2 — {ops} persists over 8 hot blocks\n");
    println!(
        "{:<12} {:>16} {:>18} {:>14}",
        "epoch size", "simulated time", "metadata persists", "NVM writes"
    );
    println!("{}", "-".repeat(64));
    for epoch_len in [1u64, 4, 16, 64, 256] {
        let mut mem = SecureMemoryBuilder::new()
            .config(harness_config())
            .scheme(PersistScheme::triad_nvm(2))
            .build()
            .expect("valid config");
        let p = mem.persistent_region().start();
        let mut t = Time::ZERO;
        for i in 0..ops {
            if epoch_len > 1 && i % epoch_len == 0 {
                mem.begin_epoch().expect("no epoch open");
            }
            let a = PhysAddr(p.0 + (i % 8) * 4096);
            let mut b = [0u8; 64];
            b[..8].copy_from_slice(&i.to_le_bytes());
            t = mem.persist_block(a.block(), b, t).expect("persist");
            if epoch_len > 1 && (i + 1) % epoch_len == 0 {
                t = mem.end_epoch(t).expect("epoch");
            }
        }
        if mem.epoch_open() {
            t = mem.end_epoch(t).expect("final epoch");
        }
        let s = mem.stats();
        let label = if epoch_len == 1 {
            "per-persist".to_string()
        } else {
            format!("{epoch_len}")
        };
        println!(
            "{label:<12} {:>16} {:>18} {:>14}",
            t.to_string(),
            s.persist_metadata_writes(),
            mem.mem_stats().writes
        );
        // Sanity: everything must still recover.
        mem.crash();
        assert!(mem.recover().expect("recover").persistent_recovered);
    }
    println!("\n(longer epochs write-combine hot blocks: fewer metadata persists, same recoverability at the boundary)");
}
