//! Quick spot-check of scheme ratios (not a figure; for calibration).
use triad_bench::run_one;
use triad_core::PersistScheme;

fn main() {
    for w in [
        "libquantum",
        "lbm",
        "mcf",
        "sjeng",
        "hashtable",
        "queue",
        "arrayswap",
        "daxbench1",
        "mix1",
    ] {
        let base = run_one(w, PersistScheme::WriteBack, 400_000, 42);
        let strict = run_one(w, PersistScheme::Strict, 400_000, 42);
        let t1 = run_one(w, PersistScheme::triad_nvm(1), 400_000, 42);
        let t2 = run_one(w, PersistScheme::triad_nvm(2), 400_000, 42);
        let t3 = run_one(w, PersistScheme::triad_nvm(3), 400_000, 42);
        println!(
            "{w:<12} strict={:.3} t1={:.3} t2={:.3} t3={:.3} | writes base={} strict={} t1={}",
            strict.throughput / base.throughput,
            t1.throughput / base.throughput,
            t2.throughput / base.throughput,
            t3.throughput / base.throughput,
            base.nvm_writes,
            strict.nvm_writes,
            t1.nvm_writes
        );
    }
}
