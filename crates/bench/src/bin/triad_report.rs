//! `triad-report`: the fixed experiment matrix the perf trajectory
//! regresses against.
//!
//! Replays the persistent workload mixes of §4 over every persistence
//! scheme (write-back baseline, TriadNVM-1/2/3, Strict) on
//! `SplitMix64`-seeded traces, then crashes and functionally recovers
//! each cell. Two extra rows (`kv-zipf`, `kv-uniform`) drive the
//! `triad-kv` transactional store fleet and verify recovery against an
//! in-DRAM oracle. Four serving rows (`fleet-1/2/4`, `fleet-nogc`)
//! drive the sharded [`KvService`] front-end on the same seeded
//! request schedule and measure aggregate throughput vs. shard count
//! and the commit-marker amortization of group commit (window 8 vs.
//! the unbatched window-1 `fleet-nogc` row). Eight recov rows
//! (`stack-mixed-1..4`, `queue-mixed-1..4`) drive the detectably
//! recoverable Treiber stack / MS queue from `triad-recov` through the
//! seeded interleaving harness at 1–4 threads, with the concurrent
//! crash-equivalence oracle checked on every run; their `recovered`
//! column re-runs the cell with a mid-run per-thread crash injected
//! and demands the oracle still pass. Three durability-mode rows
//! (`mode-strict`, `mode-buffered`, `mode-inmemory`) run one tenant
//! under each tier of the durability contract
//! (`docs/durability-contract.md`), crash a shard with work still
//! staged, and record what recovery measured against the tier's loss
//! bound. Emits `BENCH_pr10.json` (deterministic: running twice with
//! the same seed is byte-identical) plus a human-readable table.
//!
//! Since PR 6 the matrix runs over the batched write path: trace cells
//! enable an 8-deep persist write-combining window
//! ([`System::set_persist_batch`]) and the KV cells inherit batching
//! through the store's WAL apply path, so comparing the emitted file
//! against the checked-in `BENCH_pr4.json` (same matrix, scalar
//! persists) measures the batch pipeline; `bench-delta` does exactly
//! that in CI.
//!
//! Usage:
//!   cargo run -p triad-bench --release --bin triad-report
//!   cargo run -p triad-bench --release --bin triad-report -- --smoke
//!   ... -- --ops 2000 --out /tmp/report.json --seed 7
//!
//! `--smoke` shrinks the matrix (two workloads, fewer ops) for CI.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use triad_core::{PersistScheme, SecureMemoryBuilder, System};
use triad_sim::config::SystemConfig;
use triad_sim::stats::Histogram;
use triad_workloads::kv::{generate_history, oracle_apply, KvFleet, KvSpec, Model};
use triad_workloads::recov::StructureKind;
use triad_workloads::service::{
    generate_requests, DurabilityMode, KvService, Request, Response, ServiceSpec,
};
use triad_workloads::{build_workload, run_recov_mix, RecovMixSpec, WorkloadEnv};

/// The serving-layer extras a fleet row carries on top of the common
/// cell columns: shard geometry and group-commit amortization.
struct FleetExtra {
    shards: u64,
    group_window: usize,
    mutations: u64,
    group_flushes: u64,
    log_records: u64,
    commit_markers: u64,
    shed: u64,
}

impl FleetExtra {
    /// Commit-marker persists per applied mutation — 1.0 on the
    /// unbatched path, 1/window under perfect group commit.
    fn markers_per_mutation(&self) -> f64 {
        if self.mutations == 0 {
            0.0
        } else {
            self.commit_markers as f64 / self.mutations as f64
        }
    }
}

/// The durability-tier extras a mode row carries: which contract the
/// tenant ran under and what the post-crash recovery report measured
/// against it (`docs/durability-contract.md`, invariant D7).
struct ModeExtra {
    tier: &'static str,
    barriers: u64,
    mutations_lost: u64,
    loss_bound: Option<u64>,
    within_bound: bool,
}

/// The lock-free-structure extras a recov row carries: thread count,
/// scheduler work, crash bookkeeping, and persist amortization.
struct RecovExtra {
    threads: u64,
    steps: u64,
    thread_crashes: u64,
    engine_crashes: u64,
    persists_per_op: f64,
}

/// One (workload, scheme) cell of the matrix.
struct Cell {
    workload: &'static str,
    scheme: PersistScheme,
    ops: u64,
    throughput: f64,
    latency: Histogram,
    nvm_writes: u64,
    persist_metadata_writes: u64,
    evict_metadata_writes: u64,
    wpq_full_events: u64,
    recovered: bool,
    recovery_blocks_read: u64,
    recovery_ns: u64,
    /// `Some` on the serving-fleet rows only.
    fleet: Option<FleetExtra>,
    /// `Some` on the durability-mode rows only.
    mode: Option<ModeExtra>,
    /// `Some` on the recov lock-free-structure rows only.
    recov: Option<RecovExtra>,
}

/// The report runs on a small machine (tiny caches, 16 MiB NVM) so the
/// full matrix — including *functional* crash recovery of every cell —
/// finishes in seconds while still spilling past every cache level.
/// Four cores so the MIX workloads get one lane each; 16 MiB (vs the
/// test config's 4 MiB) keeps the BMT tall enough that TriadNVM-3 and
/// Strict persist different level counts.
fn report_config() -> SystemConfig {
    let mut cfg = SystemConfig::tiny();
    cfg.cores = 4;
    cfg.mem.capacity_bytes = 16 << 20;
    cfg
}

fn schemes() -> Vec<PersistScheme> {
    vec![
        PersistScheme::WriteBack,
        PersistScheme::triad_nvm(1),
        PersistScheme::triad_nvm(2),
        PersistScheme::triad_nvm(3),
        PersistScheme::Strict,
    ]
}

fn run_cell(workload: &'static str, scheme: PersistScheme, ops: u64, seed: u64) -> Cell {
    let mem = SecureMemoryBuilder::new()
        .config(report_config())
        .scheme(scheme)
        .key_seed(seed)
        .build()
        .expect("report config is valid");
    let env = WorkloadEnv::of(&mem);
    let traces = build_workload(workload, &env, seed);
    let mut system = System::new(mem, traces);
    system.set_persist_batch(8);
    let result = system.run(ops).expect("clean run");
    let latency = result
        .registry
        .histogram("core.latency_ns")
        .cloned()
        .unwrap_or_default();

    // Crash the machine mid-flight and recover it: the recovery columns
    // are the Figure 10 story, measured functionally rather than from
    // the analytic model.
    let mut mem = system.into_secure();
    mem.crash();
    let report = mem.recover().expect("recovery succeeds on a clean crash");

    Cell {
        workload,
        scheme,
        ops: result.cores.iter().map(|c| c.ops).sum(),
        throughput: result.throughput(),
        latency,
        nvm_writes: result.nvm_writes,
        persist_metadata_writes: result.stats.get("secure.persist_metadata_writes"),
        evict_metadata_writes: result.stats.get("secure.evict_metadata_writes"),
        wpq_full_events: result.stats.get("mem.wpq_full_events"),
        recovered: report.persistent_recovered,
        recovery_blocks_read: report.persistent_blocks_read + report.non_persistent_blocks_read,
        recovery_ns: report.estimated_duration.as_ns(),
        fleet: None,
        mode: None,
        recov: None,
    }
}

/// A KV cell: drives the `triad-kv` fleet directly on `SecureMemory`
/// (no trace cores), measuring per-op latency from the engine clock.
/// Its recovery column is stronger than the trace cells': after the
/// crash the fleet is *reopened* — engine recovery plus per-shard redo
/// log replay — and `recovered` is true only if the surviving state
/// equals the in-DRAM oracle exactly. WriteBack is expected to fail
/// that bar; that gap is the row's point.
fn run_kv_cell(workload: &'static str, scheme: PersistScheme, ops: u64, seed: u64) -> Cell {
    let spec = if workload == "kv-zipf" {
        KvSpec::report_zipf(ops)
    } else {
        KvSpec::report_uniform(ops)
    };
    let history = generate_history(&spec, seed);
    let mut mem = SecureMemoryBuilder::new()
        .config(report_config())
        .scheme(scheme)
        .key_seed(seed)
        .build()
        .expect("report config is valid");
    let mut fleet = KvFleet::create(&mut mem, &spec).expect("fleet create");
    let mut oracle = Model::new();
    let mut latency = Histogram::new();
    let t0 = mem.now();
    for op in &history {
        let start = mem.now();
        fleet.apply(&mut mem, op).expect("clean KV run");
        oracle_apply(&mut oracle, op);
        latency.record(mem.now().since(start).as_ns());
    }
    let elapsed = mem.now().since(t0).as_secs_f64();
    let stats = mem.stats();
    let mem_stats = mem.mem_stats();

    mem.crash();
    let (recovered, recovery_blocks_read, recovery_ns) = match KvFleet::recover(&mut mem) {
        Ok((mut reopened, report)) => (
            report.persistent_recovered
                && reopened
                    .dump(&mut mem)
                    .map(|state| state == oracle)
                    .unwrap_or(false),
            report.persistent_blocks_read + report.non_persistent_blocks_read,
            report.estimated_duration.as_ns(),
        ),
        Err(_) => (false, 0, 0),
    };

    Cell {
        workload,
        scheme,
        ops: history.len() as u64,
        throughput: if elapsed > 0.0 {
            history.len() as f64 / elapsed
        } else {
            0.0
        },
        latency,
        nvm_writes: mem_stats.writes,
        persist_metadata_writes: stats.persist_metadata_writes(),
        evict_metadata_writes: stats.evict_metadata_writes(),
        wpq_full_events: mem_stats.wpq_full_events,
        recovered,
        recovery_blocks_read,
        recovery_ns,
        fleet: None,
        mode: None,
        recov: None,
    }
}

/// A serving-fleet cell: the same seeded request schedule pushed
/// through the sharded [`KvService`] front-end (keyed-hash routing,
/// group commit, worker threads). Throughput is aggregate: total
/// requests over the *slowest shard's* simulated clock, so the
/// `fleet-1` → `fleet-4` rows measure shard-count scaling, and the
/// window-1 `fleet-nogc` row isolates what group commit buys
/// (`markers_per_mutation` is the amortization headline). Latency
/// samples are per-request averages over 64-request submit chunks on
/// that slowest-shard clock. Recovery crashes shard 0 after the run,
/// replays its WAL, and demands the merged durable state still equal
/// the in-DRAM oracle exactly.
fn run_fleet_cell(
    workload: &'static str,
    shards: u64,
    group_window: usize,
    ops: u64,
    seed: u64,
) -> Cell {
    let spec = ServiceSpec {
        shards,
        group_window,
        buckets: 256,
        key_seed: seed,
        config: Some(report_config()),
        ..ServiceSpec::new(shards)
    };
    let mut svc = KvService::create(&spec).expect("fleet create");
    let reqs = generate_requests(seed, ops as usize, 1024, (8, 64));
    let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    let mut latency = Histogram::new();
    let t0 = svc.max_shard_time();
    for chunk in reqs.chunks(64) {
        let c0 = svc.max_shard_time();
        let resps = svc.submit(chunk).expect("clean fleet run");
        latency.record(svc.max_shard_time().since(c0).as_ns() / chunk.len() as u64);
        for (req, resp) in chunk.iter().zip(&resps) {
            match (req, resp) {
                (Request::Put { key, value }, Response::Done) => {
                    model.insert(*key, value.clone());
                }
                (Request::Delete { key }, Response::Done) => {
                    model.remove(key);
                }
                _ => {}
            }
        }
    }
    let elapsed = svc.max_shard_time().since(t0).as_secs_f64();
    let (mut nvm_writes, mut pmw, mut emw, mut wpq) = (0u64, 0u64, 0u64, 0u64);
    for i in 0..svc.shard_count() {
        let mem = svc.shard_mem(i).expect("shard in range");
        nvm_writes += mem.mem_stats().writes;
        pmw += mem.stats().persist_metadata_writes();
        emw += mem.stats().evict_metadata_writes();
        wpq += mem.mem_stats().wpq_full_events;
    }
    let groups = svc.merged_group_stats();

    svc.shard_mem_mut(0).expect("shard 0").crash();
    let (recovered, recovery_blocks_read, recovery_ns) = match svc.recover_shard(0) {
        Ok(report) => (
            report.persistent_recovered && svc.dump().map(|state| state == model).unwrap_or(false),
            report.persistent_blocks_read + report.non_persistent_blocks_read,
            report.estimated_duration.as_ns(),
        ),
        Err(_) => (false, 0, 0),
    };

    Cell {
        workload,
        scheme: spec.scheme,
        ops: reqs.len() as u64,
        throughput: if elapsed > 0.0 {
            reqs.len() as f64 / elapsed
        } else {
            0.0
        },
        latency,
        nvm_writes,
        persist_metadata_writes: pmw,
        evict_metadata_writes: emw,
        wpq_full_events: wpq,
        recovered,
        recovery_blocks_read,
        recovery_ns,
        fleet: Some(FleetExtra {
            shards,
            group_window,
            mutations: groups.ops,
            group_flushes: groups.flushes,
            log_records: groups.log_records,
            commit_markers: groups.commit_markers,
            shed: groups.shed,
        }),
        mode: None,
        recov: None,
    }
}

/// A durability-mode cell: one tenant driven through the sharded
/// [`KvService`] under a single tier of the durability contract
/// (`docs/durability-contract.md`), on the same seeded request
/// schedule as the fleet rows. InMemory rows insert a barrier every
/// fourth chunk so staged work keeps promoting instead of growing an
/// unbounded overlay. After the run shard 0 is crashed *with work
/// still staged* — no final flush or barrier — and recovered; the
/// `recovered` column demands the recovery report name the tier the
/// tenant actually ran under and measure a loss within that tier's
/// bound (invariant D7), and the `durability` JSON object records the
/// measurement.
fn run_mode_cell(workload: &'static str, mode: DurabilityMode, ops: u64, seed: u64) -> Cell {
    let spec = ServiceSpec {
        shards: 2,
        group_window: 8,
        buckets: 256,
        key_seed: seed,
        config: Some(report_config()),
        ..ServiceSpec::new(2)
    };
    let mut svc = KvService::create(&spec).expect("mode cell create");
    svc.set_tenant_mode(1, mode);
    let reqs = generate_requests(seed, ops as usize, 1024, (8, 64));
    let mut latency = Histogram::new();
    let mut barriers = 0u64;
    let t0 = svc.max_shard_time();
    for (n, chunk) in reqs.chunks(64).enumerate() {
        let c0 = svc.max_shard_time();
        svc.submit_as(1, chunk).expect("clean mode run");
        if matches!(mode, DurabilityMode::InMemory) && n % 4 == 3 {
            svc.barrier().expect("clean barrier");
            barriers += 1;
        }
        latency.record(svc.max_shard_time().since(c0).as_ns() / chunk.len() as u64);
    }
    let elapsed = svc.max_shard_time().since(t0).as_secs_f64();
    let (mut nvm_writes, mut pmw, mut emw, mut wpq) = (0u64, 0u64, 0u64, 0u64);
    for i in 0..svc.shard_count() {
        let mem = svc.shard_mem(i).expect("shard in range");
        nvm_writes += mem.mem_stats().writes;
        pmw += mem.stats().persist_metadata_writes();
        emw += mem.stats().evict_metadata_writes();
        wpq += mem.mem_stats().wpq_full_events;
    }

    svc.shard_mem_mut(0).expect("shard 0").crash();
    let (recovered, recovery_blocks_read, recovery_ns, extra) = match svc.recover_shard(0) {
        Ok(report) => {
            let d = report
                .durability
                .expect("service recovery always carries a durability report");
            (
                report.persistent_recovered && d.mode == mode.tier_name() && d.within_bound(),
                report.persistent_blocks_read + report.non_persistent_blocks_read,
                report.estimated_duration.as_ns(),
                ModeExtra {
                    tier: d.mode,
                    barriers,
                    mutations_lost: d.mutations_lost,
                    loss_bound: d.loss_bound,
                    within_bound: d.within_bound(),
                },
            )
        }
        Err(_) => (
            false,
            0,
            0,
            ModeExtra {
                tier: mode.tier_name(),
                barriers,
                mutations_lost: 0,
                loss_bound: mode.loss_bound(),
                within_bound: false,
            },
        ),
    };

    Cell {
        workload,
        scheme: spec.scheme,
        ops: reqs.len() as u64,
        throughput: if elapsed > 0.0 {
            reqs.len() as f64 / elapsed
        } else {
            0.0
        },
        latency,
        nvm_writes,
        persist_metadata_writes: pmw,
        evict_metadata_writes: emw,
        wpq_full_events: wpq,
        recovered,
        recovery_blocks_read,
        recovery_ns,
        fleet: None,
        mode: Some(extra),
        recov: None,
    }
}

/// A recov cell: drives the detectably recoverable Treiber stack or
/// MS queue from `triad-recov` through the seeded interleaving
/// harness at `threads` threads, mixed insert/remove scripts, on
/// TriadNVM-2. Every run is checked against the concurrent
/// crash-equivalence oracle; latency samples are per-completed-op on
/// the engine clock, and `persists_per_op` is the recov analogue of
/// the fleet rows' `markers_per_mutation`. The `recovered` column
/// re-runs the cell with a per-thread crash injected mid-run and is
/// true only if the crashed thread's recovery keeps the commit log
/// linearizable with every op applied exactly once.
fn run_recov_cell(
    workload: &'static str,
    kind: StructureKind,
    threads: usize,
    ops: u64,
    seed: u64,
) -> Cell {
    let spec = RecovMixSpec {
        kind,
        threads,
        ops_per_thread: (ops / 8).max(32) as usize,
        scheme: PersistScheme::triad_nvm(2),
        seed,
        thread_crash: None,
    };
    let res = run_recov_mix(&spec).expect("recov oracle holds on the clean run");
    let out = &res.outcome;
    let mut latency = Histogram::new();
    for &ns in &out.op_latency_ns {
        latency.record(ns);
    }

    // Crash the last thread mid-run and demand the oracle still pass:
    // this is the detectability column — recovery must resolve the
    // in-flight op and re-execute it at most once.
    let crash_at = out.per_thread_steps[threads - 1] / 2;
    let crashed = RecovMixSpec {
        thread_crash: Some((threads - 1, crash_at)),
        ..spec
    };
    let recovered = match run_recov_mix(&crashed) {
        Ok(r) => r.outcome.thread_crashes == 1,
        Err(_) => false,
    };

    Cell {
        workload,
        scheme: spec.scheme,
        ops: out.op_latency_ns.len() as u64,
        throughput: res.ops_per_sec,
        latency,
        nvm_writes: out.nvm_writes,
        persist_metadata_writes: out.persist_metadata_writes,
        evict_metadata_writes: 0,
        wpq_full_events: 0,
        recovered,
        recovery_blocks_read: 0,
        recovery_ns: 0,
        fleet: None,
        mode: None,
        recov: Some(RecovExtra {
            threads: threads as u64,
            steps: out.steps,
            thread_crashes: out.thread_crashes,
            engine_crashes: out.engine_crashes,
            persists_per_op: res.persists_per_op,
        }),
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Hand-rolled, key-order-fixed JSON: determinism is the whole point.
fn render_json(cells: &[Cell], ops: u64, seed: u64, smoke: bool) -> String {
    let cfg = report_config();
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"report\": \"triad-report\",");
    let _ = writeln!(out, "  \"version\": 2,");
    let _ = writeln!(out, "  \"seed\": {seed},");
    let _ = writeln!(out, "  \"ops_per_core\": {ops},");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(
        out,
        "  \"config\": {{ \"capacity_bytes\": {}, \"cores\": {}, \"wpq_entries\": {} }},",
        cfg.mem.capacity_bytes, cfg.cores, cfg.mem.wpq_entries
    );
    out.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let h = &c.latency;
        let _ = write!(
            out,
            "    {{ \"workload\": \"{}\", \"scheme\": \"{}\", \"ops\": {}, \
             \"throughput_ips\": {:.3}, \
             \"latency_ns\": {{ \"count\": {}, \"mean\": {:.3}, \"min\": {}, \"max\": {}, \
             \"p50\": {}, \"p95\": {}, \"p99\": {} }}, \
             \"nvm_writes\": {}, \"persist_metadata_writes\": {}, \
             \"evict_metadata_writes\": {}, \"wpq_full_events\": {}, \
             \"recovery\": {{ \"recovered\": {}, \"blocks_read\": {}, \"time_ns\": {} }}",
            json_escape(c.workload),
            json_escape(&c.scheme.to_string()),
            c.ops,
            c.throughput,
            h.count(),
            h.mean(),
            h.min(),
            h.max(),
            h.p50(),
            h.p95(),
            h.p99(),
            c.nvm_writes,
            c.persist_metadata_writes,
            c.evict_metadata_writes,
            c.wpq_full_events,
            c.recovered,
            c.recovery_blocks_read,
            c.recovery_ns,
        );
        if let Some(f) = &c.fleet {
            let _ = write!(
                out,
                ", \"fleet\": {{ \"shards\": {}, \"group_window\": {}, \"mutations\": {}, \
                 \"group_flushes\": {}, \"log_records\": {}, \"commit_markers\": {}, \
                 \"markers_per_mutation\": {:.4}, \"shed\": {} }}",
                f.shards,
                f.group_window,
                f.mutations,
                f.group_flushes,
                f.log_records,
                f.commit_markers,
                f.markers_per_mutation(),
                f.shed,
            );
        }
        if let Some(m) = &c.mode {
            let _ = write!(
                out,
                ", \"durability\": {{ \"tier\": \"{}\", \"barriers\": {}, \
                 \"mutations_lost\": {}, \"loss_bound\": {}, \"within_bound\": {} }}",
                m.tier,
                m.barriers,
                m.mutations_lost,
                m.loss_bound
                    .map_or_else(|| "null".to_string(), |b| b.to_string()),
                m.within_bound,
            );
        }
        if let Some(r) = &c.recov {
            let _ = write!(
                out,
                ", \"recov\": {{ \"threads\": {}, \"steps\": {}, \"thread_crashes\": {}, \
                 \"engine_crashes\": {}, \"persists_per_op\": {:.4} }}",
                r.threads, r.steps, r.thread_crashes, r.engine_crashes, r.persists_per_op,
            );
        }
        out.push_str(" }");
        out.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn print_table(cells: &[Cell]) {
    println!(
        "{:<10} {:>12} {:>8} {:>8} {:>8} {:>10} {:>10} {:>12}",
        "workload", "scheme", "p50 ns", "p95 ns", "p99 ns", "nvm wr", "meta wr", "recovery"
    );
    println!("{}", "-".repeat(86));
    let mut last = "";
    for c in cells {
        if c.workload != last && !last.is_empty() {
            println!();
        }
        last = c.workload;
        println!(
            "{:<10} {:>12} {:>8} {:>8} {:>8} {:>10} {:>10} {:>10.1}us",
            c.workload,
            c.scheme.to_string(),
            c.latency.p50(),
            c.latency.p95(),
            c.latency.p99(),
            c.nvm_writes,
            c.persist_metadata_writes + c.evict_metadata_writes,
            c.recovery_ns as f64 / 1e3,
        );
    }
}

fn main() {
    let mut smoke = false;
    let mut ops: Option<u64> = None;
    let mut out_path = String::from("BENCH_pr10.json");
    let mut seed: u64 = 42;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--ops" => {
                let v = args.next().expect("--ops needs a value");
                ops = Some(v.parse().expect("--ops needs an integer"));
            }
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--seed" => {
                let v = args.next().expect("--seed needs a value");
                seed = v.parse().expect("--seed needs an integer");
            }
            other => {
                eprintln!("unknown flag {other:?}; flags: --smoke --ops N --out PATH --seed N");
                std::process::exit(2);
            }
        }
    }

    // The fixed matrix: the PMDK persistent structures plus the four
    // MIX workloads, i.e. every trace with a persistent-store component
    // (pure SPEC lanes exercise no persists and tell the schemes apart
    // far less) — plus the two triad-kv fleet rows (`kv-zipf`,
    // `kv-uniform`), which are driven through `run_kv_cell` and carry
    // the oracle-verified recovery column.
    let workloads: &[&'static str] = if smoke {
        &["hashtable", "mix1", "kv-zipf"]
    } else {
        &[
            "hashtable",
            "queue",
            "arrayswap",
            "mix1",
            "mix2",
            "mix3",
            "mix4",
            "kv-zipf",
            "kv-uniform",
        ]
    };
    // Recov rows keep full depth even under --smoke (they are cheap,
    // and identical specs make the smoke rows exact replicas of the
    // checked-in baseline rows, so the recov gate compares like for
    // like instead of different mix-amortization depths).
    let recov_ops = ops.unwrap_or(4000);
    let ops = ops.unwrap_or(if smoke { 800 } else { 4000 });

    let mut cells = Vec::new();
    for w in workloads {
        for s in schemes() {
            cells.push(if w.starts_with("kv-") {
                run_kv_cell(w, s, ops, seed)
            } else {
                run_cell(w, s, ops, seed)
            });
        }
    }

    // The serving rows sweep shard count (not scheme) on one seeded
    // request schedule: `fleet-1/2/4` share a window-8 group commit so
    // their throughput column is the scaling curve, and `fleet-nogc`
    // repeats `fleet-4` unbatched (window 1) so the
    // `markers_per_mutation` gap is group commit's amortization.
    for (label, shards, window) in [
        ("fleet-1", 1, 8),
        ("fleet-2", 2, 8),
        ("fleet-4", 4, 8),
        ("fleet-nogc", 4, 1),
    ] {
        cells.push(run_fleet_cell(label, shards, window, ops, seed));
    }

    // The durability-mode rows run one tenant under each tier of the
    // contract on a two-shard service, crash shard 0 with work still
    // staged, and let recovery measure the loss against the tier's
    // bound: the throughput spread is the price of each guarantee and
    // the `durability` object is invariant D7 made observable.
    for (label, mode) in [
        ("mode-strict", DurabilityMode::Strict),
        ("mode-buffered", DurabilityMode::buffered_default()),
        ("mode-inmemory", DurabilityMode::InMemory),
    ] {
        cells.push(run_mode_cell(label, mode, ops, seed));
    }

    // The recov rows sweep thread count (not scheme) for the two
    // detectably recoverable structures; the 1-thread → 4-thread
    // progression is the contention curve and `persists_per_op` the
    // per-op persistence price of detectability. Smoke keeps one
    // mid-contention row per structure.
    let recov_rows: &[(&'static str, StructureKind, usize)] = if smoke {
        &[
            ("stack-mixed-2", StructureKind::Stack, 2),
            ("queue-mixed-2", StructureKind::Queue, 2),
        ]
    } else {
        &[
            ("stack-mixed-1", StructureKind::Stack, 1),
            ("stack-mixed-2", StructureKind::Stack, 2),
            ("stack-mixed-3", StructureKind::Stack, 3),
            ("stack-mixed-4", StructureKind::Stack, 4),
            ("queue-mixed-1", StructureKind::Queue, 1),
            ("queue-mixed-2", StructureKind::Queue, 2),
            ("queue-mixed-3", StructureKind::Queue, 3),
            ("queue-mixed-4", StructureKind::Queue, 4),
        ]
    };
    for &(label, kind, threads) in recov_rows {
        cells.push(run_recov_cell(label, kind, threads, recov_ops, seed));
    }

    print_table(&cells);
    let json = render_json(&cells, ops, seed, smoke);
    std::fs::write(&out_path, &json).expect("write report");
    println!("\nwrote {out_path} ({} cells)", cells.len());
}
