//! Micro-benchmarks of the secure memory controller's hot paths:
//! loads, plain stores, and persists under each persistence scheme.

use std::hint::black_box;
use triad_bench::timing::{bench, header};
use triad_core::{PersistScheme, SecureMemory, SecureMemoryBuilder};
use triad_sim::PhysAddr;

fn engine(scheme: PersistScheme) -> SecureMemory {
    SecureMemoryBuilder::new().scheme(scheme).build().unwrap()
}

fn main() {
    header("secure_path");
    {
        let mut m = engine(PersistScheme::triad_nvm(1));
        let p = m.persistent_region().start();
        m.write(p, &[1u8; 64]).unwrap();
        bench("load_cached_block", || m.read(black_box(p)).unwrap());
    }

    {
        let mut m = engine(PersistScheme::triad_nvm(1));
        let np = m.non_persistent_region().start();
        let mut i = 0u64;
        bench("store_full_block", || {
            // Rotate over a small window so the L3 absorbs it.
            let addr = PhysAddr(np.0 + (i % 256) * 64);
            i += 1;
            m.write(black_box(addr), &[2u8; 64]).unwrap()
        });
    }

    for scheme in [
        PersistScheme::triad_nvm(1),
        PersistScheme::triad_nvm(2),
        PersistScheme::triad_nvm(3),
        PersistScheme::Strict,
    ] {
        let mut m = engine(scheme);
        let p = m.persistent_region().start();
        let mut i = 0u64;
        bench(&format!("persist_block/{scheme}"), || {
            let addr = PhysAddr(p.0 + (i % 512) * 64);
            i += 1;
            m.write(addr, &i.to_le_bytes()).unwrap();
            m.persist(black_box(addr)).unwrap();
        });
    }
}
