//! Micro-benchmarks of functional crash recovery under each scheme —
//! the host-side cost of the Figure 10 rebuilds on a small memory.

use triad_bench::timing::{bench_batched, header};
use triad_core::{PersistScheme, SecureMemoryBuilder};
use triad_sim::PhysAddr;

fn main() {
    header("crash_recover");
    for scheme in [
        PersistScheme::triad_nvm(1),
        PersistScheme::triad_nvm(2),
        PersistScheme::triad_nvm(3),
        PersistScheme::Strict,
    ] {
        bench_batched(
            &format!("crash_recover/{scheme}"),
            || {
                let mut m = SecureMemoryBuilder::new().scheme(scheme).build().unwrap();
                let p = m.persistent_region().start();
                for i in 0..64u64 {
                    let a = PhysAddr(p.0 + i * 4096);
                    m.write(a, &i.to_le_bytes()).unwrap();
                    m.persist(a).unwrap();
                }
                m.crash();
                m
            },
            |mut m| {
                let report = m.recover().unwrap();
                assert!(report.persistent_recovered);
                report
            },
        );
    }
}
