//! Micro-benchmarks of functional crash recovery under each scheme —
//! the host-side cost of the Figure 10 rebuilds on a small memory.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use triad_core::{PersistScheme, SecureMemoryBuilder};
use triad_sim::PhysAddr;

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("crash_recover");
    group.sample_size(20);
    for scheme in [
        PersistScheme::triad_nvm(1),
        PersistScheme::triad_nvm(2),
        PersistScheme::triad_nvm(3),
        PersistScheme::Strict,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(scheme),
            &scheme,
            |b, &scheme| {
                b.iter_batched(
                    || {
                        let mut m = SecureMemoryBuilder::new().scheme(scheme).build().unwrap();
                        let p = m.persistent_region().start();
                        for i in 0..64u64 {
                            let a = PhysAddr(p.0 + i * 4096);
                            m.write(a, &i.to_le_bytes()).unwrap();
                            m.persist(a).unwrap();
                        }
                        m.crash();
                        m
                    },
                    |mut m| {
                        let report = m.recover().unwrap();
                        assert!(report.persistent_recovered);
                        report
                    },
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_recovery);
criterion_main!(benches);
