//! Micro-benchmarks of the cryptographic substrate: AES-128 block
//! encryption, counter-mode pad generation for a 64 B memory block,
//! SipHash-2-4 MACs, and split-counter pack/unpack.

use std::hint::black_box;
use triad_bench::timing::{bench, header};
use triad_crypto::aes::Aes128;
use triad_crypto::counter::SplitCounterBlock;
use triad_crypto::ctr::{encrypt_block, Iv};
use triad_crypto::mac::MacEngine;
use triad_crypto::siphash::SipHash24;

fn main() {
    header("crypto");
    let cipher = Aes128::new(&[7; 16]);
    let mac = MacEngine::new([3; 16]);
    let sip = SipHash24::from_halves(1, 2);
    let iv = Iv::new(10, 3, 7, 2, 0);
    let data = [0x5A; 64];

    bench("aes128_encrypt_16B", || {
        cipher.encrypt_block(black_box([1u8; 16]))
    });
    bench("ctr_encrypt_64B_block", || {
        encrypt_block(&cipher, black_box(&iv), black_box(&data))
    });
    bench("siphash24_64B", || sip.hash(black_box(&data)));
    bench("data_mac_64B", || {
        mac.data_mac(black_box(0x40), black_box(&data), black_box(&iv))
    });
    let mut cb = SplitCounterBlock::new();
    for i in 0..64 {
        cb.increment(i);
    }
    bench("split_counter_pack_unpack", || {
        let bytes = black_box(&cb).to_bytes();
        SplitCounterBlock::from_bytes(black_box(&bytes))
    });
    bench("key_expansion", || Aes128::new(black_box(&[9u8; 16])));
}
