//! Micro-benchmarks of the cryptographic substrate: AES-128 block
//! encryption, counter-mode pad generation for a 64 B memory block,
//! SipHash-2-4 MACs, and split-counter pack/unpack.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use triad_crypto::aes::Aes128;
use triad_crypto::counter::SplitCounterBlock;
use triad_crypto::ctr::{encrypt_block, Iv};
use triad_crypto::mac::MacEngine;
use triad_crypto::siphash::SipHash24;

fn bench_crypto(c: &mut Criterion) {
    let cipher = Aes128::new(&[7; 16]);
    let mac = MacEngine::new([3; 16]);
    let sip = SipHash24::from_halves(1, 2);
    let iv = Iv::new(10, 3, 7, 2, 0);
    let data = [0x5A; 64];

    c.bench_function("aes128_encrypt_16B", |b| {
        b.iter(|| cipher.encrypt_block(black_box([1u8; 16])))
    });
    c.bench_function("ctr_encrypt_64B_block", |b| {
        b.iter(|| encrypt_block(&cipher, black_box(&iv), black_box(&data)))
    });
    c.bench_function("siphash24_64B", |b| b.iter(|| sip.hash(black_box(&data))));
    c.bench_function("data_mac_64B", |b| {
        b.iter(|| mac.data_mac(black_box(0x40), black_box(&data), black_box(&iv)))
    });
    c.bench_function("split_counter_pack_unpack", |b| {
        let mut cb = SplitCounterBlock::new();
        for i in 0..64 {
            cb.increment(i);
        }
        b.iter(|| {
            let bytes = black_box(&cb).to_bytes();
            SplitCounterBlock::from_bytes(black_box(&bytes))
        })
    });
    c.bench_function("key_expansion", |b| {
        b.iter(|| Aes128::new(black_box(&[9u8; 16])))
    });
}

criterion_group!(benches, bench_crypto);
criterion_main!(benches);
