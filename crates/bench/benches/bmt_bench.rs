//! Micro-benchmarks of the Bonsai-Merkle-tree machinery: full and
//! partial rebuilds of a region tree, node hashing and slot updates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use triad_crypto::mac::MacEngine;
use triad_mem::store::SparseStore;
use triad_meta::bmt::{self, NodeBuf, NodeId};
use triad_meta::layout::{MemoryMap, RegionKind};
use triad_sim::config::SystemConfig;

fn bench_bmt(c: &mut Criterion) {
    let engine = MacEngine::new([5; 16]);
    let map = MemoryMap::new(&SystemConfig::tiny());

    c.bench_function("node_hash", |b| {
        let id = NodeId {
            region: RegionKind::Persistent,
            level: 1,
            index: 42,
        };
        b.iter(|| bmt::node_hash(&engine, black_box(id), black_box(&[7u8; 64])))
    });

    c.bench_function("leaf_hash_zero_sentinel", |b| {
        b.iter(|| bmt::leaf_hash(&engine, RegionKind::Persistent, 1, black_box(&[0u8; 64])))
    });

    c.bench_function("node_slot_update", |b| {
        let mut node = NodeBuf::zeroed();
        b.iter(|| {
            node.set_slot(black_box(3), triad_crypto::Mac64(0xABCD));
            node.slot(3)
        })
    });

    let mut group = c.benchmark_group("rebuild");
    for from_level in [0u8, 1, 2] {
        group.bench_with_input(
            BenchmarkId::new("from_level", from_level),
            &from_level,
            |b, &lvl| {
                let layout = map.persistent().clone();
                b.iter_batched(
                    SparseStore::new,
                    |mut store| bmt::rebuild_from_level(&mut store, &layout, &engine, lvl),
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_bmt);
criterion_main!(benches);
