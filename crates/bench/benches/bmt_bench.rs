//! Micro-benchmarks of the Bonsai-Merkle-tree machinery: full and
//! partial rebuilds of a region tree, node hashing and slot updates.

use std::hint::black_box;
use triad_bench::timing::{bench, bench_batched, header};
use triad_crypto::mac::MacEngine;
use triad_mem::store::SparseStore;
use triad_meta::bmt::{self, NodeBuf, NodeId};
use triad_meta::layout::{MemoryMap, RegionKind};
use triad_sim::config::SystemConfig;

fn main() {
    header("bmt");
    let engine = MacEngine::new([5; 16]);
    let map = MemoryMap::new(&SystemConfig::tiny());

    let id = NodeId {
        region: RegionKind::Persistent,
        level: 1,
        index: 42,
    };
    bench("node_hash", || {
        bmt::node_hash(&engine, black_box(id), black_box(&[7u8; 64]))
    });

    bench("leaf_hash_zero_sentinel", || {
        bmt::leaf_hash(&engine, RegionKind::Persistent, 1, black_box(&[0u8; 64]))
    });

    let mut node = NodeBuf::zeroed();
    bench("node_slot_update", || {
        node.set_slot(black_box(3), triad_crypto::Mac64(0xABCD));
        node.slot(3)
    });

    for from_level in [0u8, 1, 2] {
        let layout = map.persistent().clone();
        bench_batched(
            &format!("rebuild/from_level/{from_level}"),
            SparseStore::new,
            |mut store| bmt::rebuild_from_level(&mut store, &layout, &engine, from_level),
        );
    }
}
