//! Per-function persist-effect inference.
//!
//! Every function gets a set of *effects* — what it does to NVM
//! durability state — inferred from a primitive vocabulary at the
//! leaves and propagated transitively through the call graph:
//!
//! | effect | primitive vocabulary |
//! |---|---|
//! | [`APPENDS_LOG`] | `log_append`, `log_txn` |
//! | [`EMITS_COMMIT_MARKER`] | `log_commit`, `log_txn` |
//! | [`PERSISTS_DATA`] | `writeback_data` |
//! | [`PERSISTS_METADATA`] | `l3_touch`, `ctr_touch`, `mt_touch`, `ensure_*`, `reclaim` |
//! | [`DRAINS_WPQ`] | `drain_evictions` |
//! | [`APPLIES_WRITES`] | `apply_writes` |
//! | [`CRASH_BOUNDARY`] | `inject_crash*` |
//!
//! The vocabulary takes precedence over call-graph resolution: a call
//! *named* `log_txn` means append-plus-marker even when the definition
//! is visible, so a single fixture file analysed stand-alone behaves
//! exactly like the same code inside the full workspace.
//!
//! On top of the effect sets, each function gets two flow *summaries* —
//! transfer functions a caller can apply at a call site without
//! re-walking the callee:
//!
//! * [`DrainSummary`] for the eviction-queue discipline:
//!   `pending_out = (dep && pending_in) || set`. An enqueue is
//!   `{dep:_, set:true}`, a drain `{dep:false, set:false}`, an
//!   unrelated call the identity `{dep:true, set:false}`. Composition
//!   is function composition; a brace group (conditional region)
//!   contributes `{dep:true, set: inner.set}` — it can taint the
//!   caller's path but never clean it, exactly the v1 clone-in/OR-out
//!   semantics.
//! * [`WalSummary`] for the WAL protocol: a map from each input state
//!   (idle / appended / committed) to the *set* of possible output
//!   states, plus the set of input states under which executing the
//!   function applies writes without a durable commit marker
//!   (`unsafe_in`).
//!
//! Summaries are computed to a fixpoint (recursion-tolerant, with an
//! iteration cap) so `A → B → C → l3_touch` gives `A` the enqueue
//! summary even though no queue primitive appears in `A`'s own body.

use crate::callgraph::CallGraph;
use crate::symbols::{FnDef, SymbolTable};
use crate::tree::Tok;

/// A bitset of persist effects.
pub type EffectSet = u16;

/// Appends a WAL record (durability point for the payload).
pub const APPENDS_LOG: EffectSet = 1 << 0;
/// Persists a WAL commit marker.
pub const EMITS_COMMIT_MARKER: EffectSet = 1 << 1;
/// Schedules a data-line write-back on the eviction queue.
pub const PERSISTS_DATA: EffectSet = 1 << 2;
/// Schedules a metadata (counter / MAC / BMT) write-back.
pub const PERSISTS_METADATA: EffectSet = 1 << 3;
/// Drains the write-pending queue to NVM.
pub const DRAINS_WPQ: EffectSet = 1 << 4;
/// May cut execution at a persist boundary (crash injection).
pub const CRASH_BOUNDARY: EffectSet = 1 << 5;
/// Applies logged writes to the live index/entry state.
pub const APPLIES_WRITES: EffectSet = 1 << 6;
/// Persists a per-thread recovery checkpoint (value + seqno record).
pub const PERSISTS_CHECKPOINT: EffectSet = 1 << 7;
/// Advances a thread's volatile operation seqno past its checkpoint.
pub const BUMPS_SEQNO: EffectSet = 1 << 8;

/// Human-readable names of the effects set in `e`, for diagnostics.
pub fn effect_names(e: EffectSet) -> Vec<&'static str> {
    let mut out = Vec::new();
    for (bit, name) in [
        (APPENDS_LOG, "AppendsLog"),
        (EMITS_COMMIT_MARKER, "EmitsCommitMarker"),
        (PERSISTS_DATA, "PersistsData"),
        (PERSISTS_METADATA, "PersistsMetadata"),
        (DRAINS_WPQ, "DrainsWpq"),
        (CRASH_BOUNDARY, "CrashBoundary"),
        (APPLIES_WRITES, "AppliesWrites"),
        (PERSISTS_CHECKPOINT, "PersistsCheckpoint"),
        (BUMPS_SEQNO, "BumpsSeqno"),
    ] {
        if e & bit != 0 {
            out.push(name);
        }
    }
    out
}

/// The effects a call has *by name* — the primitive vocabulary. Always
/// consulted before call-graph resolution.
pub fn primitive_effects(name: &str) -> EffectSet {
    match name {
        "l3_touch" | "ctr_touch" | "mt_touch" | "reclaim" | "ensure_counter" | "ensure_node"
        | "ensure_mac_block" => PERSISTS_METADATA,
        "writeback_data" => PERSISTS_DATA,
        "drain_evictions" => DRAINS_WPQ,
        "log_append" => APPENDS_LOG,
        "log_commit" => EMITS_COMMIT_MARKER,
        "log_txn" => APPENDS_LOG | EMITS_COMMIT_MARKER,
        "apply_writes" => APPLIES_WRITES,
        "checkpoint_persist" => PERSISTS_CHECKPOINT,
        "seqno_bump" => BUMPS_SEQNO,
        n if n.starts_with("inject_crash") => CRASH_BOUNDARY,
        _ => 0,
    }
}

/// Eviction-queue transfer function: `pending_out = dep·pending_in ∨ set`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainSummary {
    /// Whether an undrained queue at entry survives to exit.
    pub dep: bool,
    /// Whether the fn leaves the queue non-empty regardless of entry.
    pub set: bool,
}

impl DrainSummary {
    /// Does nothing to the queue.
    pub const IDENTITY: DrainSummary = DrainSummary {
        dep: true,
        set: false,
    };
    /// Enqueues a write-back: pending afterwards, unconditionally.
    pub const ENQUEUE: DrainSummary = DrainSummary {
        dep: false,
        set: true,
    };
    /// Drains the queue: clean afterwards, unconditionally.
    pub const DRAIN: DrainSummary = DrainSummary {
        dep: false,
        set: false,
    };

    /// Applies the transfer to a concrete pending bit.
    pub fn apply(self, pending: bool) -> bool {
        (self.dep && pending) || self.set
    }

    /// Sequential composition: `self` runs first, then `next`.
    pub fn then(self, next: DrainSummary) -> DrainSummary {
        DrainSummary {
            dep: next.dep && self.dep,
            set: (next.dep && self.set) || next.set,
        }
    }

    /// The transfer a conditional region (brace group) with body
    /// summary `self` contributes to its parent: the region may not
    /// run, so it can taint the parent (`set`) but never clean it.
    pub fn branched(self) -> DrainSummary {
        DrainSummary {
            dep: true,
            set: self.set,
        }
    }
}

/// WAL protocol states (a bitset — analyses track *sets* of states).
pub const ST_IDLE: u8 = 1;
/// A transaction is appended but its commit marker may not be durable.
pub const ST_APPENDED: u8 = 2;
/// The commit marker is durable; applying writes is safe.
pub const ST_COMMITTED: u8 = 4;

/// WAL transfer function: per input state, the set of possible output
/// states, plus the input states under which the fn applies writes
/// without a durable commit marker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalSummary {
    /// `out[i]` is the output state set for input state `1 << i`.
    pub out: [u8; 3],
    /// Input states on which executing the fn is a protocol violation.
    pub unsafe_in: u8,
}

impl WalSummary {
    /// Does nothing to the WAL.
    pub const IDENTITY: WalSummary = WalSummary {
        out: [ST_IDLE, ST_APPENDED, ST_COMMITTED],
        unsafe_in: 0,
    };
    /// `log_append`: any state → appended.
    pub const APPEND: WalSummary = WalSummary {
        out: [ST_APPENDED; 3],
        unsafe_in: 0,
    };
    /// `log_commit` / `log_txn`: any state → committed.
    pub const COMMIT: WalSummary = WalSummary {
        out: [ST_COMMITTED; 3],
        unsafe_in: 0,
    };
    /// `apply_writes`: only safe from committed; any state → idle.
    pub const APPLY: WalSummary = WalSummary {
        out: [ST_IDLE; 3],
        unsafe_in: ST_IDLE | ST_APPENDED,
    };

    /// Applies the transfer to a concrete state set.
    pub fn apply(self, states: u8) -> u8 {
        let mut out = 0;
        for (b, o) in self.out.iter().enumerate() {
            if states & (1 << b) != 0 {
                out |= o;
            }
        }
        out
    }

    /// Whether executing the fn from any state in `states` violates
    /// the protocol.
    pub fn unsafe_on(self, states: u8) -> bool {
        self.unsafe_in & states != 0
    }

    /// Sequential composition: `self` runs first, then `next`.
    pub fn then(self, next: WalSummary) -> WalSummary {
        let mut out = [0u8; 3];
        let mut unsafe_in = self.unsafe_in;
        for (b, slot) in out.iter_mut().enumerate() {
            let mid = self.out[b];
            *slot = next.apply(mid);
            if next.unsafe_in & mid != 0 {
                unsafe_in |= 1 << b;
            }
        }
        WalSummary { out, unsafe_in }
    }

    /// The transfer a conditional region with body summary `self`
    /// contributes to its parent (region may not run: union with the
    /// unchanged input state).
    pub fn branched(self) -> WalSummary {
        let mut out = [0u8; 3];
        for (b, slot) in out.iter_mut().enumerate() {
            *slot = (1 << b) | self.out[b];
        }
        WalSummary {
            out,
            unsafe_in: self.unsafe_in,
        }
    }
}

/// The drain transfer a call has by name, when it has one.
pub fn primitive_drain(name: &str) -> Option<DrainSummary> {
    let e = primitive_effects(name);
    if e & (PERSISTS_METADATA | PERSISTS_DATA) != 0 {
        Some(DrainSummary::ENQUEUE)
    } else if e & DRAINS_WPQ != 0 {
        Some(DrainSummary::DRAIN)
    } else {
        None
    }
}

/// The WAL transfer a call has by name, when it has one.
pub fn primitive_wal(name: &str) -> Option<WalSummary> {
    match name {
        "log_append" => Some(WalSummary::APPEND),
        "log_commit" | "log_txn" => Some(WalSummary::COMMIT),
        "apply_writes" => Some(WalSummary::APPLY),
        _ => None,
    }
}

/// The checkpoint transfer a call has by name, when it has one.
///
/// The recoverable-structure completion contract reuses the
/// [`WalSummary`] state machine with only two live states:
/// `checkpoint_persist` makes the thread's completion record durable
/// (any state → committed, like a commit marker), and `seqno_bump`
/// consumes it (committed → idle). Bumping the volatile seqno from a
/// non-committed state is the violation: after a crash the thread's
/// durable checkpoint lags its volatile progress and recovery
/// re-executes an operation that already took effect.
pub fn primitive_ckpt(name: &str) -> Option<WalSummary> {
    match name {
        "checkpoint_persist" => Some(WalSummary::COMMIT),
        "seqno_bump" => Some(WalSummary::APPLY),
        _ => None,
    }
}

/// Inferred effects and summaries, parallel to [`SymbolTable::fns`].
#[derive(Debug, Default)]
pub struct EffectTable {
    /// Transitive effect set per fn.
    pub effects: Vec<EffectSet>,
    /// Eviction-queue transfer per fn.
    pub drains: Vec<DrainSummary>,
    /// WAL transfer per fn.
    pub wals: Vec<WalSummary>,
    /// Checkpoint/seqno transfer per fn (recov completion contract).
    pub ckpts: Vec<WalSummary>,
}

/// Iteration cap for the fixpoint: summaries propagate at least one
/// call-graph level per pass, and no real chain in this workspace is
/// anywhere near this deep. A cycle that fails to converge is left at
/// its last (conservative, monotone-grown) value.
const MAX_PASSES: usize = 16;

impl EffectTable {
    /// Infers effects and summaries for every fn to a fixpoint.
    pub fn build(symbols: &SymbolTable, _graph: &CallGraph) -> EffectTable {
        let n = symbols.fns.len();
        let mut t = EffectTable {
            effects: vec![0; n],
            drains: vec![DrainSummary::IDENTITY; n],
            wals: vec![WalSummary::IDENTITY; n],
            ckpts: vec![WalSummary::IDENTITY; n],
        };
        for _ in 0..MAX_PASSES {
            let mut changed = false;
            for (i, f) in symbols.fns.iter().enumerate() {
                // A fn that *is* vocabulary keeps its primitive effect
                // even if its body is opaque to the scanner.
                let mut eff = primitive_effects(&f.name);
                let mut dr = DrainSummary::IDENTITY;
                let mut wal = WalSummary::IDENTITY;
                let mut ck = WalSummary::IDENTITY;
                summarize(
                    &f.body, f, symbols, &t, &mut eff, &mut dr, &mut wal, &mut ck,
                );
                if eff != t.effects[i] || dr != t.drains[i] || wal != t.wals[i] || ck != t.ckpts[i]
                {
                    t.effects[i] = eff;
                    t.drains[i] = dr;
                    t.wals[i] = wal;
                    t.ckpts[i] = ck;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        t
    }
}

/// One symbolic pass over a body: accumulates effects and composes the
/// running transfer. Mirrors the concrete walker in
/// `rules::persist_order`: call arguments evaluate before the call
/// takes effect, brace groups are conditional regions, other groups
/// are transparent.
#[allow(clippy::too_many_arguments)]
fn summarize(
    toks: &[Tok],
    f: &FnDef,
    symbols: &SymbolTable,
    t: &EffectTable,
    eff: &mut EffectSet,
    dr: &mut DrainSummary,
    wal: &mut WalSummary,
    ck: &mut WalSummary,
) {
    let mut i = 0;
    while i < toks.len() {
        let call = toks[i]
            .ident()
            .filter(|_| matches!(toks.get(i + 1), Some(g) if g.is_group('(')))
            .filter(|_| {
                // `fn name(params)` inside a body is a nested
                // definition, not a call.
                !(i > 0 && (toks[i - 1].is_ident("fn") || toks[i - 1].is_ident("struct")))
            });
        if let Some(name) = call {
            if let Some(Tok::Group { tokens, .. }) = toks.get(i + 1) {
                summarize(tokens, f, symbols, t, eff, dr, wal, ck);
            }
            let pe = primitive_effects(name);
            if pe != 0 {
                *eff |= pe;
                if let Some(d) = primitive_drain(name) {
                    *dr = dr.then(d);
                }
                if let Some(w) = primitive_wal(name) {
                    *wal = wal.then(w);
                }
                if let Some(c) = primitive_ckpt(name) {
                    *ck = ck.then(c);
                }
            } else if let Some(c) = symbols.resolve(f, name) {
                *eff |= t.effects[c];
                *dr = dr.then(t.drains[c]);
                *wal = wal.then(t.wals[c]);
                *ck = ck.then(t.ckpts[c]);
            }
            i += 2;
            continue;
        }
        match &toks[i] {
            Tok::Group {
                delim: '{', tokens, ..
            } => {
                let mut ieff = 0;
                let mut idr = DrainSummary::IDENTITY;
                let mut iwal = WalSummary::IDENTITY;
                let mut ick = WalSummary::IDENTITY;
                summarize(
                    tokens, f, symbols, t, &mut ieff, &mut idr, &mut iwal, &mut ick,
                );
                *eff |= ieff;
                *dr = dr.then(idr.branched());
                *wal = wal.then(iwal.branched());
                *ck = ck.then(ick.branched());
            }
            Tok::Group { tokens, .. } => {
                summarize(tokens, f, symbols, t, eff, dr, wal, ck);
            }
            _ => {}
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::FileAnalysis;

    fn build(src: &str) -> (SymbolTable, EffectTable) {
        let fa = FileAnalysis::new("crates/core/src/x.rs", src);
        let symbols = SymbolTable::build(std::slice::from_ref(&fa));
        let graph = CallGraph::build(&symbols);
        let effects = EffectTable::build(&symbols, &graph);
        (symbols, effects)
    }

    fn idx(s: &SymbolTable, name: &str) -> usize {
        s.fns.iter().position(|f| f.name == name).unwrap()
    }

    #[test]
    fn effects_propagate_through_call_chains() {
        let (s, t) = build(
            "fn a(&mut self) { b() }\nfn b(&mut self) { c() }\nfn c(&mut self) { self.l3_touch(1); }\n",
        );
        assert_eq!(t.effects[idx(&s, "a")], PERSISTS_METADATA);
        assert_eq!(effect_names(t.effects[idx(&s, "a")]), ["PersistsMetadata"]);
    }

    #[test]
    fn drain_summaries_compose_and_branch() {
        let (s, t) = build(
            "fn enq() { l3_touch(1); }\n\
             fn enq_then_drain() { l3_touch(1); drain_evictions(0); }\n\
             fn cond_drain() { l3_touch(1); if x { drain_evictions(0); } }\n",
        );
        assert_eq!(t.drains[idx(&s, "enq")], DrainSummary::ENQUEUE);
        assert_eq!(t.drains[idx(&s, "enq_then_drain")], DrainSummary::DRAIN);
        // A conditional drain cannot clean the path: still pending.
        assert_eq!(t.drains[idx(&s, "cond_drain")], DrainSummary::ENQUEUE);
    }

    #[test]
    fn wal_summaries_track_protocol_states() {
        let (s, t) = build(
            "fn good() { log_txn(x); apply_writes(x); }\n\
             fn bad() { log_append(x); apply_writes(x); }\n\
             fn cond_commit() { log_append(x); if y { log_commit(x); } apply_writes(x); }\n",
        );
        let good = t.wals[idx(&s, "good")];
        assert_eq!(good.unsafe_in, 0);
        assert_eq!(good.apply(ST_IDLE), ST_IDLE);
        let bad = t.wals[idx(&s, "bad")];
        assert_ne!(bad.unsafe_in & ST_IDLE, 0, "applies while only appended");
        let cond = t.wals[idx(&s, "cond_commit")];
        assert_ne!(
            cond.unsafe_in & ST_IDLE,
            0,
            "commit under an if leaves maybe-uncommitted alive"
        );
    }

    #[test]
    fn ckpt_summaries_track_persist_before_bump() {
        let (s, t) = build(
            "fn good() { checkpoint_persist(m); seqno_bump(); }\n\
             fn bad() { seqno_bump(); checkpoint_persist(m); }\n\
             fn cond_persist() { if y { checkpoint_persist(m); } seqno_bump(); }\n\
             fn wrapper() { good(); }\n",
        );
        let good = t.ckpts[idx(&s, "good")];
        assert_eq!(good.unsafe_in, 0);
        assert_eq!(good.apply(ST_IDLE), ST_IDLE);
        let bad = t.ckpts[idx(&s, "bad")];
        assert_ne!(bad.unsafe_in & ST_IDLE, 0, "bump before the checkpoint");
        let cond = t.ckpts[idx(&s, "cond_persist")];
        assert_ne!(
            cond.unsafe_in & ST_IDLE,
            0,
            "checkpoint under an if leaves maybe-unpersisted alive"
        );
        // Summaries propagate: the wrapper inherits the safe transfer
        // and both effect bits.
        assert_eq!(t.ckpts[idx(&s, "wrapper")].unsafe_in, 0);
        let eff = t.effects[idx(&s, "wrapper")];
        assert_ne!(eff & PERSISTS_CHECKPOINT, 0);
        assert_ne!(eff & BUMPS_SEQNO, 0);
    }

    #[test]
    fn vocabulary_beats_resolution() {
        // A local fn *named* log_txn is still append+commit by name —
        // the contract is attached to the vocabulary, so fixtures and
        // the real workspace agree.
        let (s, t) = build(
            "fn log_txn(&mut self) { }\nfn op(&mut self) { self.log_txn(); apply_writes(x); }\n",
        );
        let op = t.wals[idx(&s, "op")];
        assert_eq!(op.unsafe_in, 0, "txn committed before apply");
        assert_ne!(t.effects[idx(&s, "op")] & EMITS_COMMIT_MARKER, 0);
    }
}
