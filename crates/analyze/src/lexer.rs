//! A hand-rolled Rust lexer, sufficient for linting.
//!
//! Produces a flat token stream with `file:line:col` spans. The point
//! is not to parse Rust — it is to *never* mistake the inside of a
//! comment, string, raw string, char literal or lifetime for code, so
//! that token-level rules (and the `// triad-lint: allow(...)`
//! suppression scanner) are trustworthy. Anything the lexer does not
//! recognise becomes a single-character punctuation token.

/// A source position (1-based line and column, in characters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

/// What a token is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `HashMap`, `r#match`, ...).
    Ident(String),
    /// A single punctuation character (`.`, `!`, `<`, `{`, ...).
    Punct(char),
    /// A string / char / byte / numeric literal (contents discarded).
    Literal,
    /// A lifetime or loop label (`'a`, `'static`, `'outer`).
    Lifetime,
}

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token's kind and payload.
    pub kind: TokenKind,
    /// Where it starts.
    pub span: Span,
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Whether this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.ident() == Some(name)
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

/// A comment, kept out of the token stream but retained for the
/// suppression scanner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Comment text without the `//` / `/* */` markers.
    pub text: String,
    /// Line the comment starts on.
    pub line: u32,
    /// Line the comment ends on (same as `line` for `//` comments).
    pub end_line: u32,
}

/// Result of lexing one file.
#[derive(Debug, Clone, Default)]
pub struct LexOutput {
    /// Code tokens in order.
    pub tokens: Vec<Token>,
    /// Comments in order.
    pub comments: Vec<Comment>,
}

struct Cursor<'a> {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    src: std::marker::PhantomData<&'a ()>,
}

impl Cursor<'_> {
    fn new(src: &str) -> Self {
        Cursor {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
            src: std::marker::PhantomData,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn span(&self) -> Span {
        Span {
            line: self.line,
            col: self.col,
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into tokens and comments. Never fails: malformed input
/// degrades into punctuation tokens rather than an error, which is the
/// right trade for a linter (the compiler owns rejecting bad syntax).
pub fn lex(src: &str) -> LexOutput {
    let mut cur = Cursor::new(src);
    let mut out = LexOutput::default();
    while let Some(c) = cur.peek() {
        let span = cur.span();
        match c {
            _ if c.is_whitespace() => {
                cur.bump();
            }
            '/' if cur.peek_at(1) == Some('/') => {
                let mut text = String::new();
                while let Some(ch) = cur.peek() {
                    if ch == '\n' {
                        break;
                    }
                    text.push(ch);
                    cur.bump();
                }
                out.comments.push(Comment {
                    text,
                    line: span.line,
                    end_line: span.line,
                });
            }
            '/' if cur.peek_at(1) == Some('*') => {
                cur.bump();
                cur.bump();
                let mut depth = 1u32;
                let mut text = String::new();
                while depth > 0 {
                    match (cur.peek(), cur.peek_at(1)) {
                        (Some('/'), Some('*')) => {
                            depth += 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some('*'), Some('/')) => {
                            depth -= 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(ch), _) => {
                            text.push(ch);
                            cur.bump();
                        }
                        (None, _) => break, // unterminated: EOF ends it
                    }
                }
                out.comments.push(Comment {
                    text,
                    line: span.line,
                    end_line: cur.line,
                });
            }
            '"' => {
                lex_string(&mut cur);
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    span,
                });
            }
            '\'' => {
                lex_quote(&mut cur, &mut out, span);
            }
            'r' | 'b' if starts_prefixed_literal(&cur) => {
                lex_prefixed_literal(&mut cur, &mut out, span);
            }
            _ if c.is_ascii_digit() => {
                lex_number(&mut cur);
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    span,
                });
            }
            _ if is_ident_start(c) => {
                let mut name = String::new();
                while let Some(ch) = cur.peek() {
                    if !is_ident_continue(ch) {
                        break;
                    }
                    name.push(ch);
                    cur.bump();
                }
                out.tokens.push(Token {
                    kind: TokenKind::Ident(name),
                    span,
                });
            }
            _ => {
                cur.bump();
                out.tokens.push(Token {
                    kind: TokenKind::Punct(c),
                    span,
                });
            }
        }
    }
    out
}

/// Does the cursor sit on `r"`, `r#"`, `r#ident`, `b"`, `b'`, `br"`,
/// `br#"` — i.e. a prefixed literal or raw identifier (anything where
/// the leading `r`/`b` must not lex as a plain identifier)?
fn starts_prefixed_literal(cur: &Cursor<'_>) -> bool {
    let mut i = 1;
    if cur.peek() == Some('b') && cur.peek_at(1) == Some('r') {
        i = 2;
    }
    loop {
        match cur.peek_at(i) {
            Some('#') => i += 1,
            Some('"') => return true,
            Some('\'') => return i == 1 && cur.peek() == Some('b'),
            Some(ch) if i >= 2 && cur.peek() == Some('r') && is_ident_start(ch) => {
                // `r#ident` raw identifier (only directly after `r#`).
                return i == 2;
            }
            _ => return false,
        }
    }
}

fn lex_prefixed_literal(cur: &mut Cursor<'_>, out: &mut LexOutput, span: Span) {
    let raw_ident = cur.peek() == Some('r')
        && cur.peek_at(1) == Some('#')
        && cur.peek_at(2).is_some_and(is_ident_start);
    if raw_ident {
        cur.bump(); // r
        cur.bump(); // #
        let mut name = String::new();
        while let Some(ch) = cur.peek() {
            if !is_ident_continue(ch) {
                break;
            }
            name.push(ch);
            cur.bump();
        }
        out.tokens.push(Token {
            kind: TokenKind::Ident(name),
            span,
        });
        return;
    }
    if cur.peek() == Some('b') {
        cur.bump();
    }
    if cur.peek() == Some('\'') {
        // b'x' byte literal.
        cur.bump();
        if cur.peek() == Some('\\') {
            // Multi-character escapes (`b'\x41'`, `b'\''`) run to the
            // closing quote; consuming a fixed two characters would
            // leak `41'` back into the token stream as code. The
            // escaped character itself is consumed first so `b'\''`
            // does not stop at the escaped quote.
            cur.bump();
            cur.bump();
            while let Some(ch) = cur.bump() {
                if ch == '\'' {
                    break;
                }
            }
        } else {
            cur.bump();
            if cur.peek() == Some('\'') {
                cur.bump();
            }
        }
        out.tokens.push(Token {
            kind: TokenKind::Literal,
            span,
        });
        return;
    }
    let raw = cur.peek() == Some('r');
    if raw {
        cur.bump();
        let mut hashes = 0usize;
        while cur.peek() == Some('#') {
            hashes += 1;
            cur.bump();
        }
        cur.bump(); // opening quote
        loop {
            match cur.bump() {
                None => break,
                Some('"') => {
                    let mut matched = 0usize;
                    while matched < hashes && cur.peek() == Some('#') {
                        matched += 1;
                        cur.bump();
                    }
                    if matched == hashes {
                        break;
                    }
                }
                Some(_) => {}
            }
        }
    } else {
        lex_string(cur);
    }
    out.tokens.push(Token {
        kind: TokenKind::Literal,
        span,
    });
}

/// Consumes a `"..."` string (cursor on the opening quote).
fn lex_string(cur: &mut Cursor<'_>) {
    cur.bump();
    while let Some(ch) = cur.bump() {
        match ch {
            '\\' => {
                cur.bump();
            }
            '"' => break,
            _ => {}
        }
    }
}

/// Consumes a `'` that starts either a char literal or a lifetime.
fn lex_quote(cur: &mut Cursor<'_>, out: &mut LexOutput, span: Span) {
    cur.bump(); // the quote
    match (cur.peek(), cur.peek_at(1)) {
        (Some('\\'), _) => {
            // Escaped char literal: '\n', '\'', '\u{..}'. The escaped
            // character is consumed before scanning for the closing
            // quote, so '\'' terminates on the real closer instead of
            // the escaped quote (which used to leak a stray `'`).
            cur.bump();
            cur.bump();
            while let Some(ch) = cur.bump() {
                if ch == '\'' {
                    break;
                }
            }
            out.tokens.push(Token {
                kind: TokenKind::Literal,
                span,
            });
        }
        (Some(c0), Some('\'')) if c0 != '\'' => {
            // 'x' — plain char literal.
            cur.bump();
            cur.bump();
            out.tokens.push(Token {
                kind: TokenKind::Literal,
                span,
            });
        }
        (Some(c0), _) if is_ident_start(c0) => {
            // Lifetime or label: 'a, 'static, '_.
            while let Some(ch) = cur.peek() {
                if !is_ident_continue(ch) {
                    break;
                }
                cur.bump();
            }
            out.tokens.push(Token {
                kind: TokenKind::Lifetime,
                span,
            });
        }
        _ => {
            // Degenerate (`'(`...): treat the quote as punctuation.
            out.tokens.push(Token {
                kind: TokenKind::Punct('\''),
                span,
            });
        }
    }
}

/// Consumes a numeric literal (cursor on its first digit). Handles
/// `0x1F`, `1_000u64`, `1.5e-3` — and stops before `..` so ranges like
/// `1..=3` lex as literal-punct-punct.
fn lex_number(cur: &mut Cursor<'_>) {
    while let Some(ch) = cur.peek() {
        let continues = ch.is_ascii_alphanumeric()
            || ch == '_'
            // Decimal point, but not the `..` of a range like `1..=3`.
            || (ch == '.' && cur.peek_at(1).is_some_and(|d| d.is_ascii_digit()))
            // Exponent sign in `1e-3`.
            || ((ch == '+' || ch == '-')
                && matches!(
                    cur.chars.get(cur.pos.wrapping_sub(1)),
                    Some('e') | Some('E')
                ));
        if !continues {
            break;
        }
        cur.bump();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_code() {
        let src = r##"
            // HashMap in a comment
            /* HashMap in a block /* nested HashMap */ still */
            let s = "HashMap in a string";
            let r = r#"raw HashMap"# ;
            let b = b"bytes HashMap";
            use std::collections::BTreeMap;
        "##;
        let ids = idents(src);
        assert!(!ids.iter().any(|i| i == "HashMap"), "{ids:?}");
        assert!(ids.iter().any(|i| i == "BTreeMap"));
    }

    #[test]
    fn comment_text_is_retained_for_suppressions() {
        let out = lex("let x = 1; // triad-lint: allow(panic-policy)\n");
        assert_eq!(out.comments.len(), 1);
        assert!(out.comments[0].text.contains("triad-lint"));
        assert_eq!(out.comments[0].line, 1);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let out = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes = out
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        let literals = out
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .count();
        assert_eq!(lifetimes, 2);
        assert_eq!(literals, 1);
    }

    #[test]
    fn escaped_char_literals() {
        let ids = idents(r"let nl = '\n'; let q = '\''; let u = '\u{41}'; after");
        assert!(ids.contains(&"after".to_string()));
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        let out = lex("for i in 1..=3 { } let f = 1.5e-3; let h = 0x5EC0_11D5;");
        // `1..=3` must produce punct '.' '.' '=' between two literals.
        let puncts: Vec<char> = out
            .tokens
            .iter()
            .filter_map(|t| match t.kind {
                TokenKind::Punct(c) => Some(c),
                _ => None,
            })
            .collect();
        assert!(puncts.windows(2).any(|w| w == ['.', '.']), "{puncts:?}");
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        assert!(idents("let r#match = 1;").contains(&"match".to_string()));
    }

    #[test]
    fn spans_are_one_based_lines_and_cols() {
        let out = lex("a\n  b");
        assert_eq!(out.tokens[0].span, Span { line: 1, col: 1 });
        assert_eq!(out.tokens[1].span, Span { line: 2, col: 3 });
    }

    #[test]
    fn unterminated_constructs_do_not_hang() {
        lex("/* never closed");
        lex("\"never closed");
        lex("r#\"never closed");
    }

    #[test]
    fn raw_strings_hide_contents_at_any_hash_depth() {
        // Multi-hash raw strings, embedded quote-hash runs shorter than
        // the delimiter, and multi-line bodies must all lex as one
        // literal — a misattributed token here becomes a phantom lint.
        let src = "let a = r\"HashMap\"; let b = r##\"quote\"# still HashMap \"##; after_raw";
        let ids = idents(src);
        assert!(!ids.iter().any(|i| i == "HashMap"), "{ids:?}");
        assert!(ids.contains(&"after_raw".to_string()));
        let multiline =
            "let s = r#\"line one\n// HashMap in line two\nunwrap() in line three\"#;\ntail";
        let ids = idents(multiline);
        assert!(
            !ids.iter().any(|i| i == "HashMap" || i == "unwrap"),
            "{ids:?}"
        );
        assert!(ids.contains(&"tail".to_string()));
        // And the comment scanner must not see comment markers inside.
        assert!(lex(multiline).comments.is_empty());
    }

    #[test]
    fn nested_block_comments_track_depth() {
        let src = "/* outer /* inner /* deepest HashMap */ */ unwrap() */ survivor";
        let out = lex(src);
        let ids: Vec<_> = out.tokens.iter().filter_map(|t| t.ident()).collect();
        assert_eq!(ids, ["survivor"], "{ids:?}");
        assert_eq!(out.comments.len(), 1);
        // String delimiters inside a comment must not open a literal.
        let tricky = "/* \" */ visible";
        assert!(lex(tricky).tokens.iter().any(|t| t.is_ident("visible")));
    }

    #[test]
    fn byte_strings_and_raw_byte_strings_are_single_literals() {
        let src = r##"let a = b"Hash\"Map"; let b = br#"raw HashMap "# ; after_bytes"##;
        let ids = idents(src);
        assert!(!ids.iter().any(|i| i == "HashMap" || i == "Map"), "{ids:?}");
        assert!(ids.contains(&"after_bytes".to_string()));
    }

    #[test]
    fn byte_literal_multichar_escapes_do_not_leak() {
        // Regression: `b'\x41'` used to consume only two characters of
        // the escape, leaking `41'` back into the stream where the
        // stray quote could swallow following code as a "char literal".
        let ids = idents(r"let nl = b'\n'; let hex = b'\x41'; let q = b'\''; HashMapAfter");
        assert_eq!(ids, ["let", "nl", "let", "hex", "let", "q", "HashMapAfter"]);
    }

    #[test]
    fn escaped_quote_char_literal_does_not_leak_a_stray_quote() {
        // Regression: '\'' used to terminate on the escaped quote,
        // leaving the real closer behind as a stray token.
        let out = lex(r"let q = '\''; let l: &'a str = x;");
        let stray = out
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Punct('\''))
            .count();
        assert_eq!(stray, 0, "no stray quote puncts: {:?}", out.tokens);
        let lifetimes = out
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        assert_eq!(lifetimes, 1);
    }
}
