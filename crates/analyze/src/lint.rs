//! The lint framework: analysed files, rules, findings, suppressions,
//! and the human / JSON renderers.

use crate::lexer::{self, Comment};
use crate::tree::{self, Tok};

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Worth fixing; does not fail a default run.
    Warning,
    /// Fails the run.
    Error,
}

impl Severity {
    /// Lowercase display name.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule ID (`determinism/hash-order`, ...).
    pub rule: &'static str,
    /// The rule's severity.
    pub severity: Severity,
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable explanation.
    pub message: String,
}

/// One parsed `// triad-lint: allow(...)` directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// Line the directive anchors to (a block comment anchors to its
    /// ending line).
    pub line: u32,
    /// The rule IDs being allowed (or `all`).
    pub rules: Vec<String>,
    /// Whether a `-- reason` rationale follows the closing paren.
    pub has_rationale: bool,
}

/// A source file, lexed and pre-digested for the rules.
#[derive(Debug)]
pub struct FileAnalysis {
    /// Workspace-relative path with forward slashes
    /// (`crates/core/src/engine.rs`).
    pub path: String,
    /// The nested token tree.
    pub toks: Vec<Tok>,
    /// Inclusive line ranges occupied by `#[test]` / `#[cfg(test)]`
    /// items.
    pub test_ranges: Vec<(u32, u32)>,
    /// Parsed `triad-lint: allow(...)` directives.
    pub suppressions: Vec<Suppression>,
}

impl FileAnalysis {
    /// Lexes and digests one file. `path` is the workspace-relative
    /// path the rules scope on — callers may pass a *virtual* path to
    /// lint fixture text as if it lived elsewhere.
    pub fn new(path: &str, source: &str) -> Self {
        let lexed = lexer::lex(source);
        let toks = tree::build(&lexed.tokens);
        let test_ranges = tree::test_line_ranges(&toks);
        let suppressions = parse_suppressions(&lexed.comments);
        FileAnalysis {
            path: path.replace('\\', "/"),
            toks,
            test_ranges,
            suppressions,
        }
    }

    /// Whether `line` is inside test-only code — either a `#[test]` /
    /// `#[cfg(test)]` item or a file under a `tests/` directory.
    pub fn is_test_line(&self, line: u32) -> bool {
        self.is_test_file()
            || self
                .test_ranges
                .iter()
                .any(|(a, b)| (*a..=*b).contains(&line))
    }

    /// Whether the whole file is test code (an integration-test tree).
    pub fn is_test_file(&self) -> bool {
        self.path.starts_with("tests/") || self.path.contains("/tests/")
    }

    /// Whether findings of `rule` on `line` are suppressed: an
    /// `// triad-lint: allow(rule)` comment suppresses its own line
    /// and the line immediately below it.
    pub fn is_suppressed(&self, rule: &str, line: u32) -> bool {
        self.suppressions.iter().any(|s| {
            (s.line == line || s.line + 1 == line)
                && s.rules.iter().any(|r| r == rule || r == "all")
        })
    }

    /// Whether the path sits under any of `prefixes`.
    pub fn in_any(&self, prefixes: &[&str]) -> bool {
        prefixes.iter().any(|p| self.path.starts_with(p))
    }
}

/// Extracts `triad-lint: allow(a, b) -- reason` directives from
/// comments. A block comment anchors to its *ending* line, so the
/// directive can sit in a comment block directly above the code it
/// excuses.
///
/// The directive must be the *start* of the comment (after the `//` /
/// `/*` marker, doc-comment `!`, and whitespace). Anchoring matters:
/// prose that merely mentions the syntax — the module docs of this very
/// crate do — must not become a live suppression, and an `allow(all)`
/// example in a doc comment must never silence real findings on the
/// line below it.
fn parse_suppressions(comments: &[Comment]) -> Vec<Suppression> {
    let mut out = Vec::new();
    for c in comments {
        let body = c.text.trim_start_matches(['/', '*', '!']).trim_start();
        let Some(rest) = body.strip_prefix("triad-lint:") else {
            continue;
        };
        let rest = rest.trim_start();
        let Some(args) = rest.strip_prefix("allow(") else {
            continue;
        };
        let Some(close) = args.find(')') else {
            continue;
        };
        let rules: Vec<String> = args[..close]
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        let tail = args[close + 1..].trim();
        let has_rationale = tail
            .strip_prefix("--")
            .is_some_and(|r| !r.trim_matches(['*', '/', ' ', '\t']).is_empty());
        if !rules.is_empty() {
            out.push(Suppression {
                line: c.end_line,
                rules,
                has_rationale,
            });
        }
    }
    out
}

/// A lint rule.
pub trait Rule {
    /// Stable rule ID, e.g. `determinism/hash-order`.
    fn id(&self) -> &'static str;
    /// Severity of this rule's findings.
    fn severity(&self) -> Severity;
    /// One-line description for `--list-rules` and docs.
    fn description(&self) -> &'static str;
    /// Runs the rule over one file, pushing findings.
    fn check(&self, file: &FileAnalysis, out: &mut Vec<Finding>);
}

/// A lint rule that needs the whole workspace — symbol table, call
/// graph and effect inference — rather than one file at a time.
/// Workspace rules run after the per-file rules; their findings pass
/// through the same per-file suppression filter.
pub trait WorkspaceRule {
    /// Stable rule ID, e.g. `persist-order`.
    fn id(&self) -> &'static str;
    /// Severity of this rule's findings.
    fn severity(&self) -> Severity;
    /// One-line description for `--list-rules` and docs.
    fn description(&self) -> &'static str;
    /// Runs the rule over the workspace, pushing findings.
    fn check(&self, ws: &crate::Workspace, out: &mut Vec<Finding>);
}

/// Runs `rules` over `file`, dropping suppressed findings.
/// `suppression-rationale` findings are exempt from the filter: a bare
/// `allow(all)` must not silence the warning demanding its rationale.
pub fn run_rules(file: &FileAnalysis, rules: &[Box<dyn Rule>], out: &mut Vec<Finding>) {
    let mut raw = Vec::new();
    for rule in rules {
        rule.check(file, &mut raw);
    }
    out.extend(
        raw.into_iter()
            .filter(|f| f.rule == "suppression-rationale" || !file.is_suppressed(f.rule, f.line)),
    );
}

/// Renders findings for terminals, one line each, plus a summary line.
pub fn render_human(findings: &[Finding], files_scanned: usize) -> String {
    let mut s = String::new();
    for f in findings {
        s.push_str(&format!(
            "{}:{}:{} {}[{}]: {}\n",
            f.path,
            f.line,
            f.col,
            f.severity.as_str(),
            f.rule,
            f.message
        ));
    }
    let errors = findings
        .iter()
        .filter(|f| f.severity == Severity::Error)
        .count();
    let warnings = findings.len() - errors;
    if findings.is_empty() {
        s.push_str(&format!("triad-lint: clean ({files_scanned} files)\n"));
    } else {
        s.push_str(&format!(
            "triad-lint: {} finding{} ({errors} error{}, {warnings} warning{}) in {files_scanned} files\n",
            findings.len(),
            if findings.len() == 1 { "" } else { "s" },
            if errors == 1 { "" } else { "s" },
            if warnings == 1 { "" } else { "s" },
        ));
    }
    s
}

/// Renders findings as a single JSON object (hand-rolled — the
/// zero-dependency policy applies to the linter too).
pub fn render_json(findings: &[Finding], files_scanned: usize) -> String {
    let mut s = String::from("{\"files_scanned\":");
    s.push_str(&files_scanned.to_string());
    s.push_str(",\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"rule\":{},\"severity\":{},\"path\":{},\"line\":{},\"col\":{},\"message\":{}}}",
            json_str(f.rule),
            json_str(f.severity.as_str()),
            json_str(&f.path),
            f.line,
            f.col,
            json_str(&f.message)
        ));
    }
    s.push_str("]}");
    s
}

fn json_str(v: &str) -> String {
    let mut s = String::with_capacity(v.len() + 2);
    s.push('"');
    for c in v.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\r' => s.push_str("\\r"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => s.push_str(&format!("\\u{:04x}", c as u32)),
            c => s.push(c),
        }
    }
    s.push('"');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppression_covers_own_line_and_next() {
        let src = "// triad-lint: allow(x/y)\nline2();\nline3();\n";
        let f = FileAnalysis::new("crates/core/src/a.rs", src);
        assert!(f.is_suppressed("x/y", 1));
        assert!(f.is_suppressed("x/y", 2));
        assert!(!f.is_suppressed("x/y", 3));
        assert!(!f.is_suppressed("other", 2));
    }

    #[test]
    fn suppression_parses_multiple_rules() {
        let src = "foo(); // triad-lint: allow(a, b/c)\n";
        let f = FileAnalysis::new("x.rs", src);
        assert!(f.is_suppressed("a", 1));
        assert!(f.is_suppressed("b/c", 1));
    }

    #[test]
    fn suppression_records_rationale_presence() {
        let src = "a(); // triad-lint: allow(x) -- invariant held by caller\n\
                   b(); // triad-lint: allow(y)\n\
                   c(); // triad-lint: allow(z) --\n";
        let f = FileAnalysis::new("x.rs", src);
        assert_eq!(f.suppressions.len(), 3);
        assert!(f.suppressions[0].has_rationale);
        assert!(!f.suppressions[1].has_rationale, "no -- tail");
        assert!(!f.suppressions[2].has_rationale, "empty -- tail");
        // All three still suppress their rules.
        assert!(f.is_suppressed("x", 1) && f.is_suppressed("y", 2) && f.is_suppressed("z", 3));
    }

    #[test]
    fn suppression_must_anchor_at_comment_start() {
        // Prose that mentions the syntax is not a directive: an
        // `allow(all)` example in a doc comment must never silence the
        // line below it.
        let src = "//! docs mention `// triad-lint: allow(all)` here\nreal_code();\n";
        let f = FileAnalysis::new("x.rs", src);
        assert!(f.suppressions.is_empty(), "{:?}", f.suppressions);
        assert!(!f.is_suppressed("all", 2));
        // Doc-comment and block forms that *do* start with it still work.
        let g = FileAnalysis::new(
            "y.rs",
            "/* triad-lint: allow(q) -- replay-only */ code();\n",
        );
        assert_eq!(g.suppressions.len(), 1);
        assert!(g.suppressions[0].has_rationale);
    }

    #[test]
    fn tests_dir_paths_are_all_test_code() {
        let f = FileAnalysis::new("crates/core/tests/stress.rs", "fn x() {}");
        assert!(f.is_test_line(1));
        let g = FileAnalysis::new("tests/end_to_end.rs", "fn x() {}");
        assert!(g.is_test_line(1));
        let h = FileAnalysis::new("crates/core/src/engine.rs", "fn x() {}");
        assert!(!h.is_test_line(1));
    }

    #[test]
    fn json_escapes_quotes_and_newlines() {
        let f = Finding {
            rule: "r",
            severity: Severity::Error,
            path: "p.rs".to_string(),
            line: 1,
            col: 2,
            message: "say \"hi\"\n".to_string(),
        };
        let j = render_json(&[f], 1);
        assert!(j.contains("\\\"hi\\\""));
        assert!(j.contains("\\n"));
    }
}
