//! `stats-registration`: every declared stat counter is reported. For
//! each struct that implements a stat-reporting trait (`StatSink`, or
//! the registry-era `StatRegister`) in the same file, every named field
//! must be referenced somewhere in an `impl` block targeting that
//! struct — a counter or histogram the engine updates but
//! `report`/`register` never emits is a silently dead measurement, and
//! figures built on the stat set quietly lose a column.

use std::collections::BTreeSet;

use crate::lint::{FileAnalysis, Finding, Rule, Severity};
use crate::tree::{impl_blocks, struct_defs, Tok};

/// See module docs.
pub struct StatsRegistration;

/// Crates that export stat counters.
const SCOPES: &[&str] = &[
    "crates/sim/",
    "crates/cache/",
    "crates/mem/",
    "crates/core/",
    "crates/meta/",
    "crates/kv/",
    "crates/recov/",
];

/// The reporting traits a stats struct hangs its counters on: the
/// legacy flat `StatSink` and the hierarchical `StatRegister` (which
/// also carries `Histogram` fields).
const SINK_TRAITS: &[&str] = &["StatSink", "StatRegister"];

impl Rule for StatsRegistration {
    fn id(&self) -> &'static str {
        "stats-registration"
    }

    fn severity(&self) -> Severity {
        Severity::Warning
    }

    fn description(&self) -> &'static str {
        "every field of a StatSink/StatRegister-implementing stats struct must be referenced by its impls"
    }

    fn check(&self, file: &FileAnalysis, out: &mut Vec<Finding>) {
        if !file.in_any(SCOPES) {
            return;
        }
        let impls = impl_blocks(&file.toks);
        for def in struct_defs(&file.toks) {
            let is_sink = impls.iter().any(|ib| {
                ib.target == def.name
                    && ib
                        .trait_name
                        .as_deref()
                        .is_some_and(|t| SINK_TRAITS.contains(&t))
            });
            if !is_sink {
                continue;
            }
            let mut referenced = BTreeSet::new();
            for ib in impls.iter().filter(|ib| ib.target == def.name) {
                collect_idents(ib.body, &mut referenced);
            }
            for field in &def.fields {
                if referenced.contains(field.name.as_str()) || file.is_test_line(field.span.line) {
                    continue;
                }
                out.push(Finding {
                    rule: self.id(),
                    severity: self.severity(),
                    path: file.path.clone(),
                    line: field.span.line,
                    col: field.span.col,
                    message: format!(
                        "stat counter `{}.{}` is never referenced by any `impl {}` block — \
                         report it (or drop the field)",
                        def.name, field.name, def.name
                    ),
                });
            }
        }
    }
}

fn collect_idents(toks: &[Tok], out: &mut BTreeSet<String>) {
    for t in toks {
        match t {
            Tok::Group { tokens, .. } => collect_idents(tokens, out),
            leaf => {
                if let Some(name) = leaf.ident() {
                    out.insert(name.to_string());
                }
            }
        }
    }
}
