//! The repo-specific rules. Each module is one rule; [`all`] is the
//! registry the CLI and the tests run.

mod durability_contract;
mod hash_order;
mod panic_policy;
mod persist_order;
mod shard_safety;
mod stats_registration;
mod suppression_rationale;
mod wall_clock;

pub use durability_contract::DurabilityContract;
pub use hash_order::HashOrder;
pub use panic_policy::PanicPolicy;
pub use persist_order::PersistOrder;
pub use shard_safety::{NondeterministicMerge, RngForkDiscipline, SharedMutableStatic};
pub use stats_registration::StatsRegistration;
pub use suppression_rationale::SuppressionRationale;
pub use wall_clock::WallClock;

use crate::lint::{Rule, WorkspaceRule};
use crate::tree::Tok;

/// Every per-file rule, in the order findings are attributed when
/// several hit the same span.
pub fn all() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(HashOrder),
        Box::new(WallClock),
        Box::new(PanicPolicy),
        Box::new(StatsRegistration),
        Box::new(SuppressionRationale),
    ]
}

/// Every workspace rule — these run over the [`crate::Workspace`]
/// model (symbol table + call graph + effects) after the per-file
/// rules.
pub fn workspace_all() -> Vec<Box<dyn WorkspaceRule>> {
    vec![
        Box::new(PersistOrder),
        Box::new(DurabilityContract),
        Box::new(SharedMutableStatic),
        Box::new(NondeterministicMerge),
        Box::new(RngForkDiscipline),
    ]
}

/// Depth-first visit of every token, handing each slice + index so
/// rules can look at neighbours (`.` before, `(...)` after).
pub(crate) fn walk_slices<'a>(toks: &'a [Tok], f: &mut impl FnMut(&'a [Tok], usize)) {
    for (i, t) in toks.iter().enumerate() {
        f(toks, i);
        if let Tok::Group { tokens, .. } = t {
            walk_slices(tokens, f);
        }
    }
}
