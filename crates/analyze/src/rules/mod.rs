//! The repo-specific rules. Each module is one rule; [`all`] is the
//! registry the CLI and the tests run.

mod hash_order;
mod panic_policy;
mod persist_order;
mod stats_registration;
mod wall_clock;

pub use hash_order::HashOrder;
pub use panic_policy::PanicPolicy;
pub use persist_order::PersistOrder;
pub use stats_registration::StatsRegistration;
pub use wall_clock::WallClock;

use crate::lint::Rule;
use crate::tree::Tok;

/// Every rule, in the order findings are attributed when several hit
/// the same span.
pub fn all() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(HashOrder),
        Box::new(WallClock),
        Box::new(PanicPolicy),
        Box::new(PersistOrder),
        Box::new(StatsRegistration),
    ]
}

/// Depth-first visit of every token, handing each slice + index so
/// rules can look at neighbours (`.` before, `(...)` after).
pub(crate) fn walk_slices<'a>(toks: &'a [Tok], f: &mut impl FnMut(&'a [Tok], usize)) {
    for (i, t) in toks.iter().enumerate() {
        f(toks, i);
        if let Tok::Group { tokens, .. } = t {
            walk_slices(tokens, f);
        }
    }
}

/// Whether any identifier in the subtree satisfies `pred`.
pub(crate) fn any_ident(toks: &[Tok], pred: &impl Fn(&str) -> bool) -> bool {
    toks.iter().any(|t| match t {
        Tok::Group { tokens, .. } => any_ident(tokens, pred),
        leaf => leaf.ident().is_some_and(pred),
    })
}
