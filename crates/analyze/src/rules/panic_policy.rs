//! `panic-policy`: non-test code of `crates/core`, `crates/mem` and
//! `crates/meta` must not `unwrap()`, `expect(...)` or `panic!`. A
//! crash-recovery engine that aborts mid-operation is indistinguishable
//! from the crashes it models; fallible paths return
//! `SecureMemoryError`, internal invariants use `debug_assert!`.
//!
//! Matched forms are the method calls `.unwrap()` / `.expect(...)` and
//! the `panic!` macro; `unwrap_or*`, `assert!` and `unreachable!` are
//! deliberately out of scope.

use crate::lint::{FileAnalysis, Finding, Rule, Severity};
use crate::rules::walk_slices;

/// See module docs.
pub struct PanicPolicy;

/// Crates holding the persistence-critical state machines.
const SCOPES: &[&str] = &[
    "crates/core/",
    "crates/mem/",
    "crates/meta/",
    "crates/kv/",
    "crates/recov/",
];

impl Rule for PanicPolicy {
    fn id(&self) -> &'static str {
        "panic-policy"
    }

    fn severity(&self) -> Severity {
        Severity::Error
    }

    fn description(&self) -> &'static str {
        "unwrap/expect/panic! in non-test code of core/mem/meta aborts the engine mid-operation"
    }

    fn check(&self, file: &FileAnalysis, out: &mut Vec<Finding>) {
        if !file.in_any(SCOPES) {
            return;
        }
        walk_slices(&file.toks, &mut |toks, i| {
            let Some(name) = toks[i].ident() else {
                return;
            };
            let hit = match name {
                "unwrap" | "expect" => {
                    i > 0
                        && toks[i - 1].is_punct('.')
                        && matches!(toks.get(i + 1), Some(g) if g.is_group('('))
                }
                "panic" => matches!(toks.get(i + 1), Some(t) if t.is_punct('!')),
                _ => false,
            };
            if !hit {
                return;
            }
            let span = toks[i].span();
            if file.is_test_line(span.line) {
                return;
            }
            let (what, fix) = match name {
                "panic" => ("`panic!`", "return an error variant"),
                _ => (
                    "this call",
                    "propagate a `SecureMemoryError` or use `debug_assert!`",
                ),
            };
            out.push(Finding {
                rule: self.id(),
                severity: self.severity(),
                path: file.path.clone(),
                line: span.line,
                col: span.col,
                message: format!("{what} can abort the engine mid-operation; {fix}"),
            });
        });
    }
}
