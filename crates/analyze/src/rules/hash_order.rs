//! `determinism/hash-order`: no default-hasher `HashMap`/`HashSet` in
//! the simulation path. The whole simulator is seeded on SplitMix64 so
//! that a run is a pure function of its config; `RandomState` iteration
//! order re-injects per-process entropy through every `iter()` loop.

use crate::lint::{FileAnalysis, Finding, Rule, Severity};
use crate::rules::walk_slices;

/// See module docs.
pub struct HashOrder;

/// Crates whose iteration order feeds simulation results.
const SCOPES: &[&str] = &[
    "crates/sim/",
    "crates/core/",
    "crates/mem/",
    "crates/meta/",
    "crates/kv/",
    "crates/recov/",
];

impl Rule for HashOrder {
    fn id(&self) -> &'static str {
        "determinism/hash-order"
    }

    fn severity(&self) -> Severity {
        Severity::Error
    }

    fn description(&self) -> &'static str {
        "default-hasher HashMap/HashSet in sim/core/mem/meta leaks nondeterministic iteration order"
    }

    fn check(&self, file: &FileAnalysis, out: &mut Vec<Finding>) {
        if !file.in_any(SCOPES) {
            return;
        }
        walk_slices(&file.toks, &mut |toks, i| {
            let Some(name) = toks[i].ident() else {
                return;
            };
            if name != "HashMap" && name != "HashSet" {
                return;
            }
            let span = toks[i].span();
            if file.is_test_line(span.line) {
                return;
            }
            let ordered = if name == "HashMap" {
                "BTreeMap"
            } else {
                "BTreeSet"
            };
            out.push(Finding {
                rule: self.id(),
                severity: self.severity(),
                path: file.path.clone(),
                line: span.line,
                col: span.col,
                message: format!(
                    "`{name}` iterates in nondeterministic order; use `{ordered}` or a seeded hasher"
                ),
            });
        });
    }
}
