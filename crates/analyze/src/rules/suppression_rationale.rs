//! `suppression-rationale`: every `// triad-lint: allow(<rule>)` must
//! carry a trailing `-- reason` explaining why the suppressed
//! invariant holds anyway. A suppression is a claim ("this unwrap
//! cannot fire", "this map never feeds a deterministic path") — the
//! rationale is the claim's proof obligation, and it keeps the next
//! refactorer from cargo-culting the allow to a site where the claim
//! is false.
//!
//! Findings of this rule are deliberately *exempt* from suppression
//! filtering (see `lint::run_rules`): otherwise a bare `allow(all)`
//! would silence the very warning demanding its rationale.

use crate::lint::{FileAnalysis, Finding, Rule, Severity};

/// See module docs.
pub struct SuppressionRationale;

impl Rule for SuppressionRationale {
    fn id(&self) -> &'static str {
        "suppression-rationale"
    }

    fn severity(&self) -> Severity {
        Severity::Warning
    }

    fn description(&self) -> &'static str {
        "every triad-lint allow(...) carries a `-- reason` rationale"
    }

    fn check(&self, file: &FileAnalysis, out: &mut Vec<Finding>) {
        for s in &file.suppressions {
            if s.has_rationale {
                continue;
            }
            out.push(Finding {
                rule: self.id(),
                severity: self.severity(),
                path: file.path.clone(),
                line: s.line,
                col: 1,
                message: format!(
                    "suppression of `{}` has no rationale; append \
                     `-- <why the invariant holds anyway>`",
                    s.rules.join(", ")
                ),
            });
        }
    }
}
