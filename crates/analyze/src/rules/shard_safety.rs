//! `shard-safety/*`: the sharding-readiness rule pack that de-risks
//! ROADMAP item 1 (the multi-shard KV front-end). Once engine ops run
//! on worker threads, three classes of today-harmless idiom become
//! cross-shard hazards:
//!
//! * **`shard-safety/shared-mutable-static`** (error) — a `static`
//!   with interior mutability (`Atomic*`, `Mutex`, `RefCell`, ...)
//!   that any public engine/store operation can reach through the call
//!   graph is state shared between shards: per-shard determinism and
//!   the crash-equivalence oracle both die the moment two shards race
//!   on it. `static mut` is flagged unconditionally.
//! * **`shard-safety/nondeterministic-merge`** (warning) — a merge /
//!   aggregation function that iterates a default-hashed map feeds
//!   shard results together in `RandomState` order; fleet-level stats
//!   and event streams must merge identically on every run, so merge
//!   paths use `BTreeMap`/`BTreeSet` or sort first. This extends
//!   `determinism/hash-order` (which scopes to the model crates) to
//!   merge paths *anywhere*, including `workloads` and `bench`.
//! * **`shard-safety/rng-fork-discipline`** (warning) — cloning an RNG
//!   hands two shards the *same* SplitMix64 stream, so "independent"
//!   shards replay identical randomness. Shards take
//!   `rng.fork()` / `rng.stream(i)` instead, which derive disjoint
//!   streams.

use crate::callgraph::call_sites;
use crate::lint::{Finding, Severity, WorkspaceRule};
use crate::tree::Tok;
use crate::Workspace;

/// Types providing interior mutability: writable through `&`, so a
/// `static` of one is shared mutable state.
const INTERIOR_MUTABLE: &[&str] = &[
    "AtomicBool",
    "AtomicI8",
    "AtomicI16",
    "AtomicI32",
    "AtomicI64",
    "AtomicIsize",
    "AtomicU8",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicUsize",
    "AtomicPtr",
    "Cell",
    "RefCell",
    "UnsafeCell",
    "Mutex",
    "RwLock",
    "OnceCell",
    "OnceLock",
    "LazyLock",
    "LazyCell",
];

/// The audited service surface: public ops on these types are the
/// entry points a sharded front-end calls from worker threads.
const SERVICE_TYPES: &[&str] = &["SecureMemory", "KvStore"];

/// See module docs.
pub struct SharedMutableStatic;

/// A `static` item found in a file.
struct StaticItem {
    file: usize,
    name: String,
    span: crate::lexer::Span,
    is_mut: bool,
    interior_mutable: bool,
}

fn collect_statics(toks: &[Tok], file: usize, out: &mut Vec<StaticItem>) {
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("static") {
            // `static [mut] NAME : Type = init ;` — the name is the
            // next ident, the type runs to the `=`.
            let mut j = i + 1;
            let is_mut = matches!(toks.get(j), Some(t) if t.is_ident("mut"));
            if is_mut {
                j += 1;
            }
            if let Some((name, span)) = toks.get(j).and_then(|t| Some((t.ident()?, t.span()))) {
                if matches!(toks.get(j + 1), Some(t) if t.is_punct(':')) {
                    let mut k = j + 2;
                    let mut interior_mutable = false;
                    while k < toks.len() && !toks[k].is_punct('=') && !toks[k].is_punct(';') {
                        if let Some(ty) = toks[k].ident() {
                            if INTERIOR_MUTABLE.contains(&ty) {
                                interior_mutable = true;
                            }
                        }
                        k += 1;
                    }
                    out.push(StaticItem {
                        file,
                        name: name.to_string(),
                        span,
                        is_mut,
                        interior_mutable,
                    });
                    i = k;
                    continue;
                }
            }
        }
        if let Tok::Group { tokens, .. } = &toks[i] {
            collect_statics(tokens, file, out);
        }
        i += 1;
    }
}

/// Whether any identifier in the subtree equals `name`.
fn mentions(toks: &[Tok], name: &str) -> bool {
    toks.iter().any(|t| match t {
        Tok::Group { tokens, .. } => mentions(tokens, name),
        leaf => leaf.is_ident(name),
    })
}

impl WorkspaceRule for SharedMutableStatic {
    fn id(&self) -> &'static str {
        "shard-safety/shared-mutable-static"
    }

    fn severity(&self) -> Severity {
        Severity::Error
    }

    fn description(&self) -> &'static str {
        "no mutable statics reachable from engine/store ops: shards must not \
         share state"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        let mut statics = Vec::new();
        for (idx, file) in ws.files.iter().enumerate() {
            if file.is_test_file() {
                continue;
            }
            collect_statics(&file.toks, idx, &mut statics);
        }
        statics.retain(|s| {
            (s.is_mut || s.interior_mutable) && !ws.files[s.file].is_test_line(s.span.line)
        });
        if statics.is_empty() {
            return;
        }
        // Which fns can a service op reach?
        let roots = ws.symbols.fns.iter().enumerate().filter_map(|(i, f)| {
            (f.is_pub && matches!(f.owner.as_deref(), Some(o) if SERVICE_TYPES.contains(&o)))
                .then_some(i)
        });
        let reachable = ws.graph.reachable(roots);
        for s in statics {
            // A reachable fn that names the static is the hazard; the
            // finding anchors at the static so the fix (thread it
            // through per-shard state) is obvious.
            let user = ws
                .symbols
                .fns
                .iter()
                .enumerate()
                .find(|(i, f)| reachable[*i] && mentions(&f.body, &s.name));
            let Some((_, user)) = user else { continue };
            out.push(Finding {
                rule: self.id(),
                severity: self.severity(),
                path: ws.files[s.file].path.clone(),
                line: s.span.line,
                col: s.span.col,
                message: format!(
                    "static `{}` {} and is reachable from `{}`: shards running on \
                     worker threads would share it; move it into per-shard state",
                    s.name,
                    if s.is_mut {
                        "is mutable".to_string()
                    } else {
                        "has interior mutability".to_string()
                    },
                    user.name,
                ),
            });
        }
    }
}

/// See module docs.
pub struct NondeterministicMerge;

/// Fn-name vocabulary that marks a merge/aggregation path.
const MERGE_NAMES: &[&str] = &["merge", "absorb", "aggregate", "combine"];

fn is_merge_name(name: &str) -> bool {
    MERGE_NAMES.iter().any(|m| name.contains(m))
}

/// Collects spans of `HashMap`/`HashSet` mentions in a subtree.
fn unordered_map_spans(toks: &[Tok], out: &mut Vec<crate::lexer::Span>) {
    for t in toks {
        match t {
            Tok::Group { tokens, .. } => unordered_map_spans(tokens, out),
            leaf => {
                if matches!(leaf.ident(), Some("HashMap" | "HashSet")) {
                    out.push(leaf.span());
                }
            }
        }
    }
}

impl WorkspaceRule for NondeterministicMerge {
    fn id(&self) -> &'static str {
        "shard-safety/nondeterministic-merge"
    }

    fn severity(&self) -> Severity {
        Severity::Warning
    }

    fn description(&self) -> &'static str {
        "merge/aggregation fns must not iterate default-hashed maps: shard \
         results must merge in a deterministic order"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for f in &ws.symbols.fns {
            if !is_merge_name(&f.name) {
                continue;
            }
            let file = &ws.files[f.file];
            if file.is_test_line(f.span.line) {
                continue;
            }
            let mut spans = Vec::new();
            unordered_map_spans(&f.body, &mut spans);
            for span in spans {
                out.push(Finding {
                    rule: self.id(),
                    severity: self.severity(),
                    path: file.path.clone(),
                    line: span.line,
                    col: span.col,
                    message: format!(
                        "`{}` is a merge path that touches a default-hashed map; \
                         RandomState iteration order makes the merged result \
                         nondeterministic across runs — use BTreeMap/BTreeSet or \
                         sort before merging",
                        f.name
                    ),
                });
            }
        }
    }
}

/// See module docs.
pub struct RngForkDiscipline;

impl WorkspaceRule for RngForkDiscipline {
    fn id(&self) -> &'static str {
        "shard-safety/rng-fork-discipline"
    }

    fn severity(&self) -> Severity {
        Severity::Warning
    }

    fn description(&self) -> &'static str {
        "RNG streams are forked (`fork()`/`stream(i)`), never cloned: cloned \
         shards replay identical randomness"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for f in &ws.symbols.fns {
            let file = &ws.files[f.file];
            if file.is_test_line(f.span.line) {
                continue;
            }
            for (name, span) in call_sites(&f.body) {
                if name != "clone" {
                    continue;
                }
                // The receiver is the ident before the `.`: find the
                // clone site and look two tokens back.
                if let Some(recv) = clone_receiver(&f.body, span) {
                    if recv.to_ascii_lowercase().contains("rng") {
                        out.push(Finding {
                            rule: self.id(),
                            severity: self.severity(),
                            path: file.path.clone(),
                            line: span.line,
                            col: span.col,
                            message: format!(
                                "`{}` clones `{recv}`: a cloned SplitMix64 replays the \
                                 same stream in every shard — use `fork()` or \
                                 `stream(i)` to derive a disjoint stream",
                                f.name
                            ),
                        });
                    }
                }
            }
        }
    }
}

/// For a `clone` call at `at`, the identifier of its `.`-receiver
/// (`rng` in `rng.clone()`, `self.trace_rng.clone()` → `trace_rng`).
fn clone_receiver(toks: &[Tok], at: crate::lexer::Span) -> Option<String> {
    let mut found = None;
    find_clone_receiver(toks, at, &mut found);
    found
}

fn find_clone_receiver(toks: &[Tok], at: crate::lexer::Span, found: &mut Option<String>) {
    for (i, t) in toks.iter().enumerate() {
        if found.is_some() {
            return;
        }
        if t.is_ident("clone") && t.span() == at {
            if i >= 2 && toks[i - 1].is_punct('.') {
                if let Some(recv) = toks[i - 2].ident() {
                    *found = Some(recv.to_string());
                }
            }
            return;
        }
        if let Tok::Group { tokens, .. } = t {
            find_clone_receiver(tokens, at, found);
        }
    }
}
