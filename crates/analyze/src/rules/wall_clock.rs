//! `determinism/wall-clock`: no `Instant`/`SystemTime` outside
//! `crates/bench`. Simulated time is the only clock the model may
//! observe; host time belongs exclusively to the benchmark harness.

use crate::lint::{FileAnalysis, Finding, Rule, Severity};
use crate::rules::walk_slices;

/// See module docs.
pub struct WallClock;

impl Rule for WallClock {
    fn id(&self) -> &'static str {
        "determinism/wall-clock"
    }

    fn severity(&self) -> Severity {
        Severity::Error
    }

    fn description(&self) -> &'static str {
        "Instant/SystemTime outside crates/bench couples model behaviour to host time"
    }

    fn check(&self, file: &FileAnalysis, out: &mut Vec<Finding>) {
        if file.in_any(&["crates/bench/"]) {
            return;
        }
        walk_slices(&file.toks, &mut |toks, i| {
            let Some(name) = toks[i].ident() else {
                return;
            };
            if name != "Instant" && name != "SystemTime" {
                return;
            }
            let span = toks[i].span();
            if file.is_test_line(span.line) {
                return;
            }
            out.push(Finding {
                rule: self.id(),
                severity: self.severity(),
                path: file.path.clone(),
                line: span.line,
                col: span.col,
                message: format!(
                    "`{name}` reads the host clock; model code must use simulated cycles (only crates/bench may time the host)"
                ),
            });
        });
    }
}
