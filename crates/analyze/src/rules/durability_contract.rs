//! `durability-contract`: the static arm of the tiered durability
//! contract (`docs/durability-contract.md`, invariant D8). The crash
//! sweeps prove each tier's loss bound dynamically; this rule pins the
//! two structural properties the bounds rest on, using the inferred
//! (interprocedural) effect sets:
//!
//! 1. **Volatile purity** — an InMemory-tier admission path must not
//!    persist. Any fn in `crates/{kv,workloads}` whose name marks it
//!    as part of the volatile tier (`*volatile*`) and whose inferred
//!    effects append to the WAL, emit a commit marker, apply writes,
//!    or persist data/metadata is a finding: a persist on that path
//!    silently promotes unacknowledged-durability mutations and
//!    invalidates the tier's loss accounting (and the barrier-floor
//!    recovery tests' crash windows).
//!
//! 2. **Marker discipline** — a commit marker must never outrun its
//!    payload. Any public `&mut self` mutation path of the serving
//!    stack (`KvStore` / `KvService` / `ShardLane`) whose effects emit
//!    a commit marker without appending to the WAL is a finding:
//!    recovery would find a marker for a transaction it cannot replay,
//!    so the commit frontier (which the loss ledger resolves in-flight
//!    groups against) stops being a witness of durability.
//!
//! The ordering *within* a mutation path (append → marker → apply) is
//! `persist-order`'s job; this rule owns the tier-shaped questions of
//! which paths may persist at all and whether a marker is backed by a
//! replayable payload.

use crate::effects::{
    EffectSet, APPENDS_LOG, APPLIES_WRITES, EMITS_COMMIT_MARKER, PERSISTS_DATA, PERSISTS_METADATA,
};
use crate::lint::{Finding, Severity, WorkspaceRule};
use crate::symbols::crate_of;
use crate::Workspace;

/// See module docs.
pub struct DurabilityContract;

/// The crates whose serving stack the rule audits.
const AUDITED_CRATES: &[&str] = &["kv", "workloads"];

/// The types whose public mutation surface the marker-discipline
/// section covers.
const AUDITED_TYPES: &[&str] = &["KvStore", "KvService", "ShardLane"];

/// Effects that make a volatile-tier path a lie.
const PERSIST_EFFECTS: EffectSet =
    APPENDS_LOG | EMITS_COMMIT_MARKER | APPLIES_WRITES | PERSISTS_DATA | PERSISTS_METADATA;

impl WorkspaceRule for DurabilityContract {
    fn id(&self) -> &'static str {
        "durability-contract"
    }

    fn severity(&self) -> Severity {
        Severity::Error
    }

    fn description(&self) -> &'static str {
        "volatile-tier admission paths must not persist, and serving-stack \
         mutation paths must not emit a commit marker without appending the \
         payload to the write-ahead log (effects inferred through the call \
         graph; see docs/durability-contract.md, invariant D8)"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for (i, f) in ws.symbols.fns.iter().enumerate() {
            let file = &ws.files[f.file];
            if !matches!(crate_of(&file.path), Some(c) if AUDITED_CRATES.contains(&c)) {
                continue;
            }
            if file.is_test_line(f.span.line) {
                continue;
            }
            let effects = ws.effects.effects[i];

            // Volatile purity: the name claims the volatile tier, the
            // effects say otherwise.
            if f.name.contains("volatile") && effects & PERSIST_EFFECTS != 0 {
                out.push(Finding {
                    rule: self.id(),
                    severity: self.severity(),
                    path: file.path.to_string(),
                    line: f.span.line,
                    col: f.span.col,
                    message: format!(
                        "`{}` claims the volatile tier but its inferred effects \
                         persist (log/marker/apply/data/metadata); InMemory-tier \
                         admission must stay free of persist effects so the \
                         tier's loss accounting and barrier floor stay honest",
                        f.name
                    ),
                });
                continue;
            }

            // Marker discipline: a public mutation path whose marker
            // has no appended payload behind it.
            if f.is_pub
                && f.mut_self
                && !f.trait_impl
                && matches!(f.owner.as_deref(), Some(t) if AUDITED_TYPES.contains(&t))
                && effects & EMITS_COMMIT_MARKER != 0
                && effects & APPENDS_LOG == 0
            {
                out.push(Finding {
                    rule: self.id(),
                    severity: self.severity(),
                    path: file.path.to_string(),
                    line: f.span.line,
                    col: f.span.col,
                    message: format!(
                        "`{}` emits a commit marker without appending the payload \
                         to the write-ahead log; recovery would find a marker for \
                         a transaction it cannot replay, so the commit frontier \
                         stops witnessing durability",
                        f.name
                    ),
                });
            }
        }
    }
}
