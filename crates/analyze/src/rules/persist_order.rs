//! `persist-order`: the mechanized form of PR 1's manual audit. Every
//! public `&mut self` engine operation that feeds the metadata eviction
//! queue (counter / MAC / BMT write-backs scheduled by the `*_touch`
//! and `ensure_*` helpers) must drain that queue before succeeding —
//! otherwise a crash after the `Ok` return loses queued persists and
//! the recovered BMT disagrees with data NVM, the exact TriadNVM-2
//! regression PR 1 fixed.
//!
//! The check is structural, over the token tree of
//! `crates/core/src/engine.rs`: walking a function body, a call to a
//! queue-feeding helper sets a `pending` bit and `drain_evictions`
//! clears it. Brace groups are conditional — the walker clones the bit
//! into them and ORs it back out, so a drain *inside* an `if` never
//! clears the parent path while a touch inside one taints it. A
//! `return Ok` site or the function's tail `Ok(...)` while `pending`
//! is set is a finding. Error paths (`?`, `return Err`) are exempt:
//! failed operations make no persistence promise.

use crate::lexer::Span;
use crate::lint::{FileAnalysis, Finding, Rule, Severity};
use crate::rules::any_ident;
use crate::tree::{impl_blocks, Tok};

/// See module docs.
pub struct PersistOrder;

/// Helpers that enqueue metadata (or data) write-backs on the engine's
/// eviction queue.
const QUEUE_CALLS: &[&str] = &[
    "l3_touch",
    "ctr_touch",
    "mt_touch",
    "writeback_data",
    "reclaim",
    "ensure_counter",
    "ensure_node",
    "ensure_mac_block",
];

/// The calls that retire the queue.
const DRAINS: &[&str] = &["drain_evictions"];

/// The type whose public surface the audit covers.
const ENGINE_TYPE: &str = "SecureMemory";

impl Rule for PersistOrder {
    fn id(&self) -> &'static str {
        "persist-order"
    }

    fn severity(&self) -> Severity {
        Severity::Error
    }

    fn description(&self) -> &'static str {
        "public engine ops that feed the eviction queue must drain it on every Ok path"
    }

    fn check(&self, file: &FileAnalysis, out: &mut Vec<Finding>) {
        if !file.path.ends_with("crates/core/src/engine.rs") {
            return;
        }
        for ib in impl_blocks(&file.toks) {
            if ib.target != ENGINE_TYPE || ib.trait_name.is_some() {
                continue;
            }
            for f in pub_mut_self_fns(ib.body) {
                if !any_ident(f.body, &|n| QUEUE_CALLS.contains(&n)) {
                    // Delegating wrappers (`read`, `write`, ...) are
                    // audited through their callee.
                    continue;
                }
                let mut pending = false;
                walk(f.body, &mut pending, true, &f.name, self, file, out);
            }
        }
    }
}

/// A `pub fn name(&mut self, ...) { body }` item.
struct PubFn<'a> {
    name: String,
    body: &'a [Tok],
}

fn pub_mut_self_fns(body: &[Tok]) -> Vec<PubFn<'_>> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < body.len() {
        if !body[i].is_ident("fn") {
            i += 1;
            continue;
        }
        let is_pub = {
            // Walk back over qualifiers (`pub(crate) const unsafe fn`).
            let mut j = i;
            let mut found = false;
            while j > 0 {
                j -= 1;
                match &body[j] {
                    t if t.is_ident("pub") => {
                        found = true;
                        break;
                    }
                    t if t.is_ident("const") || t.is_ident("unsafe") || t.is_ident("async") => {}
                    t if t.is_group('(') => {}
                    _ => break,
                }
            }
            found
        };
        let name = body
            .get(i + 1)
            .and_then(|t| t.ident())
            .unwrap_or("")
            .to_string();
        // Find the parameter list and body, skipping generics; inside
        // `<...>` the angle depth is positive, so `Fn(..)` bounds never
        // masquerade as the parameter list.
        let mut angle = 0i32;
        let mut params: Option<&[Tok]> = None;
        let mut fn_body: Option<&[Tok]> = None;
        let mut j = i + 2;
        while j < body.len() {
            match &body[j] {
                t if t.is_punct('<') => angle += 1,
                t if t.is_punct('>') => angle -= 1,
                Tok::Group {
                    delim: '(', tokens, ..
                } if params.is_none() && angle <= 0 => params = Some(tokens),
                Tok::Group {
                    delim: '{', tokens, ..
                } => {
                    fn_body = Some(tokens);
                    break;
                }
                t if t.is_punct(';') => break,
                _ => {}
            }
            j += 1;
        }
        if let (true, Some(params), Some(fn_body)) = (is_pub, params, fn_body) {
            if takes_mut_self(params) {
                out.push(PubFn {
                    name,
                    body: fn_body,
                });
            }
        }
        i = j + 1;
    }
    out
}

/// Whether the first parameter is `&mut self` (lifetimes allowed).
fn takes_mut_self(params: &[Tok]) -> bool {
    let first: Vec<&Tok> = params.iter().take_while(|t| !t.is_punct(',')).collect();
    first.iter().any(|t| t.is_punct('&'))
        && first.iter().any(|t| t.is_ident("mut"))
        && first.iter().any(|t| t.is_ident("self"))
}

/// Whether `toks[i]` is a call `name(...)` of one of `names`.
fn is_call(toks: &[Tok], i: usize, names: &[&str]) -> bool {
    toks[i].ident().is_some_and(|n| names.contains(&n))
        && matches!(toks.get(i + 1), Some(g) if g.is_group('('))
}

#[allow(clippy::too_many_arguments)]
fn walk(
    toks: &[Tok],
    pending: &mut bool,
    top: bool,
    fn_name: &str,
    rule: &PersistOrder,
    file: &FileAnalysis,
    out: &mut Vec<Finding>,
) {
    let mut i = 0;
    while i < toks.len() {
        if is_call(toks, i, QUEUE_CALLS) || is_call(toks, i, DRAINS) {
            let enqueue = is_call(toks, i, QUEUE_CALLS);
            if let Some(Tok::Group { tokens, .. }) = toks.get(i + 1) {
                // Arguments evaluate before the call takes effect.
                walk(tokens, pending, false, fn_name, rule, file, out);
            }
            *pending = enqueue;
            i += 2;
            continue;
        }
        match &toks[i] {
            t if t.is_ident("return")
                && *pending
                && matches!(toks.get(i + 1), Some(x) if x.is_ident("Ok")) =>
            {
                report(t.span(), fn_name, "returns Ok", rule, file, out);
            }
            Tok::Group {
                delim: '{', tokens, ..
            } => {
                // A brace group is a conditional region: findings on
                // returns inside use the state flowing in, and any
                // enqueue inside taints the parent, but a drain inside
                // cannot clear the parent (the branch may not run).
                let mut inner = *pending;
                walk(tokens, &mut inner, false, fn_name, rule, file, out);
                *pending |= inner;
            }
            Tok::Group { tokens, .. } => {
                walk(tokens, pending, false, fn_name, rule, file, out);
            }
            _ => {}
        }
        i += 1;
    }
    if top && *pending {
        let n = toks.len();
        if n >= 2 && toks[n - 2].is_ident("Ok") && toks[n - 1].is_group('(') {
            report(
                toks[n - 2].span(),
                fn_name,
                "falls off the end with Ok",
                rule,
                file,
                out,
            );
        }
    }
}

fn report(
    span: Span,
    fn_name: &str,
    how: &str,
    rule: &PersistOrder,
    file: &FileAnalysis,
    out: &mut Vec<Finding>,
) {
    out.push(Finding {
        rule: rule.id(),
        severity: rule.severity(),
        path: file.path.clone(),
        line: span.line,
        col: span.col,
        message: format!(
            "`{fn_name}` {how} while the eviction queue may hold undrained persists; \
             call `drain_evictions` before succeeding"
        ),
    });
}
