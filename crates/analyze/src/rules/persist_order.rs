//! `persist-order`: the mechanized form of PR 1's manual audit, since
//! v2 an *interprocedural* workspace rule. Every public `&mut self`
//! engine operation that (transitively) feeds the metadata eviction
//! queue — counter / MAC / BMT write-backs scheduled by the `*_touch`
//! and `ensure_*` helpers — must drain that queue before succeeding;
//! otherwise a crash after the `Ok` return loses queued persists and
//! the recovered BMT disagrees with data NVM, the exact TriadNVM-2
//! regression PR 1 fixed.
//!
//! v1 scoped the audit by file name (`engine.rs`, `batch.rs`,
//! `store.rs`). v2 scopes it by *meaning*: any inherent
//! `impl SecureMemory` (or `impl KvStore`) in `crates/{core,kv,mem}`
//! is audited wherever it lives, and the gate is the inferred effect
//! set — a public op whose persist effects arrive three calls deep is
//! audited exactly like one that calls `l3_touch` directly.
//!
//! The walk itself keeps the v1 semantics (they are fixture-locked):
//! a queue-vocabulary call sets a `pending` bit, `drain_evictions`
//! clears it, brace groups are conditional regions (clone in, OR out),
//! and a `return Ok` / tail `Ok` while pending is a finding. What v2
//! adds is the call-site transfer: a call to a *resolved* non-vocab
//! callee applies that callee's [`DrainSummary`], so a helper that
//! enqueues without draining taints its public caller, and a helper
//! that drains on every path (`set == false, dep == false`) cleans it.
//!
//! # The KV section
//!
//! The same rule audits the write-ahead-log protocol of `KvStore`:
//! every public `&mut self` operation with WAL effects must run
//! `log_append` → `log_commit` → `apply_writes` in that order on
//! every Ok path. The walker tracks the *set* of possible protocol
//! states (idle / appended / committed) through brace groups (union
//! on exit, since a branch may not run) and flags an `apply_writes`
//! reachable on a path where the marker may not be durable, an Ok
//! return with a logged transaction left unapplied — and, since v2, a
//! call to any helper whose [`WalSummary`] applies writes from a
//! maybe-uncommitted input state.
//!
//! # The recov section
//!
//! The detectably recoverable structures in `crates/recov` carry the
//! same shape of contract on operation completion: a thread's volatile
//! seqno may only advance (`seqno_bump`) after its completion
//! checkpoint is durable (`checkpoint_persist`), on every Ok path —
//! otherwise a crash re-executes an operation that already took
//! effect (the exactly-once guarantee breaks). The rule audits every
//! public `&mut self` fn in the recov crate whose inferred effects
//! touch the checkpoint vocabulary, reusing the WAL state machinery:
//! `checkpoint_persist` is commit-like, `seqno_bump` apply-like, and
//! both a bump from a maybe-unpersisted state and an Ok return with a
//! durable-but-unconsumed checkpoint are findings.

use crate::effects::{
    WalSummary, APPENDS_LOG, APPLIES_WRITES, BUMPS_SEQNO, EMITS_COMMIT_MARKER, PERSISTS_CHECKPOINT,
    PERSISTS_DATA, PERSISTS_METADATA, ST_APPENDED, ST_COMMITTED, ST_IDLE,
};
use crate::lexer::Span;
use crate::lint::{Finding, Severity, WorkspaceRule};
use crate::symbols::{crate_of, FnDef};
use crate::tree::Tok;
use crate::Workspace;

/// See module docs.
pub struct PersistOrder;

/// The type whose public surface the engine audit covers.
const ENGINE_TYPE: &str = "SecureMemory";

/// The type whose public surface the KV section covers.
const KV_TYPE: &str = "KvStore";

/// The crates whose `SecureMemory`/`KvStore` impls are audited.
const AUDITED_CRATES: &[&str] = &["core", "kv", "mem"];

/// The crate whose whole public `&mut self` surface the checkpoint
/// section covers (the contract follows the vocabulary, not a type:
/// `ThreadCtx` and the step machines all complete operations).
const CKPT_CRATE: &str = "recov";

impl WorkspaceRule for PersistOrder {
    fn id(&self) -> &'static str {
        "persist-order"
    }

    fn severity(&self) -> Severity {
        Severity::Error
    }

    fn description(&self) -> &'static str {
        "public engine ops must drain the eviction queue, and KV ops must \
         order log append -> commit marker -> index apply, on every Ok path \
         (interprocedural: effects inferred through the call graph)"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for (i, f) in ws.symbols.fns.iter().enumerate() {
            let file = &ws.files[f.file];
            let krate = crate_of(&file.path);
            if !matches!(krate, Some(c) if AUDITED_CRATES.contains(&c) || c == CKPT_CRATE) {
                continue;
            }
            if !f.is_pub || !f.mut_self || f.trait_impl || file.is_test_line(f.span.line) {
                continue;
            }
            if krate == Some(CKPT_CRATE) {
                if ws.effects.effects[i] & (PERSISTS_CHECKPOINT | BUMPS_SEQNO) == 0 {
                    continue;
                }
                let mut states = ST_IDLE;
                let mut w = CkptWalk {
                    ws,
                    f,
                    rule: self,
                    path: &file.path,
                    out,
                };
                w.walk(&f.body, &mut states, true);
                continue;
            }
            match f.owner.as_deref() {
                Some(ENGINE_TYPE) => {
                    if ws.effects.effects[i] & (PERSISTS_METADATA | PERSISTS_DATA) == 0 {
                        // Pure wrappers with no queue reach: nothing to
                        // audit.
                        continue;
                    }
                    let mut pending = false;
                    let mut w = EngineWalk {
                        ws,
                        f,
                        rule: self,
                        path: &file.path,
                        out,
                    };
                    w.walk(&f.body, &mut pending, true);
                }
                Some(KV_TYPE) => {
                    if ws.effects.effects[i] & (APPENDS_LOG | EMITS_COMMIT_MARKER | APPLIES_WRITES)
                        == 0
                    {
                        continue;
                    }
                    let mut states = ST_IDLE;
                    let mut w = KvWalk {
                        ws,
                        f,
                        rule: self,
                        path: &file.path,
                        out,
                    };
                    w.walk(&f.body, &mut states, true);
                }
                _ => {}
            }
        }
    }
}

/// Whether `toks[i]` is a call `name(...)`, returning the name.
/// `fn name(params)` (a nested definition) is not a call.
fn call_at(toks: &[Tok], i: usize) -> Option<&str> {
    if i > 0 && (toks[i - 1].is_ident("fn") || toks[i - 1].is_ident("struct")) {
        return None;
    }
    toks[i]
        .ident()
        .filter(|_| matches!(toks.get(i + 1), Some(g) if g.is_group('(')))
}

/// The concrete eviction-queue walker over one audited fn.
struct EngineWalk<'a, 'o> {
    ws: &'a Workspace,
    f: &'a FnDef,
    rule: &'a PersistOrder,
    path: &'a str,
    out: &'o mut Vec<Finding>,
}

impl EngineWalk<'_, '_> {
    fn walk(&mut self, toks: &[Tok], pending: &mut bool, top: bool) {
        let mut i = 0;
        while i < toks.len() {
            if let Some(name) = call_at(toks, i) {
                let transfer = crate::effects::primitive_drain(name).or_else(|| {
                    self.ws
                        .symbols
                        .resolve(self.f, name)
                        .filter(|_| crate::effects::primitive_effects(name) == 0)
                        .map(|c| self.ws.effects.drains[c])
                });
                if let Some(t) = transfer {
                    if let Some(Tok::Group { tokens, .. }) = toks.get(i + 1) {
                        // Arguments evaluate before the call takes
                        // effect.
                        self.walk(tokens, pending, false);
                    }
                    *pending = t.apply(*pending);
                    i += 2;
                    continue;
                }
            }
            match &toks[i] {
                t if t.is_ident("return")
                    && *pending
                    && matches!(toks.get(i + 1), Some(x) if x.is_ident("Ok")) =>
                {
                    self.report(t.span(), "returns Ok");
                }
                Tok::Group {
                    delim: '{', tokens, ..
                } => {
                    // A brace group is a conditional region: findings
                    // on returns inside use the state flowing in, and
                    // any enqueue inside taints the parent, but a
                    // drain inside cannot clear the parent (the branch
                    // may not run).
                    let mut inner = *pending;
                    self.walk(tokens, &mut inner, false);
                    *pending |= inner;
                }
                Tok::Group { tokens, .. } => {
                    self.walk(tokens, pending, false);
                }
                _ => {}
            }
            i += 1;
        }
        if top && *pending {
            let n = toks.len();
            if n >= 2 && toks[n - 2].is_ident("Ok") && toks[n - 1].is_group('(') {
                self.report(toks[n - 2].span(), "falls off the end with Ok");
            }
        }
    }

    fn report(&mut self, span: Span, how: &str) {
        self.out.push(Finding {
            rule: self.rule.id(),
            severity: self.rule.severity(),
            path: self.path.to_string(),
            line: span.line,
            col: span.col,
            message: format!(
                "`{}` {how} while the eviction queue may hold undrained persists; \
                 call `drain_evictions` before succeeding",
                self.f.name
            ),
        });
    }
}

/// The concrete WAL-protocol walker over one audited fn: tracks the
/// set of possible WAL states through the token tree. Brace groups are
/// conditional regions — the state set is cloned in and unioned out,
/// so a `log_commit` inside an `if` leaves "maybe uncommitted" alive
/// on the parent path.
struct KvWalk<'a, 'o> {
    ws: &'a Workspace,
    f: &'a FnDef,
    rule: &'a PersistOrder,
    path: &'a str,
    out: &'o mut Vec<Finding>,
}

impl KvWalk<'_, '_> {
    fn walk(&mut self, toks: &[Tok], states: &mut u8, top: bool) {
        let mut i = 0;
        while i < toks.len() {
            if let Some(name) = call_at(toks, i) {
                let transfer: Option<(WalSummary, bool)> = crate::effects::primitive_wal(name)
                    .map(|w| (w, true))
                    .or_else(|| {
                        self.ws
                            .symbols
                            .resolve(self.f, name)
                            .filter(|_| crate::effects::primitive_effects(name) == 0)
                            .map(|c| (self.ws.effects.wals[c], false))
                            .filter(|(w, _)| *w != WalSummary::IDENTITY)
                    });
                if let Some((t, direct)) = transfer {
                    if let Some(Tok::Group { tokens, .. }) = toks.get(i + 1) {
                        // Arguments evaluate before the call takes
                        // effect.
                        self.walk(tokens, states, false);
                    }
                    if t.unsafe_on(*states) {
                        let how = if direct {
                            "applies transaction writes on a path where the \
                             commit marker may not be durable"
                                .to_string()
                        } else {
                            format!(
                                "calls `{name}`, which applies transaction writes, on a \
                                 path where the commit marker may not be durable"
                            )
                        };
                        self.report(toks[i].span(), &how);
                    }
                    *states = t.apply(*states);
                    i += 2;
                    continue;
                }
            }
            match &toks[i] {
                t if t.is_ident("return")
                    && *states & (ST_APPENDED | ST_COMMITTED) != 0
                    && matches!(toks.get(i + 1), Some(x) if x.is_ident("Ok")) =>
                {
                    self.report(
                        t.span(),
                        "returns Ok with a logged transaction not yet applied",
                    );
                }
                Tok::Group {
                    delim: '{', tokens, ..
                } => {
                    let mut inner = *states;
                    self.walk(tokens, &mut inner, false);
                    *states |= inner;
                }
                Tok::Group { tokens, .. } => {
                    self.walk(tokens, states, false);
                }
                _ => {}
            }
            i += 1;
        }
        if top && *states & (ST_APPENDED | ST_COMMITTED) != 0 {
            let n = toks.len();
            if n >= 2 && toks[n - 2].is_ident("Ok") && toks[n - 1].is_group('(') {
                self.report(
                    toks[n - 2].span(),
                    "falls off the end with Ok while a logged transaction is not yet applied",
                );
            }
        }
    }

    fn report(&mut self, span: Span, how: &str) {
        self.out.push(Finding {
            rule: self.rule.id(),
            severity: self.rule.severity(),
            path: self.path.to_string(),
            line: span.line,
            col: span.col,
            message: format!(
                "`{}` {how}; the WAL contract is \
                 log_append -> log_commit -> apply_writes on every Ok path",
                self.f.name
            ),
        });
    }
}

/// The checkpoint-completion walker over one audited recov fn: the
/// same state-set machinery as [`KvWalk`], instantiated with the
/// checkpoint vocabulary ([`crate::effects::primitive_ckpt`]). Live
/// states are idle and committed (checkpoint durable); the violations
/// are a `seqno_bump` reachable from a maybe-unpersisted state and an
/// Ok return with a durable checkpoint whose bump never happened.
struct CkptWalk<'a, 'o> {
    ws: &'a Workspace,
    f: &'a FnDef,
    rule: &'a PersistOrder,
    path: &'a str,
    out: &'o mut Vec<Finding>,
}

impl CkptWalk<'_, '_> {
    fn walk(&mut self, toks: &[Tok], states: &mut u8, top: bool) {
        let mut i = 0;
        while i < toks.len() {
            if let Some(name) = call_at(toks, i) {
                let transfer: Option<(WalSummary, bool)> = crate::effects::primitive_ckpt(name)
                    .map(|w| (w, true))
                    .or_else(|| {
                        self.ws
                            .symbols
                            .resolve(self.f, name)
                            .filter(|_| crate::effects::primitive_effects(name) == 0)
                            .map(|c| (self.ws.effects.ckpts[c], false))
                            .filter(|(w, _)| *w != WalSummary::IDENTITY)
                    });
                if let Some((t, direct)) = transfer {
                    if let Some(Tok::Group { tokens, .. }) = toks.get(i + 1) {
                        // Arguments evaluate before the call takes
                        // effect.
                        self.walk(tokens, states, false);
                    }
                    if t.unsafe_on(*states) {
                        let how = if direct {
                            "advances the operation seqno on a path where the \
                             completion checkpoint may not be durable"
                                .to_string()
                        } else {
                            format!(
                                "calls `{name}`, which advances the operation seqno, on a \
                                 path where the completion checkpoint may not be durable"
                            )
                        };
                        self.report(toks[i].span(), &how);
                    }
                    *states = t.apply(*states);
                    i += 2;
                    continue;
                }
            }
            match &toks[i] {
                t if t.is_ident("return")
                    && *states & (ST_APPENDED | ST_COMMITTED) != 0
                    && matches!(toks.get(i + 1), Some(x) if x.is_ident("Ok")) =>
                {
                    self.report(
                        t.span(),
                        "returns Ok with a durable checkpoint whose seqno bump never ran",
                    );
                }
                Tok::Group {
                    delim: '{', tokens, ..
                } => {
                    let mut inner = *states;
                    self.walk(tokens, &mut inner, false);
                    *states |= inner;
                }
                Tok::Group { tokens, .. } => {
                    self.walk(tokens, states, false);
                }
                _ => {}
            }
            i += 1;
        }
        if top && *states & (ST_APPENDED | ST_COMMITTED) != 0 {
            let n = toks.len();
            if n >= 2 && toks[n - 2].is_ident("Ok") && toks[n - 1].is_group('(') {
                self.report(
                    toks[n - 2].span(),
                    "falls off the end with Ok while a durable checkpoint's seqno bump never ran",
                );
            }
        }
    }

    fn report(&mut self, span: Span, how: &str) {
        self.out.push(Finding {
            rule: self.rule.id(),
            severity: self.rule.severity(),
            path: self.path.to_string(),
            line: span.line,
            col: span.col,
            message: format!(
                "`{}` {how}; the completion contract is \
                 checkpoint_persist -> seqno_bump on every Ok path",
                self.f.name
            ),
        });
    }
}
