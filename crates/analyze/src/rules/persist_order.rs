//! `persist-order`: the mechanized form of PR 1's manual audit. Every
//! public `&mut self` engine operation that feeds the metadata eviction
//! queue (counter / MAC / BMT write-backs scheduled by the `*_touch`
//! and `ensure_*` helpers) must drain that queue before succeeding —
//! otherwise a crash after the `Ok` return loses queued persists and
//! the recovered BMT disagrees with data NVM, the exact TriadNVM-2
//! regression PR 1 fixed.
//!
//! The check is structural, over the token tree of
//! `crates/core/src/engine.rs`: walking a function body, a call to a
//! queue-feeding helper sets a `pending` bit and `drain_evictions`
//! clears it. Brace groups are conditional — the walker clones the bit
//! into them and ORs it back out, so a drain *inside* an `if` never
//! clears the parent path while a touch inside one taints it. A
//! `return Ok` site or the function's tail `Ok(...)` while `pending`
//! is set is a finding. Error paths (`?`, `return Err`) are exempt:
//! failed operations make no persistence promise.
//!
//! # The KV section
//!
//! The same rule audits the write-ahead-log protocol of
//! `crates/kv/src/store.rs`: every public `&mut self` operation of
//! `KvStore` that touches the WAL must run `log_append` →
//! `log_commit` → `apply_writes` in that order on every Ok path.
//! Applying index/entry writes before the commit marker is durable is
//! exactly the torn-transaction window the log exists to close, so
//! the walker tracks the *set* of possible protocol states (idle /
//! appended / committed) through brace groups (union on exit, since a
//! branch may not run) and flags an `apply_writes` reachable on a
//! path where the marker may not be durable, or an Ok return with a
//! logged transaction left unapplied.

use crate::lexer::Span;
use crate::lint::{FileAnalysis, Finding, Rule, Severity};
use crate::rules::any_ident;
use crate::tree::{impl_blocks, Tok};

/// See module docs.
pub struct PersistOrder;

/// Helpers that enqueue metadata (or data) write-backs on the engine's
/// eviction queue.
const QUEUE_CALLS: &[&str] = &[
    "l3_touch",
    "ctr_touch",
    "mt_touch",
    "writeback_data",
    "reclaim",
    "ensure_counter",
    "ensure_node",
    "ensure_mac_block",
];

/// The calls that retire the queue.
const DRAINS: &[&str] = &["drain_evictions"];

/// The type whose public surface the audit covers.
const ENGINE_TYPE: &str = "SecureMemory";

/// The KV store's WAL protocol helpers, in required durability order.
const KV_APPEND: &[&str] = &["log_append"];
const KV_COMMIT: &[&str] = &["log_commit"];
/// The batched append-plus-marker step: one call covers both the
/// append and the commit states (the marker is the batch's last
/// durability point, so after it returns the transaction is
/// committed).
const KV_TXN: &[&str] = &["log_txn"];
const KV_APPLY: &[&str] = &["apply_writes"];

/// The type whose public surface the KV section covers.
const KV_TYPE: &str = "KvStore";

/// Possible WAL protocol states (a bitset: brace groups union).
const ST_IDLE: u8 = 1;
const ST_APPENDED: u8 = 2;
const ST_COMMITTED: u8 = 4;

impl Rule for PersistOrder {
    fn id(&self) -> &'static str {
        "persist-order"
    }

    fn severity(&self) -> Severity {
        Severity::Error
    }

    fn description(&self) -> &'static str {
        "public engine ops must drain the eviction queue, and KV ops must \
         order log append -> commit marker -> index apply, on every Ok path"
    }

    fn check(&self, file: &FileAnalysis, out: &mut Vec<Finding>) {
        if file.path.ends_with("crates/core/src/engine.rs")
            || file.path.ends_with("crates/core/src/batch.rs")
        {
            self.check_engine(file, out);
        } else if file.path.ends_with("crates/kv/src/store.rs") {
            self.check_kv(file, out);
        }
    }
}

impl PersistOrder {
    fn check_engine(&self, file: &FileAnalysis, out: &mut Vec<Finding>) {
        for ib in impl_blocks(&file.toks) {
            if ib.target != ENGINE_TYPE || ib.trait_name.is_some() {
                continue;
            }
            for f in pub_mut_self_fns(ib.body) {
                if !any_ident(f.body, &|n| QUEUE_CALLS.contains(&n)) {
                    // Delegating wrappers (`read`, `write`, ...) are
                    // audited through their callee.
                    continue;
                }
                let mut pending = false;
                walk(f.body, &mut pending, true, &f.name, self, file, out);
            }
        }
    }

    fn check_kv(&self, file: &FileAnalysis, out: &mut Vec<Finding>) {
        let wal_call = |n: &str| {
            KV_APPEND.contains(&n)
                || KV_COMMIT.contains(&n)
                || KV_TXN.contains(&n)
                || KV_APPLY.contains(&n)
        };
        for ib in impl_blocks(&file.toks) {
            if ib.target != KV_TYPE || ib.trait_name.is_some() {
                continue;
            }
            for f in pub_mut_self_fns(ib.body) {
                if !any_ident(f.body, &wal_call) {
                    continue;
                }
                let mut states = ST_IDLE;
                kv_walk(f.body, &mut states, true, &f.name, self, file, out);
            }
        }
    }
}

/// A `pub fn name(&mut self, ...) { body }` item.
struct PubFn<'a> {
    name: String,
    body: &'a [Tok],
}

fn pub_mut_self_fns(body: &[Tok]) -> Vec<PubFn<'_>> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < body.len() {
        if !body[i].is_ident("fn") {
            i += 1;
            continue;
        }
        let is_pub = {
            // Walk back over qualifiers (`pub const unsafe fn`). Only
            // plain `pub` counts: `pub(crate)` helpers are the queue
            // vocabulary itself (drains, write-backs), audited through
            // the public operations that call them.
            let mut j = i;
            let mut found = false;
            while j > 0 {
                j -= 1;
                match &body[j] {
                    t if t.is_ident("pub") => {
                        found = !matches!(body.get(j + 1), Some(g) if g.is_group('('));
                        break;
                    }
                    t if t.is_ident("const") || t.is_ident("unsafe") || t.is_ident("async") => {}
                    t if t.is_group('(') => {}
                    _ => break,
                }
            }
            found
        };
        let name = body
            .get(i + 1)
            .and_then(|t| t.ident())
            .unwrap_or("")
            .to_string();
        // Find the parameter list and body, skipping generics; inside
        // `<...>` the angle depth is positive, so `Fn(..)` bounds never
        // masquerade as the parameter list.
        let mut angle = 0i32;
        let mut params: Option<&[Tok]> = None;
        let mut fn_body: Option<&[Tok]> = None;
        let mut j = i + 2;
        while j < body.len() {
            match &body[j] {
                t if t.is_punct('<') => angle += 1,
                t if t.is_punct('>') => angle -= 1,
                Tok::Group {
                    delim: '(', tokens, ..
                } if params.is_none() && angle <= 0 => params = Some(tokens),
                Tok::Group {
                    delim: '{', tokens, ..
                } => {
                    fn_body = Some(tokens);
                    break;
                }
                t if t.is_punct(';') => break,
                _ => {}
            }
            j += 1;
        }
        if let (true, Some(params), Some(fn_body)) = (is_pub, params, fn_body) {
            if takes_mut_self(params) {
                out.push(PubFn {
                    name,
                    body: fn_body,
                });
            }
        }
        i = j + 1;
    }
    out
}

/// Whether the first parameter is `&mut self` (lifetimes allowed).
fn takes_mut_self(params: &[Tok]) -> bool {
    let first: Vec<&Tok> = params.iter().take_while(|t| !t.is_punct(',')).collect();
    first.iter().any(|t| t.is_punct('&'))
        && first.iter().any(|t| t.is_ident("mut"))
        && first.iter().any(|t| t.is_ident("self"))
}

/// Whether `toks[i]` is a call `name(...)` of one of `names`.
fn is_call(toks: &[Tok], i: usize, names: &[&str]) -> bool {
    toks[i].ident().is_some_and(|n| names.contains(&n))
        && matches!(toks.get(i + 1), Some(g) if g.is_group('('))
}

#[allow(clippy::too_many_arguments)]
fn walk(
    toks: &[Tok],
    pending: &mut bool,
    top: bool,
    fn_name: &str,
    rule: &PersistOrder,
    file: &FileAnalysis,
    out: &mut Vec<Finding>,
) {
    let mut i = 0;
    while i < toks.len() {
        if is_call(toks, i, QUEUE_CALLS) || is_call(toks, i, DRAINS) {
            let enqueue = is_call(toks, i, QUEUE_CALLS);
            if let Some(Tok::Group { tokens, .. }) = toks.get(i + 1) {
                // Arguments evaluate before the call takes effect.
                walk(tokens, pending, false, fn_name, rule, file, out);
            }
            *pending = enqueue;
            i += 2;
            continue;
        }
        match &toks[i] {
            t if t.is_ident("return")
                && *pending
                && matches!(toks.get(i + 1), Some(x) if x.is_ident("Ok")) =>
            {
                report(t.span(), fn_name, "returns Ok", rule, file, out);
            }
            Tok::Group {
                delim: '{', tokens, ..
            } => {
                // A brace group is a conditional region: findings on
                // returns inside use the state flowing in, and any
                // enqueue inside taints the parent, but a drain inside
                // cannot clear the parent (the branch may not run).
                let mut inner = *pending;
                walk(tokens, &mut inner, false, fn_name, rule, file, out);
                *pending |= inner;
            }
            Tok::Group { tokens, .. } => {
                walk(tokens, pending, false, fn_name, rule, file, out);
            }
            _ => {}
        }
        i += 1;
    }
    if top && *pending {
        let n = toks.len();
        if n >= 2 && toks[n - 2].is_ident("Ok") && toks[n - 1].is_group('(') {
            report(
                toks[n - 2].span(),
                fn_name,
                "falls off the end with Ok",
                rule,
                file,
                out,
            );
        }
    }
}

/// The KV walker: tracks the set of possible WAL states through the
/// token tree. Brace groups are conditional regions — the state set is
/// cloned in and unioned out, so a `log_commit` inside an `if` leaves
/// "maybe uncommitted" alive on the parent path.
#[allow(clippy::too_many_arguments)]
fn kv_walk(
    toks: &[Tok],
    states: &mut u8,
    top: bool,
    fn_name: &str,
    rule: &PersistOrder,
    file: &FileAnalysis,
    out: &mut Vec<Finding>,
) {
    let mut i = 0;
    while i < toks.len() {
        if is_call(toks, i, KV_APPEND)
            || is_call(toks, i, KV_COMMIT)
            || is_call(toks, i, KV_TXN)
            || is_call(toks, i, KV_APPLY)
        {
            if let Some(Tok::Group { tokens, .. }) = toks.get(i + 1) {
                // Arguments evaluate before the call takes effect.
                kv_walk(tokens, states, false, fn_name, rule, file, out);
            }
            if is_call(toks, i, KV_APPLY) {
                if *states & !ST_COMMITTED != 0 {
                    kv_report(
                        toks[i].span(),
                        fn_name,
                        "applies transaction writes on a path where the \
                         commit marker may not be durable",
                        rule,
                        file,
                        out,
                    );
                }
                *states = ST_IDLE;
            } else if is_call(toks, i, KV_COMMIT) || is_call(toks, i, KV_TXN) {
                *states = ST_COMMITTED;
            } else {
                *states = ST_APPENDED;
            }
            i += 2;
            continue;
        }
        match &toks[i] {
            t if t.is_ident("return")
                && *states & (ST_APPENDED | ST_COMMITTED) != 0
                && matches!(toks.get(i + 1), Some(x) if x.is_ident("Ok")) =>
            {
                kv_report(
                    t.span(),
                    fn_name,
                    "returns Ok with a logged transaction not yet applied",
                    rule,
                    file,
                    out,
                );
            }
            Tok::Group {
                delim: '{', tokens, ..
            } => {
                let mut inner = *states;
                kv_walk(tokens, &mut inner, false, fn_name, rule, file, out);
                *states |= inner;
            }
            Tok::Group { tokens, .. } => {
                kv_walk(tokens, states, false, fn_name, rule, file, out);
            }
            _ => {}
        }
        i += 1;
    }
    if top && *states & (ST_APPENDED | ST_COMMITTED) != 0 {
        let n = toks.len();
        if n >= 2 && toks[n - 2].is_ident("Ok") && toks[n - 1].is_group('(') {
            kv_report(
                toks[n - 2].span(),
                fn_name,
                "falls off the end with Ok while a logged transaction is not yet applied",
                rule,
                file,
                out,
            );
        }
    }
}

fn kv_report(
    span: Span,
    fn_name: &str,
    how: &str,
    rule: &PersistOrder,
    file: &FileAnalysis,
    out: &mut Vec<Finding>,
) {
    out.push(Finding {
        rule: rule.id(),
        severity: rule.severity(),
        path: file.path.clone(),
        line: span.line,
        col: span.col,
        message: format!(
            "`{fn_name}` {how}; the WAL contract is \
             log_append -> log_commit -> apply_writes on every Ok path"
        ),
    });
}

fn report(
    span: Span,
    fn_name: &str,
    how: &str,
    rule: &PersistOrder,
    file: &FileAnalysis,
    out: &mut Vec<Finding>,
) {
    out.push(Finding {
        rule: rule.id(),
        severity: rule.severity(),
        path: file.path.clone(),
        line: span.line,
        col: span.col,
        message: format!(
            "`{fn_name}` {how} while the eviction queue may hold undrained persists; \
             call `drain_evictions` before succeeding"
        ),
    });
}
