//! Call graph: structural call-site extraction (`name(...)` — an
//! identifier directly followed by a parenthesis group) resolved
//! through the [`crate::symbols::SymbolTable`]. Method calls
//! (`self.l3_touch(...)`), free calls and `Self::op(...)` paths all
//! end in the same `ident (args)` shape, so one pattern covers them;
//! macro invocations (`vec![]`, `panic!(...)`) have a `!` between the
//! name and the group and are naturally excluded.

use crate::lexer::Span;
use crate::symbols::SymbolTable;
use crate::tree::Tok;

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// The called name (`drain_evictions`).
    pub name: String,
    /// Where the name appears.
    pub span: Span,
    /// The resolved definition in the symbol table, when unambiguous.
    pub callee: Option<usize>,
}

/// Per-function call sites, parallel to [`SymbolTable::fns`].
#[derive(Debug, Default)]
pub struct CallGraph {
    /// `calls[i]` are the call sites inside `symbols.fns[i]`.
    pub calls: Vec<Vec<CallSite>>,
}

/// Keywords that can syntactically precede a parenthesis without being
/// a call (`if (cond)`, `return (x)`, tuple patterns after `let`).
const NON_CALL: &[&str] = &[
    "if", "else", "match", "while", "for", "loop", "return", "fn", "in", "as", "move", "where",
    "unsafe", "await", "let", "mut", "ref", "break", "continue", "self", "impl",
];

/// Extracts every `name(...)` call site in a body, depth first.
pub fn call_sites(body: &[Tok]) -> Vec<(String, Span)> {
    let mut out = Vec::new();
    scan(body, &mut out);
    out
}

fn scan(toks: &[Tok], out: &mut Vec<(String, Span)>) {
    for (i, t) in toks.iter().enumerate() {
        if let Some(name) = t.ident() {
            // `fn name(params)` / `struct Name(fields)` are
            // definitions, not calls.
            let is_def = i > 0 && (toks[i - 1].is_ident("fn") || toks[i - 1].is_ident("struct"));
            if !is_def
                && !NON_CALL.contains(&name)
                && matches!(toks.get(i + 1), Some(g) if g.is_group('('))
            {
                out.push((name.to_string(), t.span()));
            }
        }
        if let Tok::Group { tokens, .. } = t {
            scan(tokens, out);
        }
    }
}

impl CallGraph {
    /// Builds the graph by resolving every call site of every fn.
    pub fn build(symbols: &SymbolTable) -> CallGraph {
        let mut calls = Vec::with_capacity(symbols.fns.len());
        for f in &symbols.fns {
            let sites = call_sites(&f.body)
                .into_iter()
                .map(|(name, span)| {
                    let callee = symbols.resolve(f, &name);
                    CallSite { name, span, callee }
                })
                .collect();
            calls.push(sites);
        }
        CallGraph { calls }
    }

    /// The set of fns reachable from `roots` through resolved edges
    /// (roots included).
    pub fn reachable(&self, roots: impl IntoIterator<Item = usize>) -> Vec<bool> {
        let mut seen = vec![false; self.calls.len()];
        let mut stack: Vec<usize> = roots.into_iter().collect();
        while let Some(i) = stack.pop() {
            if i >= seen.len() || seen[i] {
                continue;
            }
            seen[i] = true;
            for site in &self.calls[i] {
                if let Some(c) = site.callee {
                    if !seen[c] {
                        stack.push(c);
                    }
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::FileAnalysis;

    #[test]
    fn extracts_calls_not_macros_or_keywords() {
        let fa = FileAnalysis::new(
            "x.rs",
            "fn f() { if (a) { g(1); self.h(); vec![1]; println!(\"x\"); Ok(()) } }",
        );
        let names: Vec<String> = call_sites(&fa.toks).into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["g", "h", "Ok"]);
    }

    #[test]
    fn edges_resolve_and_reachability_follows_them() {
        let fa = FileAnalysis::new(
            "crates/core/src/a.rs",
            "pub fn top() { mid() }\nfn mid() { leaf() }\nfn leaf() {}\nfn island() {}\n",
        );
        let symbols = SymbolTable::build(std::slice::from_ref(&fa));
        let g = CallGraph::build(&symbols);
        let top = symbols.fns.iter().position(|f| f.name == "top").unwrap();
        let island = symbols.fns.iter().position(|f| f.name == "island").unwrap();
        let reach = g.reachable([top]);
        assert!(reach[top]);
        assert!(reach[symbols.fns.iter().position(|f| f.name == "leaf").unwrap()]);
        assert!(!reach[island]);
    }
}
