//! In-tree static analysis for the Triad-NVM workspace.
//!
//! The workspace's zero-dependency policy rules out `syn`/`clippy`
//! plumbing, so `triad-analyze` hand-rolls the whole stack: a Rust
//! [`lexer`], a bracket-nesting token [`tree`], a small [`lint`]
//! framework (stable rule IDs, severities, human + JSON output,
//! `// triad-lint: allow(<rule>)` suppressions), and the repo-specific
//! [`rules`] that mechanize the audits earlier PRs did by hand:
//!
//! | rule | checks |
//! |---|---|
//! | `determinism/hash-order` | no default-hasher maps in sim/core/mem/meta |
//! | `determinism/wall-clock` | no `Instant`/`SystemTime` outside `crates/bench` |
//! | `panic-policy` | no `unwrap`/`expect`/`panic!` in core/mem/meta non-test code |
//! | `persist-order` | every public engine op drains the eviction queue on Ok paths |
//! | `stats-registration` | every declared stat counter is reported |
//! | `suppression-rationale` | every `allow(...)` carries a `-- reason` |
//! | `shard-safety/*` | sharding-readiness: no shared mutable statics, ordered merges, forked RNG streams |
//!
//! Since v2 the crate also builds a whole-workspace model — a
//! [`symbols::SymbolTable`], a [`callgraph::CallGraph`] and inferred
//! [`effects`] per function — bundled as a [`Workspace`], so rules
//! like `persist-order` reason *interprocedurally*: an enqueue three
//! calls deep still taints the public operation that reaches it.
//!
//! The `triad-lint` binary drives [`analyze_repo`] from CI; tests and
//! fixtures drive [`analyze_source`] / [`analyze_sources`] with
//! virtual paths.

pub mod callgraph;
pub mod effects;
pub mod lexer;
pub mod lint;
pub mod rules;
pub mod symbols;
pub mod tree;

pub use lint::{FileAnalysis, Finding, Rule, Severity, WorkspaceRule};
pub use symbols::SymbolTable;

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The whole-workspace model the v2 rules run against: the analysed
/// files plus the symbol table, call graph and effect inference built
/// over all of them at once.
#[derive(Debug)]
pub struct Workspace {
    /// Every analysed file, in scan order.
    pub files: Vec<FileAnalysis>,
    /// Every fn definition across `files`.
    pub symbols: symbols::SymbolTable,
    /// Resolved call sites per fn.
    pub graph: callgraph::CallGraph,
    /// Inferred persist effects and flow summaries per fn.
    pub effects: effects::EffectTable,
}

impl Workspace {
    /// Builds the model over a set of analysed files. A single-file
    /// workspace is valid — that is how fixtures are linted — and
    /// unresolvable calls simply fall back to the identity transfer.
    pub fn new(files: Vec<FileAnalysis>) -> Workspace {
        let symbols = symbols::SymbolTable::build(&files);
        let graph = callgraph::CallGraph::build(&symbols);
        let effects = effects::EffectTable::build(&symbols, &graph);
        Workspace {
            files,
            symbols,
            graph,
            effects,
        }
    }

    /// Runs every per-file and workspace rule, applies suppressions,
    /// and returns the findings sorted by path, line, column, rule.
    pub fn findings(&self) -> Vec<Finding> {
        let per_file = rules::all();
        let mut out = Vec::new();
        for file in &self.files {
            lint::run_rules(file, &per_file, &mut out);
        }
        let mut raw = Vec::new();
        for rule in rules::workspace_all() {
            rule.check(self, &mut raw);
        }
        // Workspace findings pass the same per-file suppression filter.
        let by_path: BTreeMap<&str, &FileAnalysis> =
            self.files.iter().map(|f| (f.path.as_str(), f)).collect();
        out.extend(raw.into_iter().filter(|f| {
            by_path
                .get(f.path.as_str())
                .is_none_or(|fa| !fa.is_suppressed(f.rule, f.line))
        }));
        out.sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
        out
    }
}

/// Lints one source text as if it lived at the workspace-relative
/// `path` (which is what the rules scope on).
pub fn analyze_source(path: &str, source: &str) -> Vec<Finding> {
    analyze_sources(&[(path, source)])
}

/// Lints several sources as one workspace under virtual paths, so
/// tests can exercise cross-file call resolution.
pub fn analyze_sources(files: &[(&str, &str)]) -> Vec<Finding> {
    let files = files.iter().map(|(p, s)| FileAnalysis::new(p, s)).collect();
    Workspace::new(files).findings()
}

/// The result of linting a whole workspace.
#[derive(Debug)]
pub struct RepoReport {
    /// All findings, sorted by path, line, column, rule.
    pub findings: Vec<Finding>,
    /// How many `.rs` files were scanned.
    pub files_scanned: usize,
}

/// Lints every `.rs` file under `root`'s `src/`, `crates/`, `tests/`
/// and `examples/` trees, skipping `target/` and anything under a
/// `fixtures/` directory (fixtures *contain* deliberate findings).
pub fn analyze_repo(root: &Path) -> io::Result<RepoReport> {
    let mut files = Vec::new();
    for top in ["src", "crates", "tests", "examples"] {
        collect_rs(&root.join(top), &mut files)?;
    }
    files.sort();
    let mut analysed = Vec::with_capacity(files.len());
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let source = fs::read_to_string(path)?;
        analysed.push(FileAnalysis::new(&rel, &source));
    }
    let ws = Workspace::new(analysed);
    Ok(RepoReport {
        findings: ws.findings(),
        files_scanned: files.len(),
    })
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_source_has_no_findings() {
        let src = "use std::collections::BTreeMap;\npub fn f() -> BTreeMap<u64, u64> { BTreeMap::new() }\n";
        assert!(analyze_source("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn findings_carry_rule_ids_and_spans() {
        let src = "use std::collections::HashMap;\n";
        let f = analyze_source("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "determinism/hash-order");
        assert_eq!((f[0].line, f[0].col), (1, 23));
    }
}
