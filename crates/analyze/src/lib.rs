//! In-tree static analysis for the Triad-NVM workspace.
//!
//! The workspace's zero-dependency policy rules out `syn`/`clippy`
//! plumbing, so `triad-analyze` hand-rolls the whole stack: a Rust
//! [`lexer`], a bracket-nesting token [`tree`], a small [`lint`]
//! framework (stable rule IDs, severities, human + JSON output,
//! `// triad-lint: allow(<rule>)` suppressions), and the repo-specific
//! [`rules`] that mechanize the audits earlier PRs did by hand:
//!
//! | rule | checks |
//! |---|---|
//! | `determinism/hash-order` | no default-hasher maps in sim/core/mem/meta |
//! | `determinism/wall-clock` | no `Instant`/`SystemTime` outside `crates/bench` |
//! | `panic-policy` | no `unwrap`/`expect`/`panic!` in core/mem/meta non-test code |
//! | `persist-order` | every public engine op drains the eviction queue on Ok paths |
//! | `stats-registration` | every declared stat counter is reported |
//!
//! The `triad-lint` binary drives [`analyze_repo`] from CI; tests and
//! fixtures drive [`analyze_source`] with virtual paths.

pub mod lexer;
pub mod lint;
pub mod rules;
pub mod tree;

pub use lint::{FileAnalysis, Finding, Rule, Severity};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Lints one source text as if it lived at the workspace-relative
/// `path` (which is what the rules scope on).
pub fn analyze_source(path: &str, source: &str) -> Vec<Finding> {
    let file = FileAnalysis::new(path, source);
    let rules = rules::all();
    let mut out = Vec::new();
    lint::run_rules(&file, &rules, &mut out);
    out
}

/// The result of linting a whole workspace.
#[derive(Debug)]
pub struct RepoReport {
    /// All findings, sorted by path, line, column, rule.
    pub findings: Vec<Finding>,
    /// How many `.rs` files were scanned.
    pub files_scanned: usize,
}

/// Lints every `.rs` file under `root`'s `src/`, `crates/`, `tests/`
/// and `examples/` trees, skipping `target/` and anything under a
/// `fixtures/` directory (fixtures *contain* deliberate findings).
pub fn analyze_repo(root: &Path) -> io::Result<RepoReport> {
    let mut files = Vec::new();
    for top in ["src", "crates", "tests", "examples"] {
        collect_rs(&root.join(top), &mut files)?;
    }
    files.sort();
    let rules = rules::all();
    let mut findings = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let source = fs::read_to_string(path)?;
        let file = FileAnalysis::new(&rel, &source);
        lint::run_rules(&file, &rules, &mut findings);
    }
    findings
        .sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
    Ok(RepoReport {
        findings,
        files_scanned: files.len(),
    })
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_source_has_no_findings() {
        let src = "use std::collections::BTreeMap;\npub fn f() -> BTreeMap<u64, u64> { BTreeMap::new() }\n";
        assert!(analyze_source("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn findings_carry_rule_ids_and_spans() {
        let src = "use std::collections::HashMap;\n";
        let f = analyze_source("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "determinism/hash-order");
        assert_eq!((f[0].line, f[0].col), (1, 23));
    }
}
