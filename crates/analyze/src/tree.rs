//! Token trees: the lexer's flat stream nested by bracket pairs, plus
//! the structural helpers rules share (test-region detection, `impl`
//! block discovery, struct-field extraction).

use crate::lexer::{Span, Token, TokenKind};

/// A token or a bracketed group of tokens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// A single non-bracket token.
    Leaf(Token),
    /// A `(...)`, `[...]` or `{...}` group.
    Group {
        /// Opening delimiter: `(`, `[` or `{`.
        delim: char,
        /// The tokens inside, nested.
        tokens: Vec<Tok>,
        /// Span of the opening delimiter.
        span: Span,
        /// Span of the closing delimiter (or last token when
        /// unterminated).
        end: Span,
    },
}

impl Tok {
    /// The identifier text, if this is an identifier leaf.
    pub fn ident(&self) -> Option<&str> {
        match self {
            Tok::Leaf(t) => t.ident(),
            _ => None,
        }
    }

    /// Whether this is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.ident() == Some(name)
    }

    /// Whether this is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        matches!(self, Tok::Leaf(t) if t.is_punct(c))
    }

    /// Whether this is a group opened by `delim`.
    pub fn is_group(&self, d: char) -> bool {
        matches!(self, Tok::Group { delim, .. } if *delim == d)
    }

    /// Where this token (or group) starts.
    pub fn span(&self) -> Span {
        match self {
            Tok::Leaf(t) => t.span,
            Tok::Group { span, .. } => *span,
        }
    }
}

fn closer(open: char) -> char {
    match open {
        '(' => ')',
        '[' => ']',
        _ => '}',
    }
}

fn build_group(tokens: &[Token], pos: &mut usize, until: Option<char>) -> (Vec<Tok>, Span) {
    let mut out = Vec::new();
    let mut end = Span { line: 1, col: 1 };
    while *pos < tokens.len() {
        let t = &tokens[*pos];
        end = t.span;
        match t.kind {
            TokenKind::Punct(c @ ('(' | '[' | '{')) => {
                let span = t.span;
                *pos += 1;
                let (inner, inner_end) = build_group(tokens, pos, Some(closer(c)));
                out.push(Tok::Group {
                    delim: c,
                    tokens: inner,
                    span,
                    end: inner_end,
                });
                end = inner_end;
            }
            TokenKind::Punct(c @ (')' | ']' | '}')) => {
                if until == Some(c) {
                    *pos += 1;
                    return (out, t.span);
                }
                // Stray closer: skip it rather than derailing the tree.
                *pos += 1;
            }
            _ => {
                out.push(Tok::Leaf(t.clone()));
                *pos += 1;
            }
        }
    }
    (out, end)
}

/// Nests a flat token stream into a token tree.
pub fn build(tokens: &[Token]) -> Vec<Tok> {
    let mut pos = 0;
    build_group(tokens, &mut pos, None).0
}

/// Line ranges (inclusive) occupied by test-only code: any item
/// carrying an attribute that mentions `test` (so `#[test]`,
/// `#[cfg(test)] mod tests { ... }`) — `#[cfg(not(test))]` is
/// explicitly *not* a test region.
pub fn test_line_ranges(toks: &[Tok]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    collect_test_ranges(toks, &mut out);
    out
}

fn attr_is_test(tokens: &[Tok]) -> bool {
    let mut saw_test = false;
    let mut saw_not = false;
    scan_idents(tokens, &mut |name| match name {
        "test" => saw_test = true,
        "not" => saw_not = true,
        _ => {}
    });
    saw_test && !saw_not
}

fn scan_idents(tokens: &[Tok], f: &mut impl FnMut(&str)) {
    for t in tokens {
        match t {
            Tok::Leaf(tok) => {
                if let Some(name) = tok.ident() {
                    f(name);
                }
            }
            Tok::Group { tokens, .. } => scan_idents(tokens, f),
        }
    }
}

fn collect_test_ranges(toks: &[Tok], out: &mut Vec<(u32, u32)>) {
    let mut i = 0;
    while i < toks.len() {
        let is_attr_start =
            toks[i].is_punct('#') && matches!(toks.get(i + 1), Some(t) if t.is_group('['));
        if is_attr_start {
            let Some(Tok::Group { tokens: attr, .. }) = toks.get(i + 1) else {
                i += 1;
                continue;
            };
            if attr_is_test(attr) {
                let start = toks[i].span().line;
                // The attributed item runs to its body's closing brace,
                // or to the first `;` for brace-less items.
                let mut j = i + 2;
                let mut end = toks[i + 1].span().line;
                while j < toks.len() {
                    match &toks[j] {
                        Tok::Group {
                            delim: '{', end: e, ..
                        } => {
                            end = e.line;
                            break;
                        }
                        t if t.is_punct(';') => {
                            end = t.span().line;
                            break;
                        }
                        t => {
                            end = t.span().line;
                            j += 1;
                        }
                    }
                }
                out.push((start, end));
                i = j + 1;
                continue;
            }
        }
        if let Tok::Group { tokens, .. } = &toks[i] {
            collect_test_ranges(tokens, out);
        }
        i += 1;
    }
}

/// An `impl` block found in a file.
#[derive(Debug)]
pub struct ImplBlock<'a> {
    /// The implemented type's name (`SecureMemory` in
    /// `impl SecureMemory`, `SecureStats` in
    /// `impl StatSink for SecureStats`).
    pub target: String,
    /// Trait name when this is a trait impl (`StatSink`), else `None`.
    pub trait_name: Option<String>,
    /// The tokens of the impl body.
    pub body: &'a [Tok],
}

/// Finds every `impl` block at any nesting depth.
pub fn impl_blocks(toks: &[Tok]) -> Vec<ImplBlock<'_>> {
    let mut out = Vec::new();
    collect_impls(toks, &mut out);
    out
}

fn collect_impls<'a>(toks: &'a [Tok], out: &mut Vec<ImplBlock<'a>>) {
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("impl") {
            // Header runs until the body group (skipping generics and
            // where clauses); idents before/after `for` tell the story.
            let mut before_for: Vec<&str> = Vec::new();
            let mut after_for: Vec<&str> = Vec::new();
            let mut saw_for = false;
            let mut saw_where = false;
            let mut angle = 0i32;
            let mut j = i + 1;
            let mut body: Option<&[Tok]> = None;
            while j < toks.len() {
                match &toks[j] {
                    Tok::Group {
                        delim: '{', tokens, ..
                    } => {
                        body = Some(tokens);
                        break;
                    }
                    t if t.is_punct('<') => angle += 1,
                    t if t.is_punct('>') => angle -= 1,
                    t if t.is_ident("for") && angle == 0 => saw_for = true,
                    t if t.is_ident("where") && angle == 0 => {
                        // `where` ends the useful part of the header.
                        saw_where = true;
                    }
                    Tok::Leaf(tok) if angle == 0 && !saw_where => {
                        if let Some(name) = tok.ident() {
                            if saw_for {
                                after_for.push(name);
                            } else {
                                before_for.push(name);
                            }
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            if let Some(body) = body {
                let (target, trait_name) = if saw_for {
                    (
                        after_for.first().map(|s| s.to_string()),
                        before_for.last().map(|s| s.to_string()),
                    )
                } else {
                    (before_for.last().map(|s| s.to_string()), None)
                };
                if let Some(target) = target {
                    out.push(ImplBlock {
                        target,
                        trait_name,
                        body,
                    });
                }
                collect_impls(body, out);
                i = j + 1;
                continue;
            }
        }
        if let Tok::Group { tokens, .. } = &toks[i] {
            collect_impls(tokens, out);
        }
        i += 1;
    }
}

/// A named field of a struct definition.
#[derive(Debug, Clone)]
pub struct StructField {
    /// Field name.
    pub name: String,
    /// Where the field name appears.
    pub span: Span,
}

/// A `struct Name { fields }` definition.
#[derive(Debug, Clone)]
pub struct StructDef {
    /// The struct's name.
    pub name: String,
    /// Its named fields (empty for tuple/unit structs).
    pub fields: Vec<StructField>,
}

/// Finds every brace-bodied struct definition at any nesting depth.
pub fn struct_defs(toks: &[Tok]) -> Vec<StructDef> {
    let mut out = Vec::new();
    collect_structs(toks, &mut out);
    out
}

fn collect_structs(toks: &[Tok], out: &mut Vec<StructDef>) {
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("struct") {
            if let Some(name) = toks.get(i + 1).and_then(|t| t.ident()) {
                // Skip generics, find the brace body (tuple structs hit
                // `(` or `;` first and are skipped).
                let mut j = i + 2;
                let mut body: Option<&[Tok]> = None;
                while j < toks.len() {
                    match &toks[j] {
                        Tok::Group {
                            delim: '{', tokens, ..
                        } => {
                            body = Some(tokens);
                            break;
                        }
                        t if t.is_punct(';') || t.is_group('(') => break,
                        _ => j += 1,
                    }
                }
                if let Some(body) = body {
                    out.push(StructDef {
                        name: name.to_string(),
                        fields: parse_fields(body),
                    });
                    i = j + 1;
                    continue;
                }
            }
        }
        if let Tok::Group { tokens, .. } = &toks[i] {
            collect_structs(tokens, out);
        }
        i += 1;
    }
}

/// Splits a struct body on top-level commas (angle-bracket aware) and
/// takes the identifier immediately before each first `:` as the field
/// name.
fn parse_fields(body: &[Tok]) -> Vec<StructField> {
    let mut fields = Vec::new();
    let mut angle = 0i32;
    let mut segment: Vec<&Tok> = Vec::new();
    let flush = |segment: &mut Vec<&Tok>, fields: &mut Vec<StructField>| {
        for (k, t) in segment.iter().enumerate() {
            if t.is_punct(':') {
                if let Some(prev) = k.checked_sub(1).and_then(|p| segment.get(p)) {
                    if let Some(name) = prev.ident() {
                        fields.push(StructField {
                            name: name.to_string(),
                            span: prev.span(),
                        });
                    }
                }
                break;
            }
        }
        segment.clear();
    };
    for t in body {
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle -= 1;
        } else if t.is_punct(',') && angle == 0 {
            flush(&mut segment, &mut fields);
            continue;
        }
        segment.push(t);
    }
    flush(&mut segment, &mut fields);
    fields
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn tree(src: &str) -> Vec<Tok> {
        build(&lex(src).tokens)
    }

    #[test]
    fn groups_nest() {
        let t = tree("fn f(a: u8) { g([1, 2]); }");
        assert!(t.iter().any(|x| x.is_group('(')));
        assert!(t.iter().any(|x| x.is_group('{')));
    }

    #[test]
    fn cfg_test_mod_is_a_test_range() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n  fn t() {}\n}\nfn after() {}\n";
        let ranges = test_line_ranges(&tree(src));
        assert_eq!(ranges, vec![(2, 5)]);
    }

    #[test]
    fn cfg_not_test_is_not_a_test_range() {
        let src = "#[cfg(not(test))]\nfn shipped() { }\n";
        assert!(test_line_ranges(&tree(src)).is_empty());
    }

    #[test]
    fn test_attr_on_use_item_stops_at_semicolon() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn real() {}\n";
        let ranges = test_line_ranges(&tree(src));
        assert_eq!(ranges, vec![(1, 2)]);
    }

    #[test]
    fn impls_are_found_with_targets_and_traits() {
        let src = "impl Foo { fn a(&self) {} }\nimpl StatSink for Bar { fn report(&self) {} }";
        let toks = tree(src);
        let impls = impl_blocks(&toks);
        assert_eq!(impls.len(), 2);
        assert_eq!(impls[0].target, "Foo");
        assert_eq!(impls[0].trait_name, None);
        assert_eq!(impls[1].target, "Bar");
        assert_eq!(impls[1].trait_name.as_deref(), Some("StatSink"));
    }

    #[test]
    fn struct_fields_survive_generic_types() {
        let src = "pub struct S { pub a: BTreeMap<String, u64>, b: Vec<(u8, u8)>, }";
        let defs = struct_defs(&tree(src));
        assert_eq!(defs.len(), 1);
        let names: Vec<_> = defs[0].fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["a", "b"]);
    }

    #[test]
    fn tuple_structs_have_no_named_fields() {
        assert!(struct_defs(&tree("struct T(u64);")).is_empty());
    }
}
