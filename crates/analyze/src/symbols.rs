//! Symbol table: every `fn` definition in the workspace, with its
//! owning `impl` target, visibility, and receiver shape. This is the
//! base layer of triad-lint v2 — the [`crate::callgraph`] resolves
//! call sites against it and [`crate::effects`] infers persist effects
//! over it — so the rules no longer need a file-name allowlist: a
//! public `SecureMemory` operation is audited wherever it is defined.

use std::collections::BTreeMap;

use crate::lexer::Span;
use crate::lint::FileAnalysis;
use crate::tree::Tok;

/// One function definition.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// The function's name.
    pub name: String,
    /// The `impl` target type when defined inside an impl block
    /// (`SecureMemory`), `None` for free functions.
    pub owner: Option<String>,
    /// Whether the surrounding impl is a trait impl
    /// (`impl StatSink for ...`).
    pub trait_impl: bool,
    /// Whether the fn is plain `pub`. `pub(crate)`/`pub(super)` count
    /// as private: restricted helpers are vocabulary, not API surface.
    pub is_pub: bool,
    /// Whether the receiver is `&mut self`.
    pub mut_self: bool,
    /// Index of the defining file in [`crate::Workspace::files`].
    pub file: usize,
    /// The crate the file belongs to (`core` for
    /// `crates/core/src/engine.rs`), `None` outside `crates/`.
    pub krate: Option<String>,
    /// Where the fn's name appears.
    pub span: Span,
    /// The body token tree, cloned out of the file's tree so the
    /// table owns its data.
    pub body: Vec<Tok>,
}

/// Every function definition in a set of files, indexed by name.
#[derive(Debug, Default)]
pub struct SymbolTable {
    /// Definitions in file order, then source order.
    pub fns: Vec<FnDef>,
    by_name: BTreeMap<String, Vec<usize>>,
}

/// The crate a workspace-relative path belongs to
/// (`crates/core/src/engine.rs` → `core`).
pub fn crate_of(path: &str) -> Option<&str> {
    path.strip_prefix("crates/")?.split('/').next()
}

impl SymbolTable {
    /// Collects every fn definition from `files`.
    pub fn build(files: &[FileAnalysis]) -> SymbolTable {
        let mut table = SymbolTable::default();
        for (file_idx, file) in files.iter().enumerate() {
            let krate = crate_of(&file.path).map(|s| s.to_string());
            collect_fns(&file.toks, None, false, file_idx, &krate, &mut table.fns);
        }
        for (i, f) in table.fns.iter().enumerate() {
            table.by_name.entry(f.name.clone()).or_default().push(i);
        }
        table
    }

    /// All definitions named `name`, in table order.
    pub fn candidates(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map_or(&[], |v| v.as_slice())
    }

    /// Resolves a call by `name` made inside `from`. Preference order:
    /// a method on the same owner type (so `self.ensure(...)` binds to
    /// the impl's own helper), then a definition in the same file, then
    /// the same crate. An unknown name — or a tie the preferences can't
    /// break — returns `None`, and analyses fall back to the identity
    /// transfer: an unresolvable call is assumed effect-free, which is
    /// exactly the v1 single-file behaviour for out-of-file helpers.
    pub fn resolve(&self, from: &FnDef, name: &str) -> Option<usize> {
        let cands = self.by_name.get(name)?;
        let mut best: Option<usize> = None;
        let mut best_score = -1i32;
        let mut tie = false;
        for &c in cands {
            let d = &self.fns[c];
            let mut score = 0;
            if d.owner.is_some() && d.owner == from.owner {
                score += 4;
            }
            if d.file == from.file {
                score += 2;
            }
            if d.krate.is_some() && d.krate == from.krate {
                score += 1;
            }
            if score > best_score {
                best_score = score;
                best = Some(c);
                tie = false;
            } else if score == best_score {
                tie = true;
            }
        }
        if tie {
            None
        } else {
            best
        }
    }
}

/// Walks `toks` collecting fn definitions. `owner` is the impl target
/// when inside an impl body. Does not descend into fn bodies: closures
/// and nested fns are analysed as part of their parent's body, not as
/// standalone symbols.
fn collect_fns(
    toks: &[Tok],
    owner: Option<&str>,
    trait_impl: bool,
    file: usize,
    krate: &Option<String>,
    out: &mut Vec<FnDef>,
) {
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("impl") {
            if let Some((target, is_trait, body, next)) = parse_impl_header(toks, i) {
                collect_fns(body, Some(&target), is_trait, file, krate, out);
                i = next;
                continue;
            }
        }
        if toks[i].is_ident("fn") {
            if let Some((def, next)) = parse_fn(toks, i, owner, trait_impl, file, krate) {
                out.push(def);
                i = next;
                continue;
            }
        }
        if let Tok::Group { tokens, .. } = &toks[i] {
            // Module bodies and other non-impl groups: free fns inside
            // them have no owner.
            collect_fns(tokens, None, false, file, krate, out);
        }
        i += 1;
    }
}

/// Parses an impl header starting at `toks[i]` (`impl` keyword).
/// Returns `(target, is_trait_impl, body, index_after_body)`.
fn parse_impl_header(toks: &[Tok], i: usize) -> Option<(String, bool, &[Tok], usize)> {
    let mut before_for: Vec<&str> = Vec::new();
    let mut after_for: Vec<&str> = Vec::new();
    let mut saw_for = false;
    let mut saw_where = false;
    let mut angle = 0i32;
    let mut j = i + 1;
    while j < toks.len() {
        match &toks[j] {
            Tok::Group {
                delim: '{', tokens, ..
            } => {
                let target = if saw_for {
                    after_for.first().copied()
                } else {
                    before_for.last().copied()
                }?;
                return Some((target.to_string(), saw_for, tokens, j + 1));
            }
            t if t.is_punct('<') => angle += 1,
            t if t.is_punct('>') => angle -= 1,
            t if t.is_ident("for") && angle == 0 => saw_for = true,
            t if t.is_ident("where") && angle == 0 => saw_where = true,
            Tok::Leaf(tok) if angle == 0 && !saw_where => {
                if let Some(name) = tok.ident() {
                    if saw_for {
                        after_for.push(name);
                    } else {
                        before_for.push(name);
                    }
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// Parses a fn item starting at `toks[i]` (`fn` keyword). Returns the
/// definition and the index just past the body. Bodyless fns (trait
/// method signatures) are skipped but still advance the cursor.
fn parse_fn(
    toks: &[Tok],
    i: usize,
    owner: Option<&str>,
    trait_impl: bool,
    file: usize,
    krate: &Option<String>,
) -> Option<(FnDef, usize)> {
    let is_pub = {
        // Walk back over qualifiers (`pub const unsafe fn`). Only
        // plain `pub` counts: `pub(crate)` helpers are internal
        // vocabulary, audited through their public callers.
        let mut j = i;
        let mut found = false;
        while j > 0 {
            j -= 1;
            match &toks[j] {
                t if t.is_ident("pub") => {
                    found = !matches!(toks.get(j + 1), Some(g) if g.is_group('('));
                    break;
                }
                t if t.is_ident("const") || t.is_ident("unsafe") || t.is_ident("async") => {}
                t if t.is_group('(') => {}
                _ => break,
            }
        }
        found
    };
    let name_tok = toks.get(i + 1)?;
    let name = name_tok.ident()?.to_string();
    let span = name_tok.span();
    // Find the parameter list and body, skipping generics; inside
    // `<...>` the angle depth is positive, so `Fn(..)` bounds never
    // masquerade as the parameter list.
    let mut angle = 0i32;
    let mut params: Option<&[Tok]> = None;
    let mut body: Option<&[Tok]> = None;
    let mut j = i + 2;
    while j < toks.len() {
        match &toks[j] {
            t if t.is_punct('<') => angle += 1,
            t if t.is_punct('>') => angle -= 1,
            Tok::Group {
                delim: '(', tokens, ..
            } if params.is_none() && angle <= 0 => params = Some(tokens),
            Tok::Group {
                delim: '{', tokens, ..
            } => {
                body = Some(tokens);
                break;
            }
            t if t.is_punct(';') => break,
            _ => {}
        }
        j += 1;
    }
    let body = body?;
    let mut_self = params.is_some_and(takes_mut_self);
    Some((
        FnDef {
            name,
            owner: owner.map(|s| s.to_string()),
            trait_impl,
            is_pub,
            mut_self,
            file,
            krate: krate.clone(),
            span,
            body: body.to_vec(),
        },
        j + 1,
    ))
}

/// Whether the first parameter is `&mut self` (lifetimes allowed).
fn takes_mut_self(params: &[Tok]) -> bool {
    let first: Vec<&Tok> = params.iter().take_while(|t| !t.is_punct(',')).collect();
    first.iter().any(|t| t.is_punct('&'))
        && first.iter().any(|t| t.is_ident("mut"))
        && first.iter().any(|t| t.is_ident("self"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(files: &[(&str, &str)]) -> SymbolTable {
        let fas: Vec<FileAnalysis> = files.iter().map(|(p, s)| FileAnalysis::new(p, s)).collect();
        SymbolTable::build(&fas)
    }

    #[test]
    fn collects_methods_free_fns_and_visibility() {
        let t = table(&[(
            "crates/core/src/engine.rs",
            "impl SecureMemory {\n\
               pub fn store(&mut self, a: u64) -> R { Ok(()) }\n\
               pub(crate) fn helper(&mut self) { }\n\
             }\n\
             fn free() { }\n\
             impl StatSink for SecureMemory { fn report(&self) { } }\n",
        )]);
        let names: Vec<(&str, Option<&str>, bool, bool, bool)> = t
            .fns
            .iter()
            .map(|f| {
                (
                    f.name.as_str(),
                    f.owner.as_deref(),
                    f.is_pub,
                    f.mut_self,
                    f.trait_impl,
                )
            })
            .collect();
        assert_eq!(
            names,
            [
                ("store", Some("SecureMemory"), true, true, false),
                ("helper", Some("SecureMemory"), false, true, false),
                ("free", None, false, false, false),
                ("report", Some("SecureMemory"), false, false, true),
            ]
        );
        assert_eq!(t.fns[0].krate.as_deref(), Some("core"));
    }

    #[test]
    fn resolve_prefers_owner_then_file_then_crate() {
        let t = table(&[
            (
                "crates/core/src/a.rs",
                "impl Engine { fn op(&mut self) { tick() } fn tick(&mut self) {} }\n\
                 fn tick() {}\n",
            ),
            ("crates/kv/src/b.rs", "fn tick() {}\n"),
        ]);
        let from = t.fns.iter().find(|f| f.name == "op").unwrap();
        let got = t.resolve(from, "tick").expect("resolved");
        let d = &t.fns[got];
        assert_eq!(d.owner.as_deref(), Some("Engine"), "method wins");
        // Two equally-plausible foreign candidates: unresolved.
        let free = t
            .fns
            .iter()
            .find(|f| f.name == "tick" && f.owner.is_none())
            .unwrap();
        assert!(t.resolve(free, "nonexistent").is_none());
    }
}
