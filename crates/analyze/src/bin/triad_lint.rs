//! `triad-lint`: run the workspace's static-analysis rules.
//!
//! ```text
//! triad-lint [--root PATH] [--format human|json] [--deny-all] [--list-rules]
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage/IO error. `--locked` and
//! `--offline` are accepted and ignored so the canonical CI line can
//! pass its cargo flags through verbatim.

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

use triad_analyze::{analyze_repo, lint, rules, Severity};

const USAGE: &str = "\
triad-lint: static analysis for the Triad-NVM workspace

USAGE:
    triad-lint [OPTIONS]

OPTIONS:
    --root PATH      workspace root to scan (default: current directory)
    --format FORMAT  output format: human (default) or json
    --json           shorthand for --format json
    --deny-all       treat warnings as errors for the exit code
    --list-rules     print the rule catalogue (per-file and workspace) and exit
    -h, --help       print this help
";

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut deny_all = false;
    let mut list_rules = false;
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let Some(p) = args.next() else {
                    eprintln!("triad-lint: --root needs a path");
                    return ExitCode::from(2);
                };
                root = PathBuf::from(p);
            }
            "--json" => json = true,
            "--format" => {
                let Some(fmt) = args.next() else {
                    eprintln!("triad-lint: --format needs `human` or `json`");
                    return ExitCode::from(2);
                };
                match fmt.as_str() {
                    "human" => json = false,
                    "json" => json = true,
                    other => {
                        eprintln!("triad-lint: unknown format `{other}` (want human|json)");
                        return ExitCode::from(2);
                    }
                }
            }
            "--deny-all" => deny_all = true,
            "--list-rules" => list_rules = true,
            // Tolerated so CI can append its cargo flags after `--`.
            "--locked" | "--offline" => {}
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("triad-lint: unknown argument `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    if list_rules {
        for rule in rules::all() {
            println!(
                "{:<36} {:<8} {}",
                rule.id(),
                rule.severity().as_str(),
                rule.description()
            );
        }
        for rule in rules::workspace_all() {
            println!(
                "{:<36} {:<8} {}",
                rule.id(),
                rule.severity().as_str(),
                rule.description()
            );
        }
        return ExitCode::SUCCESS;
    }

    let report = match analyze_repo(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("triad-lint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if json {
        println!(
            "{}",
            lint::render_json(&report.findings, report.files_scanned)
        );
    } else {
        print!(
            "{}",
            lint::render_human(&report.findings, report.files_scanned)
        );
    }

    let fail = if deny_all {
        !report.findings.is_empty()
    } else {
        report
            .findings
            .iter()
            .any(|f| f.severity == Severity::Error)
    };
    if fail {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
