//! The workspace itself must lint clean, and the `persist-order` rule
//! must demonstrably catch a seeded mutant of the real engine with a
//! drain call removed — proof the CI gate guards something real.

use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

#[test]
fn repo_lints_clean() {
    let report = triad_analyze::analyze_repo(&repo_root()).expect("scan workspace");
    assert!(report.files_scanned > 50, "walker found the workspace");
    let rendered: Vec<String> = report
        .findings
        .iter()
        .map(|f| format!("{}:{}:{} [{}] {}", f.path, f.line, f.col, f.rule, f.message))
        .collect();
    assert!(
        report.findings.is_empty(),
        "triad-lint findings on the workspace:\n{}",
        rendered.join("\n")
    );
}

#[test]
fn engine_mutant_without_drain_is_flagged() {
    let engine_path = repo_root().join("crates/core/src/engine.rs");
    let engine = std::fs::read_to_string(&engine_path).expect("read engine.rs");

    // The pristine engine is clean under persist-order.
    let clean = triad_analyze::analyze_source("crates/core/src/engine.rs", &engine);
    assert!(clean.iter().all(|f| f.rule != "persist-order"), "{clean:?}");

    // Remove each drain call in turn; at least the store/persist-path
    // mutants must be caught.
    let needle = "self.drain_evictions(now)?;";
    let sites = engine.matches(needle).count();
    assert!(sites >= 5, "expected several drain sites, saw {sites}");
    let mut caught = 0;
    for k in 0..sites {
        let mut mutant = String::with_capacity(engine.len());
        let mut seen = 0;
        let mut rest = engine.as_str();
        while let Some(pos) = rest.find(needle) {
            mutant.push_str(&rest[..pos]);
            if seen != k {
                mutant.push_str(needle);
            }
            seen += 1;
            rest = &rest[pos + needle.len()..];
        }
        mutant.push_str(rest);
        let findings = triad_analyze::analyze_source("crates/core/src/engine.rs", &mutant);
        if findings.iter().any(|f| f.rule == "persist-order") {
            caught += 1;
        }
    }
    assert!(
        caught >= sites / 2,
        "persist-order caught only {caught}/{sites} drain-removal mutants"
    );
    assert!(caught > 0, "no mutant was flagged");
}
