//! The workspace itself must lint clean, and every rule must
//! demonstrably catch a seeded mutant of the *real* sources — proof
//! the CI gate guards something real, not just hand-built fixtures.
//! Each mutant test follows the same shape: assert the pristine file
//! is clean under the rule, seed one realistic defect, assert the
//! rule fires.

use std::path::{Path, PathBuf};

fn read_crate_file(rel: &str) -> String {
    let path = repo_root().join(rel);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {rel}: {e}"))
}

/// Findings of `rule` when `source` is linted under its real path.
fn findings_for(rel: &str, source: &str, rule: &str) -> Vec<(u32, String)> {
    triad_analyze::analyze_source(rel, source)
        .into_iter()
        .filter(|f| f.rule == rule)
        .map(|f| (f.line, f.message))
        .collect()
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

#[test]
fn repo_lints_clean() {
    let report = triad_analyze::analyze_repo(&repo_root()).expect("scan workspace");
    assert!(report.files_scanned > 50, "walker found the workspace");
    let rendered: Vec<String> = report
        .findings
        .iter()
        .map(|f| format!("{}:{}:{} [{}] {}", f.path, f.line, f.col, f.rule, f.message))
        .collect();
    assert!(
        report.findings.is_empty(),
        "triad-lint findings on the workspace:\n{}",
        rendered.join("\n")
    );
}

#[test]
fn engine_mutant_without_drain_is_flagged() {
    let engine_path = repo_root().join("crates/core/src/engine.rs");
    let engine = std::fs::read_to_string(&engine_path).expect("read engine.rs");

    // The pristine engine is clean under persist-order.
    let clean = triad_analyze::analyze_source("crates/core/src/engine.rs", &engine);
    assert!(clean.iter().all(|f| f.rule != "persist-order"), "{clean:?}");

    // Remove each drain call in turn; at least the store/persist-path
    // mutants must be caught.
    let needle = "self.drain_evictions(now)?;";
    let sites = engine.matches(needle).count();
    assert!(sites >= 5, "expected several drain sites, saw {sites}");
    let mut caught = 0;
    for k in 0..sites {
        let mut mutant = String::with_capacity(engine.len());
        let mut seen = 0;
        let mut rest = engine.as_str();
        while let Some(pos) = rest.find(needle) {
            mutant.push_str(&rest[..pos]);
            if seen != k {
                mutant.push_str(needle);
            }
            seen += 1;
            rest = &rest[pos + needle.len()..];
        }
        mutant.push_str(rest);
        let findings = triad_analyze::analyze_source("crates/core/src/engine.rs", &mutant);
        if findings.iter().any(|f| f.rule == "persist-order") {
            caught += 1;
        }
    }
    assert!(
        caught >= sites / 2,
        "persist-order caught only {caught}/{sites} drain-removal mutants"
    );
    assert!(caught > 0, "no mutant was flagged");
}

#[test]
fn kv_mutant_without_txn_append_is_flagged() {
    // Remove the batched append-plus-marker from the real store: the
    // surviving `apply_writes` now runs from the idle WAL state, the
    // exact torn-transaction window the rule exists for.
    let rel = "crates/kv/src/store.rs";
    let store = read_crate_file(rel);
    assert!(findings_for(rel, &store, "persist-order").is_empty());

    let needle = "        self.log_txn(mem, seq, &writes)?;\n";
    assert!(store.contains(needle), "log_txn anchor moved");
    let mutant = store.replacen(needle, "", 1);
    let hits = findings_for(rel, &mutant, "persist-order");
    assert!(!hits.is_empty(), "apply without append/commit not flagged");
    assert!(
        hits.iter().any(|(_, m)| m.contains("commit marker")),
        "{hits:?}"
    );
}

#[test]
fn recov_mutant_without_seqno_bump_is_flagged() {
    // Strip the bump from the real completion path: the durable
    // checkpoint now outruns the thread's volatile seqno, so the next
    // operation would reuse a sequence number the checkpoint already
    // covers — the exactly-once violation the recov section exists
    // for.
    let rel = "crates/recov/src/memento.rs";
    let memento = read_crate_file(rel);
    assert!(findings_for(rel, &memento, "persist-order").is_empty());

    let needle = "        self.seqno_bump();\n";
    assert!(memento.contains(needle), "seqno_bump anchor moved");
    let mutant = memento.replacen(needle, "", 1);
    let hits = findings_for(rel, &mutant, "persist-order");
    assert!(!hits.is_empty(), "checkpoint without bump not flagged");
    assert!(
        hits.iter().any(|(_, m)| m.contains("seqno bump")),
        "{hits:?}"
    );
}

#[test]
fn engine_mutant_with_shared_static_is_flagged() {
    // Seed a process-global tick counter into the real engine and
    // bump it from the hottest public op: exactly the shared-state
    // hazard a sharded front-end would trip on.
    let rel = "crates/core/src/engine.rs";
    let engine = read_crate_file(rel);
    let rule = "shard-safety/shared-mutable-static";
    assert!(findings_for(rel, &engine, rule).is_empty());

    let sig =
        "pub fn store_block(&mut self, block: BlockAddr, data: Block, now: Time) -> Result<Time> {";
    assert!(engine.contains(sig), "store_block anchor moved");
    let mutant = format!(
        "static LINT_MUTANT_TICKS: core::sync::atomic::AtomicU64 =\n    \
         core::sync::atomic::AtomicU64::new(0);\n{}",
        engine.replacen(
            sig,
            &format!("{sig}\n        LINT_MUTANT_TICKS.fetch_add(1, Ordering::Relaxed);"),
            1
        )
    );
    let hits = findings_for(rel, &mutant, rule);
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert_eq!(hits[0].0, 1, "flagged at the static's definition");
    assert!(hits[0].1.contains("LINT_MUTANT_TICKS"), "{}", hits[0].1);
}

#[test]
fn stats_mutant_with_hashed_merge_is_flagged() {
    // Reroute the real `StatSet::merge` through a default-hashed
    // scratch map: shard results would merge in RandomState order.
    let rel = "crates/sim/src/stats.rs";
    let stats = read_crate_file(rel);
    let rule = "shard-safety/nondeterministic-merge";
    assert!(findings_for(rel, &stats, rule).is_empty());

    let sig = "pub fn merge(&mut self, other: &StatSet) {";
    assert!(stats.contains(sig), "merge anchor moved");
    let mutant = stats.replacen(
        sig,
        &format!(
            "{sig}\n        let mut scratch = HashMap::new();\n        scratch.insert(0u64, 0u64);"
        ),
        1,
    );
    let hits = findings_for(rel, &mutant, rule);
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert!(hits[0].1.contains("merge"), "{}", hits[0].1);
}

#[test]
fn workload_mutant_with_cloned_rng_is_flagged() {
    // Duplicate the history generator's RNG by cloning instead of
    // deriving a stream: two "independent" shards replay the same
    // randomness.
    let rel = "crates/workloads/src/kv.rs";
    let kv = read_crate_file(rel);
    let rule = "shard-safety/rng-fork-discipline";
    assert!(findings_for(rel, &kv, rule).is_empty());

    let anchor = "let mut rng = SplitMix64::stream(seed, 0x6b76_6f70_7321);";
    assert!(kv.contains(anchor), "rng anchor moved");
    let mutant = kv.replacen(
        anchor,
        &format!("{anchor}\n    let _shared = rng.clone();"),
        1,
    );
    let hits = findings_for(rel, &mutant, rule);
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert!(hits[0].1.contains("rng"), "{}", hits[0].1);
}

#[test]
fn stripping_a_suppression_rationale_is_flagged() {
    // Delete the `-- reason` from a real suppression: the allow still
    // silences its rule, but the missing rationale becomes a finding.
    let rel = "crates/meta/src/bmt.rs";
    let bmt = read_crate_file(rel);
    let rule = "suppression-rationale";
    assert!(findings_for(rel, &bmt, rule).is_empty());

    let tail = " -- documented panic; the MAC block is 64 bytes so every slot < 8 is in range";
    assert!(bmt.contains(tail), "rationale anchor moved");
    let mutant = bmt.replacen(tail, "", 1);
    let hits = findings_for(rel, &mutant, rule);
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert!(hits[0].1.contains("no rationale"), "{}", hits[0].1);
    // The naked allow still suppresses its target rule — the
    // rationale finding must not resurrect what it silenced.
    assert!(findings_for(rel, &mutant, "panic-policy").is_empty());
}

#[test]
fn service_mutant_persisting_on_the_volatile_path_is_flagged() {
    // Make the real InMemory admission path "durable" by logging the
    // overlay insert — the exact shortcut the durability contract's
    // invariant D8 exists to forbid.
    let rel = "crates/workloads/src/service.rs";
    let service = read_crate_file(rel);
    let rule = "durability-contract";
    assert!(findings_for(rel, &service, rule).is_empty());

    let anchor = "self.volatile.insert(key, value);";
    assert!(service.contains(anchor), "stage_volatile anchor moved");
    let mutant = service.replacen(
        anchor,
        &format!("self.store.log_txn(key);\n        {anchor}"),
        1,
    );
    let hits = findings_for(rel, &mutant, rule);
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert!(hits[0].1.contains("volatile tier"), "{}", hits[0].1);
}

#[test]
fn store_mutant_with_a_payload_less_marker_is_flagged() {
    // Swap `put`'s batched append-plus-marker for a bare marker: the
    // commit frontier would advance over a transaction recovery cannot
    // replay.
    let rel = "crates/kv/src/store.rs";
    let store = read_crate_file(rel);
    let rule = "durability-contract";
    assert!(findings_for(rel, &store, rule).is_empty());

    let anchor = "self.log_txn(mem, seq, &writes)";
    assert!(store.contains(anchor), "put's txn anchor moved");
    let mutant = store.replacen(anchor, "self.log_commit(mem, seq, &writes)", 1);
    let hits = findings_for(rel, &mutant, rule);
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert!(hits[0].1.contains("commit marker"), "{}", hits[0].1);
}
