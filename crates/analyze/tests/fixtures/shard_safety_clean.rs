//! Clean fixture: per-shard state, ordered merge, forked RNG — and an
//! interior-mutable static that no engine op can reach.
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

static SHARD_LIMIT: usize = 64;

static PROCESS_TICKS: AtomicU64 = AtomicU64::new(0);

fn telemetry_tick() {
    PROCESS_TICKS.fetch_add(1, Ordering::Relaxed);
}

impl SecureMemory {
    pub fn store_block(&mut self, addr: u64) -> Result<(), E> {
        self.stats.ops += 1;
        Ok(())
    }
}

pub fn merge_shard_stats(shards: &[StatSet]) -> Merged {
    let mut merged = BTreeMap::new();
    for s in shards {
        merged.extend(s.iter());
    }
    merged
}

pub fn spawn_shard(trace_rng: &mut SplitMix64) -> Shard {
    Shard::new(trace_rng.fork())
}
