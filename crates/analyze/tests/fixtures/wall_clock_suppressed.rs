pub fn stamp() -> u128 {
    // triad-lint: allow(determinism/wall-clock) -- fixture: time is display-only
    let t = std::time::Instant::now();
    t.elapsed().as_nanos()
}
