pub fn stamp() -> u128 {
    // triad-lint: allow(determinism/wall-clock)
    let t = std::time::Instant::now();
    t.elapsed().as_nanos()
}
