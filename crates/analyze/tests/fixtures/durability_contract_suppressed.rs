impl ShardLane {
    // The barrier promotion is the volatile tier's one sanctioned exit
    // to NVM: the overlay has already been handed over, so the persist
    // effects here are the *end* of the volatile contract, not a leak.
    // triad-lint: allow(durability-contract) -- fixture: barrier promotion is the sanctioned volatile exit
    fn promote_volatile(&mut self, mem: &mut Mem) -> Result<(), Error> {
        self.log_txn(mem, 0)?;
        self.apply_writes(mem)?;
        Ok(())
    }
}

impl KvService {
    // Replay acknowledgement: the marker's payload was proven durable
    // by recovery before this path re-emits it.
    // triad-lint: allow(durability-contract) -- fixture: marker re-emission over a replayed payload
    pub fn reack(&mut self, mem: &mut Mem) -> Result<(), Error> {
        self.log_commit(mem)?;
        Ok(())
    }
}
