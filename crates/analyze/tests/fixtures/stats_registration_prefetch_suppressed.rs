pub struct BatchPrefetchStats {
    pub planned: u64,
    // Counted by the cache's own miss stats; kept for plan debugging.
    pub dropped: u64, // triad-lint: allow(stats-registration) -- fixture: reported by an external sink
}

impl StatSink for BatchPrefetchStats {
    fn report(&self, out: &mut Vec<(String, u64)>) {
        out.push(("planned".into(), self.planned));
    }
}
