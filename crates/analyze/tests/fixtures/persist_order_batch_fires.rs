impl SecureMemory {
    // BAD: the commit loop queues counter and BMT write-backs for
    // every member, but the drain is conditional on the batch shape.
    pub fn persist_batch(&mut self, batch: &Batch, now: u64) -> Result<u64, Error> {
        for w in batch.members() {
            self.ctr_touch(w.addr, now)?;
            self.mt_touch(w.addr, now)?;
        }
        if batch.len() > 1 {
            self.drain_evictions(now)?;
        }
        Ok(now)
    }

    // Not audited: `pub(crate)` helpers are the queue vocabulary
    // itself, checked through the public operations that call them.
    pub(crate) fn writeback_batch(&mut self, addr: u64, now: u64) -> Result<u64, Error> {
        self.l3_touch(addr, now)?;
        Ok(now)
    }

    // GOOD: every member queued, one unconditional drain, then Ok.
    pub fn apply_batch(&mut self, addr: u64, now: u64) -> Result<u64, Error> {
        self.ctr_touch(addr, now)?;
        self.drain_evictions(now)?;
        Ok(now)
    }
}
