impl KvStore {
    // BAD: applies before the commit marker is durable, and returns
    // Ok with the committed transaction never applied.
    pub fn put_unordered(&mut self, mem: &mut Mem, key: u64) -> Result<(), Error> {
        self.log_append(mem, key)?;
        self.apply_writes(mem)?;
        self.log_commit(mem)?;
        Ok(())
    }

    // BAD: the commit is conditional, so the apply may run on an
    // uncommitted path.
    pub fn put_conditional(&mut self, mem: &mut Mem, key: u64) -> Result<(), Error> {
        self.log_append(mem, key)?;
        if key > 0 {
            self.log_commit(mem)?;
        }
        self.apply_writes(mem)?;
        Ok(())
    }

    // BAD: the appended transaction is never committed or applied.
    pub fn put_abandoned(&mut self, mem: &mut Mem, key: u64) -> Result<(), Error> {
        self.log_append(mem, key)?;
        Ok(())
    }

    // GOOD: the canonical order (appends may repeat).
    pub fn put(&mut self, mem: &mut Mem, key: u64) -> Result<(), Error> {
        self.log_append(mem, key)?;
        self.log_append(mem, key + 1)?;
        self.log_commit(mem)?;
        self.apply_writes(mem)?;
        Ok(())
    }

    // GOOD: error paths make no durability promise.
    pub fn put_failing(&mut self, mem: &mut Mem, key: u64) -> Result<(), Error> {
        self.log_append(mem, key)?;
        if key == 0 {
            return Err(Error::LogFull);
        }
        self.log_commit(mem)?;
        self.apply_writes(mem)?;
        Ok(())
    }

    // Not audited: no WAL calls.
    pub fn touch(&mut self, _mem: &mut Mem) -> Result<(), Error> {
        Ok(())
    }
}
