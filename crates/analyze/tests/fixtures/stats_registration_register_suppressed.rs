pub struct DemoHists {
    pub op_latency_ns: Histogram,
    // Populated by the Osiris experiment; registered once it lands.
    pub wpq_occupancy: Histogram, // triad-lint: allow(stats-registration) -- fixture: reported by an external sink
}

impl StatRegister for DemoHists {
    fn register(&self, scope: &mut Scope<'_>) {
        scope.histogram("op_latency_ns", &self.op_latency_ns);
    }
}
