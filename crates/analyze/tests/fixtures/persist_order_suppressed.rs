impl SecureMemory {
    pub fn flush_block(&mut self, addr: u64, now: u64) -> Result<u64, Error> {
        self.mt_touch(addr, now)?;
        // Drained by the caller's end-of-epoch barrier.
        Ok(now) // triad-lint: allow(persist-order) -- fixture: drain is proven by the harness
    }
}
