pub struct BatchPrefetchStats {
    pub planned: u64,
    pub dropped: u64,
}

impl StatSink for BatchPrefetchStats {
    fn report(&self, out: &mut Vec<(String, u64)>) {
        out.push(("planned".into(), self.planned));
    }
}
