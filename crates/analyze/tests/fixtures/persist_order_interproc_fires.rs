//! Interprocedural fixture: the public op never names a queue
//! primitive — the enqueue happens two private helpers deep — so the
//! v1 single-function scan had no way to see this shape.
impl SecureMemory {
    pub fn store_block(&mut self, addr: u64, now: u64) -> Result<(), E> {
        self.schedule(addr, now)?;
        Ok(())
    }

    pub fn store_block_drained(&mut self, addr: u64, now: u64) -> Result<(), E> {
        self.schedule(addr, now)?;
        self.settle(now)?;
        Ok(())
    }

    pub fn store_block_safe(&mut self, addr: u64, now: u64) -> Result<(), E> {
        self.schedule_and_settle(addr, now)?;
        Ok(())
    }

    fn schedule(&mut self, addr: u64, now: u64) -> Result<(), E> {
        self.deep_schedule(addr, now)
    }

    fn deep_schedule(&mut self, addr: u64, now: u64) -> Result<(), E> {
        self.ctr_touch(addr, now);
        Ok(())
    }

    fn settle(&mut self, now: u64) -> Result<(), E> {
        self.drain_evictions(now)
    }

    fn schedule_and_settle(&mut self, addr: u64, now: u64) -> Result<(), E> {
        self.ctr_touch(addr, now);
        self.drain_evictions(now)
    }
}
