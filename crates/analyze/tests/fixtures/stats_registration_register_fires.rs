pub struct DemoHists {
    pub op_latency_ns: Histogram,
    pub wpq_occupancy: Histogram,
}

impl StatRegister for DemoHists {
    fn register(&self, scope: &mut Scope<'_>) {
        scope.histogram("op_latency_ns", &self.op_latency_ns);
    }
}
