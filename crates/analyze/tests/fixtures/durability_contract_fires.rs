impl ShardLane {
    // BAD: a volatile-tier admission path that persists — the InMemory
    // contract says staging must stay free of persist effects, or the
    // tier's loss accounting and barrier floor stop being honest.
    fn stage_volatile(&mut self, mem: &mut Mem, key: u64) -> Result<(), Error> {
        self.log_append(mem, key)?;
        Ok(())
    }

    // BAD: the persist arrives two calls deep — the effect inference
    // must see through the helper.
    fn admit_volatile(&mut self, mem: &mut Mem, key: u64) -> Result<(), Error> {
        self.settle(mem, key)?;
        Ok(())
    }

    fn settle(&mut self, mem: &mut Mem, key: u64) -> Result<(), Error> {
        self.log_txn(mem, key)?;
        self.apply_writes(mem)?;
        Ok(())
    }

    // GOOD: a pure overlay insert.
    fn park_volatile(&mut self, key: u64) {
        self.overlay.insert(key, ());
    }
}

impl KvService {
    // BAD: acknowledges with a commit marker that has no appended
    // payload behind it — recovery would find a marker for a
    // transaction it cannot replay.
    pub fn ack_eagerly(&mut self, mem: &mut Mem) -> Result<(), Error> {
        self.log_commit(mem)?;
        Ok(())
    }

    // GOOD: the marker rides the batched append (`log_txn` grants
    // both effects), then the writes land.
    pub fn flush_group(&mut self, mem: &mut Mem) -> Result<(), Error> {
        self.log_txn(mem, 0)?;
        self.apply_writes(mem)?;
        Ok(())
    }

    // Not audited: read-only surface.
    pub fn peek(&self, key: u64) -> Option<u64> {
        self.cache.get(&key).copied()
    }
}
