// Keyed by u64 identity and never iterated, so order cannot leak.
use std::collections::HashMap; // triad-lint: allow(determinism/hash-order) -- fixture: map never iterated

pub fn singleton() -> usize {
    1
}
