pub struct DemoStats {
    pub hits: u64,
    // Reserved for the Osiris extension; reported once it is wired up.
    pub misses: u64, // triad-lint: allow(stats-registration) -- fixture: reported by an external sink
}

impl StatSink for DemoStats {
    fn report(&self, prefix: &str, out: &mut StatSet) {
        out.add(prefix, "hits", self.hits);
    }
}
