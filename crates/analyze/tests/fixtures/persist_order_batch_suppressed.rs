impl SecureMemory {
    pub fn persist_batch(&mut self, batch: &Batch, now: u64) -> Result<u64, Error> {
        for w in batch.members() {
            self.ctr_touch(w.addr, now)?;
        }
        // Drained by the epoch barrier that closes every batch window.
        Ok(now) // triad-lint: allow(persist-order) -- fixture: drain is proven by the harness
    }
}
