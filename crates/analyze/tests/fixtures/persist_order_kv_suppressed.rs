impl KvStore {
    pub fn reapply(&mut self, mem: &mut Mem) -> Result<(), Error> {
        // Replay-only path: the marker was verified durable on open.
        self.apply_writes(mem)?; // triad-lint: allow(persist-order) -- fixture: drain is proven by the harness
        Ok(())
    }
}
