pub fn first(v: &[u64]) -> u64 {
    // The caller has already checked the slice is non-empty.
    *v.first().unwrap() // triad-lint: allow(panic-policy) -- fixture: slice is non-empty by construction
}
