use std::collections::HashMap;

pub fn counts() -> HashMap<u64, u64> {
    HashMap::new()
}
