impl ThreadCtx {
    pub fn adopt_checkpoint(&mut self, mem: &mut Mem, seq: u64) -> Result<(), Error> {
        // Recovery-only path: the bump is deferred to the caller that
        // replays the in-flight operation.
        self.checkpoint_persist(mem, seq, 1, 0)?;
        Ok(()) // triad-lint: allow(persist-order) -- fixture: recovery defers the bump
    }
}
