impl SecureMemory {
    // BAD: the drain is conditional, so the tail Ok can return with
    // queued persists still pending.
    pub fn store_block(&mut self, addr: u64, data: &[u8], now: u64) -> Result<u64, Error> {
        self.l3_touch(addr, now)?;
        if addr > 100 {
            self.drain_evictions(now)?;
        }
        Ok(now)
    }

    // BAD: the early return skips the drain below it.
    pub fn persist_block(&mut self, addr: u64, now: u64) -> Result<u64, Error> {
        self.ctr_touch(addr, now)?;
        if addr == 0 {
            return Ok(now);
        }
        self.drain_evictions(now)?;
        Ok(now)
    }

    // GOOD: returning before anything is queued is fine, and the
    // queued path drains unconditionally.
    pub fn end_epoch(&mut self, now: u64) -> Result<u64, Error> {
        if self.queue_is_empty() {
            return Ok(now);
        }
        self.mt_touch(0, now)?;
        self.drain_evictions(now)?;
        Ok(now)
    }

    // Not audited: no queue-feeding call (delegating wrapper).
    pub fn read(&mut self, addr: u64, now: u64) -> Result<u64, Error> {
        self.load_block(addr, now)
    }
}
