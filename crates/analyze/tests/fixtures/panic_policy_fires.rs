pub fn first(v: &[u64]) -> u64 {
    *v.first().unwrap()
}

pub fn must(o: Option<u64>) -> u64 {
    o.expect("present")
}

pub fn boom() {
    panic!("no");
}

pub fn fine(o: Option<u64>) -> u64 {
    o.unwrap_or(0)
}
