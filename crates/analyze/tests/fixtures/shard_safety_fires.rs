//! Fixture: all three shard-safety rules fire.
use std::sync::atomic::{AtomicU64, Ordering};

static OP_TICKS: AtomicU64 = AtomicU64::new(0);

impl SecureMemory {
    pub fn store_block(&mut self, addr: u64) -> Result<(), E> {
        OP_TICKS.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

pub fn merge_shard_stats(shards: &[StatSet]) -> Merged {
    let mut merged = HashMap::new();
    for s in shards {
        merged.extend(s.iter());
    }
    merged
}

pub fn spawn_shard(trace_rng: &SplitMix64) -> Shard {
    Shard::new(trace_rng.clone())
}
