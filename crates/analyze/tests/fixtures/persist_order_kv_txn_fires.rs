impl KvStore {
    // GOOD: the batched append-plus-marker call commits, then applies.
    pub fn put(&mut self, k: u64) -> Result<(), Error> {
        self.log_txn(k)?;
        self.apply_writes(k)?;
        Ok(())
    }

    // BAD: on the k == 0 path the batched marker was never written,
    // yet the index writes land anyway.
    pub fn put_conditional(&mut self, k: u64) -> Result<(), Error> {
        if k > 0 {
            self.log_txn(k)?;
        }
        self.apply_writes(k)?;
        Ok(())
    }

    // BAD: committed through the batch but never applied.
    pub fn put_abandoned(&mut self, k: u64) -> Result<(), Error> {
        self.log_txn(k)?;
        Ok(())
    }
}
