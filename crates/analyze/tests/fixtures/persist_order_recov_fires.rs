impl ThreadCtx {
    // BAD: the volatile seqno advances before the completion
    // checkpoint is durable — a crash in between re-executes an
    // operation that already took effect.
    pub fn complete_unordered(&mut self, mem: &mut Mem, seq: u64) -> Result<(), Error> {
        self.seqno_bump();
        self.checkpoint_persist(mem, seq, 1, 0)?;
        self.seqno_bump();
        Ok(())
    }

    // BAD: the checkpoint is conditional, so the bump may run on a
    // path where the completion record was never persisted.
    pub fn complete_conditional(&mut self, mem: &mut Mem, seq: u64, fast: bool) -> Result<(), Error> {
        if fast {
            self.checkpoint_persist(mem, seq, 1, 0)?;
        }
        self.seqno_bump();
        Ok(())
    }

    // BAD: the durable checkpoint's bump never runs — the volatile
    // seqno now lags the durable record and the next operation reuses
    // a sequence number the checkpoint already covers.
    pub fn complete_abandoned(&mut self, mem: &mut Mem, seq: u64) -> Result<(), Error> {
        self.checkpoint_persist(mem, seq, 1, 0)?;
        Ok(())
    }

    // GOOD: the canonical completion order.
    pub fn complete_op(&mut self, mem: &mut Mem, seq: u64) -> Result<(), Error> {
        self.checkpoint_persist(mem, seq, 1, 0)?;
        self.seqno_bump();
        Ok(())
    }

    // GOOD: error paths make no completion promise.
    pub fn complete_failing(&mut self, mem: &mut Mem, seq: u64) -> Result<(), Error> {
        if seq == 0 {
            return Err(Error::BadSeq);
        }
        self.checkpoint_persist(mem, seq, 1, 0)?;
        self.seqno_bump();
        Ok(())
    }

    // Not audited: no checkpoint vocabulary in reach.
    pub fn touch(&mut self, _mem: &mut Mem) -> Result<(), Error> {
        Ok(())
    }
}

impl StackMachine {
    // GOOD: the completion arrives through a resolved helper whose
    // summary is persist-then-bump.
    pub fn finish(&mut self, mem: &mut Mem, ctx: &mut ThreadCtx) -> Result<(), Error> {
        ctx.complete_op(mem, 7)?;
        Ok(())
    }
}
