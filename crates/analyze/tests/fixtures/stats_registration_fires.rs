pub struct DemoStats {
    pub hits: u64,
    pub misses: u64,
}

impl StatSink for DemoStats {
    fn report(&self, prefix: &str, out: &mut StatSet) {
        out.add(prefix, "hits", self.hits);
    }
}
