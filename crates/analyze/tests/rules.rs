//! Every rule is proven live by a fixture that fires it, and every
//! rule's suppression syntax is proven by a fixture that silences it.
//! Fixtures are linted under *virtual* workspace paths so the scoping
//! logic is exercised too.

use triad_analyze::{analyze_source, analyze_sources};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

fn rule_hits(virtual_path: &str, name: &str, rule: &str) -> Vec<(u32, u32)> {
    analyze_source(virtual_path, &fixture(name))
        .into_iter()
        .filter(|f| f.rule == rule)
        .map(|f| (f.line, f.col))
        .collect()
}

#[test]
fn hash_order_fires() {
    let hits = rule_hits(
        "crates/core/src/bad.rs",
        "hash_order_fires.rs",
        "determinism/hash-order",
    );
    // The use, the return type, and the constructor.
    assert_eq!(hits.len(), 3, "{hits:?}");
    assert_eq!(hits[0], (1, 23));
}

#[test]
fn hash_order_respects_suppression() {
    let f = analyze_source(
        "crates/core/src/bad.rs",
        &fixture("hash_order_suppressed.rs"),
    );
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn hash_order_is_scoped_to_sim_crates() {
    // The same source is fine in the bench crate.
    let f = analyze_source("crates/bench/src/x.rs", &fixture("hash_order_fires.rs"));
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn wall_clock_fires() {
    let hits = rule_hits(
        "crates/sim/src/clock.rs",
        "wall_clock_fires.rs",
        "determinism/wall-clock",
    );
    assert_eq!(hits.len(), 3, "{hits:?}");
}

#[test]
fn wall_clock_respects_suppression() {
    let f = analyze_source(
        "crates/sim/src/clock.rs",
        &fixture("wall_clock_suppressed.rs"),
    );
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn wall_clock_allows_bench() {
    let f = analyze_source(
        "crates/bench/src/timing.rs",
        &fixture("wall_clock_fires.rs"),
    );
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn panic_policy_fires() {
    let hits = rule_hits(
        "crates/core/src/bad.rs",
        "panic_policy_fires.rs",
        "panic-policy",
    );
    // unwrap, expect, panic! — and NOT unwrap_or.
    assert_eq!(hits.len(), 3, "{hits:?}");
    assert_eq!(hits[0].0, 2);
    assert_eq!(hits[1].0, 6);
    assert_eq!(hits[2].0, 10);
}

#[test]
fn panic_policy_respects_suppression() {
    let f = analyze_source(
        "crates/core/src/bad.rs",
        &fixture("panic_policy_suppressed.rs"),
    );
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn panic_policy_ignores_test_code_and_other_crates() {
    let src = "#[cfg(test)]\nmod tests {\n  fn t() { None::<u64>.unwrap(); }\n}\n";
    assert!(analyze_source("crates/core/src/x.rs", src).is_empty());
    // Out-of-scope crate: the sim driver may unwrap.
    let f = analyze_source(
        "crates/sim/src/driver.rs",
        &fixture("panic_policy_fires.rs"),
    );
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn persist_order_fires_on_conditional_drain_and_early_return() {
    let hits = rule_hits(
        "crates/core/src/engine.rs",
        "persist_order_fires.rs",
        "persist-order",
    );
    // store_block's tail Ok + persist_block's early return; end_epoch
    // and the delegating read() stay clean.
    assert_eq!(hits.len(), 2, "{hits:?}");
    assert_eq!(hits[0].0, 9, "store_block tail");
    assert_eq!(hits[1].0, 16, "persist_block early return");
}

#[test]
fn persist_order_respects_suppression() {
    let f = analyze_source(
        "crates/core/src/engine.rs",
        &fixture("persist_order_suppressed.rs"),
    );
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn persist_order_scope_is_semantic_not_file_names() {
    // v2 dropped the file-name allowlist: an `impl SecureMemory` is
    // audited wherever it lives inside crates/{core,kv,mem} ...
    let hits = rule_hits(
        "crates/core/src/system.rs",
        "persist_order_fires.rs",
        "persist-order",
    );
    assert_eq!(hits.len(), 2, "audited under any core path: {hits:?}");
    let hits = rule_hits(
        "crates/mem/src/shard.rs",
        "persist_order_fires.rs",
        "persist-order",
    );
    assert_eq!(hits.len(), 2, "audited in crates/mem too: {hits:?}");
    // ... but not outside those crates (bench drivers are free), and
    // not for other impl targets.
    let f = analyze_source("crates/bench/src/x.rs", &fixture("persist_order_fires.rs"));
    assert!(f.iter().all(|x| x.rule != "persist-order"), "{f:?}");
    let other_type = fixture("persist_order_fires.rs").replace("SecureMemory", "ReplayHarness");
    let f = analyze_source("crates/core/src/replay.rs", &other_type);
    assert!(f.iter().all(|x| x.rule != "persist-order"), "{f:?}");
}

#[test]
fn persist_order_audits_the_batch_module() {
    // Since PR 6 the batched write path (`crates/core/src/batch.rs`)
    // is in the same audit scope as the engine: its public batch ops
    // feed the same eviction queue.
    let hits = rule_hits(
        "crates/core/src/batch.rs",
        "persist_order_batch_fires.rs",
        "persist-order",
    );
    // persist_batch's tail Ok (drain is conditional); the pub(crate)
    // helper and the clean apply_batch stay silent.
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert_eq!(hits[0].0, 12, "persist_batch tail Ok");
}

#[test]
fn persist_order_batch_respects_suppression() {
    let f = analyze_source(
        "crates/core/src/batch.rs",
        &fixture("persist_order_batch_suppressed.rs"),
    );
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn persist_order_skips_pub_crate_helpers() {
    // `pub(crate)` queue plumbing is the vocabulary the rule audits
    // *with*, not a surface it audits: the same body that fires as
    // `pub` must stay silent as `pub(crate)`.
    let src = fixture("persist_order_batch_fires.rs").replace("pub fn", "pub(crate) fn");
    let f = analyze_source("crates/core/src/batch.rs", &src);
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn persist_order_kv_fires_on_wal_order_violations() {
    let hits = rule_hits(
        "crates/kv/src/store.rs",
        "persist_order_kv_fires.rs",
        "persist-order",
    );
    // put_unordered's premature apply + its tail Ok (committed but
    // never applied), put_conditional's maybe-uncommitted apply, and
    // put_abandoned's tail Ok; put / put_failing / touch stay clean.
    assert_eq!(hits.len(), 4, "{hits:?}");
    assert_eq!(hits[0].0, 6, "apply before commit");
    assert_eq!(hits[1].0, 8, "committed but unapplied tail Ok");
    assert_eq!(hits[2].0, 18, "apply under conditional commit");
    assert_eq!(hits[3].0, 25, "appended but abandoned tail Ok");
}

#[test]
fn persist_order_kv_respects_suppression() {
    let f = analyze_source(
        "crates/kv/src/store.rs",
        &fixture("persist_order_kv_suppressed.rs"),
    );
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn persist_order_kv_scope_is_semantic_not_file_names() {
    // `impl KvStore` is audited under any crates/{core,kv,mem} path
    // since v2 — the WAL contract follows the type, not the file.
    let hits = rule_hits(
        "crates/kv/src/log.rs",
        "persist_order_kv_fires.rs",
        "persist-order",
    );
    assert_eq!(hits.len(), 4, "{hits:?}");
    // Outside the audited crates the same source is silent.
    let f = analyze_source(
        "crates/bench/src/kv_driver.rs",
        &fixture("persist_order_kv_fires.rs"),
    );
    assert!(f.iter().all(|x| x.rule != "persist-order"), "{f:?}");
}

#[test]
fn persist_order_kv_tracks_batched_txn_appends() {
    // `log_txn` (the PR 6 batched append-plus-marker) moves the WAL
    // state straight to committed: applying after it is clean, but a
    // conditional txn or an unapplied one still fires.
    let hits = rule_hits(
        "crates/kv/src/store.rs",
        "persist_order_kv_txn_fires.rs",
        "persist-order",
    );
    assert_eq!(hits.len(), 2, "{hits:?}");
    assert_eq!(hits[0].0, 15, "apply under conditional txn");
    assert_eq!(hits[1].0, 22, "committed but unapplied tail Ok");
}

#[test]
fn persist_order_recov_fires_on_completion_order_violations() {
    let hits = rule_hits(
        "crates/recov/src/memento.rs",
        "persist_order_recov_fires.rs",
        "persist-order",
    );
    // complete_unordered's premature bump, complete_conditional's
    // maybe-unpersisted bump, complete_abandoned's tail Ok with the
    // bump never run; complete_op / complete_failing / touch and the
    // helper-resolved StackMachine::finish stay clean.
    assert_eq!(hits.len(), 3, "{hits:?}");
    assert_eq!(hits[0].0, 6, "bump before the checkpoint");
    assert_eq!(hits[1].0, 18, "bump under a conditional checkpoint");
    assert_eq!(hits[2].0, 27, "durable checkpoint never bumped at tail Ok");
}

#[test]
fn persist_order_recov_respects_suppression() {
    let f = analyze_source(
        "crates/recov/src/memento.rs",
        &fixture("persist_order_recov_suppressed.rs"),
    );
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn persist_order_recov_is_scoped_to_the_recov_crate() {
    // The same source is silent outside crates/recov (bench drivers
    // may orchestrate completion however they like).
    let f = analyze_source(
        "crates/bench/src/driver.rs",
        &fixture("persist_order_recov_fires.rs"),
    );
    assert!(f.iter().all(|x| x.rule != "persist-order"), "{f:?}");
}

#[test]
fn persist_order_catches_interprocedural_enqueue() {
    // The shape v1 could never see: the pub op names no queue
    // primitive at all — the enqueue is two private helpers deep.
    let hits = rule_hits(
        "crates/core/src/engine.rs",
        "persist_order_interproc_fires.rs",
        "persist-order",
    );
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert_eq!(hits[0].0, 7, "store_block tail Ok after helper enqueue");
    // The drained variants (helper drain, combined helper) stay clean,
    // which the single-finding assertion above already proves.
}

#[test]
fn persist_order_resolves_helpers_across_files() {
    // The helper lives in a different file of the same crate; the
    // effect still propagates to the public op.
    let engine = "impl SecureMemory {\n\
                  \x20   pub fn flush_all(&mut self, now: u64) -> Result<(), E> {\n\
                  \x20       self.touch_all(now)?;\n\
                  \x20       Ok(())\n\
                  \x20   }\n\
                  }\n";
    let helpers = "impl SecureMemory {\n\
                   \x20   pub(crate) fn touch_all(&mut self, now: u64) -> Result<(), E> {\n\
                   \x20       self.mt_touch(0, now);\n\
                   \x20       Ok(())\n\
                   \x20   }\n\
                   }\n";
    let f = analyze_sources(&[
        ("crates/core/src/engine.rs", engine),
        ("crates/core/src/helpers.rs", helpers),
    ]);
    let hits: Vec<_> = f.iter().filter(|x| x.rule == "persist-order").collect();
    assert_eq!(hits.len(), 1, "{f:?}");
    assert_eq!(hits[0].path, "crates/core/src/engine.rs");
    assert_eq!(hits[0].line, 4, "flush_all tail Ok");
}

#[test]
fn v1_findings_reproduce_under_v2() {
    // Parity lock: every finding the v1 intraprocedural rule produced
    // on the persist-order fixture suite must survive the v2 rewrite,
    // at the same lines.
    let table: &[(&str, &str, &[u32])] = &[
        (
            "persist_order_fires.rs",
            "crates/core/src/engine.rs",
            &[9, 16],
        ),
        (
            "persist_order_batch_fires.rs",
            "crates/core/src/batch.rs",
            &[12],
        ),
        (
            "persist_order_kv_fires.rs",
            "crates/kv/src/store.rs",
            &[6, 8, 18, 25],
        ),
        (
            "persist_order_kv_txn_fires.rs",
            "crates/kv/src/store.rs",
            &[15, 22],
        ),
    ];
    for (fixture_name, path, lines) in table {
        let got: Vec<u32> = rule_hits(path, fixture_name, "persist-order")
            .into_iter()
            .map(|(l, _)| l)
            .collect();
        assert_eq!(&got, lines, "{fixture_name} parity");
    }
}

#[test]
fn shard_safety_fires() {
    let src = fixture("shard_safety_fires.rs");
    let f = analyze_sources(&[("crates/workloads/src/fleet.rs", src.as_str())]);
    let statics: Vec<_> = f
        .iter()
        .filter(|x| x.rule == "shard-safety/shared-mutable-static")
        .collect();
    assert_eq!(statics.len(), 1, "{f:?}");
    assert_eq!(statics[0].line, 4, "OP_TICKS is flagged at its definition");
    assert!(
        statics[0].message.contains("store_block"),
        "{}",
        statics[0].message
    );
    let merges: Vec<_> = f
        .iter()
        .filter(|x| x.rule == "shard-safety/nondeterministic-merge")
        .collect();
    assert_eq!(merges.len(), 1, "{f:?}");
    assert_eq!(merges[0].line, 14, "HashMap in merge_shard_stats");
    let rngs: Vec<_> = f
        .iter()
        .filter(|x| x.rule == "shard-safety/rng-fork-discipline")
        .collect();
    assert_eq!(rngs.len(), 1, "{f:?}");
    assert_eq!(rngs[0].line, 22, "trace_rng.clone()");
}

#[test]
fn shard_safety_stays_silent_on_clean_shapes() {
    // Per-shard state, BTreeMap merge, rng.fork(), a non-mutable
    // static, and an interior-mutable static that is NOT reachable
    // from any service op: all silent.
    let src = fixture("shard_safety_clean.rs");
    let f = analyze_sources(&[("crates/workloads/src/fleet.rs", src.as_str())]);
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn shard_safety_respects_suppression() {
    let src = fixture("shard_safety_fires.rs").replace(
        "static OP_TICKS",
        "// triad-lint: allow(shard-safety/shared-mutable-static) -- fixture: guarded\nstatic OP_TICKS",
    );
    let f = analyze_sources(&[("crates/workloads/src/fleet.rs", src.as_str())]);
    assert!(
        f.iter()
            .all(|x| x.rule != "shard-safety/shared-mutable-static"),
        "{f:?}"
    );
}

#[test]
fn suppression_rationale_fires_on_naked_allows() {
    let src =
        "fn f(v: &[u64]) -> u64 {\n    *v.first().unwrap() // triad-lint: allow(panic-policy)\n}\n";
    let f = analyze_source("crates/core/src/x.rs", src);
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].rule, "suppression-rationale");
    assert_eq!(f[0].line, 2);
    // A blanket allow(all) cannot silence the rationale rule itself.
    let src2 = src.replace("allow(panic-policy)", "allow(all)");
    let f2 = analyze_source("crates/core/src/x.rs", &src2);
    assert!(
        f2.iter().any(|x| x.rule == "suppression-rationale"),
        "{f2:?}"
    );
    // With a rationale the file is fully clean.
    let src3 = src.replace(
        "allow(panic-policy)",
        "allow(panic-policy) -- first() is Some: caller checks non-empty",
    );
    let f3 = analyze_source("crates/core/src/x.rs", &src3);
    assert!(f3.is_empty(), "{f3:?}");
}

#[test]
fn stats_registration_fires() {
    let hits = rule_hits(
        "crates/sim/src/stats.rs",
        "stats_registration_fires.rs",
        "stats-registration",
    );
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert_eq!(hits[0].0, 3, "misses is unreported");
}

#[test]
fn stats_registration_respects_suppression() {
    let f = analyze_source(
        "crates/sim/src/stats.rs",
        &fixture("stats_registration_suppressed.rs"),
    );
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn stats_registration_fires_on_unregistered_histograms() {
    // The registry-era trait: a `Histogram` field that `register` never
    // hands to the scope is just as dead as an unreported counter.
    let hits = rule_hits(
        "crates/mem/src/controller.rs",
        "stats_registration_register_fires.rs",
        "stats-registration",
    );
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert_eq!(hits[0].0, 3, "wpq_occupancy is unregistered");
}

#[test]
fn stats_registration_register_respects_suppression() {
    let f = analyze_source(
        "crates/mem/src/controller.rs",
        &fixture("stats_registration_register_suppressed.rs"),
    );
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn stats_registration_covers_the_prefetcher() {
    // The PR 6 batch prefetcher lives in crates/cache, which is in the
    // rule's scope: a plan counter its sink never reports is dead.
    let hits = rule_hits(
        "crates/cache/src/prefetch.rs",
        "stats_registration_prefetch_fires.rs",
        "stats-registration",
    );
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert_eq!(hits[0].0, 3, "dropped is unreported");
}

#[test]
fn stats_registration_prefetch_respects_suppression() {
    let f = analyze_source(
        "crates/cache/src/prefetch.rs",
        &fixture("stats_registration_prefetch_suppressed.rs"),
    );
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn durability_contract_fires_on_tier_violations() {
    let hits = rule_hits(
        "crates/workloads/src/service.rs",
        "durability_contract_fires.rs",
        "durability-contract",
    );
    // stage_volatile's direct append, admit_volatile's persist two
    // calls deep, ack_eagerly's payload-less marker; settle,
    // park_volatile, flush_group and peek stay clean.
    assert_eq!(hits.len(), 3, "{hits:?}");
    assert_eq!(hits[0].0, 5, "volatile path with a direct append");
    assert_eq!(hits[1].0, 12, "volatile path persisting through a helper");
    assert_eq!(hits[2].0, 33, "commit marker without an appended payload");
}

#[test]
fn durability_contract_respects_suppression() {
    let f = analyze_source(
        "crates/workloads/src/service.rs",
        &fixture("durability_contract_suppressed.rs"),
    );
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn durability_contract_scope_is_the_serving_stack() {
    // The same source outside crates/{kv,workloads} is silent: the
    // volatile/marker vocabulary only means the durability tiers there.
    let f = analyze_source(
        "crates/bench/src/service_driver.rs",
        &fixture("durability_contract_fires.rs"),
    );
    assert!(f.iter().all(|x| x.rule != "durability-contract"), "{f:?}");
}
