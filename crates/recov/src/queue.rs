//! A detectably recoverable Michael-Scott queue.
//!
//! Nodes are two blocks: `[value]` then a `next` [`CasSite`] (the
//! freshly allocated all-zero block is already a valid "null,
//! untagged" site, so publication needs no extra persist). The queue
//! root is a `head` site and a `tail` site over a dummy node.
//!
//! The **decisive** CAS of an enqueue is the link of the new node
//! into the observed tail node's `next` site; the decisive CAS of a
//! dequeue is the head swing. Tail swings are pure *helper* commits:
//! they carry the [`crate::NO_OWNER`] tag (a helper must never
//! fabricate success evidence for someone's decisive operation) and
//! are never decisive, so a lagging tail is always legal and is
//! walked forward by the next enqueuer.
//!
//! ```text
//! enqueue: Start → PrepNode → ReadTail → ReadNext ─┬→ Pending → Commit → SwingAfter → Complete
//!                                   ↑              └→ SwingTail ┘ (tail lagged)
//! dequeue: Start → ReadHead → ReadHeadNext ─┬→ ReadValue → Pending → Help → Commit → Complete
//!                                           └→ (empty: fused decide+complete)
//! ```

use triad_core::SecureMemory;
use triad_kv::PersistentHeap;
use triad_sim::{PhysAddr, BLOCK_BYTES};

use crate::cas::{resolve_pending, CasOutcome, CasSite, CasView, NO_OWNER};
use crate::harness::{OpResult, StepOutcome};
use crate::memento::{put_u64, read_u64, ThreadCtx};
use crate::{RecovError, Result};

/// Node block 0 layout; block 1 is the `next` CAS site.
const NODE_VALUE: usize = 0;

/// Walk bound, as for the stack.
const WALK_LIMIT: u64 = 1 << 20;

/// A queue operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueOp {
    /// Enqueue a value at the back.
    Enqueue(u64),
    /// Dequeue the front value (observing emptiness is a legal
    /// result).
    Dequeue,
}

/// The persistent MS-queue handle (volatile, reconstructible).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsQueue {
    head: CasSite,
    tail: CasSite,
}

fn next_site(node: u64) -> CasSite {
    CasSite::at(PhysAddr(node + 64))
}

impl MsQueue {
    /// Allocates and durably initializes an empty queue (head and
    /// tail both at a dummy node).
    ///
    /// # Errors
    ///
    /// Heap / secure-memory errors.
    pub fn create(mem: &mut SecureMemory, heap: &PersistentHeap) -> Result<Self> {
        let roots = heap.alloc_blocks(mem, 2)?;
        let dummy = heap.alloc_blocks(mem, 2)?;
        let head = CasSite::init(mem, roots, dummy.0)?;
        let tail = CasSite::init(mem, PhysAddr(roots.0 + 64), dummy.0)?;
        Ok(MsQueue { head, tail })
    }

    /// Re-attaches to a queue whose root sites live at `addr` (head)
    /// and `addr + 64` (tail).
    pub fn open(addr: PhysAddr) -> Self {
        MsQueue {
            head: CasSite::at(addr),
            tail: CasSite::at(PhysAddr(addr.0 + 64)),
        }
    }

    /// The head site's address (the queue's root).
    pub fn root_addr(&self) -> PhysAddr {
        self.head.addr()
    }

    fn read_value(mem: &mut SecureMemory, node: u64) -> Result<u64> {
        let buf = mem.read(PhysAddr(node))?;
        Ok(read_u64(&buf, NODE_VALUE))
    }

    /// The queue's contents, front first (the oracle's final walk).
    ///
    /// # Errors
    ///
    /// [`RecovError::Corrupt`] if the chain exceeds the walk bound.
    pub fn contents(&self, mem: &mut SecureMemory) -> Result<Vec<u64>> {
        let mut out = Vec::new();
        let mut cur = self.head.read(mem)?.value;
        let mut hops = 0u64;
        loop {
            if hops >= WALK_LIMIT {
                return Err(RecovError::Corrupt {
                    what: "queue-walk",
                    addr: cur,
                });
            }
            let next = next_site(cur).read(mem)?.value;
            if next == 0 {
                return Ok(out);
            }
            out.push(Self::read_value(mem, next)?);
            cur = next;
            hops += 1;
        }
    }
}

/// The in-flight state of one queue operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Start,
    // Enqueue path.
    PrepNode,
    ReadTail {
        node: u64,
    },
    ReadNext {
        node: u64,
        tview: CasView,
    },
    SwingTail {
        node: u64,
        tview: CasView,
        to: u64,
    },
    PendingEnq {
        node: u64,
        tview: CasView,
        nview: CasView,
    },
    CommitEnq {
        node: u64,
        tview: CasView,
        nview: CasView,
    },
    SwingAfter {
        node: u64,
        tview: CasView,
    },
    // Dequeue path.
    ReadHead,
    ReadHeadNext {
        hview: CasView,
    },
    ReadValue {
        hview: CasView,
        next: u64,
    },
    PendingDeq {
        hview: CasView,
        next: u64,
        value: u64,
    },
    HelpDeq {
        hview: CasView,
        next: u64,
        value: u64,
    },
    CommitDeq {
        hview: CasView,
        next: u64,
        value: u64,
    },
    Complete {
        result: OpResult,
    },
    Done,
}

/// A stepwise enqueue/dequeue execution for one operation sequence
/// number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueMachine {
    op: QueueOp,
    seq: u64,
    state: State,
}

impl QueueMachine {
    /// A machine for `op` as operation `seq` of its thread.
    pub fn new(op: QueueOp, seq: u64) -> Self {
        QueueMachine {
            op,
            seq,
            state: State::Start,
        }
    }

    /// The operation sequence number this machine executes.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Executes one atomic step (see [`crate::stack::StackMachine::step`]).
    ///
    /// # Errors
    ///
    /// Secure-memory errors, notably
    /// [`triad_core::SecureMemoryError::NeedsRecovery`].
    pub fn step(
        &mut self,
        mem: &mut SecureMemory,
        heap: &PersistentHeap,
        ctx: &mut ThreadCtx,
        queue: &MsQueue,
    ) -> Result<StepOutcome> {
        let state = self.state;
        match state {
            State::Start => {
                let ms = ctx.mementos();
                match resolve_pending(mem, &ms, ctx.slot(), self.seq)? {
                    CasOutcome::Applied { payload } => {
                        let result = match self.op {
                            QueueOp::Enqueue(_) => OpResult::Inserted,
                            // For a dequeue the payload is the NEW
                            // head node, whose value is the one the
                            // crashed operation returned.
                            QueueOp::Dequeue => {
                                OpResult::Removed(MsQueue::read_value(mem, payload)?)
                            }
                        };
                        self.state = State::Complete { result };
                    }
                    CasOutcome::NotApplied => {
                        self.state = match self.op {
                            QueueOp::Enqueue(_) => State::PrepNode,
                            QueueOp::Dequeue => State::ReadHead,
                        };
                    }
                }
                Ok(StepOutcome::Continue)
            }
            State::PrepNode => {
                let QueueOp::Enqueue(v) = self.op else {
                    return Err(RecovError::Corrupt {
                        what: "queue-machine",
                        addr: 0,
                    });
                };
                let node = heap.alloc_blocks_for(mem, 2, ctx.slot(), self.seq)?;
                let mut buf = [0u8; BLOCK_BYTES];
                put_u64(&mut buf, NODE_VALUE, v);
                mem.write(node, &buf)?;
                mem.persist(node)?;
                // Block node+64 is the next site: all-zero = null.
                self.state = State::ReadTail { node: node.0 };
                Ok(StepOutcome::Continue)
            }
            State::ReadTail { node } => {
                let tview = queue.tail.read(mem)?;
                self.state = State::ReadNext { node, tview };
                Ok(StepOutcome::Continue)
            }
            State::ReadNext { node, tview } => {
                let nview = next_site(tview.value).read(mem)?;
                if nview.value != 0 {
                    // Tail lags: help swing it forward, then retry.
                    self.state = State::SwingTail {
                        node,
                        tview,
                        to: nview.value,
                    };
                } else {
                    self.state = State::PendingEnq { node, tview, nview };
                }
                Ok(StepOutcome::Continue)
            }
            State::SwingTail { node, tview, to } => {
                // Helper commit: NO_OWNER tag — never evidence for
                // anyone's decisive operation. Outcome irrelevant.
                queue.tail.commit(mem, &tview, to, NO_OWNER, 0)?;
                self.state = State::ReadTail { node };
                Ok(StepOutcome::Continue)
            }
            State::PendingEnq { node, tview, nview } => {
                ctx.pending_persist(mem, next_site(tview.value).addr(), node)?;
                self.state = State::CommitEnq { node, tview, nview };
                Ok(StepOutcome::Continue)
            }
            State::CommitEnq { node, tview, nview } => {
                // The expected view is null — protocol-wise it is
                // always untagged, but guard the evidence anyway.
                if nview.is_owned() {
                    ctx.mementos()
                        .record_help(mem, nview.owner_slot, nview.owner_seq)?;
                }
                if next_site(tview.value).commit(mem, &nview, node, ctx.slot(), self.seq)? {
                    self.state = State::SwingAfter { node, tview };
                    Ok(StepOutcome::Decided(OpResult::Inserted))
                } else {
                    self.state = State::ReadTail { node };
                    Ok(StepOutcome::Continue)
                }
            }
            State::SwingAfter { node, tview } => {
                // Best-effort tail swing to the node we just linked.
                queue.tail.commit(mem, &tview, node, NO_OWNER, 0)?;
                self.state = State::Complete {
                    result: OpResult::Inserted,
                };
                Ok(StepOutcome::Continue)
            }
            State::ReadHead => {
                let hview = queue.head.read(mem)?;
                self.state = State::ReadHeadNext { hview };
                Ok(StepOutcome::Continue)
            }
            State::ReadHeadNext { hview } => {
                let nview = next_site(hview.value).read(mem)?;
                if nview.value == 0 {
                    // Fused decide+complete on emptiness, as for the
                    // stack.
                    let result = OpResult::Empty;
                    let (tag, value) = result.encode();
                    ctx.complete_op(mem, tag, value)?;
                    self.state = State::Done;
                    return Ok(StepOutcome::DoneDecisive(result));
                }
                self.state = State::ReadValue {
                    hview,
                    next: nview.value,
                };
                Ok(StepOutcome::Continue)
            }
            State::ReadValue { hview, next } => {
                let value = MsQueue::read_value(mem, next)?;
                self.state = State::PendingDeq { hview, next, value };
                Ok(StepOutcome::Continue)
            }
            State::PendingDeq { hview, next, value } => {
                ctx.pending_persist(mem, queue.head.addr(), next)?;
                self.state = State::HelpDeq { hview, next, value };
                Ok(StepOutcome::Continue)
            }
            State::HelpDeq { hview, next, value } => {
                if hview.is_owned() {
                    ctx.mementos()
                        .record_help(mem, hview.owner_slot, hview.owner_seq)?;
                }
                self.state = State::CommitDeq { hview, next, value };
                Ok(StepOutcome::Continue)
            }
            State::CommitDeq { hview, next, value } => {
                if queue.head.commit(mem, &hview, next, ctx.slot(), self.seq)? {
                    let result = OpResult::Removed(value);
                    self.state = State::Complete { result };
                    Ok(StepOutcome::Decided(result))
                } else {
                    self.state = State::ReadHead;
                    Ok(StepOutcome::Continue)
                }
            }
            State::Complete { result } => {
                let (tag, value) = result.encode();
                ctx.complete_op(mem, tag, value)?;
                self.state = State::Done;
                Ok(StepOutcome::Done(result))
            }
            State::Done => Err(RecovError::Corrupt {
                what: "queue-machine",
                addr: 0,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memento::Mementos;
    use triad_core::{PersistScheme, SecureMemoryBuilder};

    fn setup() -> (SecureMemory, PersistentHeap, Mementos, MsQueue) {
        let mut m = SecureMemoryBuilder::new()
            .scheme(PersistScheme::triad_nvm(2))
            .build()
            .unwrap();
        let h = PersistentHeap::format(&mut m).unwrap();
        h.register_alloc_slots(&mut m, 2).unwrap();
        let ms = Mementos::format(&mut m, &h, 2).unwrap();
        let q = MsQueue::create(&mut m, &h).unwrap();
        (m, h, ms, q)
    }

    fn run_op(
        m: &mut SecureMemory,
        h: &PersistentHeap,
        ctx: &mut ThreadCtx,
        q: &MsQueue,
        op: QueueOp,
    ) -> OpResult {
        let mut mach = QueueMachine::new(op, ctx.next_seq());
        loop {
            match mach.step(m, h, ctx, q).unwrap() {
                StepOutcome::Continue | StepOutcome::Decided(_) => {}
                StepOutcome::Done(r) | StepOutcome::DoneDecisive(r) => return r,
            }
        }
    }

    #[test]
    fn fifo_order_single_thread() {
        let (mut m, h, ms, q) = setup();
        let mut ctx = ThreadCtx::new(ms, 0);
        assert_eq!(
            run_op(&mut m, &h, &mut ctx, &q, QueueOp::Dequeue),
            OpResult::Empty
        );
        for v in [10, 20, 30] {
            assert_eq!(
                run_op(&mut m, &h, &mut ctx, &q, QueueOp::Enqueue(v)),
                OpResult::Inserted
            );
        }
        assert_eq!(q.contents(&mut m).unwrap(), vec![10, 20, 30]);
        assert_eq!(
            run_op(&mut m, &h, &mut ctx, &q, QueueOp::Dequeue),
            OpResult::Removed(10)
        );
        assert_eq!(
            run_op(&mut m, &h, &mut ctx, &q, QueueOp::Dequeue),
            OpResult::Removed(20)
        );
        assert_eq!(
            run_op(&mut m, &h, &mut ctx, &q, QueueOp::Dequeue),
            OpResult::Removed(30)
        );
        assert_eq!(
            run_op(&mut m, &h, &mut ctx, &q, QueueOp::Dequeue),
            OpResult::Empty
        );
    }

    #[test]
    fn enqueue_crash_after_link_applies_exactly_once() {
        let (mut m, h, ms, q) = setup();
        let mut ctx = ThreadCtx::new(ms, 0);
        let mut mach = QueueMachine::new(QueueOp::Enqueue(9), ctx.next_seq());
        loop {
            match mach.step(&mut m, &h, &mut ctx, &q).unwrap() {
                StepOutcome::Decided(OpResult::Inserted) => break,
                StepOutcome::Continue => {}
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        // Crash before SwingAfter AND before Complete: tail lags and
        // the completion is not durable.
        let mut ctx = ThreadCtx::recover(&mut m, ms, 0).unwrap();
        assert_eq!(ctx.completed(), 0);
        let r = run_op(&mut m, &h, &mut ctx, &q, QueueOp::Enqueue(9));
        assert_eq!(r, OpResult::Inserted);
        assert_eq!(q.contents(&mut m).unwrap(), vec![9], "exactly one node");
        // A later enqueue walks the lagging tail forward.
        run_op(&mut m, &h, &mut ctx, &q, QueueOp::Enqueue(11));
        assert_eq!(q.contents(&mut m).unwrap(), vec![9, 11]);
    }

    #[test]
    fn dequeue_crash_after_swing_recovers_the_value() {
        let (mut m, h, ms, q) = setup();
        let mut ctx = ThreadCtx::new(ms, 0);
        run_op(&mut m, &h, &mut ctx, &q, QueueOp::Enqueue(5));
        run_op(&mut m, &h, &mut ctx, &q, QueueOp::Enqueue(6));
        let mut mach = QueueMachine::new(QueueOp::Dequeue, ctx.next_seq());
        loop {
            match mach.step(&mut m, &h, &mut ctx, &q).unwrap() {
                StepOutcome::Decided(OpResult::Removed(5)) => break,
                StepOutcome::Continue => {}
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        let mut ctx = ThreadCtx::recover(&mut m, ms, 0).unwrap();
        let r = run_op(&mut m, &h, &mut ctx, &q, QueueOp::Dequeue);
        assert_eq!(r, OpResult::Removed(5), "same value, not 6");
        assert_eq!(q.contents(&mut m).unwrap(), vec![6]);
    }
}
