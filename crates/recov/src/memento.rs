//! Per-thread persistent protocol records — the "mementos".
//!
//! Each logical thread owns four 64 B blocks in the persistent heap:
//!
//! * two **checkpoint** blocks (A/B, written alternately by sequence
//!   number) holding the result of the thread's last *completed*
//!   operation: `[seq][tag][value][crc]`. The A/B pair is the
//!   torn-write-safe checksummed-record pattern from the KV WAL — a
//!   torn overwrite can destroy at most the record being written,
//!   never the previous one, so recovery always finds the latest
//!   durable completion;
//! * one **pending** block `[seq][site][payload][crc]` logging the CAS
//!   the thread is about to attempt for operation `seq` — the record
//!   a recovering thread resolves against the site's ownership tag;
//! * one **help** block `[max_seq][crc]` in the shared help table: any
//!   thread about to overwrite a tagged CAS site first records the
//!   observed owner's sequence number here, so success evidence
//!   survives the overwrite.
//!
//! All records carry a SipHash-2-4 framing checksum with a record-kind
//! and slot domain separator: a torn or foreign record never validates.

use triad_core::SecureMemory;
use triad_crypto::SipHash24;
use triad_kv::PersistentHeap;
use triad_sim::{PhysAddr, BLOCK_BYTES};

use crate::{RecovError, Result};

/// Blocks owned by each thread: checkpoint A, checkpoint B, pending.
const THREAD_BLOCKS: u64 = 3;

/// Checkpoint record layout.
const CKPT_SEQ: usize = 0;
const CKPT_TAG: usize = 8;
const CKPT_VALUE: usize = 16;
const CKPT_CRC: usize = 24;

/// Pending-CAS record layout.
const PEND_SEQ: usize = 0;
const PEND_SITE: usize = 8;
const PEND_PAYLOAD: usize = 16;
const PEND_CRC: usize = 24;

/// Help-table record layout.
const HELP_MAX: usize = 0;
const HELP_CRC: usize = 8;

/// Record-kind domain separators for the framing checksum.
const K_CKPT: u64 = 1;
const K_PEND: u64 = 2;
const K_HELP: u64 = 3;
const K_SITE: u64 = 4;

/// Framing checksum of a CAS-site block (kind 4; sites are not
/// slot-scoped, the tag itself carries the identity).
pub(crate) fn site_crc(value: u64, owner_slot: u64, owner_seq: u64) -> u64 {
    checksum(K_SITE, 0, &[value, owner_slot, owner_seq])
}

/// Fixed SipHash-2-4 key for memento framing (not secret: torn-write
/// detection only, the same idiom as the KV WAL).
fn framing_hash() -> SipHash24 {
    SipHash24::new(*b"triad-recov fmt.")
}

fn checksum(kind: u64, slot: u64, words: &[u64]) -> u64 {
    let mut all = Vec::with_capacity(words.len() + 2);
    all.push(kind);
    all.push(slot);
    all.extend_from_slice(words);
    framing_hash().hash_words(&all)
}

/// Little-endian u64 at `off` of a block buffer.
pub(crate) fn read_u64(buf: &[u8; BLOCK_BYTES], off: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&buf[off..off + 8]);
    u64::from_le_bytes(b)
}

pub(crate) fn put_u64(buf: &mut [u8; BLOCK_BYTES], off: usize, value: u64) {
    buf[off..off + 8].copy_from_slice(&value.to_le_bytes());
}

/// The result checkpoint of a completed operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointVal {
    /// Operation sequence number (1-based: `seq` = number of completed
    /// operations).
    pub seq: u64,
    /// Result tag (structure-defined, e.g. pushed / popped / empty).
    pub tag: u64,
    /// Result value (e.g. the popped element).
    pub value: u64,
}

/// A pending-CAS record: "operation `seq` is attempting a CAS at
/// `site`; if it succeeded, its decisive payload is `payload`".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingRec {
    /// Operation sequence number the attempt belongs to.
    pub seq: u64,
    /// Address of the [`crate::CasSite`] attempted.
    pub site: u64,
    /// Structure-defined payload needed to re-derive the result (the
    /// pushed/popped node address).
    pub payload: u64,
}

/// The memento area: per-thread records plus the shared help table,
/// allocated once in the persistent heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mementos {
    base: PhysAddr,
    threads: u64,
}

impl Mementos {
    /// Allocates memento blocks for `threads` logical threads. Fresh
    /// heap blocks read as zeros, which no record checksum validates,
    /// so no initializing writes are needed.
    ///
    /// # Errors
    ///
    /// [`RecovError::BadSpec`] for zero threads; heap errors otherwise.
    pub fn format(mem: &mut SecureMemory, heap: &PersistentHeap, threads: u64) -> Result<Self> {
        if threads == 0 {
            return Err(RecovError::BadSpec {
                what: "mementos need at least one thread",
            });
        }
        // threads * (3 own blocks + 1 help block).
        let blocks = threads
            .checked_mul(THREAD_BLOCKS + 1)
            .ok_or(RecovError::BadSpec {
                what: "thread count overflows the memento area",
            })?;
        let base = heap.alloc_blocks(mem, blocks)?;
        Ok(Mementos { base, threads })
    }

    /// The number of thread slots.
    pub fn threads(&self) -> u64 {
        self.threads
    }

    fn ckpt_addr(&self, slot: u64, which: u64) -> PhysAddr {
        PhysAddr(self.base.0 + (slot * THREAD_BLOCKS + which) * 64)
    }

    fn pending_addr(&self, slot: u64) -> PhysAddr {
        PhysAddr(self.base.0 + (slot * THREAD_BLOCKS + 2) * 64)
    }

    fn help_addr(&self, slot: u64) -> PhysAddr {
        PhysAddr(self.base.0 + (self.threads * THREAD_BLOCKS + slot) * 64)
    }

    fn read_ckpt_block(
        &self,
        mem: &mut SecureMemory,
        slot: u64,
        which: u64,
    ) -> Result<Option<CheckpointVal>> {
        let buf = mem.read(self.ckpt_addr(slot, which))?;
        let (seq, tag, value) = (
            read_u64(&buf, CKPT_SEQ),
            read_u64(&buf, CKPT_TAG),
            read_u64(&buf, CKPT_VALUE),
        );
        if seq != 0 && read_u64(&buf, CKPT_CRC) == checksum(K_CKPT, slot, &[seq, tag, value]) {
            Ok(Some(CheckpointVal { seq, tag, value }))
        } else {
            Ok(None)
        }
    }

    /// The latest durable checkpoint of `slot` (`None` before the
    /// thread completes its first operation). A torn record — the
    /// crash hit mid-overwrite — simply fails its checksum and the
    /// *other* block still holds the previous completion.
    ///
    /// # Errors
    ///
    /// Propagates secure-memory errors.
    pub fn read_checkpoint(
        &self,
        mem: &mut SecureMemory,
        slot: u64,
    ) -> Result<Option<CheckpointVal>> {
        let a = self.read_ckpt_block(mem, slot, 0)?;
        let b = self.read_ckpt_block(mem, slot, 1)?;
        Ok(match (a, b) {
            (Some(x), Some(y)) => Some(if x.seq >= y.seq { x } else { y }),
            (Some(x), None) => Some(x),
            (None, Some(y)) => Some(y),
            (None, None) => None,
        })
    }

    /// The latest durable pending-CAS record of `slot`.
    ///
    /// # Errors
    ///
    /// Propagates secure-memory errors.
    pub fn read_pending(&self, mem: &mut SecureMemory, slot: u64) -> Result<Option<PendingRec>> {
        let buf = mem.read(self.pending_addr(slot))?;
        let (seq, site, payload) = (
            read_u64(&buf, PEND_SEQ),
            read_u64(&buf, PEND_SITE),
            read_u64(&buf, PEND_PAYLOAD),
        );
        if seq != 0 && read_u64(&buf, PEND_CRC) == checksum(K_PEND, slot, &[seq, site, payload]) {
            Ok(Some(PendingRec { seq, site, payload }))
        } else {
            Ok(None)
        }
    }

    /// The highest operation sequence number of `slot` that some
    /// thread has durably recorded as *known successful* (0 = none).
    ///
    /// # Errors
    ///
    /// Propagates secure-memory errors.
    pub fn help_max(&self, mem: &mut SecureMemory, slot: u64) -> Result<u64> {
        let buf = mem.read(self.help_addr(slot))?;
        let max = read_u64(&buf, HELP_MAX);
        if max != 0 && read_u64(&buf, HELP_CRC) == checksum(K_HELP, slot, &[max]) {
            Ok(max)
        } else {
            Ok(0)
        }
    }

    /// Durably records that operation `seq` of `owner_slot` succeeded.
    /// Called by any thread *before* it overwrites a CAS-site tag
    /// `(owner_slot, seq)`, so the owner's success evidence outlives
    /// the tag. Monotone: an older `seq` never regresses the record.
    ///
    /// # Errors
    ///
    /// Propagates secure-memory errors.
    pub fn record_help(&self, mem: &mut SecureMemory, owner_slot: u64, seq: u64) -> Result<()> {
        if self.help_max(mem, owner_slot)? >= seq {
            return Ok(());
        }
        let addr = self.help_addr(owner_slot);
        let mut buf = [0u8; BLOCK_BYTES];
        put_u64(&mut buf, HELP_MAX, seq);
        put_u64(&mut buf, HELP_CRC, checksum(K_HELP, owner_slot, &[seq]));
        mem.write(addr, &buf)?;
        mem.persist(addr)?;
        Ok(())
    }

    /// Durably logs the pending CAS of operation `seq` at `slot`.
    ///
    /// # Errors
    ///
    /// Propagates secure-memory errors.
    pub fn pending_persist(
        &self,
        mem: &mut SecureMemory,
        slot: u64,
        seq: u64,
        site: PhysAddr,
        payload: u64,
    ) -> Result<()> {
        let addr = self.pending_addr(slot);
        let mut buf = [0u8; BLOCK_BYTES];
        put_u64(&mut buf, PEND_SEQ, seq);
        put_u64(&mut buf, PEND_SITE, site.0);
        put_u64(&mut buf, PEND_PAYLOAD, payload);
        put_u64(
            &mut buf,
            PEND_CRC,
            checksum(K_PEND, slot, &[seq, site.0, payload]),
        );
        mem.write(addr, &buf)?;
        mem.persist(addr)?;
        Ok(())
    }
}

/// The volatile per-thread handle over a memento slot: tracks how many
/// operations the thread has completed and persists completions.
///
/// Reconstructible from NVM alone ([`ThreadCtx::recover`]) — exactly
/// what a crashed thread does before replaying its in-flight
/// operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadCtx {
    mementos: Mementos,
    slot: u64,
    op_seq: u64,
}

impl ThreadCtx {
    /// A fresh context for `slot` (no operations completed).
    pub fn new(mementos: Mementos, slot: u64) -> Self {
        ThreadCtx {
            mementos,
            slot,
            op_seq: 0,
        }
    }

    /// Rebuilds the context from NVM after a thread crash: the
    /// completed-operation count is the latest durable checkpoint's
    /// sequence number.
    ///
    /// # Errors
    ///
    /// Propagates secure-memory errors.
    pub fn recover(mem: &mut SecureMemory, mementos: Mementos, slot: u64) -> Result<Self> {
        let op_seq = mementos.read_checkpoint(mem, slot)?.map_or(0, |c| c.seq);
        Ok(ThreadCtx {
            mementos,
            slot,
            op_seq,
        })
    }

    /// This thread's slot index.
    pub fn slot(&self) -> u64 {
        self.slot
    }

    /// The memento area this context lives in.
    pub fn mementos(&self) -> Mementos {
        self.mementos
    }

    /// How many operations this thread has completed.
    pub fn completed(&self) -> u64 {
        self.op_seq
    }

    /// The sequence number the *next* operation will carry (1-based).
    pub fn next_seq(&self) -> u64 {
        self.op_seq + 1
    }

    /// Durably logs the pending CAS of the current operation.
    ///
    /// # Errors
    ///
    /// Propagates secure-memory errors.
    pub fn pending_persist(
        &self,
        mem: &mut SecureMemory,
        site: PhysAddr,
        payload: u64,
    ) -> Result<()> {
        self.mementos
            .pending_persist(mem, self.slot, self.next_seq(), site, payload)
    }

    /// Completes the current operation: durably checkpoints its result
    /// and only then bumps the volatile sequence number. The persist
    /// MUST come first — a crash between the two replays the
    /// completion idempotently, while the reverse order would lose the
    /// operation's result.
    ///
    /// # Errors
    ///
    /// Propagates secure-memory errors.
    pub fn complete_op(&mut self, mem: &mut SecureMemory, tag: u64, value: u64) -> Result<()> {
        let seq = self.op_seq + 1;
        self.checkpoint_persist(mem, seq, tag, value)?;
        self.seqno_bump();
        Ok(())
    }

    /// Durably writes the result checkpoint for operation `seq` into
    /// the A/B block selected by parity (never the block holding the
    /// previous completion — torn-write safety).
    fn checkpoint_persist(
        &mut self,
        mem: &mut SecureMemory,
        seq: u64,
        tag: u64,
        value: u64,
    ) -> Result<()> {
        let addr = self.mementos.ckpt_addr(self.slot, seq % 2);
        let mut buf = [0u8; BLOCK_BYTES];
        put_u64(&mut buf, CKPT_SEQ, seq);
        put_u64(&mut buf, CKPT_TAG, tag);
        put_u64(&mut buf, CKPT_VALUE, value);
        put_u64(
            &mut buf,
            CKPT_CRC,
            checksum(K_CKPT, self.slot, &[seq, tag, value]),
        );
        mem.write(addr, &buf)?;
        mem.persist(addr)?;
        Ok(())
    }

    /// Advances the volatile completed-operation counter.
    fn seqno_bump(&mut self) {
        self.op_seq += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triad_core::{PersistScheme, SecureMemoryBuilder};

    fn setup() -> (SecureMemory, PersistentHeap, Mementos) {
        let mut m = SecureMemoryBuilder::new()
            .scheme(PersistScheme::triad_nvm(2))
            .build()
            .unwrap();
        let h = PersistentHeap::format(&mut m).unwrap();
        let ms = Mementos::format(&mut m, &h, 3).unwrap();
        (m, h, ms)
    }

    #[test]
    fn zero_threads_rejected() {
        let mut m = SecureMemoryBuilder::new().build().unwrap();
        let h = PersistentHeap::format(&mut m).unwrap();
        assert!(matches!(
            Mementos::format(&mut m, &h, 0).unwrap_err(),
            RecovError::BadSpec { .. }
        ));
    }

    #[test]
    fn fresh_records_read_as_absent() {
        let (mut m, _h, ms) = setup();
        for slot in 0..3 {
            assert_eq!(ms.read_checkpoint(&mut m, slot).unwrap(), None);
            assert_eq!(ms.read_pending(&mut m, slot).unwrap(), None);
            assert_eq!(ms.help_max(&mut m, slot).unwrap(), 0);
        }
    }

    #[test]
    fn complete_op_round_trips_through_recovery() {
        let (mut m, _h, ms) = setup();
        let mut ctx = ThreadCtx::new(ms, 1);
        assert_eq!(ctx.next_seq(), 1);
        ctx.complete_op(&mut m, 7, 0xAA).unwrap();
        ctx.complete_op(&mut m, 8, 0xBB).unwrap();
        assert_eq!(ctx.completed(), 2);
        // Thread crash: volatile context gone, rebuild from NVM.
        let r = ThreadCtx::recover(&mut m, ms, 1).unwrap();
        assert_eq!(r.completed(), 2);
        assert_eq!(
            ms.read_checkpoint(&mut m, 1).unwrap(),
            Some(CheckpointVal {
                seq: 2,
                tag: 8,
                value: 0xBB
            })
        );
        // Other slots untouched.
        assert_eq!(ms.read_checkpoint(&mut m, 0).unwrap(), None);
    }

    #[test]
    fn ab_checkpoints_tolerate_a_torn_overwrite() {
        let (mut m, _h, ms) = setup();
        let mut ctx = ThreadCtx::new(ms, 0);
        ctx.complete_op(&mut m, 1, 10).unwrap(); // seq 1 → block B (1 % 2)
        ctx.complete_op(&mut m, 2, 20).unwrap(); // seq 2 → block A
                                                 // Simulate a torn overwrite of the seq-3 record (block B):
                                                 // garbage that validates nowhere.
        let b = ms.ckpt_addr(0, 1);
        m.write(b, &[0x5Au8; 64]).unwrap();
        m.persist(b).unwrap();
        // The previous completion (seq 2, in block A) must survive.
        let r = ThreadCtx::recover(&mut m, ms, 0).unwrap();
        assert_eq!(r.completed(), 2);
        assert_eq!(
            ms.read_checkpoint(&mut m, 0).unwrap(),
            Some(CheckpointVal {
                seq: 2,
                tag: 2,
                value: 20
            })
        );
    }

    #[test]
    fn pending_round_trip_and_per_slot_isolation() {
        let (mut m, _h, ms) = setup();
        let ctx = ThreadCtx::new(ms, 2);
        ctx.pending_persist(&mut m, PhysAddr(0x1000), 42).unwrap();
        assert_eq!(
            ms.read_pending(&mut m, 2).unwrap(),
            Some(PendingRec {
                seq: 1,
                site: 0x1000,
                payload: 42
            })
        );
        assert_eq!(ms.read_pending(&mut m, 0).unwrap(), None);
    }

    #[test]
    fn help_is_monotone_and_checksummed() {
        let (mut m, _h, ms) = setup();
        ms.record_help(&mut m, 1, 5).unwrap();
        assert_eq!(ms.help_max(&mut m, 1).unwrap(), 5);
        ms.record_help(&mut m, 1, 3).unwrap(); // older — must not regress
        assert_eq!(ms.help_max(&mut m, 1).unwrap(), 5);
        ms.record_help(&mut m, 1, 9).unwrap();
        assert_eq!(ms.help_max(&mut m, 1).unwrap(), 9);
        assert_eq!(ms.help_max(&mut m, 0).unwrap(), 0);
    }

    #[test]
    fn foreign_slot_records_never_validate() {
        // A record checksummed for slot 0 must not validate when read
        // as slot 1's record (kind/slot domain separation).
        let (mut m, _h, ms) = setup();
        let mut ctx = ThreadCtx::new(ms, 0);
        ctx.complete_op(&mut m, 1, 1).unwrap();
        let from = m.read(ms.ckpt_addr(0, 1)).unwrap();
        m.write(ms.ckpt_addr(1, 1), &from).unwrap();
        m.persist(ms.ckpt_addr(1, 1)).unwrap();
        assert_eq!(ms.read_checkpoint(&mut m, 1).unwrap(), None);
    }
}
