//! Deterministic concurrent driver and crash-equivalence oracle.
//!
//! The harness owns the only loop in the crate: it builds a secure
//! memory + heap + mementos + structure, spawns one step machine per
//! scheduled operation, and lets a seeded [`Interleaver`] decide which
//! logical thread executes its next atomic step. Crashes come from
//! two independent layers, and **whichever fires first wins**:
//!
//! * **per-thread** ([`RunSpec::thread_crash`], scheduler-level): the
//!   victim's volatile state — machine and [`ThreadCtx`] — is dropped;
//!   its next scheduled step is recovery (rebuild the context from
//!   NVM, then replay the in-flight operation through the `Start`
//!   resolution gate);
//! * **whole-system** ([`RunSpec::engine_crash_after_persists`],
//!   engine-level): the step in flight fails with `NeedsRecovery`,
//!   caches and staged state are lost, and *every* thread restarts
//!   through recovery. A still-armed per-thread crash is disarmed at
//!   that point — the whole system already crashed, so the per-thread
//!   hook lost the race and must never fire afterwards.
//!
//! Every decisive step (a successful decisive CAS, or a fused empty
//! observation) is appended to a **commit log** in scheduler order.
//! The oracle ([`check_run`]) replays that log against a sequential
//! model and enforces:
//!
//! 1. **linearizability**: each logged result is what the sequential
//!    model produces at that point of the commit order;
//! 2. **exactly-once detectability**: every scheduled operation —
//!    crashed or not — commits exactly once and its final result
//!    equals its logged commit;
//! 3. **structure integrity**: the final pointer walk equals the
//!    model's remaining contents.

use std::collections::VecDeque;

use triad_core::{PersistScheme, SecureMemory, SecureMemoryBuilder, SecureMemoryError};
use triad_kv::PersistentHeap;
use triad_sim::{Interleaver, SchedEvent};

use crate::memento::{Mementos, ThreadCtx};
use crate::queue::{MsQueue, QueueMachine, QueueOp};
use crate::stack::{StackMachine, StackOp, TreiberStack};
use crate::{RecovError, Result};

/// Which structure a run exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StructureKind {
    /// Treiber stack (LIFO).
    Stack,
    /// Michael-Scott queue (FIFO).
    Queue,
}

/// One scripted operation (structure-agnostic: push/enqueue,
/// pop/dequeue).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpSpec {
    /// Push / enqueue the value.
    Insert(u64),
    /// Pop / dequeue.
    Remove,
}

/// The result of one completed operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpResult {
    /// The value was inserted.
    Inserted,
    /// This value was removed.
    Removed(u64),
    /// The structure was observed empty.
    Empty,
}

impl OpResult {
    /// Encodes the result as a checkpoint `(tag, value)` pair.
    pub fn encode(self) -> (u64, u64) {
        match self {
            OpResult::Inserted => (1, 0),
            OpResult::Removed(v) => (2, v),
            OpResult::Empty => (3, 0),
        }
    }

    /// Decodes a checkpoint `(tag, value)` pair.
    pub fn decode(tag: u64, value: u64) -> Option<Self> {
        match tag {
            1 => Some(OpResult::Inserted),
            2 => Some(OpResult::Removed(value)),
            3 => Some(OpResult::Empty),
            _ => None,
        }
    }
}

/// What one machine step reported to the driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// Keep stepping.
    Continue,
    /// The decisive step just executed (log a commit); the operation
    /// still needs its completion step.
    Decided(OpResult),
    /// The operation completed; its decisive step was logged earlier
    /// (possibly before a crash).
    Done(OpResult),
    /// Fused decisive + completion in one step (empty observation).
    DoneDecisive(OpResult),
}

/// A full run specification — everything needed to reproduce a run
/// bit-for-bit.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Structure under test.
    pub kind: StructureKind,
    /// Persist scheme of the secure memory.
    pub scheme: PersistScheme,
    /// Scheduler seed (equal seeds ⇒ equal interleavings).
    pub seed: u64,
    /// Per-thread operation scripts; `scripts.len()` is the thread
    /// count.
    pub scripts: Vec<Vec<OpSpec>>,
    /// Crash thread `t` instead of its `k`-th step (0-based).
    pub thread_crash: Option<(usize, u64)>,
    /// Whole-system crash at the n-th run-phase durability point
    /// (0-based; setup persists are excluded).
    pub engine_crash_after_persists: Option<u64>,
}

/// One commit-log record: operation `(thread, op_index)` became
/// decisive with `result`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitRec {
    /// The executing thread.
    pub thread: usize,
    /// The operation's index in its thread's script.
    pub op_index: usize,
    /// The scripted operation.
    pub op: OpSpec,
    /// The decisive result.
    pub result: OpResult,
}

/// Everything a finished run exposes to oracles and benchmarks.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Decisive commits in scheduler (temporal) order.
    pub commits: Vec<CommitRec>,
    /// Final per-thread, per-operation results.
    pub results: Vec<Vec<Option<OpResult>>>,
    /// Total machine steps executed.
    pub steps: u64,
    /// Machine steps each thread executed (recovery steps included) —
    /// the valid crash-point range for a sweep.
    pub per_thread_steps: Vec<u64>,
    /// Run-phase durability points (atomic persists, setup excluded).
    pub persists: u64,
    /// Run-phase metadata blocks persisted by the scheme (the paper's
    /// cost axis; setup excluded).
    pub persist_metadata_writes: u64,
    /// NVM block writes over the whole run (setup included).
    pub nvm_writes: u64,
    /// Per-thread crashes that actually fired.
    pub thread_crashes: u64,
    /// Whole-system crashes that actually fired.
    pub engine_crashes: u64,
    /// Final structure walk (stack: top first; queue: front first).
    pub final_contents: Vec<u64>,
    /// Simulated run-phase time in nanoseconds.
    pub sim_ns: u64,
    /// Per-operation completion latency (ns of simulated time from
    /// first scheduling to completion), in completion order.
    pub op_latency_ns: Vec<u64>,
}

/// One machine, either flavor.
#[derive(Debug, Clone, Copy)]
enum Machine {
    Stack(StackMachine),
    Queue(QueueMachine),
}

#[derive(Debug, Clone, Copy)]
enum Structure {
    Stack(TreiberStack),
    Queue(MsQueue),
}

impl Structure {
    fn contents(&self, mem: &mut SecureMemory) -> Result<Vec<u64>> {
        match self {
            Structure::Stack(s) => s.contents(mem),
            Structure::Queue(q) => q.contents(mem),
        }
    }
}

struct ThreadRun {
    ctx: ThreadCtx,
    script: Vec<OpSpec>,
    op_idx: usize,
    machine: Option<Machine>,
    needs_recovery: bool,
    /// Simulated time the in-flight operation was first scheduled
    /// (survives crashes: latency includes recovery and replay).
    op_start_ns: Option<u64>,
}

fn make_machine(kind: StructureKind, op: OpSpec, seq: u64) -> Machine {
    match kind {
        StructureKind::Stack => Machine::Stack(StackMachine::new(
            match op {
                OpSpec::Insert(v) => StackOp::Push(v),
                OpSpec::Remove => StackOp::Pop,
            },
            seq,
        )),
        StructureKind::Queue => Machine::Queue(QueueMachine::new(
            match op {
                OpSpec::Insert(v) => QueueOp::Enqueue(v),
                OpSpec::Remove => QueueOp::Dequeue,
            },
            seq,
        )),
    }
}

/// Executes `spec` to completion (all scripted operations finished,
/// through any injected crashes) and returns the observables.
///
/// # Errors
///
/// [`RecovError::BadSpec`] for malformed specs; propagated engine /
/// heap / scheduler errors otherwise. An injected crash is *handled*,
/// not an error.
pub fn run(spec: &RunSpec) -> Result<RunOutcome> {
    let n = spec.scripts.len();
    if n == 0 {
        return Err(RecovError::BadSpec { what: "no threads" });
    }
    if let Some((t, _)) = spec.thread_crash {
        if t >= n {
            return Err(RecovError::BadSpec {
                what: "crash thread out of range",
            });
        }
    }
    let mut mem = SecureMemoryBuilder::new().scheme(spec.scheme).build()?;
    let heap = PersistentHeap::format(&mut mem)?;
    heap.register_alloc_slots(&mut mem, n as u64)?;
    let mementos = Mementos::format(&mut mem, &heap, n as u64)?;
    let structure = match spec.kind {
        StructureKind::Stack => Structure::Stack(TreiberStack::create(&mut mem, &heap)?),
        StructureKind::Queue => Structure::Queue(MsQueue::create(&mut mem, &heap)?),
    };

    let mut il = Interleaver::new(spec.seed, n);
    if let Some((t, k)) = spec.thread_crash {
        il.arm_thread_crash(t, k)?;
    }
    if let Some(p) = spec.engine_crash_after_persists {
        // Run-phase boundary count: armed after all setup persists.
        mem.inject_crash_after_persists(p);
    }

    let mut threads: Vec<ThreadRun> = (0..n)
        .map(|t| ThreadRun {
            ctx: ThreadCtx::new(mementos, t as u64),
            script: spec.scripts[t].clone(),
            op_idx: 0,
            machine: None,
            needs_recovery: false,
            op_start_ns: None,
        })
        .collect();
    for (t, th) in threads.iter().enumerate() {
        if th.script.is_empty() {
            il.set_runnable(t, false)?;
        }
    }

    let mut commits: Vec<CommitRec> = Vec::new();
    let mut results: Vec<Vec<Option<OpResult>>> =
        spec.scripts.iter().map(|s| vec![None; s.len()]).collect();
    let mut steps = 0u64;
    let mut per_thread_steps = vec![0u64; n];
    let mut thread_crashes = 0u64;
    let mut engine_crashes = 0u64;
    let mut op_latency_ns: Vec<u64> = Vec::new();
    let persists0 = mem.stats().atomic_persists;
    let pmw0 = mem.stats().persist_metadata_writes();
    let ns0 = mem.now().as_ns();

    while let Some(ev) = il.next_event() {
        match ev {
            SchedEvent::CrashThread(t) => {
                // Per-thread crash: all volatile state of t is lost.
                thread_crashes += 1;
                threads[t].machine = None;
                threads[t].needs_recovery = true;
                il.revive(t)?;
            }
            SchedEvent::Run(t) => {
                steps += 1;
                per_thread_steps[t] += 1;
                let outcome = step_thread(&mut mem, &heap, &structure, spec.kind, &mut threads, t);
                match outcome {
                    Ok(None) => {
                        // Recovery step or thread now finished.
                        if threads[t].op_idx >= threads[t].script.len()
                            && threads[t].machine.is_none()
                            && !threads[t].needs_recovery
                        {
                            il.set_runnable(t, false)?;
                        }
                    }
                    Ok(Some(step)) => {
                        let now_ns = mem.now().as_ns();
                        let th = &mut threads[t];
                        let mut finish = |th: &mut ThreadRun, r: OpResult| {
                            results[t][th.op_idx] = Some(r);
                            if let Some(start) = th.op_start_ns.take() {
                                op_latency_ns.push(now_ns.saturating_sub(start));
                            }
                            th.op_idx += 1;
                            th.machine = None;
                        };
                        match step {
                            StepOutcome::Continue => {}
                            StepOutcome::Decided(r) => commits.push(CommitRec {
                                thread: t,
                                op_index: th.op_idx,
                                op: th.script[th.op_idx],
                                result: r,
                            }),
                            StepOutcome::DoneDecisive(r) => {
                                commits.push(CommitRec {
                                    thread: t,
                                    op_index: th.op_idx,
                                    op: th.script[th.op_idx],
                                    result: r,
                                });
                                finish(th, r);
                            }
                            StepOutcome::Done(r) => finish(th, r),
                        }
                        if th.op_idx >= th.script.len() && th.machine.is_none() {
                            il.set_runnable(t, false)?;
                        }
                    }
                    Err(RecovError::Memory(SecureMemoryError::NeedsRecovery)) => {
                        // Whole-system crash: recover the engine and
                        // restart every thread through recovery. The
                        // system-level crash fired first, so a pending
                        // per-thread crash is disarmed — it must never
                        // fire afterwards.
                        engine_crashes += 1;
                        mem.recover()?;
                        PersistentHeap::open(&mut mem)?;
                        for (u, th) in threads.iter_mut().enumerate() {
                            il.disarm_thread_crash(u)?;
                            th.machine = None;
                            th.needs_recovery = true;
                            il.revive(u)?;
                        }
                    }
                    Err(e) => return Err(e),
                }
            }
        }
    }

    let final_contents = structure.contents(&mut mem)?;
    Ok(RunOutcome {
        commits,
        results,
        steps,
        per_thread_steps,
        persists: mem.stats().atomic_persists - persists0,
        persist_metadata_writes: mem.stats().persist_metadata_writes() - pmw0,
        nvm_writes: mem.mem_stats().writes,
        thread_crashes,
        engine_crashes,
        final_contents,
        sim_ns: mem.now().as_ns() - ns0,
        op_latency_ns,
    })
}

/// One scheduled step of thread `t`: recovery, machine construction,
/// or a machine step. `Ok(None)` means the step was consumed by
/// recovery bookkeeping (or the thread is already done).
fn step_thread(
    mem: &mut SecureMemory,
    heap: &PersistentHeap,
    structure: &Structure,
    kind: StructureKind,
    threads: &mut [ThreadRun],
    t: usize,
) -> Result<Option<StepOutcome>> {
    let th = &mut threads[t];
    if th.needs_recovery {
        // The recovery step: rebuild the volatile context from NVM.
        // The completed-operation count tells the thread which script
        // entry (if any) is its in-flight operation to replay.
        th.ctx = ThreadCtx::recover(mem, th.ctx.mementos(), t as u64)?;
        th.op_idx = th.ctx.completed() as usize;
        th.needs_recovery = false;
        th.machine = None;
        return Ok(None);
    }
    if th.op_idx >= th.script.len() {
        return Ok(None);
    }
    if th.machine.is_none() {
        th.machine = Some(make_machine(kind, th.script[th.op_idx], th.ctx.next_seq()));
        if th.op_start_ns.is_none() {
            th.op_start_ns = Some(mem.now().as_ns());
        }
    }
    let Some(machine) = th.machine.as_mut() else {
        return Ok(None);
    };
    let outcome = match (machine, structure) {
        (Machine::Stack(m), Structure::Stack(s)) => m.step(mem, heap, &mut th.ctx, s)?,
        (Machine::Queue(m), Structure::Queue(q)) => m.step(mem, heap, &mut th.ctx, q)?,
        _ => {
            return Err(RecovError::BadSpec {
                what: "machine/structure kind mismatch",
            })
        }
    };
    Ok(Some(outcome))
}

/// Replays the commit log against a sequential model and enforces the
/// crash-equivalence contract (see the module docs). Returns a
/// human-readable violation description on failure.
///
/// # Errors
///
/// A description of the first violation found.
pub fn check_run(spec: &RunSpec, out: &RunOutcome) -> std::result::Result<(), String> {
    // 1. Exactly-once detectability.
    let mut counts: Vec<Vec<u32>> = spec.scripts.iter().map(|s| vec![0; s.len()]).collect();
    for c in &out.commits {
        let Some(slot) = counts.get_mut(c.thread).and_then(|v| v.get_mut(c.op_index)) else {
            return Err(format!(
                "commit for unknown operation (thread {}, op {})",
                c.thread, c.op_index
            ));
        };
        *slot += 1;
        if *slot > 1 {
            return Err(format!(
                "operation (thread {}, op {}) committed {} times — not exactly once",
                c.thread, c.op_index, *slot
            ));
        }
        if spec.scripts[c.thread][c.op_index] != c.op {
            return Err(format!(
                "commit op mismatch at (thread {}, op {})",
                c.thread, c.op_index
            ));
        }
    }
    for (t, thread_counts) in counts.iter().enumerate() {
        for (i, &cnt) in thread_counts.iter().enumerate() {
            if cnt != 1 {
                return Err(format!(
                    "operation (thread {t}, op {i}) committed {cnt} times — not exactly once"
                ));
            }
            let Some(r) = out.results[t][i] else {
                return Err(format!("operation (thread {t}, op {i}) never finished"));
            };
            let Some(c) = out
                .commits
                .iter()
                .find(|c| c.thread == t && c.op_index == i)
            else {
                return Err(format!("operation (thread {t}, op {i}) has no commit"));
            };
            if c.result != r {
                return Err(format!(
                    "operation (thread {t}, op {i}): final result {r:?} \
                     differs from its commit {:?} — applied more than once?",
                    c.result
                ));
            }
        }
    }
    // 2. Linearizability: sequential replay in commit order.
    let mut model: VecDeque<u64> = VecDeque::new();
    for (k, c) in out.commits.iter().enumerate() {
        match (c.op, c.result) {
            (OpSpec::Insert(v), OpResult::Inserted) => match spec.kind {
                StructureKind::Stack => model.push_front(v),
                StructureKind::Queue => model.push_back(v),
            },
            (OpSpec::Remove, OpResult::Removed(v)) => {
                let got = model.pop_front();
                if got != Some(v) {
                    return Err(format!(
                        "commit #{k} (thread {}, op {}): removed {v} but the \
                         sequential model holds {got:?}",
                        c.thread, c.op_index
                    ));
                }
            }
            (OpSpec::Remove, OpResult::Empty) => {
                if !model.is_empty() {
                    return Err(format!(
                        "commit #{k} (thread {}, op {}): observed empty but the \
                         sequential model holds {} elements",
                        c.thread,
                        c.op_index,
                        model.len()
                    ));
                }
            }
            (op, r) => {
                return Err(format!(
                    "commit #{k}: impossible op/result pair {op:?}/{r:?}"
                ))
            }
        }
    }
    // 3. Final structure walk (both walks are front-first in model
    // terms: stack contents are top-first and the model pushes front).
    let expect: Vec<u64> = model.iter().copied().collect();
    if out.final_contents != expect {
        return Err(format!(
            "final contents {:?} differ from the sequential model {:?}",
            out.final_contents, expect
        ));
    }
    Ok(())
}

/// Runs `spec` and applies the oracle: the concurrent crash-equivalence
/// check the acceptance sweep is built on.
///
/// # Errors
///
/// A description of the run failure or the first oracle violation.
pub fn crash_equivalence_concurrent(spec: &RunSpec) -> std::result::Result<RunOutcome, String> {
    let out = run(spec).map_err(|e| format!("run failed: {e}"))?;
    check_run(spec, &out)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scheme() -> PersistScheme {
        PersistScheme::triad_nvm(2)
    }

    fn mixed_scripts(threads: usize, ops: usize) -> Vec<Vec<OpSpec>> {
        (0..threads)
            .map(|t| {
                (0..ops)
                    .map(|i| {
                        if i % 3 == 2 {
                            OpSpec::Remove
                        } else {
                            OpSpec::Insert((t as u64) << 32 | i as u64 | 1 << 60)
                        }
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn clean_run_passes_the_oracle_for_both_structures() {
        for kind in [StructureKind::Stack, StructureKind::Queue] {
            let spec = RunSpec {
                kind,
                scheme: scheme(),
                seed: 11,
                scripts: mixed_scripts(3, 6),
                thread_crash: None,
                engine_crash_after_persists: None,
            };
            let out = crash_equivalence_concurrent(&spec).unwrap();
            assert_eq!(out.thread_crashes, 0);
            assert_eq!(out.engine_crashes, 0);
            assert!(out.steps > 0 && out.persists > 0);
            assert!(out.commits.len() == 18);
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let spec = RunSpec {
            kind: StructureKind::Queue,
            scheme: scheme(),
            seed: 77,
            scripts: mixed_scripts(4, 5),
            thread_crash: Some((2, 9)),
            engine_crash_after_persists: None,
        };
        let a = crash_equivalence_concurrent(&spec).unwrap();
        let b = crash_equivalence_concurrent(&spec).unwrap();
        assert_eq!(a.commits, b.commits);
        assert_eq!(a.final_contents, b.final_contents);
        assert_eq!(a.steps, b.steps);
    }

    #[test]
    fn thread_crash_is_recovered_and_exactly_once() {
        for kind in [StructureKind::Stack, StructureKind::Queue] {
            for k in [0, 3, 7, 12] {
                let spec = RunSpec {
                    kind,
                    scheme: scheme(),
                    seed: 5,
                    scripts: mixed_scripts(3, 5),
                    thread_crash: Some((1, k)),
                    engine_crash_after_persists: None,
                };
                let out = crash_equivalence_concurrent(&spec)
                    .unwrap_or_else(|e| panic!("{kind:?} crash@{k}: {e}"));
                assert_eq!(out.thread_crashes, 1, "{kind:?} crash@{k} must fire");
            }
        }
    }

    #[test]
    fn engine_crash_is_recovered_and_exactly_once() {
        for kind in [StructureKind::Stack, StructureKind::Queue] {
            for p in [0, 5, 17] {
                let spec = RunSpec {
                    kind,
                    scheme: scheme(),
                    seed: 21,
                    scripts: mixed_scripts(2, 4),
                    thread_crash: None,
                    engine_crash_after_persists: Some(p),
                };
                let out = crash_equivalence_concurrent(&spec)
                    .unwrap_or_else(|e| panic!("{kind:?} engine-crash@{p}: {e}"));
                assert_eq!(out.engine_crashes, 1, "{kind:?} engine-crash@{p} must fire");
            }
        }
    }

    #[test]
    fn engine_crash_disarms_a_pending_thread_crash() {
        // Composition regression: the engine crash fires early (first
        // persist), the thread crash is armed far in the future and
        // is disarmed by the system-level crash — first fire wins.
        let spec = RunSpec {
            kind: StructureKind::Stack,
            scheme: scheme(),
            seed: 3,
            scripts: mixed_scripts(2, 4),
            thread_crash: Some((0, 1_000_000)),
            engine_crash_after_persists: Some(0),
        };
        let out = crash_equivalence_concurrent(&spec).unwrap();
        assert_eq!(out.engine_crashes, 1);
        assert_eq!(out.thread_crashes, 0, "disarmed hook must never fire");
    }

    #[test]
    fn bad_specs_are_typed() {
        let empty = RunSpec {
            kind: StructureKind::Stack,
            scheme: scheme(),
            seed: 0,
            scripts: vec![],
            thread_crash: None,
            engine_crash_after_persists: None,
        };
        assert!(matches!(
            run(&empty).unwrap_err(),
            RecovError::BadSpec { .. }
        ));
        let oob = RunSpec {
            scripts: mixed_scripts(2, 2),
            thread_crash: Some((5, 0)),
            ..empty
        };
        assert!(matches!(run(&oob).unwrap_err(), RecovError::BadSpec { .. }));
    }

    #[test]
    fn oracle_rejects_a_double_commit() {
        let spec = RunSpec {
            kind: StructureKind::Stack,
            scheme: scheme(),
            seed: 1,
            scripts: vec![vec![OpSpec::Insert(7)]],
            thread_crash: None,
            engine_crash_after_persists: None,
        };
        let mut out = run(&spec).unwrap();
        check_run(&spec, &out).unwrap();
        let dup = out.commits[0];
        out.commits.push(dup);
        let err = check_run(&spec, &out).unwrap_err();
        assert!(err.contains("not exactly once"), "{err}");
    }

    #[test]
    fn oracle_rejects_a_wrong_removal() {
        let spec = RunSpec {
            kind: StructureKind::Queue,
            scheme: scheme(),
            seed: 1,
            scripts: vec![vec![OpSpec::Insert(7), OpSpec::Remove]],
            thread_crash: None,
            engine_crash_after_persists: None,
        };
        let mut out = run(&spec).unwrap();
        for c in &mut out.commits {
            if let OpResult::Removed(v) = c.result {
                c.result = OpResult::Removed(v + 1);
            }
        }
        for r in out.results.iter_mut().flatten() {
            if let Some(OpResult::Removed(v)) = r {
                *r = Some(OpResult::Removed(*v + 1));
            }
        }
        let err = check_run(&spec, &out).unwrap_err();
        assert!(err.contains("sequential model"), "{err}");
    }

    #[test]
    fn op_result_codec_round_trips() {
        for r in [OpResult::Inserted, OpResult::Removed(42), OpResult::Empty] {
            let (t, v) = r.encode();
            assert_eq!(OpResult::decode(t, v), Some(r));
        }
        assert_eq!(OpResult::decode(9, 0), None);
    }
}
