//! # triad-recov
//!
//! Detectably recoverable lock-free persistent structures over the
//! Triad-NVM secure memory — the concurrent tier of the recovery
//! story. Where `triad-kv` recovers a *single-threaded* store from
//! crashes at whole-system persist boundaries, this crate recovers
//! *per-thread* crashes at arbitrary step points of concurrent
//! operations, following the Memento template (checkpoint + detectable
//! CAS primitives composed into lock-free structures that replay
//! deterministically).
//!
//! * [`memento`] — the per-thread persistent protocol records: a
//!   torn-write-safe A/B [`memento::ThreadCtx`] result **checkpoint**
//!   (value + sequence number, checksummed like the KV WAL), the
//!   **pending-CAS** record, and the shared **help table** that makes
//!   CAS success evidence survive tag overwrites.
//! * [`cas`] — [`cas::CasSite`]: a checksummed, ownership-tagged CAS
//!   word; a successful decisive CAS stamps `(thread, seq)` into the
//!   site so a recovering thread can tell whether its pending
//!   operation took effect ([`cas::resolve_pending`]).
//! * [`stack`] / [`queue`] — a Treiber stack and a Michael-Scott
//!   queue built from those primitives on
//!   [`triad_kv::PersistentHeap`], every persist flowing through the
//!   secure engine (BMT/counter/MAC state stays consistent under
//!   every Triad-NVM scheme).
//! * [`harness`] — the deterministic multi-thread driver over
//!   [`triad_sim::Interleaver`]: per-thread operation scripts, crash
//!   injection at arbitrary step points, recovery replay, and the
//!   concurrent crash-equivalence oracle (commit-log linearizability
//!   + exactly-once detectability).
//!
//! **Detectability** means: after thread *t* crashes at any step and
//! re-executes its in-flight operation, the operation's effect is
//! applied **exactly once** — never zero times (lost op), never twice
//! (replayed op). See `docs/recoverability.md`.

#![warn(missing_docs)]

use std::error::Error;
use std::fmt;

use triad_core::SecureMemoryError;
use triad_kv::HeapError;
use triad_sim::sched::SchedError;

pub mod cas;
pub mod harness;
pub mod memento;
pub mod queue;
pub mod stack;

pub use cas::{CasOutcome, CasSite, CasView, NO_OWNER};
pub use harness::{
    crash_equivalence_concurrent, run, CommitRec, OpResult, OpSpec, RunOutcome, RunSpec,
    StructureKind,
};
pub use memento::{CheckpointVal, Mementos, ThreadCtx};
pub use queue::MsQueue;
pub use stack::TreiberStack;

/// Errors of the recoverable-structures crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecovError {
    /// The underlying secure memory failed (tampering, crash, …).
    Memory(SecureMemoryError),
    /// The persistent heap failed (out of space, slot misuse, …).
    Heap(HeapError),
    /// The interleaving scheduler rejected a request (bad thread,
    /// conflicting crash re-arm, …).
    Sched(SchedError),
    /// A checksummed protocol record failed validation where a torn
    /// write is not a legal explanation — corruption, not a crash.
    Corrupt {
        /// Which record kind failed.
        what: &'static str,
        /// The block address involved.
        addr: u64,
    },
    /// The run specification is malformed (no threads, script/crash
    /// mismatch, …).
    BadSpec {
        /// What is wrong with it.
        what: &'static str,
    },
}

impl fmt::Display for RecovError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecovError::Memory(e) => write!(f, "secure memory error: {e}"),
            RecovError::Heap(e) => write!(f, "persistent heap error: {e}"),
            RecovError::Sched(e) => write!(f, "scheduler error: {e}"),
            RecovError::Corrupt { what, addr } => {
                write!(f, "corrupt {what} record at {addr:#x}")
            }
            RecovError::BadSpec { what } => write!(f, "bad run specification: {what}"),
        }
    }
}

impl Error for RecovError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RecovError::Memory(e) => Some(e),
            RecovError::Heap(e) => Some(e),
            RecovError::Sched(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SecureMemoryError> for RecovError {
    fn from(e: SecureMemoryError) -> Self {
        RecovError::Memory(e)
    }
}

impl From<HeapError> for RecovError {
    fn from(e: HeapError) -> Self {
        // Lift memory errors out of the heap wrapper so callers match
        // crash conditions uniformly as `RecovError::Memory` (the same
        // discipline as `triad_kv::KvError`).
        match e {
            HeapError::Memory(m) => RecovError::Memory(m),
            other => RecovError::Heap(other),
        }
    }
}

impl From<SchedError> for RecovError {
    fn from(e: SchedError) -> Self {
        RecovError::Sched(e)
    }
}

/// Shorthand for recov results.
pub type Result<T> = std::result::Result<T, RecovError>;

#[cfg(test)]
mod error_surface {
    use super::*;

    #[test]
    fn errors_display_and_chain() {
        use std::error::Error as _;
        let e = RecovError::from(SecureMemoryError::NeedsRecovery);
        assert!(e.to_string().contains("secure memory"));
        assert!(e.source().is_some());
        let lifted = RecovError::from(HeapError::Memory(SecureMemoryError::NeedsRecovery));
        assert_eq!(lifted, RecovError::Memory(SecureMemoryError::NeedsRecovery));
        let h = RecovError::from(HeapError::OutOfSpace);
        assert_eq!(h, RecovError::Heap(HeapError::OutOfSpace));
        let s = RecovError::from(SchedError::NoSuchThread {
            thread: 3,
            threads: 2,
        });
        assert!(s.to_string().contains("scheduler"));
        assert!(s.source().is_some());
        let c = RecovError::Corrupt {
            what: "cas-site",
            addr: 0x40,
        };
        assert!(c.to_string().contains("cas-site"));
        assert!(c.source().is_none());
        assert!(RecovError::BadSpec { what: "no threads" }
            .to_string()
            .contains("no threads"));
    }
}
