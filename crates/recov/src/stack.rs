//! A detectably recoverable Treiber stack.
//!
//! The structure is one [`CasSite`] (`top`) plus immutable nodes
//! (`[value][next]`, one block each, written and persisted before
//! publication). Push and pop are expressed as explicit **step
//! machines** so the interleaving harness can preempt — or crash —
//! a thread between any two steps:
//!
//! ```text
//! push: Start → ReadTop → PrepNode → Pending → Help → Commit → Complete
//! pop:  Start → ReadTop → ReadNode → Pending → Help → Commit → Complete
//!       Start → ReadTop (empty: fused decide+complete)
//! ```
//!
//! `Start` is the recovery gate: it resolves the thread's pending
//! record ([`crate::cas::resolve_pending`]) and either re-completes an
//! operation whose decisive CAS already landed (exactly-once) or falls
//! through to normal execution. A machine replayed after a thread
//! crash is simply a fresh machine for the same sequence number.

use triad_core::SecureMemory;
use triad_kv::PersistentHeap;
use triad_sim::{PhysAddr, BLOCK_BYTES};

use crate::cas::{resolve_pending, CasOutcome, CasSite, CasView};
use crate::harness::{OpResult, StepOutcome};
use crate::memento::{put_u64, read_u64, ThreadCtx};
use crate::{RecovError, Result};

/// Node block layout (immutable once published).
const NODE_VALUE: usize = 0;
const NODE_NEXT: usize = 8;

/// Walk bound: far beyond any node count the heap can hold, so an
/// accidental cycle surfaces as a typed error instead of a hang.
const WALK_LIMIT: u64 = 1 << 20;

/// A stack operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StackOp {
    /// Push a value.
    Push(u64),
    /// Pop the top value (observing emptiness is a legal result).
    Pop,
}

/// The persistent Treiber stack handle (volatile, reconstructible —
/// the only root state is the `top` site's address).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreiberStack {
    top: CasSite,
}

impl TreiberStack {
    /// Allocates and durably initializes an empty stack.
    ///
    /// # Errors
    ///
    /// Heap / secure-memory errors.
    pub fn create(mem: &mut SecureMemory, heap: &PersistentHeap) -> Result<Self> {
        let addr = heap.alloc_blocks(mem, 1)?;
        Ok(TreiberStack {
            top: CasSite::init(mem, addr, 0)?,
        })
    }

    /// Re-attaches to a stack whose `top` site lives at `addr`.
    pub fn open(addr: PhysAddr) -> Self {
        TreiberStack {
            top: CasSite::at(addr),
        }
    }

    /// The `top` site's address (the stack's root, e.g. for
    /// [`PersistentHeap::set_root`]).
    pub fn top_addr(&self) -> PhysAddr {
        self.top.addr()
    }

    fn read_node(mem: &mut SecureMemory, node: u64) -> Result<(u64, u64)> {
        let buf = mem.read(PhysAddr(node))?;
        Ok((read_u64(&buf, NODE_VALUE), read_u64(&buf, NODE_NEXT)))
    }

    /// The stack's contents, top first (the oracle's final walk).
    ///
    /// # Errors
    ///
    /// [`RecovError::Corrupt`] if the chain exceeds the walk bound.
    pub fn contents(&self, mem: &mut SecureMemory) -> Result<Vec<u64>> {
        let mut out = Vec::new();
        let mut cur = self.top.read(mem)?.value;
        let mut hops = 0u64;
        while cur != 0 {
            if hops >= WALK_LIMIT {
                return Err(RecovError::Corrupt {
                    what: "stack-walk",
                    addr: cur,
                });
            }
            let (value, next) = Self::read_node(mem, cur)?;
            out.push(value);
            cur = next;
            hops += 1;
        }
        Ok(out)
    }
}

/// The in-flight state of one stack operation (volatile: a thread
/// crash discards it and recovery builds a fresh machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Start,
    ReadTop,
    PrepNode {
        view: CasView,
    },
    ReadNode {
        view: CasView,
    },
    Pending {
        view: CasView,
        new_value: u64,
        payload: u64,
        result: OpResult,
    },
    Help {
        view: CasView,
        new_value: u64,
        payload: u64,
        result: OpResult,
    },
    Commit {
        view: CasView,
        new_value: u64,
        payload: u64,
        result: OpResult,
    },
    Complete {
        result: OpResult,
    },
    Done,
}

/// A stepwise push/pop execution for one operation sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StackMachine {
    op: StackOp,
    seq: u64,
    state: State,
}

impl StackMachine {
    /// A machine for `op` as operation `seq` of its thread (callers
    /// pass [`ThreadCtx::next_seq`]).
    pub fn new(op: StackOp, seq: u64) -> Self {
        StackMachine {
            op,
            seq,
            state: State::Start,
        }
    }

    /// The operation sequence number this machine executes.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Executes one atomic step. The caller (the interleaving
    /// harness) owns the loop; a thread crash between calls simply
    /// drops the machine.
    ///
    /// # Errors
    ///
    /// Secure-memory errors — notably
    /// [`triad_core::SecureMemoryError::NeedsRecovery`] when an
    /// injected whole-system crash fires inside the step.
    pub fn step(
        &mut self,
        mem: &mut SecureMemory,
        heap: &PersistentHeap,
        ctx: &mut ThreadCtx,
        stack: &TreiberStack,
    ) -> Result<StepOutcome> {
        let state = self.state;
        match state {
            State::Start => {
                let ms = ctx.mementos();
                match resolve_pending(mem, &ms, ctx.slot(), self.seq)? {
                    CasOutcome::Applied { payload } => {
                        // The decisive CAS landed before the crash:
                        // re-derive the result, never re-execute.
                        let result = match self.op {
                            StackOp::Push(_) => OpResult::Inserted,
                            StackOp::Pop => {
                                let (value, _) = TreiberStack::read_node(mem, payload)?;
                                OpResult::Removed(value)
                            }
                        };
                        self.state = State::Complete { result };
                    }
                    CasOutcome::NotApplied => self.state = State::ReadTop,
                }
                Ok(StepOutcome::Continue)
            }
            State::ReadTop => {
                let view = stack.top.read(mem)?;
                match self.op {
                    StackOp::Push(_) => {
                        self.state = State::PrepNode { view };
                        Ok(StepOutcome::Continue)
                    }
                    StackOp::Pop => {
                        if view.value == 0 {
                            // Fused decide+complete: the emptiness
                            // observation IS the linearization point,
                            // so it must not be preemptible before
                            // the completion persists.
                            let result = OpResult::Empty;
                            let (tag, value) = result.encode();
                            ctx.complete_op(mem, tag, value)?;
                            self.state = State::Done;
                            return Ok(StepOutcome::DoneDecisive(result));
                        }
                        self.state = State::ReadNode { view };
                        Ok(StepOutcome::Continue)
                    }
                }
            }
            State::PrepNode { view } => {
                let StackOp::Push(v) = self.op else {
                    return Err(RecovError::Corrupt {
                        what: "stack-machine",
                        addr: 0,
                    });
                };
                // Detectable allocation: a replay of this seq returns
                // the same node instead of leaking one per crash.
                let node = heap.alloc_blocks_for(mem, 1, ctx.slot(), self.seq)?;
                let mut buf = [0u8; BLOCK_BYTES];
                put_u64(&mut buf, NODE_VALUE, v);
                put_u64(&mut buf, NODE_NEXT, view.value);
                mem.write(node, &buf)?;
                mem.persist(node)?;
                self.state = State::Pending {
                    view,
                    new_value: node.0,
                    payload: node.0,
                    result: OpResult::Inserted,
                };
                Ok(StepOutcome::Continue)
            }
            State::ReadNode { view } => {
                let (value, next) = TreiberStack::read_node(mem, view.value)?;
                self.state = State::Pending {
                    view,
                    new_value: next,
                    payload: view.value,
                    result: OpResult::Removed(value),
                };
                Ok(StepOutcome::Continue)
            }
            State::Pending {
                view,
                new_value,
                payload,
                result,
            } => {
                ctx.pending_persist(mem, stack.top.addr(), payload)?;
                self.state = State::Help {
                    view,
                    new_value,
                    payload,
                    result,
                };
                Ok(StepOutcome::Continue)
            }
            State::Help {
                view,
                new_value,
                payload,
                result,
            } => {
                if view.is_owned() {
                    // About to overwrite the observed owner's tag:
                    // persist its success evidence first.
                    ctx.mementos()
                        .record_help(mem, view.owner_slot, view.owner_seq)?;
                }
                self.state = State::Commit {
                    view,
                    new_value,
                    payload,
                    result,
                };
                Ok(StepOutcome::Continue)
            }
            State::Commit {
                view,
                new_value,
                payload: _,
                result,
            } => {
                if stack
                    .top
                    .commit(mem, &view, new_value, ctx.slot(), self.seq)?
                {
                    self.state = State::Complete { result };
                    Ok(StepOutcome::Decided(result))
                } else {
                    // Lost the race: retry from a fresh view.
                    self.state = State::ReadTop;
                    Ok(StepOutcome::Continue)
                }
            }
            State::Complete { result } => {
                let (tag, value) = result.encode();
                ctx.complete_op(mem, tag, value)?;
                self.state = State::Done;
                Ok(StepOutcome::Done(result))
            }
            State::Done => Err(RecovError::Corrupt {
                what: "stack-machine",
                addr: 0,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memento::Mementos;
    use triad_core::{PersistScheme, SecureMemoryBuilder};

    fn setup() -> (SecureMemory, PersistentHeap, Mementos, TreiberStack) {
        let mut m = SecureMemoryBuilder::new()
            .scheme(PersistScheme::triad_nvm(2))
            .build()
            .unwrap();
        let h = PersistentHeap::format(&mut m).unwrap();
        h.register_alloc_slots(&mut m, 2).unwrap();
        let ms = Mementos::format(&mut m, &h, 2).unwrap();
        let s = TreiberStack::create(&mut m, &h).unwrap();
        (m, h, ms, s)
    }

    fn run_op(
        m: &mut SecureMemory,
        h: &PersistentHeap,
        ctx: &mut ThreadCtx,
        s: &TreiberStack,
        op: StackOp,
    ) -> OpResult {
        let mut mach = StackMachine::new(op, ctx.next_seq());
        loop {
            match mach.step(m, h, ctx, s).unwrap() {
                StepOutcome::Continue | StepOutcome::Decided(_) => {}
                StepOutcome::Done(r) | StepOutcome::DoneDecisive(r) => return r,
            }
        }
    }

    #[test]
    fn lifo_order_single_thread() {
        let (mut m, h, ms, s) = setup();
        let mut ctx = ThreadCtx::new(ms, 0);
        assert_eq!(
            run_op(&mut m, &h, &mut ctx, &s, StackOp::Pop),
            OpResult::Empty
        );
        for v in [10, 20, 30] {
            assert_eq!(
                run_op(&mut m, &h, &mut ctx, &s, StackOp::Push(v)),
                OpResult::Inserted
            );
        }
        assert_eq!(s.contents(&mut m).unwrap(), vec![30, 20, 10]);
        assert_eq!(
            run_op(&mut m, &h, &mut ctx, &s, StackOp::Pop),
            OpResult::Removed(30)
        );
        assert_eq!(
            run_op(&mut m, &h, &mut ctx, &s, StackOp::Pop),
            OpResult::Removed(20)
        );
        assert_eq!(
            run_op(&mut m, &h, &mut ctx, &s, StackOp::Pop),
            OpResult::Removed(10)
        );
        assert_eq!(
            run_op(&mut m, &h, &mut ctx, &s, StackOp::Pop),
            OpResult::Empty
        );
        assert_eq!(ctx.completed(), 8);
    }

    #[test]
    fn crash_after_decisive_cas_applies_exactly_once() {
        let (mut m, h, ms, s) = setup();
        let mut ctx = ThreadCtx::new(ms, 0);
        // Drive a push up to (and through) its decisive CAS, then
        // crash the thread before it completes.
        let mut mach = StackMachine::new(StackOp::Push(77), ctx.next_seq());
        loop {
            match mach.step(&mut m, &h, &mut ctx, &s).unwrap() {
                StepOutcome::Decided(r) => {
                    assert_eq!(r, OpResult::Inserted);
                    break;
                }
                StepOutcome::Continue => {}
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        // Thread crash: volatile machine + ctx lost.
        let mut ctx = ThreadCtx::recover(&mut m, ms, 0).unwrap();
        assert_eq!(ctx.completed(), 0, "completion was not durable yet");
        // Replay: same seq, fresh machine — must NOT push again.
        let r = run_op(&mut m, &h, &mut ctx, &s, StackOp::Push(77));
        assert_eq!(r, OpResult::Inserted);
        assert_eq!(ctx.completed(), 1);
        assert_eq!(s.contents(&mut m).unwrap(), vec![77], "exactly one node");
    }

    #[test]
    fn crash_before_decisive_cas_reexecutes_cleanly() {
        let (mut m, h, ms, s) = setup();
        let mut ctx = ThreadCtx::new(ms, 0);
        let mut mach = StackMachine::new(StackOp::Push(5), ctx.next_seq());
        // Step through Start, ReadTop, PrepNode, Pending, Help — stop
        // right before Commit.
        for _ in 0..5 {
            assert_eq!(
                mach.step(&mut m, &h, &mut ctx, &s).unwrap(),
                StepOutcome::Continue
            );
        }
        assert!(matches!(mach.state, State::Commit { .. }));
        let mut ctx = ThreadCtx::recover(&mut m, ms, 0).unwrap();
        let r = run_op(&mut m, &h, &mut ctx, &s, StackOp::Push(5));
        assert_eq!(r, OpResult::Inserted);
        assert_eq!(s.contents(&mut m).unwrap(), vec![5], "one node, not two");
    }

    #[test]
    fn pop_crash_between_cas_and_complete_recovers_the_value() {
        let (mut m, h, ms, s) = setup();
        let mut ctx = ThreadCtx::new(ms, 0);
        run_op(&mut m, &h, &mut ctx, &s, StackOp::Push(41));
        run_op(&mut m, &h, &mut ctx, &s, StackOp::Push(42));
        let mut mach = StackMachine::new(StackOp::Pop, ctx.next_seq());
        loop {
            match mach.step(&mut m, &h, &mut ctx, &s).unwrap() {
                StepOutcome::Decided(OpResult::Removed(42)) => break,
                StepOutcome::Continue => {}
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        let mut ctx = ThreadCtx::recover(&mut m, ms, 0).unwrap();
        assert_eq!(ctx.completed(), 2);
        // The replayed pop recovers the SAME value from the pending
        // payload — it must not pop 41 as well.
        let r = run_op(&mut m, &h, &mut ctx, &s, StackOp::Pop);
        assert_eq!(r, OpResult::Removed(42));
        assert_eq!(s.contents(&mut m).unwrap(), vec![41]);
    }
}
