//! Detectable compare-and-swap over a checksummed, ownership-tagged
//! 64 B site.
//!
//! A [`CasSite`] holds `[value][owner_slot][owner_seq][crc]`. Every
//! successful commit rewrites the whole block, stamping the committing
//! operation's identity `(owner_slot, owner_seq)` into the tag — and a
//! commit validates the **full observed view** (value *and* tag), not
//! just the value. Because per-thread sequence numbers never repeat,
//! every successful CAS produces a globally unique site state: the
//! classic ABA hazard (same value, different history) cannot make a
//! stale expected-view match.
//!
//! Detectability rests on two durable facts a recovering thread can
//! check ([`resolve_pending`]):
//!
//! 1. the site still carries its tag `(slot, seq)` — the CAS
//!    succeeded and nobody has overwritten it yet; or
//! 2. the shared help table records `help_max(slot) >= seq` — some
//!    thread overwrote the tag, but (per protocol) only after durably
//!    recording the observed owner's success
//!    ([`crate::Mementos::record_help`]).
//!
//! If neither holds and the thread's pending record names `seq`, the
//! CAS did not take effect and the operation re-executes. Helper
//! swings that are not decisive for any operation (the MS-queue tail)
//! commit with the [`NO_OWNER`] tag and need no helping.

use triad_core::SecureMemory;
use triad_sim::{PhysAddr, BLOCK_BYTES};

use crate::memento::{put_u64, read_u64, Mementos};
use crate::{RecovError, Result};

/// Owner-slot tag of an untagged site (helper swings, initial state).
pub const NO_OWNER: u64 = u64::MAX;

/// Site block layout.
const SITE_VALUE: usize = 0;
const SITE_OWN_SLOT: usize = 8;
const SITE_OWN_SEQ: usize = 16;
const SITE_CRC: usize = 24;

fn site_checksum(value: u64, owner_slot: u64, owner_seq: u64) -> u64 {
    // Kind/slot separation as in the memento records (kind 4).
    crate::memento::site_crc(value, owner_slot, owner_seq)
}

/// One observed state of a CAS site: the value plus the ownership tag
/// of the operation that produced it. Used as the *expected* state of
/// a commit — full-view validation is what defeats ABA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CasView {
    /// The stored value (structure pointer; 0 = null).
    pub value: u64,
    /// Owning thread slot, or [`NO_OWNER`].
    pub owner_slot: u64,
    /// Owning operation sequence number (0 when untagged).
    pub owner_seq: u64,
}

impl CasView {
    /// Whether this state was produced by a decisive, tagged CAS.
    pub fn is_owned(&self) -> bool {
        self.owner_slot != NO_OWNER
    }
}

/// A checksummed, ownership-tagged CAS word occupying one 64 B block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CasSite {
    addr: PhysAddr,
}

impl CasSite {
    /// Interprets the block at `addr` as a CAS site (no writes). A
    /// fresh all-zero block is a valid site: value 0, untagged —
    /// which is what lets freshly allocated node `next` blocks serve
    /// as sites with no initializing persist.
    pub fn at(addr: PhysAddr) -> Self {
        CasSite { addr }
    }

    /// Durably initializes the site to `value`, untagged.
    ///
    /// # Errors
    ///
    /// Propagates secure-memory errors.
    pub fn init(mem: &mut SecureMemory, addr: PhysAddr, value: u64) -> Result<Self> {
        let site = CasSite { addr };
        site.write_state(mem, value, NO_OWNER, 0)?;
        Ok(site)
    }

    /// The site's block address.
    pub fn addr(&self) -> PhysAddr {
        self.addr
    }

    fn write_state(
        &self,
        mem: &mut SecureMemory,
        value: u64,
        owner_slot: u64,
        owner_seq: u64,
    ) -> Result<()> {
        let mut buf = [0u8; BLOCK_BYTES];
        put_u64(&mut buf, SITE_VALUE, value);
        put_u64(&mut buf, SITE_OWN_SLOT, owner_slot);
        put_u64(&mut buf, SITE_OWN_SEQ, owner_seq);
        put_u64(
            &mut buf,
            SITE_CRC,
            site_checksum(value, owner_slot, owner_seq),
        );
        mem.write(self.addr, &buf)?;
        mem.persist(self.addr)?;
        Ok(())
    }

    /// Reads the current view. An all-zero block reads as
    /// `(0, untagged)`; any other checksum failure is corruption (site
    /// writes are single-block atomic persists and cannot tear).
    ///
    /// # Errors
    ///
    /// [`RecovError::Corrupt`] on a non-zero block with a bad
    /// checksum.
    pub fn read(&self, mem: &mut SecureMemory) -> Result<CasView> {
        let buf = mem.read(self.addr)?;
        let (value, owner_slot, owner_seq) = (
            read_u64(&buf, SITE_VALUE),
            read_u64(&buf, SITE_OWN_SLOT),
            read_u64(&buf, SITE_OWN_SEQ),
        );
        let crc = read_u64(&buf, SITE_CRC);
        if crc == site_checksum(value, owner_slot, owner_seq) {
            return Ok(CasView {
                value,
                owner_slot,
                owner_seq,
            });
        }
        if buf.iter().all(|&b| b == 0) {
            return Ok(CasView {
                value: 0,
                owner_slot: NO_OWNER,
                owner_seq: 0,
            });
        }
        Err(RecovError::Corrupt {
            what: "cas-site",
            addr: self.addr.0,
        })
    }

    /// Attempts the CAS: if the site still reads exactly `expected`
    /// (value **and** tag), durably installs
    /// `(new_value, owner_slot, owner_seq)` and returns `true`;
    /// otherwise changes nothing and returns `false`.
    ///
    /// Callers overwriting a tagged view must [`crate::Mementos::record_help`]
    /// the observed owner *before* committing; decisive commits tag
    /// with their own `(slot, seq)`, helper swings with
    /// ([`NO_OWNER`], 0).
    ///
    /// # Errors
    ///
    /// Propagates secure-memory errors / site corruption.
    pub fn commit(
        &self,
        mem: &mut SecureMemory,
        expected: &CasView,
        new_value: u64,
        owner_slot: u64,
        owner_seq: u64,
    ) -> Result<bool> {
        if self.read(mem)? != *expected {
            return Ok(false);
        }
        self.write_state(mem, new_value, owner_slot, owner_seq)?;
        Ok(true)
    }
}

/// The outcome a recovering thread resolves for its pending operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CasOutcome {
    /// The decisive CAS took effect; `payload` is the pending record's
    /// payload (enough to re-derive the operation's result).
    Applied {
        /// The pending record's payload (node address).
        payload: u64,
    },
    /// The decisive CAS did not take effect — re-execute.
    NotApplied,
}

/// Resolves whether operation `seq` of thread `slot` applied its
/// decisive CAS, from durable state alone. See the module docs for the
/// two evidence paths (site tag, help table).
///
/// # Errors
///
/// Propagates secure-memory errors / site corruption.
pub fn resolve_pending(
    mem: &mut SecureMemory,
    mementos: &Mementos,
    slot: u64,
    seq: u64,
) -> Result<CasOutcome> {
    let Some(pending) = mementos.read_pending(mem, slot)? else {
        return Ok(CasOutcome::NotApplied);
    };
    if pending.seq != seq {
        return Ok(CasOutcome::NotApplied);
    }
    let view = CasSite::at(PhysAddr(pending.site)).read(mem)?;
    if view.owner_slot == slot && view.owner_seq == seq {
        return Ok(CasOutcome::Applied {
            payload: pending.payload,
        });
    }
    if mementos.help_max(mem, slot)? >= seq {
        return Ok(CasOutcome::Applied {
            payload: pending.payload,
        });
    }
    Ok(CasOutcome::NotApplied)
}

#[cfg(test)]
mod tests {
    use super::*;
    use triad_core::{PersistScheme, SecureMemoryBuilder};
    use triad_kv::PersistentHeap;

    fn setup() -> (SecureMemory, Mementos, PhysAddr) {
        let mut m = SecureMemoryBuilder::new()
            .scheme(PersistScheme::triad_nvm(2))
            .build()
            .unwrap();
        let h = PersistentHeap::format(&mut m).unwrap();
        let ms = Mementos::format(&mut m, &h, 2).unwrap();
        let a = h.alloc_blocks(&mut m, 1).unwrap();
        (m, ms, a)
    }

    #[test]
    fn fresh_block_reads_as_null_untagged() {
        let (mut m, _ms, a) = setup();
        let v = CasSite::at(a).read(&mut m).unwrap();
        assert_eq!(
            v,
            CasView {
                value: 0,
                owner_slot: NO_OWNER,
                owner_seq: 0
            }
        );
        assert!(!v.is_owned());
    }

    #[test]
    fn commit_validates_the_full_view_not_just_the_value() {
        let (mut m, _ms, a) = setup();
        let site = CasSite::init(&mut m, a, 100).unwrap();
        let v0 = site.read(&mut m).unwrap();
        // Thread 0 op 1 installs 200.
        assert!(site.commit(&mut m, &v0, 200, 0, 1).unwrap());
        let v1 = site.read(&mut m).unwrap();
        assert_eq!(
            v1,
            CasView {
                value: 200,
                owner_slot: 0,
                owner_seq: 1
            }
        );
        // Thread 1 swings it back to 100 (helper-style, after help).
        assert!(site.commit(&mut m, &v1, 100, 1, 1).unwrap());
        // ABA: the value is 100 again, but a commit expecting the
        // ORIGINAL view (100, untagged) must fail — the tag differs.
        assert!(!site.commit(&mut m, &v0, 300, 0, 2).unwrap());
        // And the stale v1 view fails too.
        assert!(!site.commit(&mut m, &v1, 300, 0, 2).unwrap());
    }

    #[test]
    fn corrupt_site_is_a_typed_error() {
        let (mut m, _ms, a) = setup();
        CasSite::init(&mut m, a, 5).unwrap();
        let mut buf = m.read(a).unwrap();
        buf[SITE_VALUE] ^= 0xFF;
        m.write(a, &buf).unwrap();
        m.persist(a).unwrap();
        assert_eq!(
            CasSite::at(a).read(&mut m).unwrap_err(),
            RecovError::Corrupt {
                what: "cas-site",
                addr: a.0
            }
        );
    }

    #[test]
    fn resolve_applied_via_site_tag_then_via_help_table() {
        let (mut m, ms, a) = setup();
        let site = CasSite::init(&mut m, a, 0).unwrap();
        // Thread 0, op 1: pending → commit → (crash before completing).
        ms.pending_persist(&mut m, 0, 1, a, 0xDEAD).unwrap();
        let v = site.read(&mut m).unwrap();
        assert!(site.commit(&mut m, &v, 0xDEAD, 0, 1).unwrap());
        assert_eq!(
            resolve_pending(&mut m, &ms, 0, 1).unwrap(),
            CasOutcome::Applied { payload: 0xDEAD },
            "evidence path 1: the site still carries the tag"
        );
        // Thread 1 overwrites the tag — but helps first, per protocol.
        let v = site.read(&mut m).unwrap();
        ms.record_help(&mut m, v.owner_slot, v.owner_seq).unwrap();
        assert!(site.commit(&mut m, &v, 0xBEEF, 1, 1).unwrap());
        assert_eq!(
            resolve_pending(&mut m, &ms, 0, 1).unwrap(),
            CasOutcome::Applied { payload: 0xDEAD },
            "evidence path 2: the help table outlives the tag"
        );
    }

    #[test]
    fn resolve_not_applied_when_cas_never_landed() {
        let (mut m, ms, a) = setup();
        CasSite::init(&mut m, a, 0).unwrap();
        // No pending at all.
        assert_eq!(
            resolve_pending(&mut m, &ms, 0, 1).unwrap(),
            CasOutcome::NotApplied
        );
        // Pending for an OLDER op only.
        ms.pending_persist(&mut m, 0, 1, a, 7).unwrap();
        assert_eq!(
            resolve_pending(&mut m, &ms, 0, 2).unwrap(),
            CasOutcome::NotApplied
        );
        // Pending for op 2 but the CAS never landed.
        ms.pending_persist(&mut m, 0, 2, a, 8).unwrap();
        assert_eq!(
            resolve_pending(&mut m, &ms, 0, 2).unwrap(),
            CasOutcome::NotApplied
        );
    }
}
