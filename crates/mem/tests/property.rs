//! Property tests of the memory controller: durability of accepted
//! writes (with coalescing), monotonic timing, and crash behaviour.

use proptest::prelude::*;
use std::collections::HashMap;
use triad_mem::controller::MemoryController;
use triad_sim::config::SystemConfig;
use triad_sim::{BlockAddr, Time};

#[derive(Debug, Clone)]
enum Op {
    Write { addr: u64, fill: u8 },
    Read { addr: u64 },
    Advance { ns: u32 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u64..64, any::<u8>()).prop_map(|(addr, fill)| Op::Write { addr, fill }),
        3 => (0u64..64).prop_map(|addr| Op::Read { addr }),
        1 => (0u32..100_000).prop_map(|ns| Op::Advance { ns }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn reads_always_see_the_latest_accepted_write(
        ops in prop::collection::vec(op_strategy(), 1..300),
    ) {
        let mut mc = MemoryController::new(SystemConfig::tiny().mem);
        let mut model: HashMap<u64, u8> = HashMap::new();
        let mut now = Time::ZERO;
        for op in ops {
            match op {
                Op::Write { addr, fill } => {
                    let accept = mc.write(BlockAddr(addr), [fill; 64], now);
                    prop_assert!(accept >= now, "acceptance cannot be in the past");
                    model.insert(addr, fill);
                    now = accept;
                }
                Op::Read { addr } => {
                    let (data, done) = mc.read(BlockAddr(addr), now);
                    let expected = model.get(&addr).copied().unwrap_or(0);
                    prop_assert_eq!(data, [expected; 64], "addr {}", addr);
                    prop_assert!(done >= now);
                }
                Op::Advance { ns } => {
                    now += triad_sim::Duration::from_ns(ns as u64);
                }
            }
        }
        // Everything accepted must survive a crash.
        let image = mc.crash();
        for (addr, fill) in model {
            let expected = if fill == 0 { [0u8; 64] } else { [fill; 64] };
            prop_assert_eq!(image.read(BlockAddr(addr)), expected);
        }
    }

    #[test]
    fn wpq_occupancy_is_bounded(
        writes in prop::collection::vec(0u64..4096, 1..200),
    ) {
        let cfg = SystemConfig::tiny().mem;
        let mut mc = MemoryController::new(cfg);
        let mut now = Time::ZERO;
        for addr in writes {
            now = mc.write(BlockAddr(addr), [1; 64], now);
            prop_assert!(mc.wpq_occupancy(now) <= cfg.wpq_entries);
        }
    }

    #[test]
    fn coalescing_never_loses_the_newest_value(
        fills in prop::collection::vec(any::<u8>(), 2..50),
    ) {
        // Hammer one block back-to-back: all but the first write should
        // coalesce, and the final value must win.
        let mut mc = MemoryController::new(SystemConfig::tiny().mem);
        let last = *fills.last().unwrap();
        for f in &fills {
            mc.write(BlockAddr(7), [*f; 64], Time::ZERO);
        }
        prop_assert!(mc.stats().wpq_coalesced >= fills.len() as u64 - 1);
        let expected = if last == 0 { [0u8; 64] } else { [last; 64] };
        prop_assert_eq!(mc.crash().read(BlockAddr(7)), expected);
    }
}
