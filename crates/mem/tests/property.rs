//! Property tests of the memory controller: durability of accepted
//! writes (with coalescing), monotonic timing, crash behaviour, and
//! the bank-availability probe of the PCM timing model.

use std::collections::HashMap;
use triad_mem::controller::MemoryController;
use triad_mem::timing::{PcmTiming, RowOutcome};
use triad_sim::config::SystemConfig;
use triad_sim::prop::{check, check_ops, Config};
use triad_sim::rng::SplitMix64;
use triad_sim::{BlockAddr, Time};

#[derive(Debug, Clone)]
enum Op {
    Write { addr: u64, fill: u8 },
    Read { addr: u64 },
    Advance { ns: u32 },
}

fn gen_op(rng: &mut SplitMix64) -> Op {
    match rng.gen_range(0..8) {
        0..=3 => Op::Write {
            addr: rng.gen_range(0..64),
            fill: rng.next_u32() as u8,
        },
        4..=6 => Op::Read {
            addr: rng.gen_range(0..64),
        },
        _ => Op::Advance {
            ns: rng.gen_range(0..100_000) as u32,
        },
    }
}

macro_rules! ensure {
    ($cond:expr, $($arg:tt)+) => {
        if !$cond {
            return Err(format!($($arg)+));
        }
    };
}

#[test]
fn reads_always_see_the_latest_accepted_write() {
    check_ops(
        "reads_always_see_the_latest_accepted_write",
        Config::cases(48),
        |rng| {
            let len = rng.gen_range(1..300) as usize;
            (0..len).map(|_| gen_op(rng)).collect::<Vec<Op>>()
        },
        |ops, _| {
            let mut mc = MemoryController::new(SystemConfig::tiny().mem);
            let mut model: HashMap<u64, u8> = HashMap::new();
            let mut now = Time::ZERO;
            for op in ops {
                match *op {
                    Op::Write { addr, fill } => {
                        let accept = mc.write(BlockAddr(addr), [fill; 64], now);
                        ensure!(accept >= now, "acceptance cannot be in the past");
                        model.insert(addr, fill);
                        now = accept;
                    }
                    Op::Read { addr } => {
                        let (data, done) = mc.read(BlockAddr(addr), now);
                        let expected = model.get(&addr).copied().unwrap_or(0);
                        ensure!(data == [expected; 64], "addr {addr}: stale read");
                        ensure!(done >= now, "completion cannot be in the past");
                    }
                    Op::Advance { ns } => {
                        now += triad_sim::Duration::from_ns(ns as u64);
                    }
                }
            }
            // Everything accepted must survive a crash.
            let image = mc.crash();
            for (addr, fill) in model {
                let expected = if fill == 0 { [0u8; 64] } else { [fill; 64] };
                ensure!(
                    image.read(BlockAddr(addr)) == expected,
                    "addr {addr}: accepted write lost across the crash"
                );
            }
            Ok(())
        },
    );
}

#[test]
fn wpq_occupancy_is_bounded() {
    check("wpq_occupancy_is_bounded", Config::cases(48), |rng| {
        let cfg = SystemConfig::tiny().mem;
        let mut mc = MemoryController::new(cfg);
        let mut now = Time::ZERO;
        let writes = rng.gen_range(1..200);
        for _ in 0..writes {
            let addr = rng.gen_range(0..4096);
            now = mc.write(BlockAddr(addr), [1; 64], now);
            ensure!(
                mc.wpq_occupancy(now) <= cfg.wpq_entries,
                "wpq overflowed: {} > {}",
                mc.wpq_occupancy(now),
                cfg.wpq_entries
            );
        }
        Ok(())
    });
}

#[test]
fn bank_free_at_agrees_with_service() {
    // Pins the row-close tWR accounting: `bank_free_at` is the timing
    // model's only read-side probe, and the controller's WPQ stall
    // logic implicitly depends on it matching what `service` will
    // actually do. The shadow model re-derives bank/bus availability
    // from `coords()` alone, so any drift in how `service` charges
    // activation (the deferred 150 ns array write) or the bus burst
    // shows up as a disagreement.
    check_ops(
        "bank_free_at_agrees_with_service",
        Config::cases(48),
        |rng| {
            let len = rng.gen_range(1..200) as usize;
            (0..len)
                .map(|_| {
                    (
                        rng.gen_range(0..512),     // block address
                        rng.next_u32() % 2 == 0,   // write?
                        rng.gen_range(0..200_000), // issue advance (ps)
                    )
                })
                .collect::<Vec<(u64, bool, u64)>>()
        },
        |ops, _| {
            let cfg = SystemConfig::tiny().mem;
            let mut t = PcmTiming::new(cfg);
            let probe = PcmTiming::new(cfg);
            let mut bank_free: HashMap<usize, Time> = HashMap::new();
            let mut open_row: HashMap<usize, u64> = HashMap::new();
            let mut bus_free: HashMap<usize, Time> = HashMap::new();
            let mut now = Time::ZERO;
            for &(addr, write, advance_ps) in ops {
                now += triad_sim::Duration::from_ps(advance_ps);
                let addr = BlockAddr(addr);
                let c = probe.coords(addr);

                // The probe must reflect exactly the model's bank state.
                let model_free = bank_free.get(&c.bank).copied().unwrap_or(Time::ZERO);
                ensure!(
                    t.bank_free_at(addr) == model_free,
                    "bank {} probe {} != model {}",
                    c.bank,
                    t.bank_free_at(addr),
                    model_free
                );

                // Predict what `service` must return.
                let start = now.max(model_free);
                let hit = open_row.get(&c.bank) == Some(&c.row);
                let array = if hit {
                    triad_sim::Duration::ZERO
                } else if write {
                    cfg.write_latency
                } else {
                    cfg.read_latency
                };
                let ready = start + array + cfg.t_cl;
                let bus = bus_free.get(&c.channel).copied().unwrap_or(Time::ZERO);
                let expected_done = ready.max(bus) + cfg.burst;

                let (done, outcome) = t.service(addr, write, now);
                ensure!(
                    done == expected_done,
                    "service {addr:?} done {done} != predicted {expected_done}"
                );
                ensure!(
                    (outcome == RowOutcome::Hit) == hit,
                    "service {addr:?} outcome {outcome:?} but model hit={hit}"
                );
                ensure!(
                    t.bank_free_at(addr) == done,
                    "after service, probe {} != completion {done}",
                    t.bank_free_at(addr)
                );

                open_row.insert(c.bank, c.row);
                bank_free.insert(c.bank, done);
                bus_free.insert(c.channel, done);
            }
            Ok(())
        },
    );
}

#[test]
fn coalescing_never_loses_the_newest_value() {
    check(
        "coalescing_never_loses_the_newest_value",
        Config::cases(48),
        |rng| {
            // Hammer one block back-to-back: all but the first write should
            // coalesce, and the final value must win.
            let n = rng.gen_range(2..50) as usize;
            let fills: Vec<u8> = (0..n).map(|_| rng.next_u32() as u8).collect();
            let mut mc = MemoryController::new(SystemConfig::tiny().mem);
            let last = *fills.last().unwrap();
            for f in &fills {
                mc.write(BlockAddr(7), [*f; 64], Time::ZERO);
            }
            ensure!(
                mc.stats().wpq_coalesced >= fills.len() as u64 - 1,
                "expected {} coalesces, saw {}",
                fills.len() - 1,
                mc.stats().wpq_coalesced
            );
            let expected = if last == 0 { [0u8; 64] } else { [last; 64] };
            ensure!(
                mc.crash().read(BlockAddr(7)) == expected,
                "newest value lost"
            );
            Ok(())
        },
    );
}
