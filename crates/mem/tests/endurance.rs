//! Endurance tests: the Start-Gap wear leveller under the memory
//! controller — logical addressing stays correct across gap rotations,
//! and hot-block wear spreads over physical cells.

use triad_mem::controller::MemoryController;
use triad_sim::config::SystemConfig;
use triad_sim::{BlockAddr, Duration, Time};

fn small_mem() -> triad_mem::MemoryController {
    let mut cfg = SystemConfig::tiny().mem;
    cfg.capacity_bytes = 64 * 64; // 64 blocks: rotations happen fast
    MemoryController::new(cfg)
}

#[test]
fn logical_round_trip_survives_many_gap_moves() {
    let mut mc = small_mem();
    mc.enable_wear_leveling(2);
    let mut now = Time::ZERO;
    // Write a distinct value to every logical block, interleaved with
    // hot-block traffic that drives the gap around several times.
    for l in 0..64u64 {
        now += Duration::from_us(10);
        mc.write(BlockAddr(l), [l as u8 + 1; 64], now);
    }
    for i in 0..500u64 {
        now += Duration::from_us(10);
        mc.write(BlockAddr(7), [(i % 200) as u8 + 1; 64], now);
    }
    // Every logical block still reads its own value.
    for l in 0..64u64 {
        let expected = if l == 7 {
            [(499 % 200) as u8 + 1; 64]
        } else {
            [l as u8 + 1; 64]
        };
        let (data, _) = mc.read(BlockAddr(l), now);
        assert_eq!(data, expected, "logical block {l}");
    }
}

#[test]
fn physical_image_differs_from_logical_after_rotation() {
    let mut mc = small_mem();
    mc.enable_wear_leveling(1);
    let mut now = Time::ZERO;
    mc.write(BlockAddr(0), [0xAA; 64], now);
    for _ in 0..100 {
        now += Duration::from_us(10);
        mc.write(BlockAddr(1), [1; 64], now);
    }
    // Logical 0 still reads back…
    let (data, _) = mc.read(BlockAddr(0), now);
    assert_eq!(data, [0xAA; 64]);
    // …but no longer lives at physical 0.
    assert_ne!(mc.resolve(BlockAddr(0)), BlockAddr(0));
    assert_ne!(mc.store().read(BlockAddr(0)), [0xAA; 64]);
}

#[test]
fn wear_spreads_across_physical_cells() {
    // Hammer one logical block; without levelling all wear lands on
    // one cell, with levelling it spreads.
    let run = |level: bool| {
        let mut mc = small_mem();
        if level {
            mc.enable_wear_leveling(1);
        }
        let mut now = Time::ZERO;
        for i in 0..2000u64 {
            now += Duration::from_us(5);
            mc.write(BlockAddr(3), [i as u8; 64], now);
        }
        (mc.wear().max_writes(), mc.wear().blocks_touched())
    };
    let (max_plain, cells_plain) = run(false);
    let (max_level, cells_level) = run(true);
    assert_eq!(cells_plain, 1, "no levelling: one cell takes it all");
    assert!(
        cells_level > 32,
        "levelling must spread over many cells: {cells_level}"
    );
    assert!(
        max_level < max_plain / 10,
        "hot-cell wear must drop >10×: {max_level} vs {max_plain}"
    );
}

#[test]
fn resolve_is_identity_without_leveling() {
    let mc = small_mem();
    assert_eq!(mc.resolve(BlockAddr(42)), BlockAddr(42));
}

#[test]
#[should_panic(expected = "before any traffic")]
fn late_enable_rejected() {
    let mut mc = small_mem();
    mc.write(BlockAddr(0), [1; 64], Time::ZERO);
    mc.enable_wear_leveling(4);
}
