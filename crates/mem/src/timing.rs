//! PCM bank/row-buffer timing (Table 1, middle section).
//!
//! A resource-availability model: each bank and the shared data bus
//! keep a `next_free` time; a request starts when both the issue time
//! and its resources allow, pays activation (60 ns read / 150 ns write
//! array latency) only on a row-buffer miss, then tCL and the bus
//! burst. This reproduces bank-level parallelism, row-buffer locality
//! and write-latency asymmetry — the three properties the paper's
//! results depend on — without a full DRAM protocol model.

use triad_sim::config::MemConfig;
use triad_sim::time::{Duration, Time};
use triad_sim::BlockAddr;

/// Decomposed device coordinates of a block (RoRaBaChCo order:
/// row, rank, bank, channel, column from high to low address bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Coords {
    /// Row index within the bank.
    pub row: u64,
    /// Channel index.
    pub channel: usize,
    /// Global bank index across channels
    /// (`(channel * ranks + rank) * banks_per_rank + bank`).
    pub bank: usize,
    /// Column (block index within the row buffer).
    pub column: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct BankState {
    open_row: Option<u64>,
    next_free: Time,
}

/// Whether a serviced request hit the open row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowOutcome {
    /// The row buffer already held the row.
    Hit,
    /// The row had to be activated (and a previous one closed).
    Miss,
}

/// The PCM timing model.
#[derive(Debug, Clone)]
pub struct PcmTiming {
    config: MemConfig,
    banks: Vec<BankState>,
    bus_free: Vec<Time>,
    blocks_per_row: u64,
}

impl PcmTiming {
    /// Creates the model from a memory configuration.
    pub fn new(config: MemConfig) -> Self {
        let banks = config.channels * config.ranks * config.banks_per_rank;
        PcmTiming {
            config,
            banks: vec![BankState::default(); banks],
            bus_free: vec![Time::ZERO; config.channels],
            blocks_per_row: config.row_buffer_bytes / 64,
        }
    }

    /// Maps a block address to device coordinates (RoRaBaChCo).
    pub fn coords(&self, addr: BlockAddr) -> Coords {
        let column = addr.0 % self.blocks_per_row;
        let mut rest = addr.0 / self.blocks_per_row;
        let channel = (rest % self.config.channels as u64) as usize;
        rest /= self.config.channels as u64;
        let bank = (rest % self.config.banks_per_rank as u64) as usize;
        rest /= self.config.banks_per_rank as u64;
        let rank = (rest % self.config.ranks as u64) as usize;
        let row = rest / self.config.ranks as u64;
        Coords {
            row,
            channel,
            bank: (channel * self.config.ranks + rank) * self.config.banks_per_rank + bank,
            column,
        }
    }

    /// Services a request at `issue` time; returns `(completion,
    /// row-buffer outcome)` and advances bank/bus state.
    pub fn service(&mut self, addr: BlockAddr, write: bool, issue: Time) -> (Time, RowOutcome) {
        let coords = self.coords(addr);
        let bank = &mut self.banks[coords.bank];
        let start = issue.max(bank.next_free);
        // Row-buffer hits cost tCL + burst only: PCM absorbs writes in
        // the row buffer and pays the slow array write (tWR = 150 ns)
        // when the row closes — charged here as the activation cost of
        // the *next* row miss on the bank.
        let (array, outcome) = match bank.open_row {
            Some(open) if open == coords.row => (Duration::ZERO, RowOutcome::Hit),
            _ => {
                bank.open_row = Some(coords.row);
                let lat = if write {
                    self.config.write_latency
                } else {
                    self.config.read_latency
                };
                (lat, RowOutcome::Miss)
            }
        };
        let ready = start + array + self.config.t_cl;
        // The channel's bus transfers the 64 B burst.
        let bus_start = ready.max(self.bus_free[coords.channel]);
        let done = bus_start + self.config.burst;
        self.bus_free[coords.channel] = done;
        bank.next_free = done;
        (done, outcome)
    }

    /// Earliest time the bank holding `addr` could start a new request.
    pub fn bank_free_at(&self, addr: BlockAddr) -> Time {
        self.banks[self.coords(addr).bank].next_free
    }

    /// Number of banks modelled.
    pub fn bank_count(&self) -> usize {
        self.banks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triad_sim::config::SystemConfig;

    fn timing() -> PcmTiming {
        PcmTiming::new(SystemConfig::tiny().mem) // 1 rank × 4 banks, 1 KB rows
    }

    #[test]
    fn coords_split_fields() {
        let t = timing();
        // 16 blocks per 1 KB row, 4 banks.
        let c = t.coords(BlockAddr(0));
        assert_eq!((c.row, c.bank, c.column), (0, 0, 0));
        let c = t.coords(BlockAddr(15));
        assert_eq!((c.row, c.bank, c.column), (0, 0, 15));
        let c = t.coords(BlockAddr(16));
        assert_eq!((c.row, c.bank, c.column), (0, 1, 0));
        let c = t.coords(BlockAddr(16 * 4));
        assert_eq!((c.row, c.bank, c.column), (1, 0, 0));
    }

    #[test]
    fn first_read_pays_activation() {
        let mut t = timing();
        let (done, out) = t.service(BlockAddr(0), false, Time::ZERO);
        assert_eq!(out, RowOutcome::Miss);
        // 60ns activation + 12.5ns tCL + 5ns burst.
        assert_eq!(done, Time::from_ps(77_500));
    }

    #[test]
    fn row_hit_is_fast() {
        let mut t = timing();
        let (first, _) = t.service(BlockAddr(0), false, Time::ZERO);
        let (second, out) = t.service(BlockAddr(1), false, first);
        assert_eq!(out, RowOutcome::Hit);
        assert_eq!(second - first, Duration::from_ps(17_500)); // tCL + burst
    }

    #[test]
    fn writes_are_slower_than_reads() {
        let mut a = timing();
        let mut b = timing();
        let (r, _) = a.service(BlockAddr(0), false, Time::ZERO);
        let (w, _) = b.service(BlockAddr(0), true, Time::ZERO);
        assert!(w > r);
        assert_eq!(w - r, Duration::from_ns(90)); // 150 - 60
    }

    #[test]
    fn row_hit_write_streams_through_the_buffer() {
        let mut t = timing();
        let (first, _) = t.service(BlockAddr(0), true, Time::ZERO);
        let (second, out) = t.service(BlockAddr(1), true, first);
        assert_eq!(out, RowOutcome::Hit);
        // The open-row write costs only tCL + burst; the 150 ns array
        // write is deferred to the row close.
        assert_eq!(second - first, Duration::from_ps(17_500));
    }

    #[test]
    fn banks_overlap_but_bus_serialises() {
        let mut t = timing();
        // Two different banks, issued together.
        let (a, _) = t.service(BlockAddr(0), false, Time::ZERO);
        let (b, _) = t.service(BlockAddr(16), false, Time::ZERO);
        // Second completes just one burst after the first: arrays
        // overlapped, bus serialised.
        assert_eq!(b - a, Duration::from_ns(5));
    }

    #[test]
    fn same_bank_serialises_fully() {
        let mut t = timing();
        let (a, _) = t.service(BlockAddr(0), false, Time::ZERO);
        // Different row, same bank → full activation after `a`.
        let (b, out) = t.service(BlockAddr(16 * 4), false, Time::ZERO);
        assert_eq!(out, RowOutcome::Miss);
        assert_eq!(b - a, Duration::from_ps(77_500));
    }

    #[test]
    fn channels_interleave_and_have_independent_buses() {
        let mut cfg = SystemConfig::tiny().mem;
        cfg.channels = 2;
        let t = PcmTiming::new(cfg);
        assert_eq!(t.bank_count(), 8, "banks double with two channels");
        // Consecutive rows alternate channels (Ch below Ba in RoRaBaChCo).
        let a = t.coords(BlockAddr(0));
        let b = t.coords(BlockAddr(16));
        assert_eq!(a.channel, 0);
        assert_eq!(b.channel, 1);
        // Independent buses: two same-time requests on different
        // channels complete simultaneously.
        let mut t = PcmTiming::new(cfg);
        let (da, _) = t.service(BlockAddr(0), false, Time::ZERO);
        let (db, _) = t.service(BlockAddr(16), false, Time::ZERO);
        assert_eq!(da, db, "no bus serialisation across channels");
    }

    #[test]
    fn bank_free_probe_matches_service() {
        let mut t = timing();
        let (done, _) = t.service(BlockAddr(0), false, Time::ZERO);
        assert_eq!(t.bank_free_at(BlockAddr(0)), done);
        assert_eq!(t.bank_free_at(BlockAddr(16)), Time::ZERO);
        assert_eq!(t.bank_count(), 4);
    }
}
