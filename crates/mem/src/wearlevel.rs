//! Start-Gap wear levelling (Qureshi et al., MICRO'09).
//!
//! The paper motivates relaxed metadata persistence partly by PCM's
//! limited write endurance; the complementary device-side defence is
//! wear levelling, which real NVM DIMMs implement below everything
//! else. Start-Gap is the canonical algorithm: one spare line and a
//! *gap* that rotates through the array, moving one line every ψ
//! writes, so hot blocks migrate across physical cells.
//!
//! The leveller lives at the memory-controller/device boundary
//! ([`crate::controller::MemoryController::enable_wear_leveling`]):
//! everything above — including the security engine — keeps using
//! logical addresses; physical placement (and hence the wear
//! distribution and the raw device image) changes underneath.

use triad_sim::BlockAddr;

/// The Start-Gap address remapper for a device of `lines` logical
/// blocks over `lines + 1` physical blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StartGap {
    /// Logical lines (physical capacity is `lines + 1`).
    lines: u64,
    /// Physical index of the gap (the unmapped spare), `0..=lines`.
    gap: u64,
    /// Rotation offset, incremented each time the gap wraps.
    start: u64,
    /// Writes between gap movements (ψ; 100 in the original paper).
    interval: u64,
    writes_since_move: u64,
    moves: u64,
}

/// A gap movement the device must perform: copy the block at `from`
/// into `to` (the old gap position).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GapMove {
    /// Physical source (the line adjacent to the gap).
    pub from: BlockAddr,
    /// Physical destination (the old gap).
    pub to: BlockAddr,
}

impl StartGap {
    /// Creates a leveller for `lines` logical blocks moving the gap
    /// every `interval` writes.
    ///
    /// # Panics
    ///
    /// Panics if `lines` or `interval` is zero.
    pub fn new(lines: u64, interval: u64) -> Self {
        assert!(lines > 0, "need at least one line");
        assert!(interval > 0, "gap must move eventually");
        StartGap {
            lines,
            gap: lines, // spare initially at the end
            start: 0,
            interval,
            writes_since_move: 0,
            moves: 0,
        }
    }

    /// Maps a logical block to its current physical block.
    ///
    /// # Panics
    ///
    /// Panics if `logical` is out of range.
    pub fn map(&self, logical: BlockAddr) -> BlockAddr {
        assert!(logical.0 < self.lines, "logical {logical} out of range");
        let mut p = (logical.0 + self.start) % self.lines;
        if p >= self.gap {
            p += 1;
        }
        BlockAddr(p)
    }

    /// Notifies the leveller of one write; if the movement threshold
    /// is reached, returns the [`GapMove`] the device must perform
    /// *before* subsequent mappings are used.
    pub fn on_write(&mut self) -> Option<GapMove> {
        self.writes_since_move += 1;
        if self.writes_since_move < self.interval {
            return None;
        }
        self.writes_since_move = 0;
        self.moves += 1;
        if self.gap == 0 {
            // Wrap: the line at the top moves into the bottom gap, the
            // spare returns to the top, and the rotation offset
            // advances — after `lines + 1` movements every line has
            // migrated by one physical slot.
            let mv = GapMove {
                from: BlockAddr(self.lines),
                to: BlockAddr(0),
            };
            self.gap = self.lines;
            self.start = (self.start + 1) % self.lines;
            Some(mv)
        } else {
            let mv = GapMove {
                from: BlockAddr(self.gap - 1),
                to: BlockAddr(self.gap),
            };
            self.gap -= 1;
            Some(mv)
        }
    }

    /// Total gap movements performed.
    pub fn moves(&self) -> u64 {
        self.moves
    }

    /// The current gap's physical index.
    pub fn gap(&self) -> u64 {
        self.gap
    }

    /// The current rotation offset.
    pub fn start(&self) -> u64 {
        self.start
    }

    /// Logical capacity in blocks.
    pub fn lines(&self) -> u64 {
        self.lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashMap, HashSet};

    #[test]
    fn initial_mapping_is_identity() {
        let sg = StartGap::new(8, 4);
        for l in 0..8 {
            assert_eq!(sg.map(BlockAddr(l)), BlockAddr(l));
        }
    }

    #[test]
    fn mapping_is_always_a_bijection() {
        let mut sg = StartGap::new(7, 1);
        for _ in 0..200 {
            let mut seen = HashSet::new();
            for l in 0..7 {
                let p = sg.map(BlockAddr(l));
                assert!(p.0 <= 7, "physical within capacity+spare");
                assert_ne!(p.0, sg.gap(), "nothing maps onto the gap");
                assert!(seen.insert(p.0), "collision at rotation state {sg:?}");
            }
            sg.on_write();
        }
    }

    #[test]
    fn gap_moves_every_interval_writes() {
        let mut sg = StartGap::new(8, 3);
        assert_eq!(sg.on_write(), None);
        assert_eq!(sg.on_write(), None);
        let mv = sg.on_write().expect("third write moves the gap");
        assert_eq!(
            mv,
            GapMove {
                from: BlockAddr(7),
                to: BlockAddr(8)
            }
        );
        assert_eq!(sg.gap(), 7);
        assert_eq!(sg.moves(), 1);
    }

    #[test]
    fn data_is_preserved_across_full_rotations() {
        // Shadow device: apply the moves the leveller requests and
        // check every logical block always reads its own value.
        let lines = 5u64;
        let mut sg = StartGap::new(lines, 1);
        let mut device: HashMap<u64, u64> = HashMap::new();
        // Initialise logical l = value 100 + l.
        for l in 0..lines {
            device.insert(sg.map(BlockAddr(l)).0, 100 + l);
        }
        for step in 0..200u64 {
            if let Some(mv) = sg.on_write() {
                if let Some(v) = device.remove(&mv.from.0) {
                    device.insert(mv.to.0, v);
                }
            }
            for l in 0..lines {
                let p = sg.map(BlockAddr(l));
                assert_eq!(
                    device.get(&p.0),
                    Some(&(100 + l)),
                    "step {step}: logical {l} lost its data (gap {}, start {})",
                    sg.gap(),
                    sg.start()
                );
            }
        }
        assert!(sg.start() > 0, "rotation must have wrapped");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_logical_rejected() {
        StartGap::new(4, 1).map(BlockAddr(4));
    }
}
