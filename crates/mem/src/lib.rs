//! PCM-style non-volatile memory substrate.
//!
//! Three layers:
//!
//! * [`store`] — the *functional* contents: a sparse map of 64-byte
//!   blocks with tamper-injection helpers for security tests. This is
//!   the part that survives a simulated power loss.
//! * [`timing`] — the PCM timing model of Table 1: RoRaBaChCo address
//!   mapping, per-bank row buffers with an open-adaptive policy, 60 ns
//!   reads and 150 ns writes, a shared data bus.
//! * [`controller`] — the memory controller: read path, and the
//!   ADR-protected **write-pending queue** (WPQ). Anything accepted
//!   into the WPQ is inside the persistence domain and therefore
//!   survives a crash (§3.2, §3.3.5) — functionally the store is
//!   updated at acceptance, while the timing model charges the drain.
//!
//! # Example
//!
//! ```rust
//! use triad_mem::controller::MemoryController;
//! use triad_sim::config::SystemConfig;
//! use triad_sim::{BlockAddr, Time};
//!
//! let mut mc = MemoryController::new(SystemConfig::tiny().mem);
//! let done = mc.write(BlockAddr(3), [7u8; 64], Time::ZERO);
//! let (data, _when) = mc.read(BlockAddr(3), done);
//! assert_eq!(data[0], 7);
//! ```

#![warn(missing_docs)]

pub mod controller;
pub mod store;
pub mod timing;
pub mod wearlevel;

pub use controller::{MemStats, MemoryController, WearTracker};
pub use store::SparseStore;
pub use timing::PcmTiming;
pub use wearlevel::StartGap;
