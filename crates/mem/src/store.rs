//! The functional contents of the NVM: a sparse map of 64-byte blocks.
//!
//! Unwritten blocks read as zero (real NVM ships zeroed; the simulator
//! does not charge for the initial state). The store also provides the
//! attacker's interface — [`SparseStore::tamper`] and
//! [`SparseStore::rollback_to`] — used by integrity tests to model the
//! threat model of §3.1 (an attacker who can read and modify NVM
//! contents between and during boot episodes).

use std::collections::BTreeMap;
use triad_sim::{BlockAddr, BLOCK_BYTES};

/// One 64-byte memory block.
pub type Block = [u8; BLOCK_BYTES];

/// A sparse, functional NVM image.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SparseStore {
    blocks: BTreeMap<u64, Block>,
}

impl SparseStore {
    /// An empty (all-zero) store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads a block; unwritten blocks are zero.
    pub fn read(&self, addr: BlockAddr) -> Block {
        self.blocks
            .get(&addr.0)
            .copied()
            .unwrap_or([0; BLOCK_BYTES])
    }

    /// Writes a block.
    pub fn write(&mut self, addr: BlockAddr, data: Block) {
        if data == [0; BLOCK_BYTES] {
            // Keep the map sparse: zero blocks are the default.
            self.blocks.remove(&addr.0);
        } else {
            self.blocks.insert(addr.0, data);
        }
    }

    /// Number of non-zero blocks resident.
    pub fn resident_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// XORs `mask` into the block at `addr` — the attacker's direct
    /// tampering primitive.
    pub fn tamper(&mut self, addr: BlockAddr, mask: Block) {
        let mut b = self.read(addr);
        for (x, m) in b.iter_mut().zip(mask.iter()) {
            *x ^= m;
        }
        self.write(addr, b);
    }

    /// Replaces the block at `addr` with an arbitrary value (e.g. a
    /// captured stale version — the replay attack of §2.2).
    pub fn rollback_to(&mut self, addr: BlockAddr, old: Block) {
        self.write(addr, old);
    }

    /// Iterates over resident (non-zero) blocks in ascending address
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (BlockAddr, &Block)> {
        self.blocks.iter().map(|(a, b)| (BlockAddr(*a), b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_reads_zero() {
        let s = SparseStore::new();
        assert_eq!(s.read(BlockAddr(99)), [0u8; 64]);
        assert_eq!(s.resident_blocks(), 0);
    }

    #[test]
    fn write_read_round_trip() {
        let mut s = SparseStore::new();
        s.write(BlockAddr(5), [7; 64]);
        assert_eq!(s.read(BlockAddr(5)), [7; 64]);
        assert_eq!(s.resident_blocks(), 1);
    }

    #[test]
    fn zero_write_keeps_store_sparse() {
        let mut s = SparseStore::new();
        s.write(BlockAddr(5), [7; 64]);
        s.write(BlockAddr(5), [0; 64]);
        assert_eq!(s.resident_blocks(), 0);
        assert_eq!(s.read(BlockAddr(5)), [0; 64]);
    }

    #[test]
    fn tamper_flips_selected_bits() {
        let mut s = SparseStore::new();
        s.write(BlockAddr(1), [0xFF; 64]);
        let mut mask = [0u8; 64];
        mask[3] = 0x0F;
        s.tamper(BlockAddr(1), mask);
        let b = s.read(BlockAddr(1));
        assert_eq!(b[3], 0xF0);
        assert_eq!(b[4], 0xFF);
    }

    #[test]
    fn rollback_restores_old_version() {
        let mut s = SparseStore::new();
        s.write(BlockAddr(1), [1; 64]);
        let captured = s.read(BlockAddr(1));
        s.write(BlockAddr(1), [2; 64]);
        s.rollback_to(BlockAddr(1), captured);
        assert_eq!(s.read(BlockAddr(1)), [1; 64]);
    }

    #[test]
    fn clone_is_an_independent_snapshot() {
        let mut s = SparseStore::new();
        s.write(BlockAddr(1), [1; 64]);
        let snap = s.clone();
        s.write(BlockAddr(1), [2; 64]);
        assert_eq!(snap.read(BlockAddr(1)), [1; 64]);
        assert_eq!(s.read(BlockAddr(1)), [2; 64]);
    }

    #[test]
    fn iter_visits_resident_blocks_in_address_order() {
        let mut s = SparseStore::new();
        s.write(BlockAddr(2), [2; 64]);
        s.write(BlockAddr(1), [1; 64]);
        let addrs: Vec<u64> = s.iter().map(|(a, _)| a.0).collect();
        assert_eq!(addrs, [1, 2]);
    }
}
