//! The memory controller: read servicing and the ADR write-pending
//! queue (WPQ).
//!
//! The WPQ is the paper's persistence-domain boundary (§3.2): a write
//! *accepted* into the WPQ is guaranteed durable — on power loss,
//! residual energy drains the queue. The simulator makes this concrete
//! by updating the functional store at acceptance time while the timing
//! model separately charges the drain to the PCM banks. When the WPQ is
//! full, acceptance stalls until an entry drains: this back-pressure is
//! the mechanism by which metadata-persistence write amplification
//! slows down execution (Figures 4 and 8).

use crate::store::{Block, SparseStore};
use crate::timing::{PcmTiming, RowOutcome};
use crate::wearlevel::StartGap;
use triad_sim::config::MemConfig;
use triad_sim::events::{emit, SharedEventSink};
use triad_sim::stats::{Histogram, Scope, StatRegister};
use triad_sim::time::{Duration, Time};
use triad_sim::BlockAddr;

/// Memory-controller statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Read requests serviced.
    pub reads: u64,
    /// Write requests accepted into the WPQ.
    pub writes: u64,
    /// Row-buffer hits (reads + writes).
    pub row_hits: u64,
    /// Row-buffer misses.
    pub row_misses: u64,
    /// Times a write found the WPQ full.
    pub wpq_full_events: u64,
    /// Writes absorbed by an already-pending WPQ entry for the same
    /// block (the queue is coherent per cacheline, so back-to-back
    /// writes to a hot metadata block cost one drain).
    pub wpq_coalesced: u64,
    /// Total time writers spent stalled on a full WPQ.
    pub wpq_stall: Duration,
    /// Reads that were forwarded from a pending WPQ entry.
    pub wpq_forwards: u64,
}

/// Memory-controller latency distributions, kept beside the flat
/// [`MemStats`] counters (which stay `Copy`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MemHistograms {
    /// Time a WPQ entry spends queued, acceptance to drain (ns).
    pub wpq_residency_ns: Histogram,
    /// WPQ occupancy sampled after each acceptance.
    pub wpq_occupancy: Histogram,
    /// Bank service latency for row-buffer hits (ns).
    pub row_hit_service_ns: Histogram,
    /// Bank service latency for row-buffer misses (ns).
    pub row_miss_service_ns: Histogram,
    /// Latency of reads forwarded from the WPQ (ns).
    pub wpq_forward_ns: Histogram,
    /// How long each write waited for WPQ admission (ns; zero unless
    /// the queue was full).
    pub write_accept_delay_ns: Histogram,
}

impl StatRegister for MemHistograms {
    fn register(&self, scope: &mut Scope<'_>) {
        scope.histogram("wpq_residency_ns", &self.wpq_residency_ns);
        scope.histogram("wpq_occupancy", &self.wpq_occupancy);
        scope.histogram("row_hit_service_ns", &self.row_hit_service_ns);
        scope.histogram("row_miss_service_ns", &self.row_miss_service_ns);
        scope.histogram("wpq_forward_ns", &self.wpq_forward_ns);
        scope.histogram("write_accept_delay_ns", &self.write_accept_delay_ns);
    }
}

/// Per-block write-endurance accounting (PCM cells wear out after
/// ~10⁷–10⁸ writes; reducing metadata writes is one of the paper's
/// motivations for relaxed persistence).
#[derive(Debug, Clone, Default)]
pub struct WearTracker {
    writes: std::collections::BTreeMap<u64, u64>,
}

impl WearTracker {
    /// Records one physical write to `addr`.
    pub fn record(&mut self, addr: BlockAddr) {
        *self.writes.entry(addr.0).or_insert(0) += 1;
    }

    /// Writes absorbed by the most-written block (the wear hot spot).
    pub fn max_writes(&self) -> u64 {
        self.writes.values().copied().max().unwrap_or(0)
    }

    /// Mean writes over blocks that were written at all.
    pub fn mean_writes(&self) -> f64 {
        if self.writes.is_empty() {
            return 0.0;
        }
        self.writes.values().sum::<u64>() as f64 / self.writes.len() as f64
    }

    /// Number of distinct blocks ever written.
    pub fn blocks_touched(&self) -> usize {
        self.writes.len()
    }

    /// Wear imbalance: max over mean (1.0 = perfectly even). High
    /// values mean hot metadata blocks (counters, tree roots' children)
    /// burn out first — the case for wear levelling.
    pub fn imbalance(&self) -> f64 {
        let mean = self.mean_writes();
        if mean == 0.0 {
            0.0
        } else {
            self.max_writes() as f64 / mean
        }
    }

    /// The `n` most-written blocks, descending.
    pub fn hottest(&self, n: usize) -> Vec<(BlockAddr, u64)> {
        let mut v: Vec<(BlockAddr, u64)> = self
            .writes
            .iter()
            .map(|(a, w)| (BlockAddr(*a), *w))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0 .0.cmp(&b.0 .0)));
        v.truncate(n);
        v
    }
}

/// The memory controller for one NVM channel.
#[derive(Debug, Clone)]
pub struct MemoryController {
    config: MemConfig,
    store: SparseStore,
    timing: PcmTiming,
    /// Pending WPQ entries: `(drain completion, address)`.
    wpq: Vec<(Time, BlockAddr)>,
    stats: MemStats,
    hists: MemHistograms,
    /// Structured event tracing; `None` (the default) costs nothing.
    events: Option<SharedEventSink>,
    wear: WearTracker,
    /// Optional device-side Start-Gap wear leveller. When enabled,
    /// `read`/`write` take *logical* addresses and the raw image
    /// (`store()`, `crash()`) is the *physical* layout — exactly like
    /// a real DIMM's internal remapping. The secure engine never
    /// enables this (its recovery walks the raw image); it exists as a
    /// device substrate, exercised by the endurance tests.
    leveler: Option<StartGap>,
}

impl MemoryController {
    /// Creates a controller over an empty store.
    pub fn new(config: MemConfig) -> Self {
        MemoryController {
            config,
            store: SparseStore::new(),
            timing: PcmTiming::new(config),
            wpq: Vec::new(),
            stats: MemStats::default(),
            hists: MemHistograms::default(),
            events: None,
            wear: WearTracker::default(),
            leveler: None,
        }
    }

    /// Enables Start-Gap wear levelling with a gap movement every
    /// `interval` writes (ψ = 100 in Qureshi et al.).
    ///
    /// # Panics
    ///
    /// Panics if called after traffic has already been served (the
    /// mapping must start from the pristine image).
    pub fn enable_wear_leveling(&mut self, interval: u64) {
        assert!(
            self.stats.reads == 0 && self.stats.writes == 0,
            "enable wear levelling before any traffic"
        );
        self.leveler = Some(StartGap::new(self.config.capacity_bytes / 64, interval));
    }

    /// Translates a logical block to its current physical block
    /// (identity when wear levelling is disabled).
    pub fn resolve(&self, addr: BlockAddr) -> BlockAddr {
        match &self.leveler {
            Some(sg) => sg.map(addr),
            None => addr,
        }
    }

    /// The memory configuration in force.
    pub fn config(&self) -> &MemConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> MemStats {
        self.stats
    }

    /// Accumulated latency distributions.
    pub fn histograms(&self) -> &MemHistograms {
        &self.hists
    }

    /// Routes structured events (WPQ enqueue/drain/coalesce/stall)
    /// into `sink`. Tracing is off until this is called.
    pub fn set_event_sink(&mut self, sink: SharedEventSink) {
        self.events = Some(sink);
    }

    /// Direct access to the functional NVM image (the attacker's and
    /// the recovery procedure's view).
    pub fn store(&self) -> &SparseStore {
        &self.store
    }

    /// Mutable access to the NVM image, for tamper injection and for
    /// recovery-time rebuilds.
    pub fn store_mut(&mut self) -> &mut SparseStore {
        &mut self.store
    }

    /// The time at which the WPQ will have drained to at most
    /// `occupancy` pending entries, assuming no further writes arrive
    /// ([`Time::ZERO`] when it is already there). Burst writers — the
    /// engine's batched metadata commit — use this to model the
    /// controller holding off new core traffic until the queue is back
    /// under its high-water mark, instead of letting the next
    /// unrelated write-back eat the stall.
    pub fn wpq_settle_time(&self, occupancy: usize) -> Time {
        if self.wpq.len() <= occupancy {
            return Time::ZERO;
        }
        let mut dones: Vec<Time> = self.wpq.iter().map(|(done, _)| *done).collect();
        dones.sort_unstable();
        dones[self.wpq.len() - occupancy - 1]
    }

    fn drain_completed(&mut self, now: Time) {
        if self.events.is_some() {
            // Stamp each drain with its own completion time, not `now`,
            // so the trace is independent of when we happened to look.
            for (done, addr) in self.wpq.iter().filter(|(done, _)| *done <= now) {
                emit(&self.events, *done, "wpq_drain", &[("addr", addr.0.into())]);
            }
        }
        self.wpq.retain(|(done, _)| *done > now);
    }

    /// Services a read at `now`; returns the data and its completion
    /// time. Reads matching a pending WPQ entry are forwarded at
    /// controller latency without touching the banks.
    pub fn read(&mut self, addr: BlockAddr, now: Time) -> (Block, Time) {
        let addr = self.resolve(addr);
        self.drain_completed(now);
        self.stats.reads += 1;
        let data = self.store.read(addr);
        if self.wpq.iter().any(|(_, a)| *a == addr) {
            self.stats.wpq_forwards += 1;
            let done = now + self.config.t_cl;
            self.hists.wpq_forward_ns.record(done.since(now).as_ns());
            return (data, done);
        }
        let (done, row) = self.timing.service(addr, false, now);
        let service_ns = done.since(now).as_ns();
        match row {
            RowOutcome::Hit => {
                self.stats.row_hits += 1;
                self.hists.row_hit_service_ns.record(service_ns);
            }
            RowOutcome::Miss => {
                self.stats.row_misses += 1;
                self.hists.row_miss_service_ns.record(service_ns);
            }
        }
        (data, done)
    }

    /// Accepts a write into the WPQ at (or after) `now`; returns the
    /// time the write is *durable* (accepted into the persistence
    /// domain). If the queue is full, acceptance stalls until an entry
    /// drains.
    pub fn write(&mut self, addr: BlockAddr, data: Block, now: Time) -> Time {
        let addr = self.resolve(addr);
        // Device-side gap movement: one extra copy every ψ writes.
        if let Some(sg) = &mut self.leveler {
            if let Some(mv) = sg.on_write() {
                let bytes = self.store.read(mv.from);
                self.store.write(mv.to, bytes);
                self.store.write(mv.from, [0u8; 64]);
                self.wear.record(mv.to);
                self.timing.service(mv.to, true, now);
            }
        }
        self.drain_completed(now);
        // Coalesce into a pending entry: the queued drain will write
        // the updated bytes, so the new write is durable immediately.
        if self.wpq.iter().any(|(_, a)| *a == addr) {
            self.stats.wpq_coalesced += 1;
            self.store.write(addr, data);
            emit(
                &self.events,
                now,
                "wpq_coalesce",
                &[("addr", addr.0.into())],
            );
            return now;
        }
        let mut accept = now;
        if self.wpq.len() >= self.config.wpq_entries {
            self.stats.wpq_full_events += 1;
            // A full queue is non-empty, so `min` exists; falling back
            // to `now` just means no stall if that ever breaks.
            let earliest = self.wpq.iter().map(|(done, _)| *done).min().unwrap_or(now);
            accept = accept.max(earliest);
            self.stats.wpq_stall += accept.since(now);
            emit(
                &self.events,
                now,
                "wpq_stall",
                &[("addr", addr.0.into()), ("until_ps", accept.as_ps().into())],
            );
            self.drain_completed(accept);
        }
        self.stats.writes += 1;
        self.hists
            .write_accept_delay_ns
            .record(accept.since(now).as_ns());
        self.wear.record(addr);
        // Durable on acceptance (ADR), drained to the array afterwards.
        self.store.write(addr, data);
        let (done, row) = self.timing.service(addr, true, accept);
        match row {
            RowOutcome::Hit => self.stats.row_hits += 1,
            RowOutcome::Miss => self.stats.row_misses += 1,
        }
        self.wpq.push((done, addr));
        self.hists
            .wpq_residency_ns
            .record(done.since(accept).as_ns());
        self.hists.wpq_occupancy.record(self.wpq.len() as u64);
        emit(
            &self.events,
            accept,
            "wpq_enqueue",
            &[
                ("addr", addr.0.into()),
                ("occupancy", self.wpq.len().into()),
                ("drain_at_ps", done.as_ps().into()),
            ],
        );
        accept
    }

    /// Per-block wear statistics (physical drains only; coalesced
    /// writes wear nothing).
    pub fn wear(&self) -> &WearTracker {
        &self.wear
    }

    /// Current WPQ occupancy at `now`.
    pub fn wpq_occupancy(&mut self, now: Time) -> usize {
        self.drain_completed(now);
        self.wpq.len()
    }

    /// Simulates a power loss: the WPQ's contents are already durable
    /// (written at acceptance), so only the queue bookkeeping clears.
    /// Returns the NVM image as it would be found at reboot.
    pub fn crash(&mut self) -> SparseStore {
        self.wpq.clear();
        self.store.clone()
    }
}

impl StatRegister for MemStats {
    fn register(&self, scope: &mut Scope<'_>) {
        scope.set("reads", self.reads);
        scope.set("writes", self.writes);
        scope.set("row_hits", self.row_hits);
        scope.set("row_misses", self.row_misses);
        scope.set("wpq_full_events", self.wpq_full_events);
        scope.set("wpq_coalesced", self.wpq_coalesced);
        scope.set("wpq_stall_ns", self.wpq_stall.as_ns());
        scope.set("wpq_forwards", self.wpq_forwards);
    }
}

impl StatRegister for MemoryController {
    fn register(&self, scope: &mut Scope<'_>) {
        self.stats.register(scope);
        self.hists.register(scope);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triad_sim::config::SystemConfig;

    fn mc() -> MemoryController {
        MemoryController::new(SystemConfig::tiny().mem) // 16-entry WPQ
    }

    #[test]
    fn write_then_read_returns_data() {
        let mut m = mc();
        let t = m.write(BlockAddr(1), [9; 64], Time::ZERO);
        let (data, done) = m.read(BlockAddr(1), t);
        assert_eq!(data, [9; 64]);
        assert!(done > t);
    }

    #[test]
    fn wpq_forwarding_is_fast() {
        let mut m = mc();
        m.write(BlockAddr(1), [9; 64], Time::ZERO);
        // Read immediately: the write is still draining, so it forwards.
        let (_, done) = m.read(BlockAddr(1), Time::ZERO);
        assert_eq!(done, Time::ZERO + m.config().t_cl);
        assert_eq!(m.stats().wpq_forwards, 1);
    }

    #[test]
    fn wpq_fills_and_stalls() {
        let mut m = mc();
        let entries = m.config().wpq_entries;
        let mut t = Time::ZERO;
        // Hammer one bank so drains serialise; all writes at time zero.
        for i in 0..(entries as u64 + 4) {
            t = m.write(BlockAddr(i * 64), [1; 64], Time::ZERO);
        }
        assert!(m.stats().wpq_full_events >= 4);
        assert!(m.stats().wpq_stall > Duration::ZERO);
        assert!(t > Time::ZERO, "later writes accepted after stalls");
    }

    #[test]
    fn wpq_drains_over_time() {
        let mut m = mc();
        m.write(BlockAddr(1), [1; 64], Time::ZERO);
        assert_eq!(m.wpq_occupancy(Time::ZERO), 1);
        assert_eq!(m.wpq_occupancy(Time::from_ns(10_000)), 0);
    }

    #[test]
    fn accepted_write_survives_crash() {
        let mut m = mc();
        m.write(BlockAddr(7), [3; 64], Time::ZERO);
        let image = m.crash();
        assert_eq!(image.read(BlockAddr(7)), [3; 64]);
        assert_eq!(m.wpq_occupancy(Time::ZERO), 0);
    }

    #[test]
    fn reads_and_writes_counted() {
        let mut m = mc();
        m.write(BlockAddr(1), [1; 64], Time::ZERO);
        m.read(BlockAddr(2), Time::from_ns(10_000));
        let s = m.stats();
        assert_eq!(s.writes, 1);
        assert_eq!(s.reads, 1);
        assert_eq!(s.row_hits + s.row_misses, 2);
    }

    #[test]
    fn wear_tracking_counts_physical_drains_only() {
        let mut m = mc();
        // Three back-to-back writes to one block: 1 physical + 2 coalesced.
        for fill in 1..=3u8 {
            m.write(BlockAddr(9), [fill; 64], Time::ZERO);
        }
        m.write(BlockAddr(10), [1; 64], Time::ZERO);
        let w = m.wear();
        assert_eq!(w.max_writes(), 1, "coalesced writes wear nothing");
        assert_eq!(w.blocks_touched(), 2);
        assert_eq!(w.hottest(1)[0].1, 1);
        assert!((w.mean_writes() - 1.0).abs() < 1e-9);
        assert!((w.imbalance() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn wear_hot_spot_identified() {
        let mut m = mc();
        let mut now = Time::ZERO;
        for i in 0..40u64 {
            // Block 5 written every round far apart in time (no
            // coalescing); others once.
            now += Duration::from_us(100);
            m.write(BlockAddr(5), [i as u8 + 1; 64], now);
            m.write(BlockAddr(100 + i), [1; 64], now);
        }
        let w = m.wear();
        assert_eq!(w.hottest(1)[0].0, BlockAddr(5));
        assert!(w.imbalance() > 10.0, "imbalance = {}", w.imbalance());
    }

    #[test]
    fn stat_register_report() {
        let mut m = mc();
        m.write(BlockAddr(1), [1; 64], Time::ZERO);
        let mut reg = triad_sim::stats::StatRegistry::new();
        m.register(&mut reg.scope("mem"));
        assert_eq!(reg.counter("mem.writes"), 1);
        let occ = reg.histogram("mem.wpq_occupancy").expect("occupancy");
        assert_eq!(occ.count(), 1);
        assert_eq!(occ.max(), 1);
        assert!(reg.histogram("mem.wpq_residency_ns").expect("res").min() > 0);
    }

    #[test]
    fn wpq_accepts_exactly_capacity_before_stalling() {
        // Pins the ISSUE-3 boundary question: the controller *should*
        // accept `wpq_entries` writes without stalling and stall on
        // write `wpq_entries + 1`. The pre-existing check
        // (`len() >= wpq_entries` tested before pushing) already did
        // exactly that — this test pins the behaviour so an off-by-one
        // can never creep in silently.
        let mut m = mc();
        let entries = m.config().wpq_entries as u64;
        // Distinct rows of one bank: drains serialise, nothing
        // completes at time zero, nothing coalesces.
        for i in 0..entries {
            let accept = m.write(BlockAddr(i * 64), [1; 64], Time::ZERO);
            assert_eq!(accept, Time::ZERO, "write {i} must not stall");
        }
        assert_eq!(m.stats().wpq_full_events, 0, "queue holds exactly capacity");
        assert_eq!(m.stats().wpq_stall, Duration::ZERO);
        assert_eq!(m.wpq_occupancy(Time::ZERO), entries as usize);

        let accept = m.write(BlockAddr(entries * 64), [1; 64], Time::ZERO);
        assert_eq!(m.stats().wpq_full_events, 1, "entry N+1 finds it full");
        assert!(accept > Time::ZERO, "entry N+1 stalls until a drain");
        assert!(m.stats().wpq_stall > Duration::ZERO);
    }

    #[test]
    fn crash_persists_exactly_the_accepted_writes() {
        // ADR semantics: every write *accepted* into the WPQ is inside
        // the persistence domain, including entries still queued at
        // power loss — and nothing else reaches the image.
        let mut m = mc();
        let entries = m.config().wpq_entries as u64;
        let n = entries + 4; // forces stalls; later writes queue behind
        for i in 0..n {
            m.write(BlockAddr(i * 64), [i as u8 + 1; 64], Time::ZERO);
        }
        assert!(m.wpq_occupancy(Time::ZERO) > 0, "entries still pending");
        let image = m.crash();
        let mut found: Vec<u64> = image.iter().map(|(a, _)| a.0).collect();
        found.sort_unstable();
        let expected: Vec<u64> = (0..n).map(|i| i * 64).collect();
        assert_eq!(found, expected, "image holds exactly the accepted writes");
        for i in 0..n {
            assert_eq!(image.read(BlockAddr(i * 64)), [i as u8 + 1; 64]);
        }
        assert_eq!(m.wpq_occupancy(Time::ZERO), 0, "queue bookkeeping cleared");
    }

    #[test]
    fn event_sink_records_wpq_lifecycle() {
        use std::io;
        use std::sync::{Arc, Mutex};

        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl io::Write for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let buf = Arc::new(Mutex::new(Vec::new()));
        let mut m = mc();
        m.set_event_sink(triad_sim::events::EventSink::shared(Box::new(SharedBuf(
            buf.clone(),
        ))));
        m.write(BlockAddr(1), [1; 64], Time::ZERO);
        m.write(BlockAddr(1), [2; 64], Time::ZERO); // coalesces
        m.wpq_occupancy(Time::from_ns(100_000)); // drains
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert!(text.contains("\"event\":\"wpq_enqueue\""), "{text}");
        assert!(text.contains("\"event\":\"wpq_coalesce\""), "{text}");
        assert!(text.contains("\"event\":\"wpq_drain\""), "{text}");
        for line in text.lines() {
            assert!(line.starts_with("{\"t_ps\":") && line.ends_with('}'));
        }
    }

    #[test]
    fn read_after_drain_touches_banks() {
        let mut m = mc();
        m.write(BlockAddr(1), [1; 64], Time::ZERO);
        let late = Time::from_ns(100_000);
        let (_, done) = m.read(BlockAddr(1), late);
        // Row already open from the drain → hit latency, not forwarding.
        assert_eq!(m.stats().wpq_forwards, 0);
        assert!(done > late);
    }
}
