//! Persistence schemes and key policies.
//!
//! A [`PersistScheme`] decides, for every NVM write in the persistent
//! region, which security metadata accompanies the data into the
//! write-pending queue (and therefore survives a crash):
//!
//! | scheme | persisted with each write | recovery rebuild starts at |
//! |---|---|---|
//! | `WriteBack` | nothing (lazy eviction only) | — (unrecoverable) |
//! | `TriadNvm(1)` | counter + MAC | counter blocks (level 0) |
//! | `TriadNvm(2)` | counter + MAC + BMT L1 | level 1 |
//! | `TriadNvm(N)` | counter + MAC + BMT L1‥L(N-1) | level N-1 |
//! | `Strict` | counter + MAC + every in-memory BMT level | nothing (instant) |
//!
//! The paper's prose and Figure 10 disagree slightly on what
//! "TriadNVM-N" persists; we follow the numerically consistent reading
//! (see DESIGN.md §4): TriadNVM-N strictly persists the counters plus
//! the first `N-1` tree levels.

use std::fmt;

/// The metadata-persistence scheme in force for the persistent region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PersistScheme {
    /// Baseline: metadata updated only in on-chip caches and written
    /// back lazily on eviction. Fast, but the persistent region is not
    /// recoverable after a crash (Figure 4's reference point).
    WriteBack,
    /// Triad-NVM with paper-style level `n ≥ 1`: counters and MACs are
    /// strictly persisted, plus the first `n - 1` BMT levels.
    TriadNvm {
        /// The paper's N (1, 2 or 3 in the evaluation).
        n: u8,
    },
    /// Every in-memory BMT level is persisted on every write: near-zero
    /// recovery time, heavy write amplification.
    Strict,
}

impl PersistScheme {
    /// Convenience constructor for `TriadNvm { n }`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` (TriadNVM levels are 1-based in the paper).
    pub fn triad_nvm(n: u8) -> Self {
        assert!(n >= 1, "TriadNVM-N is 1-based");
        PersistScheme::TriadNvm { n }
    }

    /// Highest BMT level strictly persisted on every write, where 0
    /// means "counters only" and `u8::MAX` stands for "all levels"
    /// (clamped to the tree height by the engine).
    pub fn persisted_bmt_levels(&self) -> u8 {
        match self {
            PersistScheme::WriteBack => 0,
            PersistScheme::TriadNvm { n } => n - 1,
            PersistScheme::Strict => u8::MAX,
        }
    }

    /// Whether counters/MACs are strictly persisted at all.
    pub fn persists_metadata(&self) -> bool {
        !matches!(self, PersistScheme::WriteBack)
    }

    /// The level recovery rebuilds from (level 0 = counter blocks), or
    /// `None` when the scheme cannot recover the persistent region.
    pub fn recovery_start_level(&self) -> Option<u8> {
        match self {
            PersistScheme::WriteBack => None,
            PersistScheme::TriadNvm { n } => Some(n - 1),
            PersistScheme::Strict => Some(u8::MAX), // nothing to rebuild
        }
    }

    /// The schemes evaluated in Figures 8–10, in the paper's order.
    pub fn evaluated() -> Vec<PersistScheme> {
        vec![
            PersistScheme::Strict,
            PersistScheme::triad_nvm(1),
            PersistScheme::triad_nvm(2),
            PersistScheme::triad_nvm(3),
            PersistScheme::WriteBack,
        ]
    }
}

impl fmt::Display for PersistScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistScheme::WriteBack => write!(f, "WriteBack"),
            PersistScheme::TriadNvm { n } => write!(f, "TriadNVM-{n}"),
            PersistScheme::Strict => write!(f, "Strict"),
        }
    }
}

/// How strictly encryption counters are persisted (Osiris — Ye et
/// al., MICRO'18 — is the relaxation the paper cites as orthogonal:
/// §6 "a counter value can be restored by trying several consecutive
/// values until [a sanity check] match occurs").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CounterPersistence {
    /// Every persisted write carries its counter block into the WPQ
    /// (the paper's assumption).
    #[default]
    Strict,
    /// Counters are persisted only every `interval`-th update of a
    /// block; at recovery, stale counters are reconstructed by trying
    /// up to `interval` consecutive values per data block against the
    /// strictly persisted MACs, then validated against the persisted
    /// BMT level-1 slot. Requires a scheme that persists level 1
    /// (TriadNVM-2 or higher / Strict).
    Osiris {
        /// Maximum counter updates between forced persists.
        interval: u8,
    },
}

impl fmt::Display for CounterPersistence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CounterPersistence::Strict => write!(f, "strict-counters"),
            CounterPersistence::Osiris { interval } => write!(f, "osiris-{interval}"),
        }
    }
}

/// How the engine avoids cross-boot pad reuse for non-persistent data
/// (§3.3.2). Both are implemented; the paper chooses the session
/// counter for its recovery-precomputation advantages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KeyPolicy {
    /// One key; the IV carries a session counter that is 0 for
    /// persistent data and bumped every boot for non-persistent data.
    #[default]
    SessionCounter,
    /// Two keys: a fixed persistent-region key and a volatile key
    /// regenerated at every boot for the non-persistent region.
    DualKey,
}

impl fmt::Display for KeyPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KeyPolicy::SessionCounter => write!(f, "session-counter"),
            KeyPolicy::DualKey => write!(f, "dual-key"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn persisted_levels_follow_design_convention() {
        assert_eq!(PersistScheme::WriteBack.persisted_bmt_levels(), 0);
        assert_eq!(PersistScheme::triad_nvm(1).persisted_bmt_levels(), 0);
        assert_eq!(PersistScheme::triad_nvm(2).persisted_bmt_levels(), 1);
        assert_eq!(PersistScheme::triad_nvm(3).persisted_bmt_levels(), 2);
        assert_eq!(PersistScheme::Strict.persisted_bmt_levels(), u8::MAX);
    }

    #[test]
    fn recovery_start_levels() {
        assert_eq!(PersistScheme::WriteBack.recovery_start_level(), None);
        assert_eq!(PersistScheme::triad_nvm(1).recovery_start_level(), Some(0));
        assert_eq!(PersistScheme::triad_nvm(3).recovery_start_level(), Some(2));
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn triad_nvm_zero_rejected() {
        PersistScheme::triad_nvm(0);
    }

    #[test]
    fn display_matches_paper_labels() {
        assert_eq!(PersistScheme::triad_nvm(2).to_string(), "TriadNVM-2");
        assert_eq!(PersistScheme::Strict.to_string(), "Strict");
        assert_eq!(KeyPolicy::SessionCounter.to_string(), "session-counter");
    }

    #[test]
    fn evaluated_set_matches_figures() {
        let all = PersistScheme::evaluated();
        assert_eq!(all.len(), 5);
        assert_eq!(all[0], PersistScheme::Strict);
        assert_eq!(all[4], PersistScheme::WriteBack);
    }

    #[test]
    fn metadata_persistence_predicate() {
        assert!(!PersistScheme::WriteBack.persists_metadata());
        assert!(PersistScheme::triad_nvm(1).persists_metadata());
        assert!(PersistScheme::Strict.persists_metadata());
    }
}
