//! Batched write-path persistence.
//!
//! A [`WriteBatch`] carries a program-ordered set of persistent-region
//! block writes whose durability is requested *together*. Compared to
//! calling [`SecureMemory::persist_block`] once per block, the batched
//! path ([`SecureMemory::persist_batch`]) exploits knowing the whole
//! set up front three ways:
//!
//! 1. **Batched crypto** — the one-time pads of every member are
//!    precomputed in a single pass through the shared AES key schedule
//!    ([`triad_crypto::pad_batch`]), by simulating the counter
//!    increments the members will perform.
//! 2. **Coalesced BMT commit** — every member's atomic update set
//!    (ciphertext, counter, MAC, persisted tree nodes) merges
//!    last-wins into one pending staging buffer; ancestors shared by
//!    multiple dirty leaves are written to NVM once per batch, and the
//!    §3.3.5 register protocol (stage → READY_BIT → WPQ → commit) is
//!    charged once instead of once per member.
//! 3. **Prefetch planning** — the counter blocks, MAC blocks and
//!    coalesced tree-path nodes the batch will touch are planned
//!    through [`triad_cache::BatchPrefetcher`] before the first member
//!    executes, so their fetches can overlap (cf. trie prefetching for
//!    queued transaction blocks).
//!
//! ## Crash safety
//!
//! The pending buffer is **cumulatively re-staged** into the
//! persistent registers after every mutation: at any point mid-batch
//! the registers hold the full replayable prefix (all fully processed
//! members, merged). A crash between members therefore recovers
//! exactly like the scalar walk — processed members durable, the rest
//! lost — and each member consumes one persist-boundary durability
//! point, keeping armed-crash drivers scheme-agnostic.

use std::collections::BTreeMap;

use triad_cache::PrefetchClass;
use triad_crypto::counter::AnyCounterBlock;
use triad_crypto::ctr::{pad_batch, Iv};
use triad_mem::store::Block;
use triad_meta::bmt::coalesce_dirty_paths;
use triad_meta::layout::RegionKind;
use triad_sim::events::emit;
use triad_sim::time::Time;
use triad_sim::BlockAddr;

use crate::engine::{EngineState, EvictItem, Result, SecureMemory};
use crate::error::SecureMemoryError;
use crate::registers::{StagedUpdate, StagedWrite};
use crate::scheme::CounterPersistence;

/// A program-ordered set of full-block writes to persist together.
///
/// # Example
///
/// ```rust
/// use triad_core::{SecureMemoryBuilder, WriteBatch};
///
/// # fn main() -> Result<(), triad_core::SecureMemoryError> {
/// let mut mem = SecureMemoryBuilder::new().build()?;
/// let base = mem.persistent_region().start();
/// let mut batch = WriteBatch::new();
/// for i in 0..4u64 {
///     let block = triad_sim::PhysAddr(base.0 + i * 64).block();
///     batch.push(block, [i as u8; 64]);
/// }
/// mem.apply_batch(&batch)?;
/// assert!(mem.stats().batches >= 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct WriteBatch {
    members: Vec<(BlockAddr, Block)>,
}

impl WriteBatch {
    /// An empty batch.
    pub fn new() -> Self {
        WriteBatch::default()
    }

    /// Appends a full-block write. Later writes to the same block
    /// supersede earlier ones at commit (last-wins), but each push is
    /// still applied in order (and counts as one durability point).
    pub fn push(&mut self, block: BlockAddr, data: Block) {
        self.members.push((block, data));
    }

    /// Number of queued writes.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the batch holds no writes.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The queued writes, in program order.
    pub fn members(&self) -> &[(BlockAddr, Block)] {
        &self.members
    }
}

/// Which metadata structure a staged write belongs to (drives the
/// per-class persist-write statistics at commit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WriteClass {
    Data,
    Counter,
    Mac,
    Node,
}

/// The open batch's staging buffer: last-wins merged writes keyed by
/// address, the pending persistent root, and the precomputed pads.
#[derive(Debug)]
pub(crate) struct PendingBatch {
    /// addr → (first-staging order, class, current bytes).
    writes: BTreeMap<u64, (usize, WriteClass, Block)>,
    next_order: usize,
    /// Root the persistent region reaches once the batch commits
    /// (tracked for the cumulative re-stage).
    new_persistent_root: Option<triad_meta::NodeBuf>,
    /// Precomputed one-time pads keyed by (data block, major, minor).
    pads: BTreeMap<(u64, u64, u8), Block>,
    /// Writes a scalar walk would have performed (before merging).
    pub(crate) naive_writes: u64,
}

impl PendingBatch {
    pub(crate) fn new(pads: BTreeMap<(u64, u64, u8), Block>) -> Self {
        PendingBatch {
            writes: BTreeMap::new(),
            next_order: 0,
            new_persistent_root: None,
            pads,
            naive_writes: 0,
        }
    }

    /// Stages one write, merging last-wins on address. The class and
    /// insertion order of the first staging are kept.
    fn stage(&mut self, class: WriteClass, addr: BlockAddr, data: Block) {
        match self.writes.get_mut(&addr.0) {
            Some(entry) => entry.2 = data,
            None => {
                let order = self.next_order;
                self.next_order += 1;
                self.writes.insert(addr.0, (order, class, data));
            }
        }
    }

    /// Current staged bytes for `addr`, if pending.
    fn lookup(&self, addr: BlockAddr) -> Option<Block> {
        self.writes.get(&addr.0).map(|(_, _, data)| *data)
    }

    /// Refreshes the bytes of an already-pending write (used when an
    /// eviction writes a newer value of the block straight to NVM, so
    /// the commit/recovery replay cannot clobber it with stale bytes).
    /// Returns whether `addr` was pending.
    fn refresh(&mut self, addr: BlockAddr, data: Block) -> bool {
        match self.writes.get_mut(&addr.0) {
            Some(entry) => {
                entry.2 = data;
                true
            }
            None => false,
        }
    }

    fn is_empty(&self) -> bool {
        self.writes.is_empty()
    }

    /// The merged writes in first-staging order.
    fn ordered(&self) -> Vec<(WriteClass, StagedWrite)> {
        let mut v: Vec<(usize, WriteClass, StagedWrite)> = self
            .writes
            .iter()
            .map(|(addr, (order, class, data))| {
                (
                    *order,
                    *class,
                    StagedWrite {
                        addr: BlockAddr(*addr),
                        data: *data,
                    },
                )
            })
            .collect();
        v.sort_unstable_by_key(|(order, _, _)| *order);
        v.into_iter().map(|(_, class, w)| (class, w)).collect()
    }
}

impl SecureMemory {
    /// Persists every write of `batch` in order, sharing one batched
    /// AES pass, one prefetch plan and one coalesced register/WPQ
    /// commit across the members (the batched write path; see the
    /// module docs). Returns the time the whole batch is inside the
    /// persistence domain.
    ///
    /// Falls back to per-member [`SecureMemory::persist_block`] calls
    /// when an epoch is open (members defer to the boundary like any
    /// other persist) or under the Osiris counter relaxation (its skip
    /// bookkeeping is inherently per-write).
    ///
    /// Each member consumes one durability point of
    /// [`SecureMemory::inject_crash_after_persists`]; a crash between
    /// members makes exactly the already-processed prefix durable.
    ///
    /// # Errors
    ///
    /// [`SecureMemoryError::NotPersistent`] (checked for every member
    /// before any state changes) if any member lies outside the
    /// persistent region, plus the classes of
    /// [`SecureMemory::persist_block`].
    pub fn persist_batch(&mut self, batch: &WriteBatch, now: Time) -> Result<Time> {
        self.check_running()?;
        for (block, _) in batch.members() {
            if self.map.data_region_of(*block) != Some(RegionKind::Persistent) {
                return Err(SecureMemoryError::NotPersistent { addr: block.base() });
            }
        }
        if self.state == EngineState::PersistentPoisoned {
            return Err(SecureMemoryError::Unverifiable {
                reason: "persistent region was not recovered".to_string(),
            });
        }
        if batch.is_empty() {
            return Ok(now);
        }
        let osiris = matches!(self.counter_persistence, CounterPersistence::Osiris { .. });
        if self.epoch.is_some() || osiris {
            let mut t = now;
            for (block, data) in batch.members() {
                t = self.persist_block(*block, *data, t)?;
            }
            return Ok(t);
        }
        let pads = self.precompute_batch_pads(batch.members());
        let planned = self.plan_batch_prefetch(batch.members());
        emit(
            &self.events,
            now,
            "batch_queued",
            &[
                ("members", batch.len().into()),
                ("planned_lines", planned.into()),
            ],
        );
        self.stats.batches += 1;
        self.stats.batch_members += batch.len() as u64;
        self.batch = Some(PendingBatch::new(pads));
        // The prefetch plan lets every member's metadata fetches be in
        // flight together, so members issue from the batch's start time
        // rather than serialising end-to-end; the merged WPQ drain in
        // `commit_batch` then charges the serialised commit once.
        let t0 = now + self.l3.latency();
        let mut t = t0;
        for (block, data) in batch.members() {
            self.stats.stores += 1;
            self.stats.persists += 1;
            if self.persist_boundary_crash(now) {
                // The crash cleared the open batch; the staged prefix
                // (every fully processed member, merged) replays at
                // recovery — the scalar walk's per-member durability.
                return Err(SecureMemoryError::NeedsRecovery);
            }
            self.reclaim(*block);
            self.plain.insert(block.0, *data);
            self.l3_touch(*block, true);
            let done = match self.writeback_data(*block, *data, t0, true) {
                Ok(done) => done,
                Err(e) => {
                    // Commit the staged prefix so the on-chip roots and
                    // the NVM image agree before surfacing the error.
                    let _ = self.commit_batch(t);
                    return Err(e);
                }
            };
            self.l3.flush(*block);
            match self.drain_evictions(now) {
                Ok(()) => {}
                Err(e) => {
                    let _ = self.commit_batch(t);
                    return Err(e);
                }
            }
            t = t.max(done);
        }
        t = self.commit_batch(t)?;
        self.drain_evictions(now)?;
        self.hists.persist_latency_ns.record(t.since(now).as_ns());
        Ok(t)
    }

    /// Applies `batch` through [`SecureMemory::persist_batch`] on the
    /// convenience (untimed) clock.
    ///
    /// # Errors
    ///
    /// Same classes as [`SecureMemory::persist_batch`].
    pub fn apply_batch(&mut self, batch: &WriteBatch) -> Result<()> {
        let t = self.persist_batch(batch, self.clock)?;
        self.clock = t;
        Ok(())
    }

    // ----- crate-internal batch plumbing ------------------------------------

    /// Staged bytes of `addr` in the open batch, if any. Metadata and
    /// data fetches must prefer these over the (stale-until-commit)
    /// NVM copy.
    pub(crate) fn batch_forward(&self, addr: BlockAddr) -> Option<Block> {
        self.batch.as_ref().and_then(|p| p.lookup(addr))
    }

    /// Precomputed pad for `(block, major, minor)` in the open batch.
    pub(crate) fn batch_pad(&self, block: BlockAddr, major: u64, minor: u8) -> Option<Block> {
        self.batch
            .as_ref()
            .and_then(|p| p.pads.get(&(block.0, major, minor)).copied())
    }

    /// Merges one member's atomic update set into the open batch and
    /// cumulatively re-stages the persistent registers. `writes` is
    /// positionally classed exactly as the scalar protocol builds it:
    /// data, then (optionally) the counter, then the MAC, then nodes.
    pub(crate) fn stage_into_batch(
        &mut self,
        kind: RegionKind,
        writes: &[StagedWrite],
        persist_counter: bool,
        new_root: triad_meta::NodeBuf,
    ) {
        if let Some(pending) = &mut self.batch {
            pending.naive_writes += writes.len() as u64;
            for (i, w) in writes.iter().enumerate() {
                let class = match (i, persist_counter) {
                    (0, _) => WriteClass::Data,
                    (1, true) => WriteClass::Counter,
                    (1, false) | (2, true) => WriteClass::Mac,
                    _ => WriteClass::Node,
                };
                pending.stage(class, w.addr, w.data);
            }
            if kind == RegionKind::Persistent {
                pending.new_persistent_root = Some(new_root);
            }
            self.restage_batch();
        }
    }

    /// Stages a single write into the open batch (re-encryption path).
    pub(crate) fn batch_stage_raw(&mut self, class: WriteClass, addr: BlockAddr, data: Block) {
        if let Some(pending) = &mut self.batch {
            pending.naive_writes += 1;
            pending.stage(class, addr, data);
            self.restage_batch();
        }
    }

    /// Refreshes a pending write's bytes after a direct NVM write of
    /// the same block (eviction mid-batch), so neither the commit nor a
    /// recovery replay can roll the block back to stale bytes.
    pub(crate) fn batch_refresh(&mut self, addr: BlockAddr, data: Block) {
        let refreshed = match &mut self.batch {
            Some(pending) => pending.refresh(addr, data),
            None => false,
        };
        if refreshed {
            self.restage_batch();
        }
    }

    /// Re-stages the full merged pending set (and pending root) into
    /// the persistent registers. Keeping the registers cumulative makes
    /// the per-member root advance crash-safe: whatever prefix of the
    /// batch has been processed is always replayable.
    fn restage_batch(&mut self) {
        let Some(pending) = &self.batch else { return };
        let writes: Vec<StagedWrite> = pending.ordered().into_iter().map(|(_, w)| w).collect();
        let new_persistent_root = pending.new_persistent_root;
        self.regs.stage(StagedUpdate {
            writes,
            new_persistent_root,
        });
    }

    /// Commits the open batch: charges the register protocol once,
    /// drains the merged writes through the WPQ (honouring the armed
    /// WPQ-crash hook), counts per-class persist writes, and clears the
    /// READY_BIT. A no-op when no batch is open or nothing was staged.
    pub(crate) fn commit_batch(&mut self, now: Time) -> Result<Time> {
        let Some(pending) = self.batch.take() else {
            return Ok(now);
        };
        if pending.is_empty() {
            return Ok(now);
        }
        let writes = pending.ordered();
        let merged = pending.naive_writes - writes.len() as u64;
        let mut t = now
            + self
                .config
                .security
                .persistent_register_latency
                .saturating_mul(writes.len() as u64 + 1);
        emit(
            &self.events,
            now,
            "batch_persist",
            &[
                ("staged_writes", writes.len().into()),
                ("merged_away", merged.into()),
            ],
        );
        for (class, w) in &writes {
            if let Some(left) = self.crash_after_wpq_writes {
                if left == 0 {
                    // First fire wins: disarm the persist-boundary
                    // hook too.
                    self.disarm_crash_hooks();
                    emit(
                        &self.events,
                        t,
                        "crash",
                        &[("injected", true.into()), ("block", w.addr.0.into())],
                    );
                    self.crash();
                    return Err(SecureMemoryError::NeedsRecovery);
                }
                self.crash_after_wpq_writes = Some(left - 1);
            }
            t = self.mc.write(w.addr, w.data, t);
            match class {
                WriteClass::Data => {}
                WriteClass::Counter => self.stats.counter_writes_persist += 1,
                WriteClass::Mac => self.stats.mac_writes_persist += 1,
                WriteClass::Node => self.stats.node_writes_persist += 1,
            }
        }
        self.stats.atomic_persists += 1;
        self.stats.batch_writes_merged += merged;
        self.regs.commit();
        Ok(t)
    }

    /// Simulates the counter increments the batch members will perform
    /// and precomputes their one-time pads in one batched AES pass.
    ///
    /// The simulation peeks counters exactly where the write path will
    /// find them (resident map, pending eviction, NVM image) *without*
    /// touching any engine state; a misprediction merely misses the pad
    /// map and the member falls back to the scalar AES path.
    pub(crate) fn precompute_batch_pads(
        &self,
        members: &[(BlockAddr, Block)],
    ) -> BTreeMap<(u64, u64, u8), Block> {
        let split = self.split_counters();
        let mut sim: BTreeMap<u64, AnyCounterBlock> = BTreeMap::new();
        let mut keys: Vec<(u64, u64, u8)> = Vec::new();
        let mut ivs: Vec<Iv> = Vec::new();
        for (block, _) in members {
            let Some(kind) = self.map.data_region_of(*block) else {
                continue;
            };
            if kind != RegionKind::Persistent {
                continue;
            }
            let layout = self.layout(kind);
            let data_index = layout.data_index(*block);
            let coverage = layout.counter_coverage;
            let leaf = data_index / coverage;
            let slot = (data_index % coverage) as usize;
            let addr = layout.counter_start + leaf;
            let cb = sim.entry(addr.0).or_insert_with(|| {
                if let Some(cb) = self.counters.get(&addr.0) {
                    *cb
                } else if let Some(EvictItem::Counter { value, .. }) = self
                    .evict_queue
                    .iter()
                    .find(|e| matches!(e, EvictItem::Counter { addr: a, .. } if *a == addr))
                {
                    *value
                } else {
                    AnyCounterBlock::from_bytes(split, &self.mc.store().read(addr))
                }
            });
            // Overflow resets mirror the real increment, so the
            // simulation stays in lock-step across re-encryptions.
            let _ = cb.increment(slot);
            let pair = cb.pair(slot);
            keys.push((block.0, pair.major, pair.minor));
            ivs.push(self.data_iv(kind, *block, pair.major, pair.minor));
        }
        let pads = pad_batch(self.aes_for(RegionKind::Persistent), &ivs);
        keys.into_iter().zip(pads).collect()
    }

    /// Plans the metadata prefetches of a queued batch: per-member
    /// counter and MAC lines plus the coalesced BMT path nodes, probed
    /// non-perturbingly against on-chip state. Returns the number of
    /// distinct lines planned.
    pub(crate) fn plan_batch_prefetch(&mut self, members: &[(BlockAddr, Block)]) -> u64 {
        let kind = RegionKind::Persistent;
        let layout = self.layout(kind).clone();
        if layout.is_empty() {
            return 0;
        }
        let mut reqs: Vec<(PrefetchClass, BlockAddr)> = Vec::new();
        let mut leaves: Vec<u64> = Vec::new();
        for (block, _) in members {
            if self.map.data_region_of(*block) != Some(kind) {
                continue;
            }
            let data_index = layout.data_index(*block);
            let leaf = data_index / layout.counter_coverage;
            leaves.push(leaf);
            reqs.push((PrefetchClass::Counter, layout.counter_start + leaf));
            reqs.push((PrefetchClass::Mac, layout.mac_start + data_index / 8));
        }
        let coalesced = coalesce_dirty_paths(&layout.geometry, &leaves);
        for level in 1..layout.geometry.root_level() {
            for index in coalesced.nodes_at_level(level) {
                if let Some(addr) = layout.bmt_node_addr(level, *index) {
                    reqs.push((PrefetchClass::Node, addr));
                }
            }
        }
        let SecureMemory {
            prefetcher,
            counters,
            nodes,
            macs,
            ctr_cache,
            mt_cache,
            evict_queue,
            ..
        } = self;
        let plan = prefetcher.plan(&reqs, |class, addr| {
            let queued = evict_queue.iter().any(|e| e.addr() == addr);
            queued
                || match class {
                    PrefetchClass::Counter => {
                        counters.contains_key(&addr.0) || ctr_cache.probe(addr)
                    }
                    PrefetchClass::Mac => macs.contains_key(&addr.0) || mt_cache.probe(addr),
                    PrefetchClass::Node => nodes.contains_key(&addr.0) || mt_cache.probe(addr),
                }
        });
        emit(
            &self.events,
            self.clock,
            "batch_prefetch",
            &[
                ("lines", plan.lines.len().into()),
                ("predicted_hits", plan.predicted_hits().into()),
                ("dedup_saved", plan.dedup_saved.into()),
            ],
        );
        plan.lines.len() as u64
    }
}
